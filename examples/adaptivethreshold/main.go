// Adaptivethreshold shows §6 from a single node's point of view: how the
// Adaptive Threshold Control moves a node's δ as the hourly query-load
// estimate (EHr) and the local data volatility change, trading update
// traffic against range accuracy.
package main

import (
	"fmt"
	"log"

	"repro/internal/atc"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)

	const epochsPerHour = 100
	ctrl, err := atc.NewController(atc.DefaultConfig(epochsPerHour))
	if err != nil {
		log.Fatal(err)
	}

	// Network constants the root uses for budgeting (50 nodes, 13
	// internal, a typical unit-disk link count).
	params := atc.NetworkParams{N: 50, Internal: 13, Links: 160}
	fmt.Println("Single-node ATC walk-through")
	fmt.Println("============================")
	fmt.Printf("deployment: N=%d, fMax=%.2f updates/query, Umax/Hr at 5 q/hr = %.0f msgs\n\n",
		params.N, params.FMax(), params.UmaxPerHour(5))

	fmt.Printf("%-6s %-10s %-12s %-12s %-10s\n",
		"hour", "EHr(q/hr)", "volatility", "budget/node", "delta(%)")

	type phase struct {
		hours int
		eHr   int
		vol   float64 // span-fraction per epoch
		note  string
	}
	phases := []phase{
		{6, 5, 0.0004, "baseline: moderate load, calm data"},
		{6, 40, 0.0004, "query storm: more budget, delta narrows"},
		{6, 40, 0.004, "storm + volatile data: delta widens to hold budget"},
		{6, 2, 0.004, "load drops: tiny budget, delta widens further"},
		{6, 5, 0.0004, "back to baseline"},
	}

	hour := 0
	seq := int64(0)
	for _, ph := range phases {
		fmt.Printf("--- %s\n", ph.note)
		for i := 0; i < ph.hours; i++ {
			// One hour of epochs: the node observes its volatility and
			// sends however many updates its current delta implies
			// (level-crossing approximation).
			ctrl.OnEpoch(ph.vol)
			widthFrac := ctrl.DeltaPct() / 100
			sends := int(ph.vol*epochsPerHour/widthFrac + 0.5)
			for s := 0; s < sends; s++ {
				ctrl.OnUpdateSent()
			}
			seq++
			budget := params.BudgetPerNode(ph.eHr, 0.4)
			ctrl.OnEstimate(core.EstimateMsg{
				Seq: seq, QueriesPerHr: ph.eHr, BudgetPerNode: budget,
			})
			hour++
			if i == ph.hours-1 {
				fmt.Printf("%-6d %-10d %-12.4f %-12.2f %-10.2f\n",
					hour, ph.eHr, ph.vol, budget, ctrl.DeltaPct())
			}
		}
	}

	fmt.Println()
	fmt.Println("delta narrows when query demand is high and data is calm (accuracy is")
	fmt.Println("cheap), and widens when demand falls or the signal churns (updates")
	fmt.Println("would be wasted) — exactly the §6 trade-off.")
}
