// Georange demonstrates the paper's optional location attribute (§2:
// DirQ can route on "location (static) if it is available"): queries
// constrained to a rectangular plot are pruned spatially using static
// subtree bounding boxes — no update traffic needed, since positions never
// change — and cost far less than value-only dissemination.
package main

import (
	"fmt"
	"log"

	dirq "repro"
	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := dirq.DefaultScenario()
	cfg.Seed = 5
	cfg.Epochs = 1500
	cfg.FixedPct = 3

	r, err := dirq.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Warm the range tables up.
	r.Proto.Start()
	r.MAC.Start()
	r.Engine.RunUntil(100)

	pos := func(id topology.NodeID) topology.Position { return r.Graph.Pos(id) }
	ix, err := geo.NewIndex(r.Tree, pos)
	if err != nil {
		log.Fatal(err)
	}
	r.Proto.SetGeo(ix)

	fmt.Println("Location-constrained range queries")
	fmt.Println("==================================")
	ty := sensordata.Temperature
	lo, hi := ty.Span()
	val := func(id topology.NodeID) float64 { return r.Gen.Value(id, ty) }

	quadrants := []topology.Rect{
		{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50},
		{MinX: 50, MinY: 0, MaxX: 100, MaxY: 50},
		{MinX: 0, MinY: 50, MaxX: 50, MaxY: 100},
		{MinX: 50, MinY: 50, MaxX: 100, MaxY: 100},
	}
	fmt.Printf("%-22s %-9s %-9s %-10s\n", "plot", "sources", "reached", "cost(units)")
	for i, rect := range quadrants {
		before := r.Meter.ByClass(radio.ClassQuery).Total()
		q := query.Query{ID: int64(100 + i), Type: ty, Lo: lo, Hi: hi}
		truth := query.ResolveGeo(q, rect, r.Tree, r.Mounted, val, pos)
		rec := r.Proto.InjectGeoQuery(q, rect, truth)
		r.Engine.RunUntil(r.Engine.Now() + 25)
		cost := r.Meter.ByClass(radio.ClassQuery).Total() - before
		fmt.Printf("%-22s %-9d %-9d %-10d\n", rect, len(rec.Sources), len(rec.Received), cost)
	}

	// The same match-all query without a location constraint.
	before := r.Meter.ByClass(radio.ClassQuery).Total()
	q := query.Query{ID: 999, Type: ty, Lo: lo, Hi: hi}
	truth := query.Resolve(q, r.Tree, r.Mounted, val)
	rec := r.Proto.InjectQuery(q, truth)
	r.Engine.RunUntil(r.Engine.Now() + 25)
	cost := r.Meter.ByClass(radio.ClassQuery).Total() - before
	fmt.Printf("%-22s %-9d %-9d %-10d\n", "whole field (no geo)", len(rec.Sources), len(rec.Received), cost)

	fmt.Println()
	fmt.Println("each quadrant query prunes the other quadrants' subtrees spatially,")
	fmt.Println("so four plot-queries together cost about what one full sweep does.")
}
