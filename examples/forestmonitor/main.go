// Forestmonitor reproduces the paper's §3 motivating application: an
// environmental-monitoring network in a forest, queried by many user
// groups at once. Nodes carry heterogeneous sensor complements
// (temperature, humidity, light, soil moisture), query load varies over
// the day, and the ATC adapts each node's reporting threshold to both the
// load and the local micro-climate volatility.
package main

import (
	"fmt"
	"log"

	dirq "repro"
	"repro/internal/metrics"
	"repro/internal/sensordata"
)

func main() {
	log.SetFlags(0)

	cfg := dirq.DefaultScenario()
	cfg.Seed = 2026
	cfg.Epochs = 5000
	cfg.Mode = dirq.ATC
	cfg.Heterogeneous = true // nodes carry different sensor subsets (Fig. 4)
	cfg.TypeProb = 0.5
	cfg.Coverage = 0.3

	res, err := dirq.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Forest monitoring with DirQ")
	fmt.Println("===========================")
	fmt.Printf("Network: %d heterogeneous nodes; each mounts a subset of %d sensor types.\n",
		cfg.NumNodes, sensordata.NumTypes)
	fmt.Printf("Workload: %d range queries over %d epochs (researchers, students, public).\n\n",
		res.QueriesInjected, cfg.Epochs)

	// Per-sensor-type accuracy: queries rotate round-robin over types, so
	// slice the accuracies by index modulo the type count.
	types := sensordata.AllTypes()
	perType := make([][]metrics.Accuracy, len(types))
	for i, acc := range res.Accuracies {
		perType[i%len(types)] = append(perType[i%len(types)], acc)
	}
	fmt.Println("Per-sensor-type delivery (mean % of nodes):")
	fmt.Printf("  %-14s %8s %8s %10s\n", "type", "should", "got", "overshoot")
	for i, ty := range types {
		s := metrics.Summarize(perType[i], cfg.NumNodes)
		fmt.Printf("  %-14s %7.1f%% %7.1f%% %9.2f%%\n",
			ty, s.PctShould, s.PctReceived, s.MeanOvershoot)
	}

	fmt.Println()
	fmt.Printf("Energy: DirQ spent %.1f%% of what flooding every query would cost.\n",
		res.CostFraction*100)
	fmt.Printf("Update traffic settled around %.0f messages per hour (Umax/Hr = %.0f).\n",
		mean(res.UpdateTxPerBucket[len(res.UpdateTxPerBucket)/2:]), res.UmaxPerHour)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
