// Topologychange demonstrates §4.2: DirQ's cross-layer coupling with the
// LMAC-style TDMA MAC lets the network absorb node deaths. Instead of
// hand-driving the engine, the whole scenario is a declarative script —
// a kill mid-run, then a two-death cascade — and the script report tells
// us how big each detached subtree was, how long the repair took, and how
// accuracy and cost held up in every window between the faults.
package main

import (
	"fmt"
	"log"

	dirq "repro"
)

func main() {
	log.SetFlags(0)

	cfg := dirq.DefaultScenario()
	cfg.Seed, cfg.Epochs, cfg.FixedPct = 11, 3000, 3

	res, err := dirq.RunScript(cfg, &dirq.Script{
		Name: "topology-change",
		Events: []dirq.ScriptEvent{
			{At: 1500, Op: dirq.OpKill},                           // auto-picked internal node
			{At: 2000, Op: dirq.OpCascade, Count: 2, Spacing: 80}, // a follow-up cascade
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Topology-change demo: scripted node deaths mid-run")
	fmt.Println("==================================================")
	for _, f := range res.Report.Faults {
		fmt.Printf("epoch %d: node %d died, subtree of %d detached, repaired in %d epochs\n",
			f.At, f.Node, f.Detached, f.RepairEpochs)
	}
	for _, w := range res.Report.Windows {
		fmt.Printf("window %4d-%4d: %2d queries, received %.1f%%, overshoot %.2f%%, cost %.1f%% of flooding\n",
			w.From, w.To, w.Queries, w.PctReceived, w.MeanOvershootPct, w.CostFraction*100)
	}
	fmt.Printf("\nrun complete: %d queries, mean overshoot %.2f%%, cost %.1f%% of flooding\n",
		res.QueriesInjected, res.Summary.MeanOvershoot, res.CostFraction*100)
}
