// Topologychange demonstrates §4.2: DirQ's cross-layer coupling with the
// LMAC-style TDMA MAC lets the network absorb node deaths. When a node
// falls silent, its neighbors' MACs detect the missed slots and notify
// DirQ, which purges the dead node's range-table rows, re-attaches the
// orphaned subtree, and keeps routing queries accurately.
package main

import (
	"fmt"
	"log"

	dirq "repro"
	"repro/internal/lmac"
	"repro/internal/query"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	log.SetFlags(0)

	cfg := dirq.DefaultScenario()
	cfg.Seed = 11
	cfg.Epochs = 3000
	cfg.FixedPct = 3

	r, err := dirq.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Topology-change demo: killing an internal node mid-run")
	fmt.Println("=======================================================")

	// Pick an internal (non-root) victim before starting.
	var victim topology.NodeID = -1
	for _, id := range r.Tree.Nodes() {
		if id != topology.Root && len(r.Tree.Children(id)) >= 2 {
			victim = id
			break
		}
	}
	if victim < 0 {
		log.Fatal("no internal node to kill in this draw")
	}
	kids := append([]topology.NodeID(nil), r.Tree.Children(victim)...)
	fmt.Printf("victim: node %d at depth %d with children %v\n\n",
		victim, r.Tree.Depth(victim), kids)

	// Schedule the kill at epoch 1500, after the network has warmed up.
	r.Engine.SchedulePrio(1500, lmac.PrioApp, func() {
		fmt.Printf("[epoch 1500] node %d powered off\n", victim)
		r.Proto.KillNode(victim)
	})
	// Probe the repair shortly after the MAC's dead threshold elapses.
	r.Engine.SchedulePrio(1520, lmac.PrioMetrics, func() {
		fmt.Printf("[epoch 1520] tree contains victim: %v; orphans: %v\n",
			r.Tree.Contains(victim), r.Proto.Orphans())
		for _, kid := range kids {
			if r.Tree.Contains(kid) {
				p, _ := r.Tree.Parent(kid)
				fmt.Printf("            child %d re-attached under node %d\n", kid, p)
			} else {
				fmt.Printf("            child %d still orphaned\n", kid)
			}
		}
	})
	// At epoch 2000, inject a match-everything query and verify that every
	// live relevant node still gets it.
	r.Engine.SchedulePrio(2000, lmac.PrioApp+1, func() {
		ty := sensordata.Temperature
		lo, hi := ty.Span()
		q := query.Query{ID: 999999, Type: ty, Lo: lo, Hi: hi}
		truth := query.Resolve(q, r.Tree, r.Mounted,
			func(id topology.NodeID) float64 { return r.Gen.Value(id, ty) })
		rec := r.Proto.InjectQuery(q, truth)
		r.Engine.SchedulePrio(2040, lmac.PrioMetrics, func() {
			missed := 0
			for id := range truth.Should {
				if !rec.Received[id] {
					missed++
				}
			}
			fmt.Printf("[epoch 2040] audit query: %d relevant live nodes, %d missed, victim reached: %v\n",
				len(truth.Should), missed, rec.Received[victim])
		})
	})

	res := r.Run()

	fmt.Println()
	fmt.Printf("run complete: %d queries, mean overshoot %.2f%%, cost %.1f%% of flooding\n",
		res.QueriesInjected, res.Summary.MeanOvershoot, res.CostFraction*100)
	if err := r.Tree.Validate(); err != nil {
		log.Fatalf("tree invariant violated after churn: %v", err)
	}
	fmt.Println("tree invariants hold after the repair.")
	_ = sim.Time(0)
}
