// Command liveclient demonstrates the live query-serving layer end to
// end, self-contained: it starts an in-process dirqd (two shards, ATC
// thresholds), serves it over a loopback HTTP listener, and plays the
// role of several concurrent users firing ad-hoc range queries — the
// paper's "Acquire all temperature readings that are currently between
// 22°C and 25°C", asked of a running network instead of a batch script.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	dirq "repro"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("liveclient: ")

	// A small two-shard deployment with adaptive thresholds.
	base := dirq.DefaultScenario()
	base.NumNodes = 30
	base.Epochs = 1 << 40 // serve "forever"
	base.Mode = dirq.ATC
	wallClock := func() int64 { return time.Now().UnixNano() }
	cfgs := []serve.ShardConfig{
		{ID: "west", Scenario: withSeed(base, 1), Clock: wallClock},
		{ID: "east", Scenario: withSeed(base, 2), Clock: wallClock},
	}
	mgr, err := serve.NewManager(cfgs)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := mgr.Start(ctx); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.NewHandler(mgr)}
	go srv.Serve(ln) //nolint:errcheck // closed on shutdown below
	url := "http://" + ln.Addr().String()
	fmt.Printf("dirqd serving two shards on %s\n\n", url)

	c := serve.NewClient(url, nil)

	// Concurrent users, each with their own question.
	questions := []struct {
		typ    string
		lo, hi float64
	}{
		{"temperature", 22, 25},
		{"temperature", 10, 25},
		{"humidity", 40, 70},
		{"light", 500, 1000},
		{"soil-moisture", 20, 40},
		{"temperature", -10, 40},
	}
	queryStart := time.Now()
	var wg sync.WaitGroup
	for i, qs := range questions {
		wg.Add(1)
		go func(i int, typ string, lo, hi float64) {
			defer wg.Done()
			qctx, qcancel := context.WithTimeout(ctx, 30*time.Second)
			defer qcancel()
			r, err := c.QueryRange(qctx, typ, lo, hi)
			if err != nil {
				log.Printf("user %d: %v", i, err)
				return
			}
			fmt.Printf("user %d asked %s in [%.0f, %.0f] -> shard %s answered at epoch %d: "+
				"%d nodes matched (%d sources), overshoot %.1f%%\n",
				i, typ, lo, hi, r.Shard, r.AnsweredEpoch,
				len(r.Matched), len(r.Sources), r.Accuracy.OvershootPct)
		}(i, qs.typ, qs.lo, qs.hi)
	}
	wg.Wait()
	elapsed := time.Since(queryStart)

	// What the operator sees.
	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, st := range stats.Shards {
		fmt.Printf("shard %s: epoch %d, %d queries served, cost vs flooding %.1f%%\n",
			st.ID, st.Epoch, st.QueriesServed, st.CostFraction*100)
	}

	// The same deployment through its telemetry: scrape /metrics.json and
	// summarize what Prometheus would see.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var served int64
	for _, s := range metrics {
		if s.Name == "dirq_serve_queries_served_total" {
			served += int64(s.Value)
		}
	}
	fmt.Printf("\nscraped %d metric series from /metrics.json:\n", len(metrics))
	fmt.Printf("  throughput: %d queries in %.2fs = %.1f qps\n",
		served, elapsed.Seconds(), float64(served)/elapsed.Seconds())
	for _, s := range metrics {
		switch s.Name {
		case "dirq_serve_query_latency_seconds":
			fmt.Printf("  shard %s latency: p50 %.0fms  p99 %.0fms (%d observations)\n",
				s.Labels["shard"], s.Quantile(0.5)*1e3, s.Quantile(0.99)*1e3, s.Count)
		case "dirq_core_active_set_size":
			if s.Count > 0 {
				fmt.Printf("  shard %s active set: mean %.1f nodes/epoch over %d epochs\n",
					s.Labels["shard"], s.Sum/float64(s.Count), s.Count)
			}
		}
	}

	// Graceful teardown: HTTP drain, then shard drain.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	mgr.Stop()
	fmt.Println("\nshut down cleanly")
}

func withSeed(cfg dirq.Scenario, seed uint64) dirq.Scenario {
	cfg.Seed = seed
	return cfg
}
