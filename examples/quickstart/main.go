// Quickstart: run DirQ with adaptive threshold control on the paper's
// default 50-node network for 2 000 epochs and compare its cost against
// flooding the same queries.
package main

import (
	"fmt"
	"log"

	dirq "repro"
)

func main() {
	log.SetFlags(0)

	cfg := dirq.DefaultScenario()
	cfg.Epochs = 2000
	cfg.Mode = dirq.ATC

	res, err := dirq.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DirQ quickstart — 50 sensor nodes, adaptive threshold control")
	fmt.Printf("queries answered:       %d one-shot range queries\n", res.QueriesInjected)
	fmt.Printf("nodes that should get a query: %.1f%% on average\n", res.Summary.PctShould)
	fmt.Printf("nodes that did get it:         %.1f%% on average\n", res.Summary.PctReceived)
	fmt.Printf("overshoot:                     %.2f%% of nodes\n", res.Summary.MeanOvershoot)
	fmt.Println()
	fmt.Printf("DirQ total cost:    %8d units (queries %d + updates %d)\n",
		res.QueryCost.Total()+res.UpdateCost.Total(),
		res.QueryCost.Total(), res.UpdateCost.Total())
	fmt.Printf("flooding cost:      %8d units\n", res.FloodCost)
	fmt.Printf("DirQ / flooding:    %7.1f%%   (the paper reports 45%%-55%%)\n",
		res.CostFraction*100)
}
