package dirq

// One benchmark per paper artefact (Fig. 5(a), Fig. 5(b), Fig. 6, Fig. 7,
// the §5 analytical table, and the headline summary), each at a reduced
// scale suitable for `go test -bench=.`; the full-scale regeneration runs
// via `go run ./cmd/dirqexp`. Reported custom metrics carry the headline
// quantities (cost fraction vs flooding, overshoot). Ablation benches
// cover the design choices DESIGN.md calls out, and micro-benches cover
// the hot substrate paths.

import (
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lmac"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

// benchOptions keeps figure benches affordable. Workers is pinned to 1 so
// the per-figure benches measure single-run cost; the *Parallel variants
// below measure the worker-pool speedup.
func benchOptions() experiments.Options {
	return experiments.Options{Seed: 1, NumNodes: 30, Epochs: 800, Workers: 1}
}

func benchScenario() scenario.Config {
	cfg := scenario.Default()
	cfg.NumNodes = 30
	cfg.Epochs = 800
	return cfg
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchOptions(), 0.4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].PctShouldNot, "wrong%@δ9")
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchOptions(), 0.6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].PctShouldNot, "wrong%@δ9")
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchOptions(), 0.4)
		if err != nil {
			b.Fatal(err)
		}
		means := r.SteadyStateMeans()
		b.ReportMetric(means["delta=ATC"], "ATCupd/100ep")
		b.ReportMetric(r.UmaxPerHour, "Umax/hr")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchOptions(), 0.2)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Series {
			if s.Label == "delta=ATC" {
				b.ReportMetric(s.Mean, "ATCovershoot%")
			}
		}
	}
}

func BenchmarkAnalytic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Analytic([]int{2, 3, 4, 8}, []int{1, 2, 3, 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Table().Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Headline(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].CostFraction, "cost/flood@20%")
	}
}

// BenchmarkFig5aParallel is BenchmarkFig5a with the worker pool opened to
// every CPU: the sweep's nine independent δ runs fan out concurrently.
// Compare ns/op against BenchmarkFig5a for the engine speedup.
func BenchmarkFig5aParallel(b *testing.B) {
	o := benchOptions()
	o.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(o, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllExperimentsParallel regenerates every artefact with whole
// experiments (and their inner sweeps) running concurrently.
func BenchmarkAllExperimentsParallel(b *testing.B) {
	o := benchOptions()
	o.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllExperimentsSequential is the Workers=1 baseline for
// BenchmarkAllExperimentsParallel.
func BenchmarkAllExperimentsSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(benchOptions(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches: design choices called out in DESIGN.md ---

// BenchmarkAblationZeroDelta disables hysteresis/suppression entirely
// (δ=0): every reading change propagates, maximizing accuracy and update
// cost. Compares against the default δ=5 % run.
func BenchmarkAblationZeroDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchScenario()
		cfg.FixedPct = 0
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CostFraction, "cost/flood")
		b.ReportMetric(res.Summary.MeanOvershoot, "overshoot%")
	}
}

// BenchmarkAblationFeedforwardOnly runs the ATC without its feedback term,
// isolating the level-crossing feedforward model's budget-tracking error.
func BenchmarkAblationFeedforwardOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchScenario()
		cfg.Mode = scenario.ATC
		cfg.ATCFeedbackOff = true
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CostFraction, "cost/flood")
	}
}

// BenchmarkAblationATCFull is the feedback-enabled counterpart of
// BenchmarkAblationFeedforwardOnly.
func BenchmarkAblationATCFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchScenario()
		cfg.Mode = scenario.ATC
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CostFraction, "cost/flood")
	}
}

// BenchmarkAblationLossyChannel measures DirQ under 5 % packet loss.
func BenchmarkAblationLossyChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchScenario()
		cfg.PacketLoss = 0.05
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Summary.MeanOvershoot, "overshoot%")
	}
}

// --- Micro-benches on substrate hot paths ---

func BenchmarkEventQueue(b *testing.B) {
	e := sim.NewEngine()
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := e.Now() + sim.Time(rng.Intn(64)+1)
		e.Schedule(at, func() {})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := sim.NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkRangeTableObserve(b *testing.B) {
	rt := core.NewRangeTable()
	rng := sim.NewRNG(2)
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Range(0, 50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.ObserveReading(vals[i&1023], 1.5)
	}
}

func BenchmarkRangeTableAggregate(b *testing.B) {
	rt := core.NewRangeTable()
	for c := 0; c < 8; c++ {
		rt.SetChild(topology.NodeID(c+1), core.Tuple{Min: float64(c), Max: float64(c + 2)})
	}
	rt.ObserveReading(5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := rt.Aggregate(); !ok {
			b.Fatal("empty aggregate")
		}
	}
}

func BenchmarkFieldGeneratorStep(b *testing.B) {
	rng := sim.NewRNG(3)
	pos := make([]topology.Position, 50)
	for i := range pos {
		pos[i] = topology.Position{X: rng.Range(0, 100), Y: rng.Range(0, 100)}
	}
	gen := sensordata.NewGenerator(pos, rng.Stream("data"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Step()
	}
}

func BenchmarkLMACFrame(b *testing.B) {
	rng := sim.NewRNG(4)
	g, err := topology.PlaceRandom(topology.DefaultPlacement(), rng)
	if err != nil {
		b.Fatal(err)
	}
	engine := sim.NewEngine()
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	mac, err := lmac.New(engine, ch)
	if err != nil {
		b.Fatal(err)
	}
	mac.Init()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mac.RunFrame()
	}
}

func BenchmarkFloodOneQuery(b *testing.B) {
	g, _, err := topology.BuildKaryTree(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Broadcast(topology.Root, radio.ClassFlood, nil)
	}
}

func BenchmarkGroundTruthResolve(b *testing.B) {
	rng := sim.NewRNG(5)
	g, err := topology.PlaceRandom(topology.DefaultPlacement(), rng.Stream("p"))
	if err != nil {
		b.Fatal(err)
	}
	tree, err := topology.BuildSpanningTree(g, topology.Root, 8, 10)
	if err != nil {
		b.Skip("caps too tight for this draw")
	}
	pos := make([]topology.Position, g.Len())
	for i := range pos {
		pos[i] = g.Pos(topology.NodeID(i))
	}
	gen := sensordata.NewGenerator(pos, rng.Stream("d"))
	mounted := sensordata.AssignAllTypes(g.Len())
	q := query.Query{Type: sensordata.Temperature, Lo: 10, Hi: 25}
	val := func(id topology.NodeID) float64 { return gen.Value(id, sensordata.Temperature) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query.Resolve(q, tree, mounted, val)
	}
}

func BenchmarkWorkloadNext(b *testing.B) {
	rng := sim.NewRNG(6)
	g, err := topology.PlaceRandom(topology.DefaultPlacement(), rng.Stream("p"))
	if err != nil {
		b.Fatal(err)
	}
	tree, err := topology.BuildSpanningTree(g, topology.Root, 8, 10)
	if err != nil {
		b.Skip("caps too tight for this draw")
	}
	pos := make([]topology.Position, g.Len())
	for i := range pos {
		pos[i] = g.Pos(topology.NodeID(i))
	}
	gen := sensordata.NewGenerator(pos, rng.Stream("d"))
	mounted := sensordata.AssignAllTypes(g.Len())
	w, err := query.NewWorkload(0.4, rng.Stream("w"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Next(gen, tree, mounted)
	}
}

func BenchmarkScenarioEpoch(b *testing.B) {
	// Amortized per-epoch cost of the full stack at paper scale.
	cfg := scenario.Default()
	cfg.Epochs = int64(b.N) + 100
	r, err := scenario.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	r.Run()
}

func BenchmarkMetricsEval(b *testing.B) {
	rec := &core.QueryRecord{
		Truth:    query.GroundTruth{Should: map[topology.NodeID]bool{}},
		Received: map[topology.NodeID]bool{},
		Sources:  map[topology.NodeID]bool{},
	}
	for i := 1; i < 30; i++ {
		rec.Truth.Should[topology.NodeID(i)] = true
		rec.Received[topology.NodeID(i+5)] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Eval(rec, 50)
	}
}

// BenchmarkAblationStaticIndex freezes range updates after warm-up — the
// SRT-style static-index baseline of §2. Compare its miss rate against
// the live-updating runs.
func BenchmarkAblationStaticIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchScenario()
		cfg.Mode = scenario.StaticIndex
		cfg.FixedPct = 3
		res, err := scenario.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		missed, should := 0, 0
		for _, a := range res.Accuracies {
			missed += a.NumMissed
			should += a.NumShould
		}
		if should > 0 {
			b.ReportMetric(100*float64(missed)/float64(should), "miss%")
		}
	}
}
