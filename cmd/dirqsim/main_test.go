package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden -json output")

var buildOnce struct {
	sync.Once
	bin string
	err error
}

// buildBinary compiles dirqsim once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dirqsim-test")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "dirqsim")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildOnce.err = err
			os.RemoveAll(dir)
			return
		}
		_ = out
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("building dirqsim: %v", buildOnce.err)
	}
	return buildOnce.bin
}

// goldenArgs is the pinned CLI invocation behind the golden file.
var goldenArgs = []string{"-nodes", "20", "-epochs", "300", "-seed", "5", "-json"}

// TestJSONSchema contract-tests `dirqsim -json`: the emitted document
// must carry every schema key and internally consistent values, so
// downstream tooling can rely on the field set rather than smoke-grep.
func TestJSONSchema(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, goldenArgs...).Output()
	if err != nil {
		t.Fatalf("dirqsim -json: %v", err)
	}

	// The emitted document decodes into the writer's own struct…
	var s jsonSummary
	if err := json.Unmarshal(out, &s); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	switch {
	case s.Nodes != 20:
		t.Errorf("nodes = %d, want 20", s.Nodes)
	case s.Epochs != 300:
		t.Errorf("epochs = %d, want 300", s.Epochs)
	case s.Seed != 5:
		t.Errorf("seed = %d, want 5", s.Seed)
	case s.Mode != "fixed":
		t.Errorf("mode = %q, want fixed", s.Mode)
	case s.TreeDepth <= 0 || s.TreeInternal <= 0:
		t.Errorf("tree shape missing: depth %d internal %d", s.TreeDepth, s.TreeInternal)
	case s.QueriesInjected <= 0:
		t.Errorf("no queries injected")
	case s.FloodCost <= 0 || s.CostFraction <= 0:
		t.Errorf("cost fields missing: flood %d fraction %v", s.FloodCost, s.CostFraction)
	case s.PctReceived <= 0 || s.PctReceived > 100:
		t.Errorf("pct_received %v outside (0,100]", s.PctReceived)
	}

	// …and carries every documented key by name (omitempty must not eat a
	// field the contract promises).
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"nodes", "epochs", "seed", "mode", "coverage", "tree_depth",
		"tree_internal", "queries_injected", "pct_should", "pct_received",
		"pct_sources", "mean_overshoot_pct", "query_cost", "update_cost",
		"update_messages", "estimate_cost", "flood_cost", "cost_fraction",
		"umax_per_hour",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("emitted JSON misses contract key %q", key)
		}
	}
}

// TestJSONGolden pins the exact bytes of the -json output for one fixed
// invocation. Regenerate with `go test ./cmd/dirqsim -run Golden -update`
// after an intentional output change. Byte comparison only runs on amd64:
// FMA fusing can legally alter float results on other architectures (the
// schema test above still covers them).
func TestJSONGolden(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, goldenArgs...).Output()
	if err != nil {
		t.Fatalf("dirqsim -json: %v", err)
	}
	golden := filepath.Join("testdata", "golden_json.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("byte-exact golden comparison pinned to amd64 (running on %s)", runtime.GOARCH)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("-json output drifted from golden (rerun with -update if intentional)\n got: %s\nwant: %s", out, want)
	}
}

// TestJSONScriptReport: -script runs embed the dynamics report.
func TestJSONScriptReport(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-nodes", "20", "-epochs", "3000", "-seed", "5",
		"-script", filepath.Join("..", "..", "scripts", "chaos.json"), "-json").Output()
	if err != nil {
		t.Fatalf("dirqsim -script -json: %v", err)
	}
	var s jsonSummary
	if err := json.Unmarshal(out, &s); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if s.Script == nil {
		t.Fatal("script report missing from -json output")
	}
	if s.Script.Name != "serving-chaos" {
		t.Errorf("script name %q, want serving-chaos", s.Script.Name)
	}
	if len(s.Script.Events) == 0 {
		t.Error("script report has no applied events")
	}
}
