// Command dirqsim runs a single DirQ simulation scenario and prints a
// summary: accuracy, update traffic, and cost relative to flooding.
//
// Usage:
//
//	dirqsim [-nodes 50] [-epochs 20000] [-coverage 0.4] [-mode fixed|atc]
//	        [-delta 5] [-rho 0.4] [-seed 1] [-hetero] [-loss 0] [-v] [-json]
//	        [-script file.json] [-area 0] [-depth 0] [-naive] [-shards 0]
//
// Above 50 nodes the deployment area and tree depth cap auto-scale to
// keep the paper's node density (-area / -depth override), so
// `dirqsim -nodes 1000` runs a realistic thousand-node field out of the
// box. -naive disables the activity-gated epoch engine — outputs are
// byte-identical, only slower; it exists for timing comparisons.
// -shards K steps each epoch with K parallel subtree shards (-1 picks K
// from GOMAXPROCS; 0/1 stays serial); outputs are byte-identical to the
// serial engine at every K, only the wall-clock changes.
//
// -json replaces the human-readable summary with one machine-readable
// JSON object (the -csv counterpart on dirqexp).
//
// -script attaches a scenario-dynamics timeline (internal/script; schema
// in the README's "Scripting scenarios"): the script owns the query
// workload and fires node kills, sensor regime shifts/drift, workload
// bursts and threshold retuning at exact epochs. The summary then gains
// the per-window metrics between events and the repair record of every
// scripted fault; with -json the whole report is machine-readable and —
// because nothing in it depends on wall-clock — byte-identical across
// runs of the same scenario (CI diffs two runs to prove it).
//
// -telemetry FILE ("-" = stdout) attaches a metrics registry and emits an
// epoch-trace: one NDJSON line per reporting bucket (BucketEpochs wide)
// with the window's deltas of every counter and histogram plus gauge
// levels — engine events, field evaluations, LMAC frame kinds, radio
// traffic, active-set sizes. Telemetry is inert (the summary is
// byte-identical with or without it) and the trace itself is
// deterministic: same seed, same NDJSON bytes (CI diffs two runs).
// Incompatible with -script, which owns the stepping.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	dirq "repro"
	"repro/internal/script"
	"repro/internal/telemetry"
)

// jsonSummary is the machine-readable form of one run, emitted by -json.
type jsonSummary struct {
	Nodes           int     `json:"nodes"`
	Epochs          int64   `json:"epochs"`
	Seed            uint64  `json:"seed"`
	Mode            string  `json:"mode"`
	DeltaPct        float64 `json:"delta_pct,omitempty"`
	Rho             float64 `json:"rho,omitempty"`
	Coverage        float64 `json:"coverage"`
	TreeDepth       int     `json:"tree_depth"`
	TreeInternal    int     `json:"tree_internal"`
	QueriesInjected int     `json:"queries_injected"`
	PctShould       float64 `json:"pct_should"`
	PctReceived     float64 `json:"pct_received"`
	PctSources      float64 `json:"pct_sources"`
	MeanOvershoot   float64 `json:"mean_overshoot_pct"`
	QueryCost       int64   `json:"query_cost"`
	UpdateCost      int64   `json:"update_cost"`
	UpdateMessages  int64   `json:"update_messages"`
	EstimateCost    int64   `json:"estimate_cost"`
	FloodCost       int64   `json:"flood_cost"`
	CostFraction    float64 `json:"cost_fraction"`
	UmaxPerHour     float64 `json:"umax_per_hour"`
	// Script carries the scenario-dynamics report for -script runs.
	Script *script.Report `json:"script,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirqsim: ")

	cfg := dirq.DefaultScenario()
	nodes := flag.Int("nodes", cfg.NumNodes, "network size including the root")
	epochs := flag.Int64("epochs", cfg.Epochs, "simulation length in epochs")
	coverage := flag.Float64("coverage", cfg.Coverage, "target fraction of nodes involved per query")
	mode := flag.String("mode", "fixed", "threshold mode: fixed or atc")
	delta := flag.Float64("delta", cfg.FixedPct, "fixed threshold in percent of sensor span")
	rho := flag.Float64("rho", cfg.Rho, "ATC update-budget fraction of the flooding headroom")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	hetero := flag.Bool("hetero", false, "heterogeneous sensor complements")
	loss := flag.Float64("loss", 0, "packet loss probability")
	area := flag.Float64("area", 0, "deployment area side length (0 = 100, auto-scaled with -nodes above 50)")
	depth := flag.Int("depth", 0, "tree depth cap (0 = 10, auto-scaled with -nodes above 50)")
	naive := flag.Bool("naive", false, "disable activity gating (the pre-gating epoch loop; identical output, for timing comparisons)")
	shards := flag.Int("shards", 0, "intra-run shard count (0/1 serial, -1 auto from GOMAXPROCS; identical output at every count)")
	interval := flag.Int64("interval", cfg.QueryInterval, "epochs between queries")
	verbose := flag.Bool("v", false, "print per-bucket update counts")
	traceN := flag.Int("trace", 0, "print the last N protocol events")
	asJSON := flag.Bool("json", false, "emit a machine-readable JSON summary instead of text")
	scriptPath := flag.String("script", "", "scenario-dynamics script driving the run")
	telePath := flag.String("telemetry", "", `emit a per-bucket epoch-trace NDJSON to this file ("-" = stdout)`)
	flag.Parse()

	// Above the paper's 50 nodes the default area and depth cap auto-scale
	// to keep node density constant (see scenario.ScaleDefault); explicit
	// -area / -depth override.
	cfg = dirq.ScaleScenario(*nodes)
	if *area > 0 {
		cfg.Width, cfg.Height = *area, *area
	}
	if *depth > 0 {
		cfg.MaxDepth = *depth
	}
	cfg.DisableActivityGating = *naive
	cfg.Shards = *shards
	cfg.NumNodes = *nodes
	cfg.Epochs = *epochs
	cfg.Coverage = *coverage
	cfg.FixedPct = *delta
	cfg.Rho = *rho
	cfg.Seed = *seed
	cfg.Heterogeneous = *hetero
	cfg.PacketLoss = *loss
	cfg.QueryInterval = *interval
	switch *mode {
	case "fixed":
		cfg.Mode = dirq.FixedDelta
	case "atc":
		cfg.Mode = dirq.ATC
	default:
		log.Fatalf("unknown -mode %q (want fixed or atc)", *mode)
	}

	if *traceN > 0 {
		cfg.TraceCapacity = *traceN
	}

	var report *script.Report
	if *scriptPath != "" {
		// Attach the script as the run's driver but build through the
		// normal path, so the runner (and with it -trace) stays available.
		sc, err := script.Load(*scriptPath)
		if err != nil {
			log.Fatal(err)
		}
		p, err := script.NewPlayer(sc)
		if err != nil {
			log.Fatal(err)
		}
		cfg.DisableWorkload = true
		cfg.Script = p
		report = p.Report()
	}
	var reg *telemetry.Registry
	if *telePath != "" {
		if *scriptPath != "" {
			log.Fatal("-telemetry and -script are mutually exclusive (the script owns the stepping)")
		}
		reg = telemetry.NewRegistry()
		cfg.Telemetry = reg
	}
	runner, err := dirq.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var res *dirq.Result
	if reg != nil {
		res, err = runTraced(runner, reg, *telePath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		res = runner.Run()
	}

	if *asJSON {
		s := jsonSummary{
			Nodes:           cfg.NumNodes,
			Epochs:          cfg.Epochs,
			Seed:            cfg.Seed,
			Mode:            cfg.Mode.String(),
			Coverage:        cfg.Coverage,
			TreeDepth:       res.TreeDepth,
			TreeInternal:    res.TreeInternal,
			QueriesInjected: res.QueriesInjected,
			PctShould:       res.Summary.PctShould,
			PctReceived:     res.Summary.PctReceived,
			PctSources:      res.Summary.PctSources,
			MeanOvershoot:   res.Summary.MeanOvershoot,
			QueryCost:       res.QueryCost.Total(),
			UpdateCost:      res.UpdateCost.Total(),
			UpdateMessages:  res.UpdateCost.Tx,
			EstimateCost:    res.EstimateCost.Total(),
			FloodCost:       res.FloodCost,
			CostFraction:    res.CostFraction,
			UmaxPerHour:     res.UmaxPerHour,
		}
		switch cfg.Mode {
		case dirq.FixedDelta:
			s.DeltaPct = cfg.FixedPct
		case dirq.ATC:
			s.Rho = cfg.Rho
		}
		s.Script = report
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("DirQ simulation: %d nodes, %d epochs, coverage %.0f%%, mode %s",
		cfg.NumNodes, cfg.Epochs, cfg.Coverage*100, cfg.Mode)
	if cfg.Mode == dirq.FixedDelta {
		fmt.Printf(" (delta %.1f%%)", cfg.FixedPct)
	}
	fmt.Println()
	fmt.Printf("tree: depth %d, %d internal nodes\n", res.TreeDepth, res.TreeInternal)
	fmt.Printf("queries injected:        %d\n", res.QueriesInjected)
	fmt.Printf("should receive (mean):   %.1f%% of nodes\n", res.Summary.PctShould)
	fmt.Printf("did receive (mean):      %.1f%% of nodes\n", res.Summary.PctReceived)
	fmt.Printf("sources (mean):          %.1f%% of nodes\n", res.Summary.PctSources)
	fmt.Printf("overshoot (mean):        %.2f%% of nodes\n", res.Summary.MeanOvershoot)
	fmt.Printf("query cost:              %d units\n", res.QueryCost.Total())
	fmt.Printf("update cost:             %d units (%d messages)\n", res.UpdateCost.Total(), res.UpdateCost.Tx)
	fmt.Printf("estimate cost:           %d units\n", res.EstimateCost.Total())
	fmt.Printf("flooding baseline:       %d units\n", res.FloodCost)
	fmt.Printf("cost vs flooding:        %.1f%%  (paper: 45%%-55%% with ATC)\n", res.CostFraction*100)
	fmt.Printf("Umax/Hr reference:       %.0f update msgs\n", res.UmaxPerHour)

	if report != nil {
		fmt.Printf("\nscript %q: %d events, %d faults\n", report.Name, len(report.Events), len(report.Faults))
		for _, e := range report.Events {
			status := "applied"
			if !e.Applied {
				status = "skipped: " + e.Note
			}
			fmt.Printf("  %-40s %s\n", e.Event, status)
		}
		for _, f := range report.Faults {
			if f.RepairedAt >= 0 {
				fmt.Printf("  fault @%d node %d: subtree of %d repaired in %d epochs\n",
					f.At, f.Node, f.Detached, f.RepairEpochs)
			} else {
				fmt.Printf("  fault @%d node %d: subtree of %d NOT repaired (%d stranded network-wide)\n",
					f.At, f.Node, f.Detached, f.OrphansLeft)
			}
		}
		fmt.Println("\nper-window metrics between events:")
		fmt.Printf("  %12s %8s %9s %10s %11s %10s\n",
			"window", "queries", "%should", "%received", "overshoot%", "cost/flood")
		for _, w := range report.Windows {
			fmt.Printf("  %5d-%-6d %8d %9.1f %10.1f %11.2f %10.3f\n",
				w.From, w.To, w.Queries, w.PctShould, w.PctReceived, w.MeanOvershootPct, w.CostFraction)
		}
	}
	if *verbose {
		fmt.Println("\nupdate messages per bucket:")
		for i, v := range res.UpdateTxPerBucket {
			fmt.Printf("  epoch %6d: %.0f\n", (int64(i)+1)*cfg.BucketEpochs, v)
		}
	}
	if *traceN > 0 && runner.Trace != nil {
		fmt.Printf("\nlast %d protocol events (%d total recorded):\n",
			*traceN, runner.Trace.Total())
		if err := runner.Trace.Dump(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	os.Exit(0)
}

// traceLine is one NDJSON record of the -telemetry epoch trace. Metrics
// holds the window's deltas of every counter and histogram (count and
// sum) plus gauge levels; json.Marshal sorts the map keys, so the same
// seed reproduces the same bytes.
type traceLine struct {
	Schema  string             `json:"schema"`
	From    int64              `json:"from"`
	To      int64              `json:"to"`
	Metrics map[string]float64 `json:"metrics"`
}

// runTraced drives the runner one reporting bucket at a time, emitting a
// traceLine per window, and returns the normal end-of-run Result.
func runTraced(runner *dirq.Runner, reg *telemetry.Registry, path string) (*dirq.Result, error) {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	runner.Start()
	window := runner.Cfg.BucketEpochs
	if window <= 0 {
		window = 100
	}
	prev := reg.Snapshot()
	for !runner.Done() {
		from := runner.Epoch()
		runner.Step(window)
		cur := reg.Snapshot()
		line := traceLine{
			Schema:  "dirq/epoch-trace/v1",
			From:    from,
			To:      runner.Epoch(),
			Metrics: windowMetrics(prev, cur),
		}
		if err := enc.Encode(line); err != nil {
			return nil, err
		}
		prev = cur
	}
	return runner.Snapshot(), nil
}

// traceKey renders one series' identity ({name} or {name{labels}}).
func traceKey(s telemetry.SeriesSnapshot) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, s.Labels[k]))
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// windowMetrics computes one window's movement: counters and histograms
// as deltas against the previous snapshot, gauges as absolute levels.
func windowMetrics(prev, cur []telemetry.SeriesSnapshot) map[string]float64 {
	base := make(map[string]telemetry.SeriesSnapshot, len(prev))
	for _, s := range prev {
		base[traceKey(s)] = s
	}
	out := make(map[string]float64, len(cur))
	for _, s := range cur {
		k := traceKey(s)
		p := base[k] // zero value when the series is new this window
		switch s.Kind {
		case telemetry.KindCounter:
			out[k] = s.Value - p.Value
		case telemetry.KindGauge:
			out[k] = s.Value
		case telemetry.KindHistogram:
			out[k+"_count"] = float64(s.Count - p.Count)
			out[k+"_sum"] = s.Sum - p.Sum
		}
	}
	return out
}
