// Command dirqsim runs a single DirQ simulation scenario and prints a
// summary: accuracy, update traffic, and cost relative to flooding.
//
// Usage:
//
//	dirqsim [-nodes 50] [-epochs 20000] [-coverage 0.4] [-mode fixed|atc]
//	        [-delta 5] [-rho 0.4] [-seed 1] [-hetero] [-loss 0] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	dirq "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirqsim: ")

	cfg := dirq.DefaultScenario()
	nodes := flag.Int("nodes", cfg.NumNodes, "network size including the root")
	epochs := flag.Int64("epochs", cfg.Epochs, "simulation length in epochs")
	coverage := flag.Float64("coverage", cfg.Coverage, "target fraction of nodes involved per query")
	mode := flag.String("mode", "fixed", "threshold mode: fixed or atc")
	delta := flag.Float64("delta", cfg.FixedPct, "fixed threshold in percent of sensor span")
	rho := flag.Float64("rho", cfg.Rho, "ATC update-budget fraction of the flooding headroom")
	seed := flag.Uint64("seed", cfg.Seed, "random seed")
	hetero := flag.Bool("hetero", false, "heterogeneous sensor complements")
	loss := flag.Float64("loss", 0, "packet loss probability")
	interval := flag.Int64("interval", cfg.QueryInterval, "epochs between queries")
	verbose := flag.Bool("v", false, "print per-bucket update counts")
	traceN := flag.Int("trace", 0, "print the last N protocol events")
	flag.Parse()

	cfg.NumNodes = *nodes
	cfg.Epochs = *epochs
	cfg.Coverage = *coverage
	cfg.FixedPct = *delta
	cfg.Rho = *rho
	cfg.Seed = *seed
	cfg.Heterogeneous = *hetero
	cfg.PacketLoss = *loss
	cfg.QueryInterval = *interval
	switch *mode {
	case "fixed":
		cfg.Mode = dirq.FixedDelta
	case "atc":
		cfg.Mode = dirq.ATC
	default:
		log.Fatalf("unknown -mode %q (want fixed or atc)", *mode)
	}

	if *traceN > 0 {
		cfg.TraceCapacity = *traceN
	}
	runner, err := dirq.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := runner.Run()

	fmt.Printf("DirQ simulation: %d nodes, %d epochs, coverage %.0f%%, mode %s",
		cfg.NumNodes, cfg.Epochs, cfg.Coverage*100, cfg.Mode)
	if cfg.Mode == dirq.FixedDelta {
		fmt.Printf(" (delta %.1f%%)", cfg.FixedPct)
	}
	fmt.Println()
	fmt.Printf("tree: depth %d, %d internal nodes\n", res.TreeDepth, res.TreeInternal)
	fmt.Printf("queries injected:        %d\n", res.QueriesInjected)
	fmt.Printf("should receive (mean):   %.1f%% of nodes\n", res.Summary.PctShould)
	fmt.Printf("did receive (mean):      %.1f%% of nodes\n", res.Summary.PctReceived)
	fmt.Printf("sources (mean):          %.1f%% of nodes\n", res.Summary.PctSources)
	fmt.Printf("overshoot (mean):        %.2f%% of nodes\n", res.Summary.MeanOvershoot)
	fmt.Printf("query cost:              %d units\n", res.QueryCost.Total())
	fmt.Printf("update cost:             %d units (%d messages)\n", res.UpdateCost.Total(), res.UpdateCost.Tx)
	fmt.Printf("estimate cost:           %d units\n", res.EstimateCost.Total())
	fmt.Printf("flooding baseline:       %d units\n", res.FloodCost)
	fmt.Printf("cost vs flooding:        %.1f%%  (paper: 45%%-55%% with ATC)\n", res.CostFraction*100)
	fmt.Printf("Umax/Hr reference:       %.0f update msgs\n", res.UmaxPerHour)

	if *verbose {
		fmt.Println("\nupdate messages per bucket:")
		for i, v := range res.UpdateTxPerBucket {
			fmt.Printf("  epoch %6d: %.0f\n", (int64(i)+1)*cfg.BucketEpochs, v)
		}
	}
	if *traceN > 0 && runner.Trace != nil {
		fmt.Printf("\nlast %d protocol events (%d total recorded):\n",
			*traceN, runner.Trace.Total())
		if err := runner.Trace.Dump(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	os.Exit(0)
}
