// Command dirqd serves live range queries over one or more continuously
// advancing DirQ sensor-network simulations ("shards").
//
// Each shard hosts an independent network (same knobs, consecutive
// seeds), advances it on its own goroutine, and admits client queries at
// epoch boundaries. Answers carry the matched nodes, accuracy against
// the ground truth at admission, and message cost against the flooding
// baseline.
//
// Usage:
//
//	dirqd [-addr :8080] [-shards 2] [-nodes 50] [-mode fixed|atc]
//	      [-delta 5] [-rho 0.4] [-seed 1] [-loss 0] [-hetero]
//	      [-horizon 0] [-step 25] [-settle 0] [-tick 2ms] [-trace 256]
//	      [-queue 256] [-maxbatch 0] [-route round-robin|least-loaded]
//	      [-chaos script.json]
//
// -queue bounds each shard's admission queue: a full queue sheds new
// queries with 429 Too Many Requests (plus a Retry-After hint) instead
// of queueing without limit. -maxbatch caps how many queued queries one
// scheduler pass admits (0 = the queue bound), smoothing latency under
// bursts. -route picks the placement of un-pinned queries: round-robin
// or least-loaded (smallest live admission backlog).
//
// -chaos loads a scenario-dynamics script (see internal/script and the
// README's "Scripting scenarios") and runs its timeline on every shard
// while queries are being served: node kills, sensor regime shifts and
// drift, threshold retuning, fired at exact epochs. Workload ops are
// rejected — the clients are the workload. Applied events land in each
// shard's admission log, so deterministic replay still holds.
//
// Endpoints:
//
//	POST /query         {"shard":"s0","type":"temperature","lo":10,"hi":25}
//	GET  /stats         live per-shard accuracy and cost-vs-flooding
//	                    counters, plus server build/uptime/runtime info
//	GET  /healthz       shard loop liveness
//	GET  /shards        hosted shard descriptions
//	GET  /metrics       telemetry registry in Prometheus text format
//	GET  /metrics.json  the same registry as JSON with p50/p90/p99
//
// The build version reported by /stats is stamped at link time with
// `-ldflags "-X main.version=..."`.
//
// SIGINT/SIGTERM shut down gracefully: in-flight queries are answered
// with 503 and the HTTP server drains before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dirq "repro"
	"repro/internal/script"
	"repro/internal/serve"
)

// version is stamped at link time: go build -ldflags "-X main.version=v7".
var version = "dev"

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirqd: ")

	base := dirq.DefaultScenario()
	addr := flag.String("addr", ":8080", "HTTP listen address")
	shards := flag.Int("shards", 2, "number of independent simulation shards")
	nodes := flag.Int("nodes", base.NumNodes, "network size per shard, including the root")
	mode := flag.String("mode", "fixed", "threshold mode: fixed or atc")
	delta := flag.Float64("delta", base.FixedPct, "fixed threshold in percent of sensor span")
	rho := flag.Float64("rho", base.Rho, "ATC update-budget fraction of the flooding headroom")
	seed := flag.Uint64("seed", 1, "base seed; shard i uses seed+i")
	loss := flag.Float64("loss", 0, "packet loss probability")
	hetero := flag.Bool("hetero", false, "heterogeneous sensor complements")
	horizon := flag.Int64("horizon", 0, "epoch horizon per shard (0 = effectively unbounded)")
	step := flag.Int64("step", 25, "max epochs advanced per scheduler pass")
	settle := flag.Int64("settle", 0, "epochs between admission and answer (0 = tree depth cap + 2)")
	tick := flag.Duration("tick", 2*time.Millisecond, "idle pacing between simulation passes")
	traceN := flag.Int("trace", 256, "protocol-event ring buffer per shard (0 = off)")
	queue := flag.Int("queue", 0, "admission queue bound per shard (0 = default 256); a full queue sheds with 429")
	maxBatch := flag.Int("maxbatch", 0, "max queued queries admitted per scheduler pass (0 = the queue bound)")
	route := flag.String("route", "round-robin", "un-pinned query placement: round-robin or least-loaded")
	chaosPath := flag.String("chaos", "", "scenario-dynamics script applied to every shard while serving")
	flag.Parse()

	routing, err := serve.ParseRouting(*route)
	if err != nil {
		log.Fatal(err)
	}

	var chaos []script.Event
	if *chaosPath != "" {
		sc, err := script.Load(*chaosPath)
		if err != nil {
			log.Fatal(err)
		}
		if sc.Workload != (script.Workload{}) {
			log.Fatalf("%s: the script's workload section has no effect under -chaos (clients are the workload); remove it", *chaosPath)
		}
		chaos = sc.Events
	}

	if *shards < 1 {
		log.Fatalf("-shards %d < 1", *shards)
	}
	base.NumNodes = *nodes
	base.FixedPct = *delta
	base.Rho = *rho
	base.PacketLoss = *loss
	base.Heterogeneous = *hetero
	base.TraceCapacity = *traceN
	switch *mode {
	case "fixed":
		base.Mode = dirq.FixedDelta
	case "atc":
		base.Mode = dirq.ATC
	default:
		log.Fatalf("unknown -mode %q (want fixed or atc)", *mode)
	}
	base.Epochs = *horizon
	if base.Epochs <= 0 {
		base.Epochs = 1 << 40 // ~3.5e4 years of epochs at 1 kHz: unbounded in practice
	}

	cfgs := make([]serve.ShardConfig, *shards)
	for i := range cfgs {
		sc := base
		sc.Seed = *seed + uint64(i)
		cfgs[i] = serve.ShardConfig{
			ID:           fmt.Sprintf("s%d", i),
			Scenario:     sc,
			StepEpochs:   *step,
			SettleEpochs: *settle,
			Tick:         *tick,
			QueueDepth:   *queue,
			MaxBatch:     *maxBatch,
			Chaos:        chaos,
			Clock:        func() int64 { return time.Now().UnixNano() },
		}
	}
	mgr, err := serve.NewManager(cfgs)
	if err != nil {
		log.Fatal(err)
	}
	mgr.SetRouting(routing)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := mgr.Start(ctx); err != nil {
		log.Fatal(err)
	}

	handler := serve.NewHandler(mgr, serve.ServerInfo{Version: version, Now: time.Now})
	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("%s: %d shard(s) of %d nodes (mode %s), serving on %s (metrics at /metrics)",
		version, *shards, *nodes, base.Mode, *addr)

	select {
	case <-ctx.Done():
		log.Print("signal received, shutting down")
	case err := <-errc:
		log.Printf("HTTP server failed: %v", err)
		mgr.Stop()
		os.Exit(1)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("HTTP shutdown: %v", err)
	}
	mgr.Stop()
	for _, st := range mgr.Stats() {
		log.Printf("shard %s: epoch %d, %d queries served, cost vs flooding %.1f%%",
			st.ID, st.Epoch, st.QueriesServed, st.CostFraction*100)
	}
	log.Print("bye")
}
