// Command dirqexp regenerates the paper's evaluation artefacts: Fig. 5(a),
// Fig. 5(b), Fig. 6, Fig. 7, the §5 analytical table, and the headline
// cost/overshoot summary.
//
// Usage:
//
//	dirqexp -exp all                 # every artefact at paper scale
//	dirqexp -exp fig6,fig7 -quick    # selected artefacts, reduced scale
//	dirqexp -exp headline -csv       # CSV instead of aligned text
//	dirqexp -exp all -workers 4      # cap the simulation worker pool
//
// Independent simulation runs execute concurrently (one worker per CPU by
// default); output is bit-identical whatever the worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	dirq "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirqexp: ")

	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all' ("+
		strings.Join(dirq.ExperimentIDs(), ", ")+")")
	quick := flag.Bool("quick", false, "reduced scale (2 000 epochs instead of 20 000)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text (with -exp all, runs experiments one after another; sweeps still parallelize)")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "max concurrent simulation runs (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	opts := dirq.FullScale()
	if *quick {
		opts = dirq.QuickScale()
	}
	opts.Seed = *seed
	opts.Workers = *workers

	if *exp == "all" && !*csv {
		// RunAll executes whole experiments in parallel (bounded by
		// -workers across both pool levels) and streams the tables in
		// canonical order.
		if err := dirq.AllExperiments(opts, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	ids := dirq.ExperimentIDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tb, err := dirq.Experiment(id, opts)
		if err != nil {
			log.Fatal(err)
		}
		var werr error
		if *csv {
			fmt.Printf("# %s\n", tb.Title)
			werr = tb.CSV(os.Stdout)
		} else {
			werr = tb.Render(os.Stdout)
		}
		if werr != nil {
			log.Fatal(werr)
		}
	}
}
