// Command dirqbench measures the repository's hot paths and records the
// results as a machine-readable BENCH_<rev>.json, so the project's
// performance trajectory is data rather than anecdote.
//
// It runs four kinds of benchmarks:
//
//   - workloads: complete simulation runs (the paper's headline setup under
//     fixed-δ, ATC and the flooding baseline) and experiment regenerations
//     (fig6, headline table), reporting throughput as epochs/sec and
//     simulated node-epochs/sec alongside ns/op and allocs/op;
//   - scale: the large-N frontier — fixed-δ runs at 50 through 100 000
//     nodes. Scale entries time the steady state only (construction runs
//     under a stopped timer) and record construction separately as
//     setup_ns_per_op plus bytes_per_node, the built simulation's live
//     heap per node. Siblings: an ungated ("naive") run at 1000 nodes
//     whose ratio to the gated run is the activity-gating speedup, and
//     sharded ("-s4") runs at 5000+ nodes whose ratio to the serial run
//     is the intra-run sharding speedup (or, on a single-core host, its
//     merge overhead);
//   - qps: the query-path throughput frontier — concurrent in-process
//     clients against a live serve.Manager across a (shards ×
//     settle-window × clients) grid, recording queries/sec, p50/p99
//     submit-to-answer latency, and error/shed counts (see qps.go);
//   - substrate micro-benches: event-queue schedule/dispatch, radio
//     broadcast, one LMAC TDMA frame, range-table observation, and the
//     amortized cost of one full-stack scenario epoch.
//
// Usage:
//
//	dirqbench [-quick] [-n 3] [-bench regexp] [-rev auto] [-out path]
//	dirqbench -bench 'scale/fixed-1000' -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	dirqbench -check BENCH_x.json   # validate a previously written file
//	dirqbench -list                 # print benchmark names and exit
//	dirqbench -compare BENCH_base.json [-tolerance 0.30] [candidate.json]
//
// -cpuprofile / -memprofile write pprof profiles covering the selected
// benchmarks (use -bench to focus on one), so perf work starts from a
// profile instead of a guess: `go tool pprof cpu.pb.gz`.
//
// -compare is the regression gate CI runs against the committed baseline:
// it loads the baseline, obtains a candidate (the positional file if
// given, otherwise a fresh measurement at the baseline's own scale), and
// compares epochs/sec for every workload and scale benchmark present in
// both at the same nodes/epochs scale, plus — for qps/ grid points at
// identical (shards, settle, clients) coordinates — a qps floor and a
// p99-latency ceiling derived from the same tolerance. Scale benchmarks
// additionally gate on memory: bytes_per_node may not exceed the
// baseline's by more than the tolerance (plus a small absolute slack),
// and at 5000+ nodes it may never exceed the 4 KB/node absolute budget
// regardless of what the baseline recorded. If anything
// regresses by more than -tolerance (fractional, default 0.30) — or
// nothing is comparable — the exit status is nonzero. Substrate
// micro-benches are reported for context but do not gate: they are too
// fast to be stable across CI hardware.
//
// Each benchmark executes -n times through testing.Benchmark; the fastest
// run is reported, with its own allocation stats (ns/op, bytes/op and
// allocs/op always come from the same run, so entries stay internally
// consistent however warm caches and pools are when that run happens).
// -quick shrinks the workloads (30 nodes, 800 epochs) so CI can
// keep BENCH_ci.json fresh on every push; full scale is the paper's §7
// setup (50 nodes, 20 000 epochs).
//
// The output schema is documented in PERFORMANCE.md and validated by
// -check (also used by CI to fail on malformed output).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lmac"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// SchemaID identifies the BENCH_*.json format; bump on breaking changes.
const SchemaID = "dirq/bench/v1"

// File is the top-level BENCH_*.json document.
type File struct {
	Schema    string `json:"schema"`
	Rev       string `json:"rev"`
	Timestamp string `json:"timestamp"` // RFC 3339, UTC
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GoMaxProcs is runtime.GOMAXPROCS(0) at measurement time, alongside
	// CPUs (the host's runtime.NumCPU): together they make multi-core
	// claims — e.g. the ≥2.5x s4-vs-serial sharding target — checkable
	// from the artifact alone. Absent in files written before rev pr9.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// MemTotalBytes is the host's physical memory (MemTotal from
	// /proc/meminfo; 0 where unavailable). Recorded so the bytes-per-node
	// column can be read against what the measuring host could actually
	// hold — a 2.6 GB 100k-node footprint means something different on an
	// 8 GB runner than on a 256 GB build box. Absent before rev pr10.
	MemTotalBytes int64   `json:"mem_total_bytes,omitempty"`
	Quick         bool    `json:"quick"`
	Iterations    int     `json:"iterations"`
	Benchmarks    []Entry `json:"benchmarks"`
}

// Entry is one benchmark's result. Nodes/Epochs (and the derived
// throughput fields) are present only for workload benches that simulate
// a network over time.
type Entry struct {
	Name        string  `json:"name"`
	Group       string  `json:"group"` // "workload", "scale", "qps" or "micro"
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Runs        int     `json:"runs"`

	Nodes            int     `json:"nodes,omitempty"`
	Epochs           int64   `json:"epochs,omitempty"`
	EpochsPerSec     float64 `json:"epochs_per_sec,omitempty"`
	NodeEpochsPerSec float64 `json:"node_epochs_per_sec,omitempty"`

	// Setup/steady split, present only for the scale/ group. Scale
	// entries time the steady state alone (NsPerOp excludes construction,
	// which runs under a stopped timer), so EpochsPerSec measures the
	// per-epoch engine and not the build. SetupNsPerOp is one untimed
	// construction of the same config, and BytesPerNode is its live heap
	// footprint after a warmup step, per node — the number the large-N
	// budget gate bounds. Absent in files written before rev pr10.
	SetupNsPerOp float64 `json:"setup_ns_per_op,omitempty"`
	BytesPerNode float64 `json:"bytes_per_node,omitempty"`

	// Query-path fields, present only for the qps/ group: the grid
	// coordinates (Shards × SettleEpochs × Clients), answered queries
	// per second of wall time, submit-to-answer latency percentiles, and
	// how many submissions errored or were shed with ErrOverloaded. For
	// qps entries NsPerOp is the mean submit-to-answer latency.
	Shards       int     `json:"shards,omitempty"`
	Clients      int     `json:"clients,omitempty"`
	SettleEpochs int64   `json:"settle_epochs,omitempty"`
	QPS          float64 `json:"qps,omitempty"`
	P50Ms        float64 `json:"p50_ms,omitempty"`
	P99Ms        float64 `json:"p99_ms,omitempty"`
	QueryErrors  int64   `json:"query_errors,omitempty"`
	QueriesShed  int64   `json:"queries_shed,omitempty"`

	// Telemetry carries informational counter totals (and histogram
	// counts) from one extra telemetry-instrumented run of the same
	// workload: where the work goes per benchmark, not a timing input.
	Telemetry map[string]int64 `json:"telemetry,omitempty"`
}

// spec declares one benchmark.
type spec struct {
	name   string
	group  string
	nodes  int   // simulated network size (workloads only)
	epochs int64 // simulated horizon (workloads only)
	fn     func(b *testing.B)
	// snap, when set, produces the Entry's informational telemetry
	// totals from one non-timed instrumented run.
	snap func() (map[string]int64, error)
	// qps, when set, replaces fn: the spec is a query-path grid point
	// measured by its own wall-clock harness (see qps.go), and point
	// carries its grid coordinates into the Entry.
	qps   func() (qpsResult, error)
	point qpsPoint
	// setup, when set (scale benches), measures one untimed construction:
	// wall time and live bytes per node for the Entry's setup columns.
	setup func() (nsPerOp, bytesPerNode float64, err error)
}

// scale returns the benchmark scale: the paper's §7 setup, or the reduced
// -quick variant.
func scale(quick bool) (nodes int, epochs int64) {
	if quick {
		return 30, 800
	}
	return 50, 20000
}

// scalePoints are the large-N workload sizes. Small rungs keep the
// original constant-node-epochs sizing (1M full scale); the 25k and 100k
// rungs run much longer horizons (12.5M and 60M node-epochs) — at their
// old 40 and 10 epochs those rungs spent most of their wall time
// constructing the network, so their "throughput" mostly measured the
// build. With steady state timed on its own (runScale) and these
// horizons, the steady phase is ≥ 80% of each full-scale iteration's
// wall time and the column actually measures epochs.
var scalePoints = []struct {
	nodes          int
	epochs         int64
	quickEpochs    int64
	includeNaive   bool
	includeSharded bool // add a Shards=4 sibling ("-s4")
}{
	{nodes: 50, epochs: 20000, quickEpochs: 3000},
	{nodes: 250, epochs: 4000, quickEpochs: 600},
	{nodes: 1000, epochs: 1000, quickEpochs: 150, includeNaive: true},
	{nodes: 5000, epochs: 1000, quickEpochs: 30, includeSharded: true},
	{nodes: 25000, epochs: 500, quickEpochs: 20, includeSharded: true},
	{nodes: 100000, epochs: 600, quickEpochs: 5, includeSharded: true},
}

// scaleScenario builds one large-N workload config: constant node density
// (scenario.ScaleDefault), fixed-δ mode, the paper's query cadence.
func scaleScenario(nodes int, epochs int64, naive bool) scenario.Config {
	cfg := scenario.ScaleDefault(nodes)
	cfg.Epochs = epochs
	cfg.DisableActivityGating = naive
	return cfg
}

// scenarioCfg builds the workload scenario at the requested scale.
func scenarioCfg(quick bool, mode scenario.ThresholdMode) scenario.Config {
	cfg := scenario.Default()
	cfg.NumNodes, cfg.Epochs = scale(quick)
	cfg.Mode = mode
	return cfg
}

// measureSetup builds cfg once, untimed, and reports the construction
// wall time plus the built simulation's live heap per node. The footprint
// is the GC-settled HeapAlloc delta around a build plus one warmup epoch,
// so transient construction garbage does not count against the budget but
// every retained per-node structure (windows, escape calendars, range
// tables, MAC frame state, event queue) does.
func measureSetup(cfg scenario.Config) (nsPerOp, bytesPerNode float64, err error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	r, err := scenario.Build(cfg)
	if err != nil {
		return 0, 0, err
	}
	nsPerOp = float64(time.Since(t0).Nanoseconds())
	r.Start()
	r.Step(1)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	live := float64(m1.HeapAlloc) - float64(m0.HeapAlloc)
	runtime.KeepAlive(r)
	if cfg.NumNodes > 0 && live > 0 {
		bytesPerNode = live / float64(cfg.NumNodes)
	}
	return nsPerOp, bytesPerNode, nil
}

// telemetrySnapshot runs cfg once with a fresh registry and flattens the
// counters (and histogram counts) into the Entry's informational map.
func telemetrySnapshot(cfg scenario.Config) (map[string]int64, error) {
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	if _, err := scenario.Run(cfg); err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for _, s := range reg.Snapshot() {
		key := s.Name
		if len(s.Labels) > 0 {
			keys := make([]string, 0, len(s.Labels))
			for k := range s.Labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%s=%q", k, s.Labels[k]))
			}
			key += "{" + strings.Join(parts, ",") + "}"
		}
		switch s.Kind {
		case telemetry.KindHistogram:
			out[key+"_count"] = s.Count
		default:
			out[key] = int64(s.Value)
		}
	}
	return out, nil
}

// specs assembles the benchmark set. Workload and scale benches run with
// a telemetry registry attached, so the recorded throughput is the
// instrumented build's — the overhead the acceptance gate bounds.
func specs(quick bool) []spec {
	nodes, epochs := scale(quick)
	expOpts := experiments.Options{Seed: 1, NumNodes: nodes, Epochs: epochs, Workers: 1,
		Telemetry: telemetry.NewRegistry()}

	runScenario := func(b *testing.B, mode scenario.ThresholdMode, flood bool) {
		reg := telemetry.NewRegistry()
		for i := 0; i < b.N; i++ {
			cfg := scenarioCfg(quick, mode)
			cfg.DisseminateByFlooding = flood
			cfg.Telemetry = reg
			if _, err := scenario.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}

	// runScale times the steady state alone: construction happens under a
	// stopped timer (on a recycled engine, as the sweeps do), so the
	// recorded epochs/sec is the per-epoch engine's and a large-N point is
	// not flattered or damned by its one-off build. Setup cost is measured
	// separately (measureSetup) and recorded in its own columns.
	runScale := func(b *testing.B, cfg scenario.Config) {
		reg := telemetry.NewRegistry()
		cfg.Telemetry = reg
		engine := sim.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r, err := scenario.BuildWithEngine(cfg, engine)
			if err != nil {
				b.Fatal(err)
			}
			// GC-settle before timing so each rung's GC behaviour depends
			// only on its own live set, not on how much garbage earlier
			// specs left behind (a large inherited heap raises the GC
			// trigger and flatters whichever small rung runs next).
			runtime.GC()
			b.StartTimer()
			r.Run()
		}
	}
	var scaleSpecs []spec
	for _, sp := range scalePoints {
		ep := sp.epochs
		if quick {
			ep = sp.quickEpochs
		}
		cfg := scaleScenario(sp.nodes, ep, false)
		scaleSpecs = append(scaleSpecs, spec{
			// At full scale the 50-node point equals headline/fixed; it is
			// measured again deliberately so the scale column is a single
			// self-contained family (and at -quick the two differ).
			name: fmt.Sprintf("scale/fixed-%d", sp.nodes), group: "scale",
			nodes: sp.nodes, epochs: ep,
			fn:    func(b *testing.B) { runScale(b, cfg) },
			snap:  func() (map[string]int64, error) { return telemetrySnapshot(cfg) },
			setup: func() (float64, float64, error) { return measureSetup(cfg) },
		})
		if sp.includeNaive {
			ncfg := scaleScenario(sp.nodes, ep, true)
			scaleSpecs = append(scaleSpecs, spec{
				// The ungated build at the same scale: the ratio to its
				// gated sibling is the activity-gating speedup the
				// acceptance gate tracks.
				name: fmt.Sprintf("scale/naive-%d", sp.nodes), group: "scale",
				nodes: sp.nodes, epochs: ep,
				fn:    func(b *testing.B) { runScale(b, ncfg) },
				snap:  func() (map[string]int64, error) { return telemetrySnapshot(ncfg) },
				setup: func() (float64, float64, error) { return measureSetup(ncfg) },
			})
		}
		if sp.includeSharded {
			scfg := scaleScenario(sp.nodes, ep, false)
			scfg.Shards = 4
			scaleSpecs = append(scaleSpecs, spec{
				// The 4-shard engine at the same scale: byte-identical
				// output, so the ratio to its serial sibling is purely the
				// intra-run sharding speedup (multi-core) or merge overhead
				// (single-core). PERFORMANCE.md "Sharding" documents how to
				// read these entries.
				name: fmt.Sprintf("scale/fixed-%d-s4", sp.nodes), group: "scale",
				nodes: sp.nodes, epochs: ep,
				fn:    func(b *testing.B) { runScale(b, scfg) },
				snap:  func() (map[string]int64, error) { return telemetrySnapshot(scfg) },
				setup: func() (float64, float64, error) { return measureSetup(scfg) },
			})
		}
	}

	headlineSnap := func(mode scenario.ThresholdMode, flood bool) func() (map[string]int64, error) {
		return func() (map[string]int64, error) {
			cfg := scenarioCfg(quick, mode)
			cfg.DisseminateByFlooding = flood
			return telemetrySnapshot(cfg)
		}
	}

	all := append([]spec{
		{name: "headline/fixed", group: "workload", nodes: nodes, epochs: epochs,
			fn:   func(b *testing.B) { runScenario(b, scenario.FixedDelta, false) },
			snap: headlineSnap(scenario.FixedDelta, false)},
		{name: "headline/atc", group: "workload", nodes: nodes, epochs: epochs,
			fn:   func(b *testing.B) { runScenario(b, scenario.ATC, false) },
			snap: headlineSnap(scenario.ATC, false)},
		{name: "headline/flood", group: "workload", nodes: nodes, epochs: epochs,
			fn:   func(b *testing.B) { runScenario(b, scenario.FixedDelta, true) },
			snap: headlineSnap(scenario.FixedDelta, true)},
		{name: "experiments/fig6", group: "workload", nodes: nodes, epochs: epochs,
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Fig6(expOpts, 0.4); err != nil {
						b.Fatal(err)
					}
				}
			}},
		{name: "experiments/headline", group: "workload", nodes: nodes, epochs: epochs,
			fn: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Headline(expOpts); err != nil {
						b.Fatal(err)
					}
				}
			}},
		{name: "scenario/epoch", group: "workload", nodes: nodes, epochs: 1,
			fn: func(b *testing.B) {
				// Amortized per-epoch cost of the full stack: horizon = b.N.
				cfg := scenarioCfg(quick, scenario.FixedDelta)
				cfg.Epochs = int64(b.N) + 100
				r, err := scenario.Build(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				r.Run()
			}},
		{name: "sim/schedule-dispatch", group: "micro",
			fn: func(b *testing.B) {
				e := sim.NewEngine()
				rng := sim.NewRNG(1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Schedule(e.Now()+sim.Time(rng.Intn(64)+1), func() {})
					if e.Pending() > 1024 {
						for e.Pending() > 0 {
							e.Step()
						}
					}
				}
			}},
		{name: "radio/broadcast", group: "micro",
			fn: func(b *testing.B) {
				g, _, err := topology.BuildKaryTree(4, 4)
				if err != nil {
					b.Fatal(err)
				}
				ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ch.Broadcast(topology.Root, radio.ClassFlood, nil)
				}
			}},
		{name: "lmac/frame", group: "micro",
			fn: func(b *testing.B) {
				rng := sim.NewRNG(4)
				g, err := topology.PlaceRandom(topology.DefaultPlacement(), rng)
				if err != nil {
					b.Fatal(err)
				}
				engine := sim.NewEngine()
				ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
				mac, err := lmac.New(engine, ch)
				if err != nil {
					b.Fatal(err)
				}
				mac.Init()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mac.RunFrame()
				}
			}},
		{name: "core/range-observe", group: "micro",
			fn: func(b *testing.B) {
				rt := core.NewRangeTable()
				rng := sim.NewRNG(2)
				vals := make([]float64, 1024)
				for i := range vals {
					vals[i] = rng.Range(0, 50)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rt.ObserveReading(vals[i&1023], 1.5)
				}
			}},
	}, scaleSpecs...)
	return append(all, qpsSpecs(quick)...)
}

// measure runs one spec n times and keeps the fastest run (for qps
// specs: the run with the highest throughput, kept whole so qps and its
// latency percentiles describe the same run).
func measure(s spec, n int) Entry {
	e := Entry{Name: s.name, Group: s.group, Runs: n}
	if s.qps != nil {
		var best qpsResult
		for run := 0; run < n; run++ {
			r, err := s.qps()
			if err != nil {
				log.Fatalf("%s: %v", s.name, err)
			}
			if run == 0 || r.qps() > best.qps() {
				best = r
			}
		}
		e.NsPerOp = best.meanNs
		e.Shards = s.point.shards
		e.Clients = s.point.clients
		e.SettleEpochs = s.point.settle
		e.QPS = best.qps()
		e.P50Ms = float64(best.p50.Nanoseconds()) / 1e6
		e.P99Ms = float64(best.p99.Nanoseconds()) / 1e6
		e.QueryErrors = best.errs
		e.QueriesShed = best.shed
		return e
	}
	for run := 0; run < n; run++ {
		r := testing.Benchmark(s.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		// Keep the fastest run whole — its time AND its allocation stats —
		// so an entry is one run's self-consistent measurement (pooled
		// paths allocate less once warm, so stats can vary across runs).
		if run == 0 || ns < e.NsPerOp {
			e.NsPerOp = ns
			e.BytesPerOp = r.AllocedBytesPerOp()
			e.AllocsPerOp = r.AllocsPerOp()
		}
	}
	if s.nodes > 0 {
		e.Nodes = s.nodes
		e.Epochs = s.epochs
		e.EpochsPerSec = float64(s.epochs) * 1e9 / e.NsPerOp
		e.NodeEpochsPerSec = e.EpochsPerSec * float64(s.nodes)
	}
	if s.setup != nil {
		ns, bpn, err := s.setup()
		if err != nil {
			log.Fatalf("%s: setup measurement: %v", s.name, err)
		}
		e.SetupNsPerOp = ns
		e.BytesPerNode = bpn
	}
	return e
}

// memTotalBytes reports the host's physical memory (MemTotal from
// /proc/meminfo), or 0 where the file is absent or unparsable (non-Linux
// hosts): the env block then simply omits the field.
func memTotalBytes() int64 {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// detectRev resolves the revision tag for the output file name: the short
// git commit hash when available, "local" otherwise.
func detectRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "local"
	}
	return strings.TrimSpace(string(out))
}

// Validate checks a decoded bench file against the schema invariants.
// This is the contract CI enforces on BENCH_ci.json.
func (f *File) Validate() error {
	if f.Schema != SchemaID {
		return fmt.Errorf("schema %q, want %q", f.Schema, SchemaID)
	}
	if f.Rev == "" {
		return fmt.Errorf("empty rev")
	}
	if _, err := time.Parse(time.RFC3339, f.Timestamp); err != nil {
		return fmt.Errorf("bad timestamp %q: %v", f.Timestamp, err)
	}
	if f.Iterations < 1 {
		return fmt.Errorf("iterations %d < 1", f.Iterations)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks")
	}
	seen := map[string]bool{}
	for i, b := range f.Benchmarks {
		switch {
		case b.Name == "":
			return fmt.Errorf("benchmark %d: empty name", i)
		case seen[b.Name]:
			return fmt.Errorf("benchmark %d: duplicate name %q", i, b.Name)
		case b.Group != "workload" && b.Group != "micro" && b.Group != "scale" && b.Group != "qps":
			return fmt.Errorf("benchmark %q: unknown group %q", b.Name, b.Group)
		case b.NsPerOp <= 0:
			return fmt.Errorf("benchmark %q: ns_per_op %v <= 0", b.Name, b.NsPerOp)
		case b.AllocsPerOp < 0 || b.BytesPerOp < 0:
			return fmt.Errorf("benchmark %q: negative allocation stats", b.Name)
		case b.Group != "micro" && b.Nodes > 0 && b.EpochsPerSec <= 0:
			return fmt.Errorf("benchmark %q: missing throughput", b.Name)
		case b.Group == "scale" && (b.Nodes <= 0 || b.Epochs <= 0):
			return fmt.Errorf("benchmark %q: scale bench without nodes/epochs", b.Name)
		case b.Group == "qps" && (b.Shards <= 0 || b.Clients <= 0 || b.SettleEpochs <= 0):
			return fmt.Errorf("benchmark %q: qps bench without grid coordinates", b.Name)
		case b.Group == "qps" && b.QPS <= 0:
			return fmt.Errorf("benchmark %q: qps bench without qps", b.Name)
		case b.Group == "qps" && (b.P50Ms <= 0 || b.P99Ms <= 0):
			return fmt.Errorf("benchmark %q: qps bench without latency percentiles", b.Name)
		case b.Group == "qps" && b.P99Ms < b.P50Ms:
			return fmt.Errorf("benchmark %q: p99 %v below p50 %v", b.Name, b.P99Ms, b.P50Ms)
		case b.Group != "qps" && b.QPS != 0:
			return fmt.Errorf("benchmark %q: qps fields on a %s bench", b.Name, b.Group)
		case b.SetupNsPerOp < 0 || b.BytesPerNode < 0:
			return fmt.Errorf("benchmark %q: negative setup stats", b.Name)
		case b.Group != "scale" && (b.SetupNsPerOp != 0 || b.BytesPerNode != 0):
			return fmt.Errorf("benchmark %q: setup fields on a %s bench", b.Name, b.Group)
		}
		seen[b.Name] = true
	}
	return nil
}

// loadFile reads and validates one BENCH_*.json.
func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: not valid JSON: %v", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

func check(path string) error {
	f, err := loadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: valid (%s, rev %s, %d benchmarks)\n", path, f.Schema, f.Rev, len(f.Benchmarks))
	return nil
}

// measureAll runs every spec, logging progress to stderr.
func measureAll(all []spec, iters int) []Entry {
	var out []Entry
	for _, s := range all {
		fmt.Fprintf(os.Stderr, "running %-24s ", s.name)
		e := measure(s, iters)
		var line string
		if e.QPS > 0 {
			line = fmt.Sprintf("%12.0f qps    p50 %7.2f ms  p99 %7.2f ms  errors %d  shed %d",
				e.QPS, e.P50Ms, e.P99Ms, e.QueryErrors, e.QueriesShed)
		} else {
			line = fmt.Sprintf("%12.0f ns/op %8d allocs/op", e.NsPerOp, e.AllocsPerOp)
			if e.EpochsPerSec > 0 {
				line += fmt.Sprintf("  %10.0f epochs/s  %12.0f node-epochs/s",
					e.EpochsPerSec, e.NodeEpochsPerSec)
			}
			if e.BytesPerNode > 0 {
				line += fmt.Sprintf("  setup %6.0f ms  %6.0f B/node",
					e.SetupNsPerOp/1e6, e.BytesPerNode)
			}
		}
		fmt.Fprintln(os.Stderr, line)
		if s.snap != nil {
			if t, err := s.snap(); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry snapshot for %s failed: %v\n", s.name, err)
			} else {
				e.Telemetry = t
			}
		}
		out = append(out, e)
	}
	return out
}

// p99SlackMs is the absolute grace on the qps p99-latency ceiling: a
// candidate fails the p99 axis only when it exceeds both the fractional
// ceiling and the baseline by this many milliseconds. Measured p99 on a
// busy grid point moves in ~10 ms scheduler-quantum steps run to run;
// the slack absorbs that while still catching the order-of-magnitude
// blowups an unbounded admission queue produces under load.
const p99SlackMs = 50

// Scale benches gate on memory as well as speed. bytesPerNodeBudget is
// the absolute live-heap budget per node (the ladder toward 1M nodes in
// PERFORMANCE.md is priced against it): any scale point of at least
// bytesPerNodeBudgetMinNodes nodes whose candidate bytes_per_node exceeds
// it fails the gate outright, baseline or no baseline. Smaller rungs are
// exempt — fixed per-simulation overhead (engine, registry, channel)
// amortized over a handful of nodes dwarfs the true per-node state.
// bpnSlackBytes is the absolute grace on the relative axis, mirroring
// p99SlackMs: GC-settled footprints wobble a few cache lines run to run,
// and a tight baseline must not turn that wobble into a red gate.
const (
	bytesPerNodeBudget         = 4096
	bytesPerNodeBudgetMinNodes = 5000
	bpnSlackBytes              = 256
)

// compare gates a candidate measurement against a baseline file: any
// workload benchmark whose epochs/sec regressed by more than tolerance
// fails the run. candPath "" means measure a fresh candidate now, at the
// baseline's own scale, so the two sides always simulate the same work.
func compare(basePath, candPath string, tolerance float64, iters int) error {
	if tolerance <= 0 || tolerance >= 1 {
		return fmt.Errorf("-tolerance %v outside (0,1)", tolerance)
	}
	base, err := loadFile(basePath)
	if err != nil {
		return err
	}
	var cand []Entry
	candName := candPath
	if candPath != "" {
		cf, err := loadFile(candPath)
		if err != nil {
			return err
		}
		cand = cf.Benchmarks
	} else {
		candName = "fresh run"
		fmt.Fprintf(os.Stderr, "measuring candidate at baseline scale (quick=%v)\n", base.Quick)
		cand = measureAll(specs(base.Quick), iters)
	}
	byName := map[string]Entry{}
	for _, e := range cand {
		byName[e.Name] = e
	}

	fmt.Printf("bench gate: candidate (%s) vs baseline %s (rev %s), tolerance %.0f%%\n",
		candName, basePath, base.Rev, tolerance*100)
	compared, regressed, missing := 0, 0, 0
	sumRatio := 0.0
	for _, b := range base.Benchmarks {
		c, ok := byName[b.Name]
		switch {
		case !ok:
			// A gating benchmark that vanished from the candidate is a
			// failure, not a skip: a renamed or dropped spec must come with
			// a regenerated baseline, or the gate silently loses coverage.
			if b.Group == "workload" || b.Group == "scale" || b.Group == "qps" {
				fmt.Printf("  %-24s MISSING from candidate\n", b.Name)
				missing++
			} else {
				fmt.Printf("  %-24s SKIP (not in candidate)\n", b.Name)
			}
		case b.Group == "qps":
			// Query-path grid points gate on two axes at once: a qps floor
			// ((1-t) of baseline qps) and a p99-latency ceiling (baseline
			// p99 over (1-t), plus an absolute p99SlackMs grace — a
			// single run's p99 at millisecond scale swings by whole
			// scheduler quanta, so a lucky sub-ms baseline must not turn
			// ordinary jitter into a red gate; a real queueing regression
			// blows past both bounds). Comparable only at identical grid
			// coordinates.
			switch {
			case c.Shards != b.Shards || c.Clients != b.Clients || c.SettleEpochs != b.SettleEpochs:
				fmt.Printf("  %-24s SKIP (grid s%d-w%d-c%d vs baseline s%d-w%d-c%d)\n", b.Name,
					c.Shards, c.SettleEpochs, c.Clients, b.Shards, b.SettleEpochs, b.Clients)
			case c.QPS <= 0 || b.QPS <= 0:
				fmt.Printf("  %-24s SKIP (no qps recorded)\n", b.Name)
			default:
				compared++
				ratio := c.QPS / b.QPS
				sumRatio += ratio
				var bad []string
				if ratio < 1-tolerance {
					bad = append(bad, "qps")
				}
				if b.P99Ms > 0 && c.P99Ms > b.P99Ms/(1-tolerance) && c.P99Ms > b.P99Ms+p99SlackMs {
					bad = append(bad, "p99")
				}
				verdict := "ok"
				if len(bad) > 0 {
					verdict = "REGRESSION(" + strings.Join(bad, "+") + ")"
					regressed++
				}
				fmt.Printf("  %-24s %s  %9.0f -> %9.0f qps (%+.1f%%)  p99 %7.2f -> %7.2f ms\n",
					b.Name, verdict, b.QPS, c.QPS, (ratio-1)*100, b.P99Ms, c.P99Ms)
			}
		case (b.Group != "workload" && b.Group != "scale") || b.EpochsPerSec <= 0:
			// Micro-benches: context only.
			fmt.Printf("  %-24s info  %8.0f -> %8.0f ns/op\n", b.Name, b.NsPerOp, c.NsPerOp)
		case c.Nodes != b.Nodes || c.Epochs != b.Epochs:
			fmt.Printf("  %-24s SKIP (scale %dx%d vs baseline %dx%d)\n",
				b.Name, c.Nodes, c.Epochs, b.Nodes, b.Epochs)
		case c.EpochsPerSec <= 0:
			fmt.Printf("  %-24s SKIP (candidate has no throughput)\n", b.Name)
		default:
			compared++
			ratio := c.EpochsPerSec / b.EpochsPerSec
			sumRatio += ratio
			var bad []string
			if ratio < 1-tolerance {
				bad = append(bad, "epochs/s")
			}
			if b.Group == "scale" && c.BytesPerNode > 0 {
				// Memory axes: relative to baseline (fractional ceiling plus
				// absolute slack, like the qps p99 axis), and the hard
				// per-node budget at large N.
				if b.BytesPerNode > 0 && c.BytesPerNode > b.BytesPerNode/(1-tolerance) &&
					c.BytesPerNode > b.BytesPerNode+bpnSlackBytes {
					bad = append(bad, "bytes/node")
				}
				if c.Nodes >= bytesPerNodeBudgetMinNodes && c.BytesPerNode > bytesPerNodeBudget {
					bad = append(bad, "budget")
				}
			}
			verdict := "ok"
			if len(bad) > 0 {
				verdict = "REGRESSION(" + strings.Join(bad, "+") + ")"
				regressed++
			}
			line := fmt.Sprintf("  %-24s %s  %9.0f -> %9.0f epochs/s (%+.1f%%)",
				b.Name, verdict, b.EpochsPerSec, c.EpochsPerSec, (ratio-1)*100)
			if b.BytesPerNode > 0 || c.BytesPerNode > 0 {
				line += fmt.Sprintf("  %6.0f -> %6.0f B/node", b.BytesPerNode, c.BytesPerNode)
			}
			fmt.Println(line)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no comparable workload/scale/qps benchmarks between candidate and %s — the gate would be vacuous", basePath)
	}
	fmt.Printf("mean throughput delta vs baseline: %+.1f%% across %d benchmarks\n",
		(sumRatio/float64(compared)-1)*100, compared)
	if missing > 0 {
		return fmt.Errorf("%d gating benchmarks from %s are missing in the candidate — regenerate and commit the baseline alongside the spec change", missing, basePath)
	}
	if regressed > 0 {
		return fmt.Errorf("%d of %d workload/scale/qps benchmarks regressed more than %.0f%% vs %s",
			regressed, compared, tolerance*100, basePath)
	}
	fmt.Printf("gate passed: %d workload/scale/qps benchmarks within %.0f%% of baseline\n", compared, tolerance*100)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirqbench: ")

	quick := flag.Bool("quick", false, "reduced scale (30 nodes, 800 epochs) for CI")
	iters := flag.Int("n", 3, "times to run each benchmark (fastest run is reported)")
	benchRe := flag.String("bench", "", "only run benchmarks matching this regexp")
	rev := flag.String("rev", "auto", "revision tag for the output file (auto = git short hash)")
	out := flag.String("out", "", "output path (default BENCH_<rev>.json)")
	checkPath := flag.String("check", "", "validate an existing bench file and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the selected benchmarks (combine with -bench to focus on one)")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected benchmarks")
	comparePath := flag.String("compare", "", "baseline bench file: gate a candidate (positional arg, or a fresh run) against it")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional epochs/sec regression for -compare")
	list := flag.Bool("list", false, "list benchmark names and exit")
	flag.Parse()

	if *checkPath != "" {
		if err := check(*checkPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *comparePath != "" {
		if *iters < 1 {
			log.Fatal("-n must be >= 1")
		}
		if err := compare(*comparePath, flag.Arg(0), *tolerance, *iters); err != nil {
			log.Fatal(err)
		}
		return
	}

	all := specs(*quick)
	if *list {
		for _, s := range all {
			fmt.Printf("%-24s %s\n", s.name, s.group)
		}
		return
	}
	if *benchRe != "" {
		re, err := regexp.Compile(*benchRe)
		if err != nil {
			log.Fatalf("bad -bench regexp: %v", err)
		}
		var kept []spec
		for _, s := range all {
			if re.MatchString(s.name) {
				kept = append(kept, s)
			}
		}
		all = kept
	}
	if len(all) == 0 {
		log.Fatal("no benchmarks selected")
	}
	if *iters < 1 {
		log.Fatal("-n must be >= 1")
	}

	if *rev == "auto" {
		*rev = detectRev()
	}
	var cpuFile *os.File
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			log.Fatal(err)
		}
		cpuFile = pf
	}

	f := File{
		Schema:        SchemaID,
		Rev:           *rev,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		MemTotalBytes: memTotalBytes(),
		Quick:         *quick,
		Iterations:    *iters,
	}

	f.Benchmarks = measureAll(all, *iters)

	// Flush the profiles before any of the exit paths below can fire:
	// log.Fatal calls os.Exit, which would skip deferred cleanup and leave
	// a truncated, unusable CPU profile after a fully-measured run.
	if cpuFile != nil {
		pprof.StopCPUProfile()
		cpuFile.Close()
		fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		if mf, err := os.Create(*memprofile); err != nil {
			log.Printf("heap profile: %v", err)
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				log.Printf("heap profile: %v", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", *memprofile)
			}
			mf.Close()
		}
	}

	if err := f.Validate(); err != nil {
		log.Fatalf("refusing to write invalid output: %v", err)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", f.Rev)
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}
