// Query-path throughput frontier: the qps/ benchmark group drives a
// live serve.Manager with concurrent in-process clients across a
// (shards × settle-window × client-count) grid and records queries/sec,
// p50/p99 submit-to-answer latency, and error/shed counts.
//
// Unlike the workload/scale groups, which time pure simulation, these
// points measure the serving layer itself: admission queueing (bounded,
// with ErrOverloaded backpressure), the scheduler's settle windows, and
// manager routing (least-loaded for the multi-shard points, exercising
// the live backlog gauge). Latency is wall-clock — the grid injects
// time.Now as ShardConfig.Clock, exactly like cmd/dirqd — because the
// submit-to-answer path genuinely spans wall time; the simulated epochs
// underneath stay deterministic per seed as everywhere else.
package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/sensordata"
	"repro/internal/serve"
)

// qpsPoint is one grid point of the query-path throughput frontier.
type qpsPoint struct {
	shards  int   // independent simulation shards behind the manager
	settle  int64 // SettleEpochs: admission-to-answer window
	clients int   // concurrent closed-loop clients
}

// qpsGrid spans the frontier: shard fan-out at fixed load, client
// pile-up at fixed shards, and a longer settle window at both — eight
// points, each named qps/s<shards>-w<settle>-c<clients>.
var qpsGrid = []qpsPoint{
	{shards: 1, settle: 4, clients: 8},
	{shards: 1, settle: 16, clients: 8},
	{shards: 1, settle: 4, clients: 32},
	{shards: 2, settle: 4, clients: 8},
	{shards: 2, settle: 16, clients: 8},
	{shards: 2, settle: 4, clients: 32},
	{shards: 4, settle: 4, clients: 32},
	{shards: 4, settle: 16, clients: 32},
}

// qpsResult is one timed run of one grid point.
type qpsResult struct {
	answered int64
	errs     int64
	shed     int64
	elapsed  time.Duration
	p50      time.Duration
	p99      time.Duration
	meanNs   float64
}

func (r qpsResult) qps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.answered) / r.elapsed.Seconds()
}

// qpsScenario mirrors dirqd's serving setup at small scale: 30 nodes,
// effectively unbounded horizon.
func qpsScenario(seed uint64) scenario.Config {
	cfg := scenario.Default()
	cfg.Seed = seed
	cfg.NumNodes = 30
	cfg.Epochs = 1 << 40
	cfg.EpochsPerHour = 100
	return cfg
}

// qpsRequest derives the i-th query of one client: deterministic shapes
// cycling over all sensor types and three range widths, so every run
// offers the same request mix.
func qpsRequest(client, i int) serve.Request {
	typ := sensordata.AllTypes()[(client+i)%int(sensordata.NumTypes)]
	min, max := typ.Span()
	w := max - min
	switch (client + i/3) % 3 {
	case 0: // wide
		return serve.Request{Type: typ, Lo: min, Hi: max}
	case 1: // middle band
		return serve.Request{Type: typ, Lo: min + 0.3*w, Hi: min + 0.7*w}
	default: // narrow high band
		return serve.Request{Type: typ, Lo: min + 0.8*w, Hi: min + 0.9*w}
	}
}

// runQPS drives one grid point for roughly dur of wall time: clients
// closed-loop Query calls against a fresh manager, every answer timed.
func runQPS(p qpsPoint, dur time.Duration) (qpsResult, error) {
	cfgs := make([]serve.ShardConfig, p.shards)
	for i := range cfgs {
		cfgs[i] = serve.ShardConfig{
			ID:           fmt.Sprintf("q%d", i),
			Scenario:     qpsScenario(uint64(1 + i)),
			StepEpochs:   16,
			SettleEpochs: p.settle,
			Tick:         200 * time.Microsecond,
			Clock:        func() int64 { return time.Now().UnixNano() },
		}
	}
	m, err := serve.NewManager(cfgs)
	if err != nil {
		return qpsResult{}, err
	}
	if p.shards > 1 {
		m.SetRouting(serve.RouteLeastLoaded)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := m.Start(ctx); err != nil {
		return qpsResult{}, err
	}
	defer m.Stop()

	type tally struct {
		lats []time.Duration
		errs int64
		shed int64
	}
	tallies := make([]tally, p.clients)
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for ci := 0; ci < p.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			t := &tallies[ci]
			for i := 0; time.Now().Before(deadline); i++ {
				qstart := time.Now()
				_, err := m.Query(ctx, qpsRequest(ci, i))
				switch {
				case err == nil:
					t.lats = append(t.lats, time.Since(qstart))
				case errors.Is(err, serve.ErrOverloaded):
					t.shed++
				default:
					t.errs++
				}
			}
		}(ci)
	}
	wg.Wait()
	res := qpsResult{elapsed: time.Since(start)}
	var all []time.Duration
	for _, t := range tallies {
		all = append(all, t.lats...)
		res.errs += t.errs
		res.shed += t.shed
	}
	if len(all) == 0 {
		return qpsResult{}, fmt.Errorf("qps point s%d-w%d-c%d answered no queries in %v (errors %d, shed %d)",
			p.shards, p.settle, p.clients, dur, res.errs, res.shed)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.answered = int64(len(all))
	res.p50 = all[len(all)/2]
	res.p99 = all[min(len(all)-1, len(all)*99/100)]
	var sum time.Duration
	for _, l := range all {
		sum += l
	}
	res.meanNs = float64(sum.Nanoseconds()) / float64(len(all))
	return res, nil
}

// qpsSpecs assembles the qps/ group. -quick shortens each point's wall
// budget so the whole grid stays a few seconds on CI.
func qpsSpecs(quick bool) []spec {
	dur := 2 * time.Second
	if quick {
		dur = 400 * time.Millisecond
	}
	out := make([]spec, 0, len(qpsGrid))
	for _, p := range qpsGrid {
		out = append(out, spec{
			name:  fmt.Sprintf("qps/s%d-w%d-c%d", p.shards, p.settle, p.clients),
			group: "qps",
			point: p,
			qps:   func() (qpsResult, error) { return runQPS(p, dur) },
		})
	}
	return out
}
