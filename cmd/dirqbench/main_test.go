package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validFile returns a minimal File that passes Validate, for mutation.
func validFile() File {
	return File{
		Schema:     SchemaID,
		Rev:        "test",
		Timestamp:  "2026-01-02T03:04:05Z",
		GoVersion:  "go1.24",
		GOOS:       "linux",
		GOARCH:     "amd64",
		CPUs:       4,
		Iterations: 3,
		Benchmarks: []Entry{
			{Name: "workloads/fixed", Group: "workload", NsPerOp: 1e6, Runs: 3,
				Nodes: 50, Epochs: 20000, EpochsPerSec: 1e5, NodeEpochsPerSec: 5e6},
			{Name: "substrate/queue", Group: "micro", NsPerOp: 120, Runs: 3},
			{Name: "scale/fixed-1000", Group: "scale", NsPerOp: 2e9, Runs: 3,
				Nodes: 1000, Epochs: 1000, EpochsPerSec: 500, NodeEpochsPerSec: 5e5},
			{Name: "qps/s1-w4-c8", Group: "qps", NsPerOp: 3e5, Runs: 3,
				Shards: 1, Clients: 8, SettleEpochs: 4,
				QPS: 8000, P50Ms: 0.1, P99Ms: 25},
		},
	}
}

// TestValidateTable pins the exact rejection text of every BENCH_*.json
// schema rule, so `dirqbench -check` failures stay actionable.
func TestValidateTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*File)
		want   string // exact Validate error; "" means valid
	}{
		{"valid", func(f *File) {}, ""},
		{"wrong schema", func(f *File) { f.Schema = "dirq/bench/v0" },
			`schema "dirq/bench/v0", want "dirq/bench/v1"`},
		{"empty rev", func(f *File) { f.Rev = "" },
			`empty rev`},
		{"bad timestamp", func(f *File) { f.Timestamp = "yesterday" },
			`bad timestamp "yesterday": parsing time "yesterday" as "2006-01-02T15:04:05Z07:00": cannot parse "yesterday" as "2006"`},
		{"zero iterations", func(f *File) { f.Iterations = 0 },
			`iterations 0 < 1`},
		{"no benchmarks", func(f *File) { f.Benchmarks = nil },
			`no benchmarks`},
		{"empty name", func(f *File) { f.Benchmarks[0].Name = "" },
			`benchmark 0: empty name`},
		{"duplicate name", func(f *File) { f.Benchmarks[1].Name = f.Benchmarks[0].Name },
			`benchmark 1: duplicate name "workloads/fixed"`},
		{"unknown group", func(f *File) { f.Benchmarks[1].Group = "macro" },
			`benchmark "substrate/queue": unknown group "macro"`},
		{"non-positive ns/op", func(f *File) { f.Benchmarks[0].NsPerOp = 0 },
			`benchmark "workloads/fixed": ns_per_op 0 <= 0`},
		{"negative allocs", func(f *File) { f.Benchmarks[0].AllocsPerOp = -1 },
			`benchmark "workloads/fixed": negative allocation stats`},
		{"workload without throughput", func(f *File) { f.Benchmarks[0].EpochsPerSec = 0 },
			`benchmark "workloads/fixed": missing throughput`},
		{"scale without nodes", func(f *File) { f.Benchmarks[2].Nodes = 0 },
			`benchmark "scale/fixed-1000": scale bench without nodes/epochs`},
		{"qps without grid coordinates", func(f *File) { f.Benchmarks[3].Clients = 0 },
			`benchmark "qps/s1-w4-c8": qps bench without grid coordinates`},
		{"qps without qps", func(f *File) { f.Benchmarks[3].QPS = 0 },
			`benchmark "qps/s1-w4-c8": qps bench without qps`},
		{"qps without percentiles", func(f *File) { f.Benchmarks[3].P99Ms = 0 },
			`benchmark "qps/s1-w4-c8": qps bench without latency percentiles`},
		{"qps p99 below p50", func(f *File) { f.Benchmarks[3].P99Ms = 0.05 },
			`benchmark "qps/s1-w4-c8": p99 0.05 below p50 0.1`},
		{"qps fields on non-qps bench", func(f *File) { f.Benchmarks[2].QPS = 100 },
			`benchmark "scale/fixed-1000": qps fields on a scale bench`},
		{"negative setup stats", func(f *File) { f.Benchmarks[2].SetupNsPerOp = -1 },
			`benchmark "scale/fixed-1000": negative setup stats`},
		{"setup fields on non-scale bench", func(f *File) { f.Benchmarks[0].BytesPerNode = 2800 },
			`benchmark "workloads/fixed": setup fields on a workload bench`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFile()
			tc.mutate(&f)
			err := f.Validate()
			switch {
			case tc.want == "" && err != nil:
				t.Fatalf("valid file rejected: %v", err)
			case tc.want != "" && err == nil:
				t.Fatalf("invalid file accepted")
			case tc.want != "" && err.Error() != tc.want:
				t.Fatalf("error drifted:\n got %q\nwant %q", err, tc.want)
			}
		})
	}
}

// TestCommittedBaselines: every BENCH_*.json in the repo root must pass
// the same validation CI's `dirqbench -check` applies.
func TestCommittedBaselines(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json baselines found")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := loadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := check(path); err != nil {
				t.Fatalf("-check failed: %v", err)
			}
			if len(f.Benchmarks) == 0 {
				t.Fatal("baseline has no benchmarks")
			}
		})
	}
}

// TestCheckRejectsMalformed: -check fails loudly on junk input.
func TestCheckRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, body, wantSub string
	}{
		{"not-json", "not json at all", "not valid JSON"},
		{"wrong-schema", `{"schema":"other/v9"}`, `schema "other/v9", want "dirq/bench/v1"`},
		{"empty-object", `{}`, `schema ""`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			err := check(path)
			if err == nil {
				t.Fatal("-check accepted malformed file")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	if err := check(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("-check accepted a missing file")
	}
}

// TestCompareQPSGate: the -compare gate fails on a qps-floor breach, a
// p99-ceiling breach, or a vanished qps grid point — and tolerates a
// coordinate change as a skip so grid evolution needs only a fresh
// baseline, not a schema change.
func TestCompareQPSGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) string {
		t.Helper()
		b, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base", validFile())

	cases := []struct {
		name    string
		mutate  func(*File)
		wantSub string // substring of the compare error; "" means gate passes
	}{
		{"identical", func(f *File) {}, ""},
		{"qps floor breach", func(f *File) { f.Benchmarks[3].QPS /= 2 },
			"regressed more than 30%"},
		{"p99 ceiling breach", func(f *File) { f.Benchmarks[3].P99Ms *= 4 },
			"regressed more than 30%"},
		{"p99 within absolute slack", func(f *File) { f.Benchmarks[3].P99Ms *= 2 }, ""},
		{"qps point missing", func(f *File) { f.Benchmarks = f.Benchmarks[:3] },
			"missing in the candidate"},
		{"grid moved skips", func(f *File) {
			f.Benchmarks[3].Name = "qps/s1-w8-c8"
			f.Benchmarks[3].SettleEpochs = 8
		}, "missing in the candidate"},
		{"within tolerance", func(f *File) {
			f.Benchmarks[3].QPS *= 0.8
			f.Benchmarks[3].P99Ms *= 1.2
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFile()
			tc.mutate(&f)
			cand := write("cand-"+strings.ReplaceAll(tc.name, " ", "-"), f)
			err := compare(base, cand, 0.30, 1)
			switch {
			case tc.wantSub == "" && err != nil:
				t.Fatalf("gate failed on a healthy candidate: %v", err)
			case tc.wantSub != "" && err == nil:
				t.Fatal("gate passed a regressed candidate")
			case tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub):
				t.Fatalf("gate error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestCompareScaleGate: the -compare scale axes — the epochs/s floor, the
// relative bytes-per-node ceiling (with its absolute slack for small
// heaps), and the baseline-independent hard budget at large N, which must
// fire even when the committed baseline predates bytes_per_node or was
// itself over budget.
func TestCompareScaleGate(t *testing.T) {
	dir := t.TempDir()
	// Two scale rungs: a small one (relative axes only) and a large one
	// (budget-eligible), both with the pr10 setup columns.
	mkFile := func(smallBpn, largeBpn float64) File {
		f := validFile()
		f.Benchmarks = []Entry{
			{Name: "scale/fixed-1000", Group: "scale", NsPerOp: 2e9, Runs: 3,
				Nodes: 1000, Epochs: 1000, EpochsPerSec: 500, NodeEpochsPerSec: 5e5,
				SetupNsPerOp: 5e6, BytesPerNode: smallBpn},
			{Name: "scale/fixed-25000", Group: "scale", NsPerOp: 6e9, Runs: 3,
				Nodes: 25000, Epochs: 500, EpochsPerSec: 80, NodeEpochsPerSec: 2e6,
				SetupNsPerOp: 1.2e9, BytesPerNode: largeBpn},
		}
		return f
	}
	write := func(name string, f File) string {
		t.Helper()
		b, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base", mkFile(2800, 2820))
	baseNoBpn := write("base-nobpn", mkFile(0, 0))     // pre-pr10 baseline shape
	baseSlack := write("base-slack", mkFile(100, 100)) // tiny heaps: ratio is noise

	cases := []struct {
		name    string
		base    string
		mutate  func(*File)
		wantSub string // substring of the compare error; "" means gate passes
	}{
		{"identical", base, func(f *File) {}, ""},
		{"epochs-per-sec floor breach", base, func(f *File) { f.Benchmarks[0].EpochsPerSec = 300 },
			"regressed"},
		{"bytes-per-node regression breach", base, func(f *File) { f.Benchmarks[0].BytesPerNode = 4090 },
			"regressed"},
		{"bytes-per-node within absolute slack", baseSlack, func(f *File) {
			// Ratio alone would breach (2× the baseline) but the absolute
			// delta is under the slack — small-heap jitter must not gate.
			f.Benchmarks[0].BytesPerNode = 200
			f.Benchmarks[1].BytesPerNode = 200
		}, ""},
		{"hard budget breach at large N", base, func(f *File) { f.Benchmarks[1].BytesPerNode = 4200 },
			"regressed"},
		{"budget fires without baseline bytes", baseNoBpn, func(f *File) { f.Benchmarks[1].BytesPerNode = 4200 },
			"regressed"},
		{"no baseline bytes, candidate under budget", baseNoBpn, func(f *File) {}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := mkFile(2800, 2820)
			tc.mutate(&f)
			cand := write("cand-"+strings.ReplaceAll(tc.name, " ", "-"), f)
			err := compare(tc.base, cand, 0.30, 1)
			switch {
			case tc.wantSub == "" && err != nil:
				t.Fatalf("gate failed on a healthy candidate: %v", err)
			case tc.wantSub != "" && err == nil:
				t.Fatal("gate passed a regressed candidate")
			case tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub):
				t.Fatalf("gate error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
