// Command dirqcalc evaluates the paper's §5 analytical cost model for a
// k-ary tree: flooding cost, worst-case directed dissemination cost,
// worst-case update cost, and the break-even update frequency fMax.
//
// Usage:
//
//	dirqcalc -k 2 -d 4
//	dirqcalc -k 8 -d 3 -f 0.5   # also evaluate CTDmax at f updates/query
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analytic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirqcalc: ")

	k := flag.Int("k", 2, "tree fan-out")
	d := flag.Int("d", 4, "tree depth")
	f := flag.Float64("f", -1, "optional update frequency (updates per query) for CTDmax")
	flag.Parse()

	n, err := analytic.TreeSize(*k, *d)
	if err != nil {
		log.Fatal(err)
	}
	cf, err := analytic.CFTotal(*k, *d)
	if err != nil {
		log.Fatal(err)
	}
	cqd, err := analytic.CQDMax(*k, *d)
	if err != nil {
		log.Fatal(err)
	}
	cud, err := analytic.CUDMax(*k, *d)
	if err != nil {
		log.Fatal(err)
	}
	fmax, err := analytic.FMax(*k, *d)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("k-ary tree: k=%d, d=%d\n", *k, *d)
	fmt.Printf("N (nodes):            %d\n", n)
	fmt.Printf("CFTotal   (eq. 4):    %d\n", cf)
	fmt.Printf("CQDmax    (eq. 5):    %d\n", cqd)
	fmt.Printf("CUDmax    (eq. 6):    %d\n", cud)
	fmt.Printf("fMax      (eq. 8):    %.4f updates/query\n", fmax)
	fmt.Printf("CQD/CF ratio:         %.3f\n", float64(cqd)/float64(cf))
	if *f >= 0 {
		ctd, err := analytic.CTDMax(*k, *d, *f)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "cheaper than flooding"
		if ctd > float64(cf) {
			verdict = "MORE EXPENSIVE than flooding"
		}
		fmt.Printf("CTDmax at f=%.3f:     %.1f (%s)\n", *f, ctd, verdict)
	}
}
