// Command dirqfuzz runs the deterministic scenario fuzzer: seed-derived
// random configs and scripted event timelines checked against the
// repository's differential oracles (run-twice determinism, gated-vs-naive
// equivalence, monolithic-vs-stepped driving, serve live-vs-Replay,
// experiment worker-count invariance, sharded-vs-serial epoch-engine
// equivalence — see internal/diffuzz).
//
// Usage:
//
//	dirqfuzz [-seeds 200] [-seed-base 0] [-oracles determinism,gating,...]
//	         [-nodes N] [-duration 10m] [-shrink] [-shrink-budget 150]
//	         [-corpus dir] [-workers N] [-v]
//	dirqfuzz -replay internal/diffuzz/testdata/corpus   # re-run saved repros
//
// Every case is a pure function of its seed: a failure report is
// reproducible from the seed alone, and the written repro JSON replays it
// even after the generator changes. The exit status is nonzero on any
// divergence (and on -replay if any saved repro fails again), so CI can
// gate on it directly. -duration bounds wall time for scheduled runs:
// seeds not started when it expires are skipped and reported.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/diffuzz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirqfuzz: ")

	var (
		seeds        = flag.Int("seeds", 200, "number of consecutive seeds to fuzz")
		seedBase     = flag.Uint64("seed-base", 0, "first seed of the range")
		nodes        = flag.Int("nodes", 0, "force every case's network size (0: generator's ladder)")
		oraclesFlag  = flag.String("oracles", "", "comma-separated oracle subset (default: all)")
		duration     = flag.Duration("duration", 0, "wall-time budget; 0 means run every seed")
		shrink       = flag.Bool("shrink", true, "minimize failing cases before reporting")
		shrinkBudget = flag.Int("shrink-budget", 0, "oracle re-runs per shrink (0: default)")
		corpus       = flag.String("corpus", "", "directory to write failure repros into")
		workers      = flag.Int("workers", 0, "concurrent cases (0: GOMAXPROCS)")
		replay       = flag.String("replay", "", "replay a corpus directory instead of fuzzing")
		verbose      = flag.Bool("v", false, "log every failure as it is found")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments %q", flag.Args())
	}

	if *replay != "" {
		os.Exit(replayCorpus(*replay))
	}

	var oracles []string
	if *oraclesFlag != "" {
		for _, o := range strings.Split(*oraclesFlag, ",") {
			if o = strings.TrimSpace(o); o != "" {
				oracles = append(oracles, o)
			}
		}
	}

	ctx := context.Background()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	opts := diffuzz.Options{
		SeedBase:     *seedBase,
		Seeds:        *seeds,
		Nodes:        *nodes,
		Oracles:      oracles,
		Context:      ctx,
		Shrink:       *shrink,
		ShrinkBudget: *shrinkBudget,
		CorpusDir:    *corpus,
		Workers:      *workers,
	}
	if *verbose {
		opts.Logf = log.Printf
	}

	start := time.Now()
	sum, err := diffuzz.Fuzz(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dirqfuzz: %d cases (seeds %d..%d), %d oracle runs, %d skipped, %d divergences in %v\n",
		sum.Cases, *seedBase, *seedBase+uint64(*seeds)-1, sum.OracleRuns, sum.Skipped,
		len(sum.Failures), time.Since(start).Round(time.Millisecond))
	for _, f := range sum.Failures {
		fmt.Printf("\nFAIL seed=%d oracle=%s (script events %d -> %d after shrink)\n%s\n",
			f.Seed, f.Oracle, len(f.Case.Script.Events), len(f.Minimized.Script.Events), f.Detail)
		if f.ReproPath != "" {
			fmt.Printf("repro written: %s\n", f.ReproPath)
		}
	}
	if len(sum.Failures) > 0 {
		os.Exit(1)
	}
}

// replayCorpus re-runs every saved repro and returns the exit code.
func replayCorpus(dir string) int {
	repros, err := diffuzz.LoadCorpus(dir)
	if err != nil {
		log.Fatal(err)
	}
	if len(repros) == 0 {
		log.Fatalf("no repros under %s", dir)
	}
	bad := 0
	for _, r := range repros {
		if err := diffuzz.RunOracle(r.Oracle, r.Case, nil); err != nil {
			bad++
			fmt.Printf("FAIL %s: %v\n", diffuzz.ReproName(r.Seed, r.Oracle), err)
		} else {
			fmt.Printf("ok   %s\n", diffuzz.ReproName(r.Seed, r.Oracle))
		}
	}
	fmt.Printf("dirqfuzz: replayed %d repros, %d failing\n", len(repros), bad)
	if bad > 0 {
		return 1
	}
	return 0
}
