package energy

import (
	"fmt"
	"sort"

	"repro/internal/radio"
	"repro/internal/topology"
)

// Model configures per-operation energy draw in abstract units.
type Model struct {
	// TxCost and RxCost are drawn per message transmitted / received
	// (the paper's §5 model uses 1 and 1).
	TxCost float64
	RxCost float64
	// SampleCost is drawn per physical sensor acquisition.
	SampleCost float64
	// IdleCostPerEpoch is the baseline drain per epoch (listening in the
	// TDMA frame, clock, leakage).
	IdleCostPerEpoch float64
	// Capacity is the initial battery charge per node.
	Capacity float64
}

// DefaultModel reflects typical sensor-node proportions: the radio
// dominates by orders of magnitude, reception costs about as much as
// transmission, sampling is far cheaper, and idle draw (TDMA duty-cycled
// listening) is smaller still.
func DefaultModel(capacity float64) Model {
	return Model{
		TxCost:           1,
		RxCost:           1,
		SampleCost:       0.02,
		IdleCostPerEpoch: 0.005,
		Capacity:         capacity,
	}
}

// Validate rejects non-physical settings.
func (m Model) Validate() error {
	if m.TxCost < 0 || m.RxCost < 0 || m.SampleCost < 0 || m.IdleCostPerEpoch < 0 {
		return fmt.Errorf("energy: negative cost in %+v", m)
	}
	if m.Capacity <= 0 {
		return fmt.Errorf("energy: capacity %v <= 0", m.Capacity)
	}
	return nil
}

// Bank tracks the battery of every node. The root is mains-powered (a
// server at the sink, §3) and never depletes.
type Bank struct {
	model    Model
	charge   []float64
	depleted []bool
	onDeath  func(topology.NodeID)
}

// NewBank creates fully charged batteries for n nodes.
func NewBank(n int, model Model) (*Bank, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	b := &Bank{model: model, charge: make([]float64, n), depleted: make([]bool, n)}
	for i := range b.charge {
		b.charge[i] = model.Capacity
	}
	return b, nil
}

// OnDeath registers the callback fired once when a node depletes.
func (b *Bank) OnDeath(fn func(topology.NodeID)) { b.onDeath = fn }

// Charge returns a node's remaining charge.
func (b *Bank) Charge(id topology.NodeID) float64 { return b.charge[id] }

// Depleted reports whether the node has run out.
func (b *Bank) Depleted(id topology.NodeID) bool { return b.depleted[id] }

// Alive reports the inverse of Depleted (convenience for flood.CostOnly).
func (b *Bank) Alive(id topology.NodeID) bool { return !b.depleted[id] }

func (b *Bank) drain(id topology.NodeID, amount float64) {
	if id == topology.Root || b.depleted[id] {
		return
	}
	b.charge[id] -= amount
	if b.charge[id] <= 0 {
		b.charge[id] = 0
		b.depleted[id] = true
		if b.onDeath != nil {
			b.onDeath(id)
		}
	}
}

// DrainTx charges one transmission to a node.
func (b *Bank) DrainTx(id topology.NodeID) { b.drain(id, b.model.TxCost) }

// DrainRx charges one reception to a node.
func (b *Bank) DrainRx(id topology.NodeID) { b.drain(id, b.model.RxCost) }

// DrainSample charges one sensor acquisition to a node.
func (b *Bank) DrainSample(id topology.NodeID) { b.drain(id, b.model.SampleCost) }

// DrainIdleEpoch charges one epoch of idle draw to every live node.
func (b *Bank) DrainIdleEpoch() {
	for i := range b.charge {
		b.drain(topology.NodeID(i), b.model.IdleCostPerEpoch)
	}
}

// ApplyMeterDelta drains batteries according to the per-node tx/rx counts
// accumulated on a radio.Meter since the previous call. prev must be the
// slice returned by the previous invocation (nil for the first).
func (b *Bank) ApplyMeterDelta(m *radio.Meter, prev []radio.Cost) []radio.Cost {
	cur := make([]radio.Cost, len(b.charge))
	for i := range cur {
		id := topology.NodeID(i)
		cur[i] = m.NodeCost(id)
		var last radio.Cost
		if prev != nil {
			last = prev[i]
		}
		for t := last.Tx; t < cur[i].Tx; t++ {
			b.DrainTx(id)
		}
		for r := last.Rx; r < cur[i].Rx; r++ {
			b.DrainRx(id)
		}
	}
	return cur
}

// LiveCount returns how many nodes still have charge (root included).
func (b *Bank) LiveCount() int {
	n := 0
	for i := range b.depleted {
		if !b.depleted[i] {
			n++
		}
	}
	return n
}

// MinCharge returns the lowest remaining charge among live non-root nodes
// and the node holding it; ok is false if all non-root nodes are dead.
func (b *Bank) MinCharge() (topology.NodeID, float64, bool) {
	best := topology.NodeID(-1)
	bestC := 0.0
	for i := 1; i < len(b.charge); i++ {
		if b.depleted[i] {
			continue
		}
		if best < 0 || b.charge[i] < bestC {
			best = topology.NodeID(i)
			bestC = b.charge[i]
		}
	}
	return best, bestC, best >= 0
}

// Distribution returns all live non-root charges, sorted ascending.
func (b *Bank) Distribution() []float64 {
	var out []float64
	for i := 1; i < len(b.charge); i++ {
		if !b.depleted[i] {
			out = append(out, b.charge[i])
		}
	}
	sort.Float64s(out)
	return out
}
