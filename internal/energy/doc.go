// Package energy extends the paper's unit message-cost model to node
// lifetime. The §5 analysis counts one unit per transmission and one per
// reception; this package attaches a battery to every node, drains it by
// configurable amounts per transmission, reception, and sensor
// acquisition, and powers nodes off when they deplete — which feeds back
// into the §4.2 cross-layer path (neighbors detect the death and the tree
// repairs itself).
//
// This turns the paper's "DirQ spends 45–55 % the cost of flooding" into
// its operational consequence: the network answering the same query
// workload lives roughly twice as long.
//
// In the repo's layer map this is an extension between radio's cost meter
// and core's cross-layer death path, enabled by scenario's EnergyCapacity
// (the lifetime experiment).
package energy
