package energy

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/topology"
)

func newBank(t *testing.T, n int, capacity float64) *Bank {
	t.Helper()
	b, err := NewBank(n, DefaultModel(capacity))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestModelValidate(t *testing.T) {
	if err := DefaultModel(100).Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []Model{
		{TxCost: -1, Capacity: 10},
		{Capacity: 0},
		{RxCost: 1, Capacity: -5},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Fatalf("bad model %d accepted", i)
		}
	}
	if _, err := NewBank(3, Model{}); err == nil {
		t.Fatal("zero model accepted")
	}
}

func TestDrainAndDeath(t *testing.T) {
	b := newBank(t, 3, 2.5)
	var deaths []topology.NodeID
	b.OnDeath(func(id topology.NodeID) { deaths = append(deaths, id) })

	b.DrainTx(1) // 1.5 left
	b.DrainRx(1) // 0.5 left
	if b.Depleted(1) {
		t.Fatal("node died early")
	}
	b.DrainTx(1) // depleted
	if !b.Depleted(1) {
		t.Fatal("node did not die at depletion")
	}
	if b.Charge(1) != 0 {
		t.Fatalf("charge clamped to %v, want 0", b.Charge(1))
	}
	if len(deaths) != 1 || deaths[0] != 1 {
		t.Fatalf("death callbacks %v", deaths)
	}
	// Further drains on a dead node are no-ops, no double callback.
	b.DrainTx(1)
	if len(deaths) != 1 {
		t.Fatal("double death callback")
	}
}

func TestRootIsMainsPowered(t *testing.T) {
	b := newBank(t, 2, 1)
	for i := 0; i < 100; i++ {
		b.DrainTx(topology.Root)
		b.DrainRx(topology.Root)
	}
	if b.Depleted(topology.Root) {
		t.Fatal("root depleted")
	}
	if b.Charge(topology.Root) != 1 {
		t.Fatalf("root charge %v changed", b.Charge(topology.Root))
	}
}

func TestIdleDrain(t *testing.T) {
	m := DefaultModel(1)
	m.IdleCostPerEpoch = 0.5
	b, err := NewBank(3, m)
	if err != nil {
		t.Fatal(err)
	}
	b.DrainIdleEpoch()
	if b.Charge(1) != 0.5 || b.Charge(2) != 0.5 {
		t.Fatalf("idle drain wrong: %v %v", b.Charge(1), b.Charge(2))
	}
	b.DrainIdleEpoch()
	if !b.Depleted(1) || !b.Depleted(2) {
		t.Fatal("idle drain did not deplete")
	}
	if b.LiveCount() != 1 { // only the root
		t.Fatalf("LiveCount = %d", b.LiveCount())
	}
}

func TestSampleDrain(t *testing.T) {
	m := DefaultModel(1)
	m.SampleCost = 0.2
	b, err := NewBank(2, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b.DrainSample(1) // 0.2 each
	}
	if got := b.Charge(1); got < 0.19 || got > 0.21 {
		t.Fatalf("charge after 4 samples %v, want ~0.2", got)
	}
}

func TestApplyMeterDelta(t *testing.T) {
	g, err := topology.PlaceLine(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	meter := radio.NewMeter(3)
	ch := radio.NewChannel(g, meter)
	b := newBank(t, 3, 100)

	ch.Unicast(1, 2, radio.ClassQuery, nil)
	prev := b.ApplyMeterDelta(meter, nil)
	if b.Charge(1) != 99 { // one tx
		t.Fatalf("node 1 charge %v, want 99", b.Charge(1))
	}
	if b.Charge(2) != 99 { // one rx
		t.Fatalf("node 2 charge %v, want 99", b.Charge(2))
	}

	// Second delta only drains the new traffic.
	ch.Unicast(2, 1, radio.ClassQuery, nil)
	b.ApplyMeterDelta(meter, prev)
	if b.Charge(1) != 98 || b.Charge(2) != 98 {
		t.Fatalf("delta application wrong: %v %v", b.Charge(1), b.Charge(2))
	}
}

func TestMinChargeAndDistribution(t *testing.T) {
	b := newBank(t, 4, 10)
	b.DrainTx(2) // 9
	b.DrainTx(3)
	b.DrainTx(3) // 8
	id, c, ok := b.MinCharge()
	if !ok || id != 3 || c != 8 {
		t.Fatalf("MinCharge = %d,%v,%v", id, c, ok)
	}
	dist := b.Distribution()
	if len(dist) != 3 {
		t.Fatalf("distribution %v", dist)
	}
	if dist[0] != 8 || dist[2] != 10 {
		t.Fatalf("distribution not sorted: %v", dist)
	}
}

func TestMinChargeAllDead(t *testing.T) {
	b := newBank(t, 2, 0.5)
	b.DrainTx(1)
	if _, _, ok := b.MinCharge(); ok {
		t.Fatal("MinCharge ok with all non-root nodes dead")
	}
	if len(b.Distribution()) != 0 {
		t.Fatal("distribution of dead network non-empty")
	}
}
