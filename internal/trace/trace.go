package trace

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
)

// Stamped is one recorded event with its simulation time.
type Stamped struct {
	Epoch sim.Time
	Event core.TraceEvent
}

// String renders the event as one log line.
func (s Stamped) String() string {
	ev := s.Event
	switch ev.Kind {
	case core.TraceUpdateSent, core.TraceWithdraw:
		return fmt.Sprintf("[%6d] %-14s node=%d -> parent=%d type=%s",
			s.Epoch, ev.Kind, ev.Node, ev.Peer, ev.Type)
	case core.TraceQueryReceived, core.TraceQuerySource:
		return fmt.Sprintf("[%6d] %-14s node=%d query=%d",
			s.Epoch, ev.Kind, ev.Node, ev.QueryID)
	case core.TraceEstimate:
		return fmt.Sprintf("[%6d] %-14s root=%d seq=%d",
			s.Epoch, ev.Kind, ev.Node, ev.QueryID)
	default:
		return fmt.Sprintf("[%6d] %-14s node=%d peer=%d",
			s.Epoch, ev.Kind, ev.Node, ev.Peer)
	}
}

// Recorder is a fixed-capacity ring buffer of protocol events. Not safe
// for concurrent use (the simulation is single-threaded by design).
type Recorder struct {
	cap     int
	buf     []Stamped
	next    int
	wrapped bool
	total   uint64
	counts  map[core.TraceKind]uint64
}

// NewRecorder creates a recorder keeping the most recent capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("trace: capacity %d < 1", capacity)
	}
	return &Recorder{
		cap:    capacity,
		buf:    make([]Stamped, 0, capacity),
		counts: map[core.TraceKind]uint64{},
	}, nil
}

// Hook returns the function to install as core.Config.Trace, stamping
// events with the engine's current time.
func (r *Recorder) Hook(engine *sim.Engine) func(core.TraceEvent) {
	return func(ev core.TraceEvent) {
		r.Record(engine.Now(), ev)
	}
}

// Record appends one event.
func (r *Recorder) Record(epoch sim.Time, ev core.TraceEvent) {
	s := Stamped{Epoch: epoch, Event: ev}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % r.cap
		r.wrapped = true
	}
	r.total++
	r.counts[ev.Kind]++
}

// Total returns the number of events ever recorded (including evicted).
func (r *Recorder) Total() uint64 { return r.total }

// Count returns how many events of one kind were ever recorded.
func (r *Recorder) Count(kind core.TraceKind) uint64 { return r.counts[kind] }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Stamped {
	if !r.wrapped {
		return append([]Stamped(nil), r.buf...)
	}
	out := make([]Stamped, 0, r.cap)
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events of one kind, oldest first.
func (r *Recorder) Filter(kind core.TraceKind) []Stamped {
	var out []Stamped
	for _, s := range r.Events() {
		if s.Event.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Dump writes the retained events as log lines.
func (r *Recorder) Dump(w io.Writer) error {
	for _, s := range r.Events() {
		if _, err := fmt.Fprintln(w, s); err != nil {
			return err
		}
	}
	return nil
}
