package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sensordata"
	"repro/internal/sim"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewRecorder(10); err != nil {
		t.Fatal(err)
	}
}

func TestRecordAndEvents(t *testing.T) {
	r, _ := NewRecorder(10)
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), core.TraceEvent{Kind: core.TraceUpdateSent, Node: 1, Peer: 0})
	}
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("%d events", len(evs))
	}
	for i, e := range evs {
		if e.Epoch != sim.Time(i) {
			t.Fatalf("order wrong: %v", evs)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestRingEviction(t *testing.T) {
	r, _ := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Record(sim.Time(i), core.TraceEvent{Kind: core.TraceDeath, Node: 1})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Epoch != 4 || evs[2].Epoch != 6 {
		t.Fatalf("wrong retained window: %v", evs)
	}
	if r.Total() != 7 {
		t.Fatalf("Total = %d, want 7 (evicted still counted)", r.Total())
	}
}

func TestCountsAndFilter(t *testing.T) {
	r, _ := NewRecorder(100)
	r.Record(0, core.TraceEvent{Kind: core.TraceUpdateSent})
	r.Record(1, core.TraceEvent{Kind: core.TraceUpdateSent})
	r.Record(2, core.TraceEvent{Kind: core.TraceQueryReceived, QueryID: 7})
	if r.Count(core.TraceUpdateSent) != 2 {
		t.Fatal("update count")
	}
	if r.Count(core.TraceDeath) != 0 {
		t.Fatal("phantom deaths")
	}
	q := r.Filter(core.TraceQueryReceived)
	if len(q) != 1 || q[0].Event.QueryID != 7 {
		t.Fatalf("filter %v", q)
	}
}

func TestStampedString(t *testing.T) {
	cases := []core.TraceEvent{
		{Kind: core.TraceUpdateSent, Node: 3, Peer: 1, Type: sensordata.Humidity},
		{Kind: core.TraceWithdraw, Node: 3, Peer: 1, Type: sensordata.Light},
		{Kind: core.TraceQueryReceived, Node: 5, QueryID: 42},
		{Kind: core.TraceQuerySource, Node: 5, QueryID: 42},
		{Kind: core.TraceEstimate, Node: 0, QueryID: 9},
		{Kind: core.TraceDeath, Node: 8, Peer: 2},
		{Kind: core.TraceReattach, Node: 8, Peer: 4},
		{Kind: core.TraceJoin, Node: 9, Peer: 4},
	}
	for _, ev := range cases {
		s := Stamped{Epoch: 100, Event: ev}.String()
		if !strings.Contains(s, ev.Kind.String()) {
			t.Fatalf("%q missing kind %q", s, ev.Kind)
		}
	}
}

func TestDump(t *testing.T) {
	r, _ := NewRecorder(10)
	r.Record(5, core.TraceEvent{Kind: core.TraceJoin, Node: 2, Peer: 0})
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "join") {
		t.Fatalf("dump: %s", buf.String())
	}
}

func TestHookStampsEngineTime(t *testing.T) {
	r, _ := NewRecorder(10)
	e := sim.NewEngine()
	hook := r.Hook(e)
	e.Schedule(42, func() {
		hook(core.TraceEvent{Kind: core.TraceDeath, Node: 1})
	})
	e.Run()
	evs := r.Events()
	if len(evs) != 1 || evs[0].Epoch != 42 {
		t.Fatalf("events %v", evs)
	}
}

func TestTraceKindStrings(t *testing.T) {
	kinds := []core.TraceKind{
		core.TraceUpdateSent, core.TraceWithdraw, core.TraceQueryReceived,
		core.TraceQuerySource, core.TraceEstimate, core.TraceDeath,
		core.TraceReattach, core.TraceJoin,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("kind %d name %q duplicate or empty", k, name)
		}
		seen[name] = true
	}
	if core.TraceKind(99).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}
