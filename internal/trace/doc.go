// Package trace records protocol events (Update Messages, query
// deliveries, estimate waves, deaths, re-attachments) into a bounded ring
// buffer for debugging and post-run analysis. It plugs into
// core.Config.Trace and stamps every event with the simulation epoch.
//
// In the repo's layer map this is evaluation/observability: optional (a
// nil hook costs nothing on the hot path), enabled by scenario's
// TraceCapacity and surfaced by dirqsim -trace.
package trace
