package radio

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func lineChannel(t *testing.T, n int) (*Channel, *Meter) {
	t.Helper()
	g, err := topology.PlaceLine(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(g.Len())
	return NewChannel(g, m), m
}

func TestBroadcastReachesNeighborsOnly(t *testing.T) {
	ch, _ := lineChannel(t, 4) // 0-1-2-3
	var got []topology.NodeID
	for i := 0; i < 4; i++ {
		id := topology.NodeID(i)
		ch.Listen(id, func(from topology.NodeID, msg any) {
			got = append(got, id)
		})
	}
	n := ch.Broadcast(1, ClassFlood, "hello")
	if n != 2 {
		t.Fatalf("Broadcast returned %d receivers, want 2", n)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("received by %v, want [0 2]", got)
	}
}

func TestBroadcastCosts(t *testing.T) {
	ch, m := lineChannel(t, 4)
	ch.Broadcast(1, ClassFlood, nil)
	c := m.ByClass(ClassFlood)
	if c.Tx != 1 {
		t.Fatalf("broadcast tx cost %d, want 1 (single MAC broadcast)", c.Tx)
	}
	if c.Rx != 2 {
		t.Fatalf("broadcast rx cost %d, want 2", c.Rx)
	}
	if c.Total() != 3 {
		t.Fatalf("total %d, want 3", c.Total())
	}
}

func TestUnicastDeliveryAndCost(t *testing.T) {
	ch, m := lineChannel(t, 3)
	var from topology.NodeID = -1
	var payload any
	ch.Listen(2, func(f topology.NodeID, msg any) { from, payload = f, msg })
	ok := ch.Unicast(1, 2, ClassUpdate, 42)
	if !ok {
		t.Fatal("unicast to live neighbor failed")
	}
	if from != 1 || payload != 42 {
		t.Fatalf("delivered from=%d payload=%v", from, payload)
	}
	c := m.ByClass(ClassUpdate)
	if c.Tx != 1 || c.Rx != 1 {
		t.Fatalf("unicast cost %+v, want 1 tx 1 rx", c)
	}
}

func TestUnicastWithoutLinkPanics(t *testing.T) {
	ch, _ := lineChannel(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("unicast without radio link did not panic")
		}
	}()
	ch.Unicast(0, 2, ClassUpdate, nil)
}

func TestDeadNodesDoNotTransmit(t *testing.T) {
	ch, m := lineChannel(t, 3)
	ch.SetAlive(1, false)
	if n := ch.Broadcast(1, ClassFlood, nil); n != 0 {
		t.Fatalf("dead node broadcast reached %d", n)
	}
	if ch.Unicast(1, 2, ClassUpdate, nil) {
		t.Fatal("dead node unicast succeeded")
	}
	if m.Total().Total() != 0 {
		t.Fatalf("dead node consumed %d cost units", m.Total().Total())
	}
}

func TestDeadNodesDoNotReceive(t *testing.T) {
	ch, m := lineChannel(t, 3)
	heard := false
	ch.Listen(2, func(topology.NodeID, any) { heard = true })
	ch.SetAlive(2, false)
	if ch.Unicast(1, 2, ClassUpdate, nil) {
		t.Fatal("unicast to dead node reported delivered")
	}
	if heard {
		t.Fatal("dead node received a message")
	}
	// Transmission still costs the sender one unit.
	if c := m.ByClass(ClassUpdate); c.Tx != 1 || c.Rx != 0 {
		t.Fatalf("cost %+v, want tx=1 rx=0", c)
	}
	n := ch.Broadcast(1, ClassFlood, nil)
	if n != 1 {
		t.Fatalf("broadcast heard by %d, want only node 0", n)
	}
}

func TestAliveQuery(t *testing.T) {
	ch, _ := lineChannel(t, 2)
	if !ch.Alive(0) {
		t.Fatal("node not alive initially")
	}
	ch.SetAlive(0, false)
	if ch.Alive(0) {
		t.Fatal("SetAlive(false) ignored")
	}
	ch.SetAlive(0, true)
	if !ch.Alive(0) {
		t.Fatal("node not revived")
	}
}

func TestPerNodeCosts(t *testing.T) {
	ch, m := lineChannel(t, 3)
	ch.Unicast(0, 1, ClassQuery, nil)
	ch.Unicast(1, 2, ClassQuery, nil)
	if c := m.NodeCost(0); c.Tx != 1 || c.Rx != 0 {
		t.Fatalf("node 0 cost %+v", c)
	}
	if c := m.NodeCost(1); c.Tx != 1 || c.Rx != 1 {
		t.Fatalf("node 1 cost %+v", c)
	}
	if c := m.NodeCost(2); c.Tx != 0 || c.Rx != 1 {
		t.Fatalf("node 2 cost %+v", c)
	}
}

func TestMeterClassesSeparated(t *testing.T) {
	ch, m := lineChannel(t, 3)
	ch.Unicast(0, 1, ClassQuery, nil)
	ch.Unicast(0, 1, ClassUpdate, nil)
	ch.Broadcast(0, ClassEstimate, nil)
	if m.ByClass(ClassQuery).Total() != 2 {
		t.Fatal("query class wrong")
	}
	if m.ByClass(ClassUpdate).Total() != 2 {
		t.Fatal("update class wrong")
	}
	if m.ByClass(ClassEstimate).Tx != 1 {
		t.Fatal("estimate class wrong")
	}
	if m.ByClass(ClassFlood).Total() != 0 {
		t.Fatal("flood class should be empty")
	}
	snap := m.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d classes, want 5", len(snap))
	}
}

func TestMeterReset(t *testing.T) {
	ch, m := lineChannel(t, 3)
	ch.Broadcast(1, ClassFlood, nil)
	m.Reset()
	if m.Total().Total() != 0 {
		t.Fatal("Reset did not zero totals")
	}
	if m.NodeCost(1).Tx != 0 {
		t.Fatal("Reset did not zero per-node counters")
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Tx: 2, Rx: 3}
	b := Cost{Tx: 10, Rx: 20}
	s := a.Add(b)
	if s.Tx != 12 || s.Rx != 23 || s.Total() != 35 {
		t.Fatalf("Add = %+v", s)
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassQuery: "query", ClassUpdate: "update", ClassEstimate: "estimate",
		ClassFlood: "flood", ClassControl: "control",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("Class %d String = %q, want %q", c, c.String(), want)
		}
	}
	if Class(99).String() == "" {
		t.Fatal("unknown class should still stringify")
	}
}

func TestLossyChannelDropsApproxFraction(t *testing.T) {
	g, err := topology.PlaceLine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(2)
	ch := NewChannel(g, m)
	ch.SetLoss(0.25, sim.NewRNG(9))
	delivered := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if ch.Unicast(0, 1, ClassQuery, nil) {
			delivered++
		}
	}
	frac := float64(delivered) / n
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("delivery rate %v with 25%% loss, want ~0.75", frac)
	}
	// Tx always accounted, Rx only on delivery.
	c := m.ByClass(ClassQuery)
	if c.Tx != n || c.Rx != int64(delivered) {
		t.Fatalf("lossy cost %+v, delivered=%d", c, delivered)
	}
}

func TestSetLossValidation(t *testing.T) {
	ch, _ := lineChannel(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetLoss(1.5) did not panic")
		}
	}()
	ch.SetLoss(1.5, sim.NewRNG(1))
}

func TestMulticastCostAndDelivery(t *testing.T) {
	// Star: 0 connected to 1,2,3.
	g := topology.NewGraph(make([]topology.Position, 4))
	for i := 1; i < 4; i++ {
		if err := g.AddEdge(0, topology.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := NewMeter(4)
	ch := NewChannel(g, m)
	heard := map[topology.NodeID]bool{}
	for i := 1; i < 4; i++ {
		id := topology.NodeID(i)
		ch.Listen(id, func(from topology.NodeID, msg any) { heard[id] = true })
	}
	n := ch.Multicast(0, []topology.NodeID{1, 3}, ClassQuery, "q")
	if n != 2 {
		t.Fatalf("multicast receivers %d, want 2", n)
	}
	if !heard[1] || !heard[3] || heard[2] {
		t.Fatalf("heard = %v, want only addressed nodes 1 and 3", heard)
	}
	c := m.ByClass(ClassQuery)
	if c.Tx != 1 || c.Rx != 2 {
		t.Fatalf("multicast cost %+v, want tx=1 rx=2 (paper §5.2 model)", c)
	}
}

func TestMulticastEmptyTargetsFree(t *testing.T) {
	ch, m := lineChannel(t, 3)
	if n := ch.Multicast(1, nil, ClassQuery, nil); n != 0 {
		t.Fatalf("empty multicast delivered %d", n)
	}
	if m.Total().Total() != 0 {
		t.Fatal("empty multicast cost units")
	}
}

func TestMulticastDeadTargetCostsTxOnly(t *testing.T) {
	ch, m := lineChannel(t, 3)
	ch.SetAlive(2, false)
	n := ch.Multicast(1, []topology.NodeID{0, 2}, ClassQuery, nil)
	if n != 1 {
		t.Fatalf("receivers %d, want 1", n)
	}
	c := m.ByClass(ClassQuery)
	if c.Tx != 1 || c.Rx != 1 {
		t.Fatalf("cost %+v, want tx=1 rx=1", c)
	}
}

func TestMulticastNonNeighborPanics(t *testing.T) {
	ch, _ := lineChannel(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("multicast to non-neighbor did not panic")
		}
	}()
	ch.Multicast(0, []topology.NodeID{2}, ClassQuery, nil)
}
