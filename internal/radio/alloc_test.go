package radio

import (
	"testing"

	"repro/internal/topology"
)

// TestBroadcastAllocFree pins the delivery hot path's allocation ceiling:
// a broadcast with registered receivers must not allocate.
func TestBroadcastAllocFree(t *testing.T) {
	g, _, err := topology.BuildKaryTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(g, NewMeter(g.Len()))
	sink := 0
	for i := 0; i < g.Len(); i++ {
		ch.Listen(topology.NodeID(i), func(from topology.NodeID, msg any) { sink++ })
	}

	allocs := testing.AllocsPerRun(1000, func() {
		ch.Broadcast(topology.Root, ClassFlood, nil)
	})
	if allocs != 0 {
		t.Fatalf("Broadcast allocates %.1f objects, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("no deliveries happened")
	}
}

// TestUnicastMulticastAllocFree extends the ceiling to the other two
// delivery primitives.
func TestUnicastMulticastAllocFree(t *testing.T) {
	g, _, err := topology.BuildKaryTree(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(g, NewMeter(g.Len()))
	for i := 0; i < g.Len(); i++ {
		ch.Listen(topology.NodeID(i), func(from topology.NodeID, msg any) {})
	}
	targets := g.Neighbors(topology.Root)

	allocs := testing.AllocsPerRun(1000, func() {
		ch.Unicast(topology.Root, targets[0], ClassUpdate, nil)
		ch.Multicast(topology.Root, targets, ClassQuery, nil)
	})
	if allocs != 0 {
		t.Fatalf("Unicast+Multicast allocate %.1f objects, want 0", allocs)
	}
}
