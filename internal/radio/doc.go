// Package radio models the wireless channel at the granularity the paper's
// evaluation uses: broadcast and unicast message delivery over the unit-disk
// connectivity graph, with message-cost accounting where one transmission
// costs one unit and one reception costs one unit (§5, "the cost of
// transmitting a message is assumed to be one unit while the cost of
// receiving a message is also assumed to be one unit").
//
// In the repo's layer map this is substrate: lmac flushes every TDMA slot
// through Channel broadcast/multicast/unicast, and all experiment cost
// figures read the Meter. The delivery hot path is allocation-free; the
// address lists a multicast carries are pooled by the MAC above.
package radio
