package radio

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Class categorizes traffic so experiments can split costs by purpose.
type Class int

// Traffic classes.
const (
	ClassQuery    Class = iota // directed query dissemination (DirQ)
	ClassUpdate                // DirQ range-table Update Messages
	ClassEstimate              // hourly EHr estimate broadcasts from the root
	ClassFlood                 // flooding-baseline query traffic
	ClassControl               // MAC / tree maintenance traffic
	numClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassQuery:
		return "query"
	case ClassUpdate:
		return "update"
	case ClassEstimate:
		return "estimate"
	case ClassFlood:
		return "flood"
	case ClassControl:
		return "control"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes lists all traffic classes in order.
func Classes() []Class {
	return []Class{ClassQuery, ClassUpdate, ClassEstimate, ClassFlood, ClassControl}
}

// Cost is a tx/rx unit-count pair.
type Cost struct {
	Tx int64
	Rx int64
}

// Total returns Tx + Rx, the paper's combined message cost.
func (c Cost) Total() int64 { return c.Tx + c.Rx }

// Add returns the element-wise sum.
func (c Cost) Add(o Cost) Cost { return Cost{Tx: c.Tx + o.Tx, Rx: c.Rx + o.Rx} }

// Meter accumulates per-class and per-node message costs.
type Meter struct {
	byClass [numClasses]Cost
	nodeTx  []int64
	nodeRx  []int64
}

// NewMeter returns a meter for n nodes.
func NewMeter(n int) *Meter {
	return &Meter{nodeTx: make([]int64, n), nodeRx: make([]int64, n)}
}

func (m *Meter) countTx(id topology.NodeID, c Class) {
	m.byClass[c].Tx++
	m.nodeTx[id]++
}

func (m *Meter) countRx(id topology.NodeID, c Class) {
	m.byClass[c].Rx++
	m.nodeRx[id]++
}

// ByClass returns the accumulated cost of one traffic class.
func (m *Meter) ByClass(c Class) Cost { return m.byClass[c] }

// Total returns the cost summed over all classes.
func (m *Meter) Total() Cost {
	var t Cost
	for _, c := range m.byClass {
		t = t.Add(c)
	}
	return t
}

// NodeCost returns the (tx, rx) units consumed by a single node.
func (m *Meter) NodeCost(id topology.NodeID) Cost {
	return Cost{Tx: m.nodeTx[id], Rx: m.nodeRx[id]}
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.byClass = [numClasses]Cost{}
	for i := range m.nodeTx {
		m.nodeTx[i] = 0
		m.nodeRx[i] = 0
	}
}

// Snapshot returns a copy of the per-class costs.
func (m *Meter) Snapshot() map[Class]Cost {
	out := make(map[Class]Cost, numClasses)
	for _, c := range Classes() {
		out[c] = m.byClass[c]
	}
	return out
}

// Receiver handles a delivered message.
type Receiver func(from topology.NodeID, msg any)

// Channel delivers messages between nodes over the connectivity graph.
// Delivery is synchronous (the MAC layer above decides *when* to transmit;
// the channel only decides *who hears it* and accounts costs).
type Channel struct {
	graph       *topology.Graph
	meter       *Meter
	receivers   []Receiver
	alive       []bool
	lossProb    float64
	lossRNG     *sim.RNG
	aliveChange func(id topology.NodeID, alive bool)
	frozen      bool
	tel         Telemetry
}

// Telemetry is the channel's instrument set. All fields may be nil (the
// instruments are nil-safe), and none of the counters feeds back into
// delivery or the loss RNG stream, so instrumented and bare channels
// deliver identically.
type Telemetry struct {
	// Tx counts physical transmissions (one per broadcast/multicast/
	// unicast send from a live node).
	Tx *telemetry.Counter
	// Rx counts successful receptions.
	Rx *telemetry.Counter
	// Drops counts receptions lost to the Bernoulli loss process.
	Drops *telemetry.Counter
}

// SetTelemetry binds (or, with the zero value, unbinds) the channel's
// instruments.
func (ch *Channel) SetTelemetry(t Telemetry) { ch.tel = t }

// NewChannel creates a loss-free channel over g.
func NewChannel(g *topology.Graph, meter *Meter) *Channel {
	ch := &Channel{
		graph:     g,
		meter:     meter,
		receivers: make([]Receiver, g.Len()),
		alive:     make([]bool, g.Len()),
	}
	for i := range ch.alive {
		ch.alive[i] = true
	}
	return ch
}

// SetLoss enables i.i.d. Bernoulli packet loss with probability p on every
// individual reception, using the given RNG stream.
func (ch *Channel) SetLoss(p float64, rng *sim.RNG) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("radio: loss probability %v outside [0,1)", p))
	}
	ch.lossProb = p
	ch.lossRNG = rng
}

// Listen registers the receive handler for a node.
func (ch *Channel) Listen(id topology.NodeID, r Receiver) {
	ch.receivers[id] = r
}

// SetAlive marks a node as powered (true) or dead (false). Dead nodes
// neither transmit nor receive.
func (ch *Channel) SetAlive(id topology.NodeID, alive bool) {
	if ch.alive[id] != alive && ch.aliveChange != nil {
		// Notify before mutating: the MAC snapshots its virtualized
		// liveness bookkeeping against the pre-change power state.
		ch.aliveChange(id, alive)
	}
	ch.alive[id] = alive
}

// OnAliveChange registers a hook invoked whenever a node's power state is
// about to flip (the flag still holds the old value during the call). The
// MAC uses it to leave its quiescent fast path around membership changes.
func (ch *Channel) OnAliveChange(fn func(id topology.NodeID, alive bool)) {
	ch.aliveChange = fn
}

// Alive reports whether the node is powered.
func (ch *Channel) Alive(id topology.NodeID) bool { return ch.alive[id] }

// Freeze puts the channel in a no-transmit state: any Broadcast,
// Multicast or Unicast panics until Unfreeze. The sharded epoch engine
// freezes the channel across its parallel apply phase as an executable
// proof that the phase only *queues* traffic at the MAC (shared loss-RNG
// and meter order would silently diverge if anything transmitted).
func (ch *Channel) Freeze() { ch.frozen = true }

// Unfreeze re-enables transmission after Freeze.
func (ch *Channel) Unfreeze() { ch.frozen = false }

func (ch *Channel) checkFrozen(kind string, from topology.NodeID) {
	if ch.frozen {
		panic(fmt.Sprintf("radio: %s from %d on a frozen channel (transmit during parallel apply)", kind, from))
	}
}

// Graph exposes the underlying connectivity graph.
func (ch *Channel) Graph() *topology.Graph { return ch.graph }

// Meter exposes the cost meter.
func (ch *Channel) Meter() *Meter { return ch.meter }

func (ch *Channel) dropped() bool {
	if ch.lossProb > 0 && ch.lossRNG != nil && ch.lossRNG.Bool(ch.lossProb) {
		ch.tel.Drops.Inc()
		return true
	}
	return false
}

// Broadcast transmits msg from the given node to every live radio neighbor.
// It costs the sender one tx unit regardless of neighbor count (a single MAC
// broadcast, as §5.1 specifies) and each hearing neighbor one rx unit.
// It returns the number of nodes that received the message.
func (ch *Channel) Broadcast(from topology.NodeID, class Class, msg any) int {
	ch.checkFrozen("broadcast", from)
	if !ch.alive[from] {
		return 0
	}
	ch.meter.countTx(from, class)
	ch.tel.Tx.Inc()
	heard := 0
	for _, nb := range ch.graph.Neighbors(from) {
		if !ch.alive[nb] || ch.dropped() {
			continue
		}
		ch.meter.countRx(nb, class)
		ch.tel.Rx.Inc()
		heard++
		if r := ch.receivers[nb]; r != nil {
			r(from, msg)
		}
	}
	return heard
}

// Multicast transmits msg once and delivers it to the listed radio
// neighbors only (a MAC-level broadcast with an address list in the header,
// as LMAC data units carry). It costs the sender one tx unit and each
// addressed live neighbor one rx unit; unaddressed neighbors ignore the
// frame without cost. Returns the number of receivers.
//
// This matches the paper's §5.2 dissemination cost model: a forwarding node
// pays one transmission regardless of how many children it addresses, and
// each addressed child pays one reception.
func (ch *Channel) Multicast(from topology.NodeID, targets []topology.NodeID, class Class, msg any) int {
	ch.checkFrozen("multicast", from)
	if !ch.alive[from] {
		return 0
	}
	if len(targets) == 0 {
		return 0
	}
	for _, to := range targets {
		if !ch.graph.HasEdge(from, to) {
			panic(fmt.Sprintf("radio: multicast %d->%d without a radio link", from, to))
		}
	}
	ch.meter.countTx(from, class)
	ch.tel.Tx.Inc()
	heard := 0
	for _, to := range targets {
		if !ch.alive[to] || ch.dropped() {
			continue
		}
		ch.meter.countRx(to, class)
		ch.tel.Rx.Inc()
		heard++
		if r := ch.receivers[to]; r != nil {
			r(from, msg)
		}
	}
	return heard
}

// Unicast transmits msg from one node to a specific radio neighbor. It
// costs one tx and, on successful delivery, one rx unit. Reports whether
// the message was delivered.
func (ch *Channel) Unicast(from, to topology.NodeID, class Class, msg any) bool {
	ch.checkFrozen("unicast", from)
	if !ch.alive[from] {
		return false
	}
	if !ch.graph.HasEdge(from, to) {
		panic(fmt.Sprintf("radio: unicast %d->%d without a radio link", from, to))
	}
	ch.meter.countTx(from, class)
	ch.tel.Tx.Inc()
	if !ch.alive[to] || ch.dropped() {
		return false
	}
	ch.meter.countRx(to, class)
	ch.tel.Rx.Inc()
	if r := ch.receivers[to]; r != nil {
		r(from, msg)
	}
	return true
}
