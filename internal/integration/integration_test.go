// Package integration runs whole-stack tests that cross module boundaries:
// long simulations with node churn, heavy packet loss, heterogeneous
// sensor complements, and protocol invariants checked against ground truth
// at every stage.
package integration

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/lmac"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/scenario"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

// buildRunner constructs a moderate network for churn experiments.
func buildRunner(t *testing.T, seed uint64, mutate func(*scenario.Config)) *scenario.Runner {
	t.Helper()
	cfg := scenario.Default()
	cfg.Seed = seed
	cfg.NumNodes = 35
	cfg.RadioRange = 32 // dense enough that the k=8/d=10 caps always span
	cfg.Epochs = 4000
	cfg.FixedPct = 3
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestChurnManyDeaths(t *testing.T) {
	r := buildRunner(t, 21, nil)

	// Kill five leaves at staggered times; leaves keep the network
	// connected so accuracy must fully recover.
	leaves := r.Tree.Leaves()
	if len(leaves) < 5 {
		t.Skip("too few leaves in this draw")
	}
	for i := 0; i < 5; i++ {
		victim := leaves[i*len(leaves)/5]
		if victim == topology.Root {
			continue
		}
		at := sim.Time(800 + 400*i)
		v := victim
		r.Engine.SchedulePrio(at, lmac.PrioApp, func() { r.Proto.KillNode(v) })
	}
	res := r.Run()

	if err := r.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid after churn: %v", err)
	}
	// Dead nodes must be out of every surviving range table.
	for _, id := range r.Tree.Nodes() {
		n := r.Proto.Node(id)
		for _, ty := range sensordata.AllTypes() {
			rt := n.Table(ty)
			if rt == nil {
				continue
			}
			for _, c := range rt.Children() {
				if !r.Channel.Alive(c) {
					t.Fatalf("node %d keeps a %v row for dead node %d", id, ty, c)
				}
			}
		}
	}
	// Queries injected after the last death should still deliver; compare
	// late-run accuracy to early-run accuracy.
	third := len(res.Accuracies) / 3
	early := metrics.Summarize(res.Accuracies[:third], r.Graph.Len())
	late := metrics.Summarize(res.Accuracies[2*third:], r.Graph.Len())
	if late.PctReceived == 0 {
		t.Fatal("no deliveries after churn")
	}
	if late.MeanOvershoot > early.MeanOvershoot+15 {
		t.Fatalf("accuracy collapsed after churn: early %v late %v",
			early.MeanOvershoot, late.MeanOvershoot)
	}
}

func TestChurnDeathThenRejoin(t *testing.T) {
	r := buildRunner(t, 22, nil)
	leaves := r.Tree.Leaves()
	victim := leaves[len(leaves)/2]
	if victim == topology.Root {
		t.Skip("degenerate draw")
	}
	mounted := r.Mounted[victim]

	r.Engine.SchedulePrio(1000, lmac.PrioApp, func() { r.Proto.KillNode(victim) })
	r.Engine.SchedulePrio(2000, lmac.PrioApp, func() {
		if err := r.Proto.JoinNode(victim, mounted); err != nil {
			t.Errorf("rejoin failed: %v", err)
		}
	})
	var back bool
	r.Engine.SchedulePrio(2600, lmac.PrioMetrics, func() {
		back = r.Tree.Contains(victim)
	})
	r.Run()

	if !back {
		t.Fatal("rejoined node not back in the tree by epoch 2600")
	}
	if err := r.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid after rejoin: %v", err)
	}
	// Its parent must have fresh rows for the rejoined node's types.
	par, ok := r.Tree.Parent(victim)
	if !ok {
		t.Fatal("rejoined node has no parent")
	}
	for _, ty := range mounted.Types() {
		rt := r.Proto.Node(par).Table(ty)
		if rt == nil {
			t.Fatalf("parent %d lacks %v table after rejoin", par, ty)
		}
		if _, ok := rt.Child(victim); !ok {
			t.Fatalf("parent %d lacks %v row for rejoined node %d", par, ty, victim)
		}
	}
}

func TestHeavyPacketLossDegradesGracefully(t *testing.T) {
	clean := buildRunner(t, 23, nil).Run()
	lossy := buildRunner(t, 23, func(c *scenario.Config) { c.PacketLoss = 0.15 }).Run()

	if lossy.QueriesInjected != clean.QueriesInjected {
		t.Fatalf("query counts differ: %d vs %d", lossy.QueriesInjected, clean.QueriesInjected)
	}
	// Loss strictly reduces deliveries but must not zero them.
	if lossy.Summary.PctReceived <= 0 {
		t.Fatal("15% loss killed all deliveries")
	}
	if lossy.Summary.PctReceived > clean.Summary.PctReceived+5 {
		t.Fatalf("lossy run delivered MORE than clean run: %v vs %v",
			lossy.Summary.PctReceived, clean.Summary.PctReceived)
	}
}

func TestHeterogeneousTypesRouteOnlyWhereMounted(t *testing.T) {
	r := buildRunner(t, 24, func(c *scenario.Config) {
		c.Heterogeneous = true
		c.TypeProb = 0.4
	})
	r.Proto.Start()
	r.MAC.Start()
	r.Engine.RunUntil(100)

	// For every sensor type: a node may have a table only if the type is
	// mounted somewhere in its subtree (Fig. 4's structural property).
	for _, ty := range sensordata.AllTypes() {
		for _, id := range r.Tree.Nodes() {
			rt := r.Proto.Node(id).Table(ty)
			if rt == nil || rt.Empty() {
				continue
			}
			found := false
			for _, member := range r.Tree.Subtree(id) {
				if r.Mounted[member].Has(ty) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d holds a %v table but no subtree member mounts it", id, ty)
			}
		}
	}

	// A match-everything query for each type must reach every node that
	// mounts it (after warm-up, with δ=3% everything is reported).
	for _, ty := range sensordata.AllTypes() {
		lo, hi := ty.Span()
		q := query.Query{ID: int64(1000 + ty), Type: ty, Lo: lo, Hi: hi}
		truth := query.Resolve(q, r.Tree, r.Mounted,
			func(id topology.NodeID) float64 { return r.Gen.Value(id, ty) })
		rec := r.Proto.InjectQuery(q, truth)
		r.Engine.RunUntil(r.Engine.Now() + 30)
		for _, src := range truth.Sources {
			if !rec.Received[src] {
				t.Fatalf("type %v: mounted node %d missed a match-all query", ty, src)
			}
		}
	}
}

func TestRangeTablesTrackTruthWithinDelta(t *testing.T) {
	// After quiescence on frozen data, every stored aggregate must contain
	// the true subtree value range, inflated by at most depth*2δ slack.
	r := buildRunner(t, 25, func(c *scenario.Config) { c.FixedPct = 4 })
	for _, ty := range sensordata.AllTypes() {
		p := sensordata.DefaultParams(ty)
		p.NoiseSigma = 0
		p.DriftStep = 0
		p.DiurnalAmp = 0
		r.Gen.SetParams(ty, p)
	}
	r.Proto.Start()
	r.MAC.Start()
	r.Engine.RunUntil(120)

	ty := sensordata.Temperature
	deltaUnits := 4.0 / 100 * ty.SpanWidth()
	for _, id := range r.Tree.Nodes() {
		rt := r.Proto.Node(id).Table(ty)
		if rt == nil {
			continue
		}
		for _, c := range rt.Children() {
			stored, _ := rt.Child(c)
			// True range over c's subtree.
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, m := range r.Tree.Subtree(c) {
				if !r.Mounted[m].Has(ty) {
					continue
				}
				v := r.Gen.Value(m, ty)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if math.IsInf(lo, 1) {
				continue // no sensors of this type below c
			}
			depth := float64(r.Tree.MaxDepth() + 1)
			slack := deltaUnits * 2 * depth
			if stored.Min > lo+slack || stored.Max < hi-slack {
				t.Fatalf("node %d's row for child %d = [%v,%v] does not cover true [%v,%v] within slack %v",
					id, c, stored.Min, stored.Max, lo, hi, slack)
			}
		}
	}
}

func TestFullRunDirQAlwaysBeatsFloodingPerQuery(t *testing.T) {
	// Not just in aggregate: even adding the run's *entire* update and
	// estimate cost, DirQ must undercut flooding for the default workload.
	r := buildRunner(t, 26, nil)
	res := r.Run()
	dirqTotal := res.QueryCost.Total() + res.UpdateCost.Total() + res.EstimateCost.Total()
	if dirqTotal >= res.FloodCost {
		t.Fatalf("DirQ total %d (incl. estimates) >= flooding %d", dirqTotal, res.FloodCost)
	}
}

func TestSamplingIntegrationWithChurn(t *testing.T) {
	// Predictive sampling and node churn compose.
	r := buildRunner(t, 27, func(c *scenario.Config) {
		c.PredictiveSampling = true
		c.Epochs = 2500
	})
	leaf := r.Tree.Leaves()[0]
	if leaf != topology.Root {
		r.Engine.SchedulePrio(1200, lmac.PrioApp, func() { r.Proto.KillNode(leaf) })
	}
	res := r.Run()
	if res.Sampling.SkipFraction() <= 0 {
		t.Fatal("no sampling savings")
	}
	if err := r.Tree.Validate(); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
}

func TestEstimateCostScalesWithTreeNotQueries(t *testing.T) {
	// EHr distribution is hourly: its cost must be independent of the
	// query rate.
	slow := buildRunner(t, 28, func(c *scenario.Config) { c.QueryInterval = 50 }).Run()
	fast := buildRunner(t, 28, func(c *scenario.Config) { c.QueryInterval = 5 }).Run()
	if slow.EstimateCost.Total() != fast.EstimateCost.Total() {
		t.Fatalf("estimate cost varied with query rate: %d vs %d",
			slow.EstimateCost.Total(), fast.EstimateCost.Total())
	}
	if fast.QueryCost.Total() <= slow.QueryCost.Total() {
		t.Fatal("query cost did not grow with query rate")
	}
}

func TestProtocolObserverCountsConsistent(t *testing.T) {
	r := buildRunner(t, 29, nil)
	res := r.Run()
	for i, acc := range res.Accuracies {
		if acc.NumReceived < acc.NumSources-acc.NumMissed {
			t.Fatalf("query %d: received %d < reachable sources", i, acc.NumReceived)
		}
		if acc.NumWrong > acc.NumReceived {
			t.Fatalf("query %d: wrong %d > received %d", i, acc.NumWrong, acc.NumReceived)
		}
	}
	_ = core.Tuple{}
}

// Property: arbitrary interleavings of node deaths and rejoins never break
// the tree invariants, never leave dead-node rows in live range tables,
// and never strand a node that has a live eligible neighbor.
func TestPropertyChurnSequencesKeepInvariants(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		cfg := scenario.Default()
		cfg.Seed = seed
		cfg.NumNodes = 20
		cfg.RadioRange = 40 // dense: reattachment always possible
		cfg.Epochs = 10     // built but driven manually below
		r, err := scenario.Build(cfg)
		if err != nil {
			return true // invalid draw for the caps, not an invariant failure
		}
		r.Proto.Start()
		r.MAC.Start()
		r.Engine.RunUntil(30)

		alive := map[topology.NodeID]bool{}
		for _, id := range r.Tree.Nodes() {
			alive[id] = true
		}
		if len(ops) > 12 {
			ops = ops[:12]
		}
		for _, op := range ops {
			id := topology.NodeID(int(op)%(cfg.NumNodes-1) + 1)
			if alive[id] && op%2 == 0 {
				r.Proto.KillNode(id)
				alive[id] = false
			} else if !alive[id] {
				if err := r.Proto.JoinNode(id, sensordata.AllTypeSet()); err == nil {
					alive[id] = true
				}
			}
			// Let death detection and repairs settle.
			until := r.Engine.Now() + 10
			r.Engine.RunUntil(until)
		}
		r.Engine.RunUntil(r.Engine.Now() + 20)

		if err := r.Tree.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, id := range r.Tree.Nodes() {
			if !r.Channel.Alive(id) {
				t.Logf("seed %d: dead node %d still in tree", seed, id)
				return false
			}
			n := r.Proto.Node(id)
			for _, ty := range sensordata.AllTypes() {
				rt := n.Table(ty)
				if rt == nil {
					continue
				}
				for _, c := range rt.Children() {
					if !r.Channel.Alive(c) {
						t.Logf("seed %d: node %d keeps %v row for dead %d", seed, id, ty, c)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quickCheck(f, 15); err != nil {
		t.Fatal(err)
	}
}

// quickCheck is a tiny wrapper fixing the iteration count.
func quickCheck(f func(uint64, []uint8) bool, n int) error {
	return quick.Check(f, &quick.Config{MaxCount: n})
}
