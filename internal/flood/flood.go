package flood

import (
	"repro/internal/radio"
	"repro/internal/topology"
)

// Result describes one flooding operation.
type Result struct {
	// Reached lists every node that received (and re-broadcast) the query,
	// in BFS order from the origin. The origin itself is included: it
	// transmits the query too.
	Reached []topology.NodeID
	// Cost is the tx/rx unit cost of this flood alone.
	Cost radio.Cost
}

// Scratch holds reusable BFS state for repeated flood computations over
// the same graph, so the per-query flooding-baseline accounting in the
// simulation hot path does not allocate. The zero value is ready to use;
// a Scratch must not be shared between goroutines.
type Scratch struct {
	visited []bool
	order   []topology.NodeID
}

// bfs fills s.order with the live nodes reachable from origin in BFS
// order. The caller must have checked that origin is alive.
func (s *Scratch) bfs(g *topology.Graph, alive func(topology.NodeID) bool, origin topology.NodeID) {
	if cap(s.visited) < g.Len() {
		s.visited = make([]bool, g.Len())
	}
	s.visited = s.visited[:g.Len()]
	s.order = append(s.order[:0], origin)
	s.visited[origin] = true
	for i := 0; i < len(s.order); i++ {
		for _, nb := range g.Neighbors(s.order[i]) {
			if alive(nb) && !s.visited[nb] {
				s.visited[nb] = true
				s.order = append(s.order, nb)
			}
		}
	}
	// Un-mark only the nodes visited, so the next run starts clean without
	// an O(N) wipe.
	for _, id := range s.order {
		s.visited[id] = false
	}
}

// Disseminate floods msg from the origin across all live nodes reachable
// over live radio links, accounting costs on the channel's meter under
// radio.ClassFlood. Receivers registered on the channel hear the message
// once per live neighbor, exactly as a real flood would deliver duplicates.
func (s *Scratch) Disseminate(ch *radio.Channel, origin topology.NodeID, msg any) Result {
	g := ch.Graph()
	if !ch.Alive(origin) {
		return Result{}
	}
	before := ch.Meter().ByClass(radio.ClassFlood)

	s.bfs(g, ch.Alive, origin)
	// Every participant broadcasts exactly once.
	for _, id := range s.order {
		ch.Broadcast(id, radio.ClassFlood, msg)
	}

	after := ch.Meter().ByClass(radio.ClassFlood)
	return Result{
		Reached: append([]topology.NodeID(nil), s.order...),
		Cost:    radio.Cost{Tx: after.Tx - before.Tx, Rx: after.Rx - before.Rx},
	}
}

// CostOnly computes the cost of one flood without delivering anything or
// touching any meter — used for analytic comparisons: reached-node count
// plus twice the live-link count among reached nodes.
func (s *Scratch) CostOnly(g *topology.Graph, alive func(topology.NodeID) bool, origin topology.NodeID) radio.Cost {
	if !alive(origin) {
		return radio.Cost{}
	}
	s.bfs(g, alive, origin)
	var rx int64
	for _, id := range s.order {
		for _, nb := range g.Neighbors(id) {
			if alive(nb) {
				rx++ // each live link counted once per direction
			}
		}
	}
	return radio.Cost{Tx: int64(len(s.order)), Rx: rx}
}

// Disseminate is the Scratch-free convenience form of Scratch.Disseminate.
func Disseminate(ch *radio.Channel, origin topology.NodeID, msg any) Result {
	var s Scratch
	return s.Disseminate(ch, origin, msg)
}

// CostOnly is the Scratch-free convenience form of Scratch.CostOnly.
func CostOnly(g *topology.Graph, alive func(topology.NodeID) bool, origin topology.NodeID) radio.Cost {
	var s Scratch
	return s.CostOnly(g, alive, origin)
}
