// Package flood implements the paper's baseline: disseminating a query by
// flooding the entire network (§5.1). Every node that can be reached
// performs exactly one MAC broadcast per query — "even if a node does not
// have any other neighbor apart from the node it has received a message
// from, it still carries out a broadcast operation" — so the transmission
// cost is the number of reached nodes and the reception cost is twice the
// number of links among them.
package flood

import (
	"repro/internal/radio"
	"repro/internal/topology"
)

// Result describes one flooding operation.
type Result struct {
	// Reached lists every node that received (and re-broadcast) the query,
	// in BFS order from the origin. The origin itself is included: it
	// transmits the query too.
	Reached []topology.NodeID
	// Cost is the tx/rx unit cost of this flood alone.
	Cost radio.Cost
}

// Disseminate floods msg from the origin across all live nodes reachable
// over live radio links, accounting costs on the channel's meter under
// radio.ClassFlood. Receivers registered on the channel hear the message
// once per live neighbor, exactly as a real flood would deliver duplicates.
func Disseminate(ch *radio.Channel, origin topology.NodeID, msg any) Result {
	g := ch.Graph()
	if !ch.Alive(origin) {
		return Result{}
	}
	before := ch.Meter().ByClass(radio.ClassFlood)

	// BFS over live nodes to determine who participates.
	visited := make(map[topology.NodeID]bool, g.Len())
	order := []topology.NodeID{origin}
	visited[origin] = true
	for i := 0; i < len(order); i++ {
		for _, nb := range g.Neighbors(order[i]) {
			if ch.Alive(nb) && !visited[nb] {
				visited[nb] = true
				order = append(order, nb)
			}
		}
	}
	// Every participant broadcasts exactly once.
	for _, id := range order {
		ch.Broadcast(id, radio.ClassFlood, msg)
	}

	after := ch.Meter().ByClass(radio.ClassFlood)
	return Result{
		Reached: order,
		Cost:    radio.Cost{Tx: after.Tx - before.Tx, Rx: after.Rx - before.Rx},
	}
}

// CostOnly computes the cost of one flood without delivering anything or
// touching any meter — used for analytic comparisons: reached-node count
// plus twice the live-link count among reached nodes.
func CostOnly(g *topology.Graph, alive func(topology.NodeID) bool, origin topology.NodeID) radio.Cost {
	if !alive(origin) {
		return radio.Cost{}
	}
	visited := make(map[topology.NodeID]bool, g.Len())
	order := []topology.NodeID{origin}
	visited[origin] = true
	for i := 0; i < len(order); i++ {
		for _, nb := range g.Neighbors(order[i]) {
			if alive(nb) && !visited[nb] {
				visited[nb] = true
				order = append(order, nb)
			}
		}
	}
	var rx int64
	for _, id := range order {
		for _, nb := range g.Neighbors(id) {
			if alive(nb) {
				rx++ // each live link counted once per direction
			}
		}
	}
	return radio.Cost{Tx: int64(len(order)), Rx: rx}
}
