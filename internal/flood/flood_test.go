package flood

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/radio"
	"repro/internal/topology"
)

func TestFloodLineCost(t *testing.T) {
	g, err := topology.PlaceLine(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	res := Disseminate(ch, 0, "q")
	if len(res.Reached) != 5 {
		t.Fatalf("reached %d nodes, want 5", len(res.Reached))
	}
	// Eq. (3): N + 2*links = 5 + 2*4 = 13.
	if res.Cost.Tx != 5 || res.Cost.Rx != 8 {
		t.Fatalf("cost %+v, want tx=5 rx=8", res.Cost)
	}
	if res.Cost.Total() != 13 {
		t.Fatalf("total %d, want 13", res.Cost.Total())
	}
}

func TestFloodMatchesAnalyticOnKaryTree(t *testing.T) {
	// Simulation cross-check of eq. (4) for several (k, d).
	for _, c := range []struct{ k, d int }{{2, 4}, {3, 2}, {8, 2}, {2, 6}} {
		g, _, err := topology.BuildKaryTree(c.k, c.d)
		if err != nil {
			t.Fatal(err)
		}
		ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
		res := Disseminate(ch, topology.Root, nil)
		want, err := analytic.CFTotal(c.k, c.d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost.Total() != want {
			t.Fatalf("k=%d d=%d: simulated flood cost %d, analytic %d",
				c.k, c.d, res.Cost.Total(), want)
		}
	}
}

func TestFloodSkipsDeadNodes(t *testing.T) {
	g, err := topology.PlaceLine(5, 1) // 0-1-2-3-4
	if err != nil {
		t.Fatal(err)
	}
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	ch.SetAlive(2, false) // partitions the line
	res := Disseminate(ch, 0, nil)
	if len(res.Reached) != 2 {
		t.Fatalf("reached %v, want [0 1]", res.Reached)
	}
	// tx = 2 (nodes 0,1 broadcast), rx = 2 (one live link, both directions).
	if res.Cost.Tx != 2 || res.Cost.Rx != 2 {
		t.Fatalf("cost %+v, want tx=2 rx=2", res.Cost)
	}
}

func TestFloodFromDeadOrigin(t *testing.T) {
	g, _ := topology.PlaceLine(3, 1)
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	ch.SetAlive(0, false)
	res := Disseminate(ch, 0, nil)
	if len(res.Reached) != 0 || res.Cost.Total() != 0 {
		t.Fatalf("dead-origin flood produced %+v", res)
	}
}

func TestFloodDeliversDuplicates(t *testing.T) {
	// On a triangle each node hears the query from both neighbors.
	g := topology.NewGraph(make([]topology.Position, 3))
	for _, e := range [][2]topology.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	heard := map[topology.NodeID]int{}
	for i := 0; i < 3; i++ {
		id := topology.NodeID(i)
		ch.Listen(id, func(from topology.NodeID, msg any) { heard[id]++ })
	}
	res := Disseminate(ch, 0, nil)
	for i := 0; i < 3; i++ {
		if heard[topology.NodeID(i)] != 2 {
			t.Fatalf("node %d heard %d copies, want 2", i, heard[topology.NodeID(i)])
		}
	}
	// N + 2*links = 3 + 6 = 9.
	if res.Cost.Total() != 9 {
		t.Fatalf("triangle flood cost %d, want 9", res.Cost.Total())
	}
}

func TestCostOnlyAgreesWithDisseminate(t *testing.T) {
	g, _, err := topology.BuildKaryTree(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	sim := Disseminate(ch, topology.Root, nil)
	dry := CostOnly(g, ch.Alive, topology.Root)
	if sim.Cost != dry {
		t.Fatalf("CostOnly %+v != Disseminate %+v", dry, sim.Cost)
	}
}

func TestCostOnlyDeadOrigin(t *testing.T) {
	g, _ := topology.PlaceLine(3, 1)
	dead := func(topology.NodeID) bool { return false }
	if c := CostOnly(g, dead, 0); c.Total() != 0 {
		t.Fatalf("cost %+v for dead origin", c)
	}
}
