// Package flood implements the paper's baseline: disseminating a query by
// flooding the entire network (§5.1). Every node that can be reached
// performs exactly one MAC broadcast per query — "even if a node does not
// have any other neighbor apart from the node it has received a message
// from, it still carries out a broadcast operation" — so the transmission
// cost is the number of reached nodes and the reception cost is twice the
// number of links among them.
//
// In the repo's layer map this is the baseline layer: scenario charges
// every injected query's flooding-equivalent cost through a reusable
// Scratch, and the DisseminateByFlooding mode routes real traffic here
// instead of through core's directed dissemination.
package flood
