package lmac

import (
	"fmt"
	"sort"

	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// PrioApp and PrioMAC order same-epoch simulation events: application logic
// (sensor acquisition, query injection) runs before the MAC frame, which
// runs before end-of-epoch bookkeeping.
const (
	PrioApp     = 0
	PrioMAC     = 10
	PrioMetrics = 20
)

// DefaultDeadThreshold is the number of consecutive missed frames after
// which a neighbor is declared dead.
const DefaultDeadThreshold = 4

// queuedMsg is one pending data transmission.
type queuedMsg struct {
	to        topology.NodeID // -1 for broadcast/multicast
	targets   []topology.NodeID
	class     radio.Class
	msg       any
	broadcast bool
}

// nodeState is the per-node MAC state. Neighbor liveness lives in the
// MAC's flat edge-parallel lastHeard array, not here.
type nodeState struct {
	id         topology.NodeID
	slot       int
	registered bool
	queue      []queuedMsg
	// spare is the queue buffer flushed last frame, kept for reuse: queue
	// and spare ping-pong so steady-state traffic never reallocates.
	spare []queuedMsg
}

// unheard is the lastHeard sentinel for "this neighbor is not in the
// node's MAC table".
const unheard = int64(-1) << 62

// MAC is the link layer for the whole network. A single object manages all
// nodes' MAC state; per-node behaviour remains strictly local (each node
// only reads its own queue and neighbor table).
type MAC struct {
	engine  *sim.Engine
	channel *radio.Channel
	nodes   []nodeState
	slots   int
	frame   int64
	started bool

	deadThreshold int64

	// order lists every node sorted by (slot, id). Slots are assigned once
	// at construction, so the frame iteration order is static; RunFrame
	// skips unregistered/dead nodes while iterating.
	order []topology.NodeID
	// orderPos inverts order: the frame position owned by each node.
	orderPos []int32
	// targetFree pools multicast address lists: Multicast copies the
	// caller's targets into a pooled slice, and the flush returns it after
	// transmission.
	targetFree [][]topology.NodeID
	// deadScratch/deadPosScratch are reused by the per-frame liveness
	// sweep (dead neighbor IDs and their edge positions).
	deadScratch    []topology.NodeID
	deadPosScratch []int32

	// Flat neighbor-table index. The channel graph is static for the
	// MAC's lifetime, so per-(node, neighbor) liveness stamps live in one
	// edge-parallel array instead of a map per node: entry adjOff[i]+k is
	// node i's stamp for its k-th (sorted) radio neighbor adjFlat[...],
	// and revEdge maps each directed edge to its reverse so a beacon
	// updates every receiver's table with one indexed store.
	adjOff    []int32
	adjFlat   []topology.NodeID
	revEdge   []int32
	lastHeard []int64

	// Quiescent-frame machinery. While the membership is steady (no kill,
	// join or power flip in flight) a frame only needs to visit nodes with
	// queued traffic: beacons carry no payload and their only effect —
	// advancing every live pair's last-heard stamp — is virtualized and
	// re-materialized on demand. Membership changes open a "turbulence"
	// window of full frames long enough for every death to be detected
	// through the original beacon bookkeeping, after which frames go quiet
	// again. A silent frame (no queued traffic anywhere) short-circuits to
	// a frame-counter increment.
	quiesce        bool  // fast path enabled (default true)
	turbulentUntil int64 // frames below this run the full beacon sweep
	stale          bool  // lastHeard tables lag behind the frame counter
	dirtyHeap      []int32
	dirtyNext      []int32
	inDirty        []bool
	inFrame        bool
	framePos       int32

	// Sharded-apply staging. While staging, each shard's first-dirty
	// events go to its own staged list (shard-local, so concurrent
	// markDirty never touches a shared slice); EndStaging folds the lists
	// into dirtyNext in shard order. Quiet frames drain dirtyNext through
	// a position min-heap and full frames ignore it, so dirtyNext
	// membership — not order — is what matters, and the fold is exact.
	staging bool
	assign  []int32   // node -> shard (set by ConfigureSharding)
	staged  [][]int32 // per-shard pending dirty positions

	receivers []func(from topology.NodeID, msg any)
	onDead    func(at topology.NodeID, dead topology.NodeID)
	onNew     func(at topology.NodeID, fresh topology.NodeID)

	tel Telemetry
}

// Telemetry is the MAC's instrument set. All fields may be nil (the
// instruments are nil-safe); nothing here feeds back into scheduling, so
// an instrumented MAC runs the identical frame sequence.
type Telemetry struct {
	// FramesFull counts frames that ran the full beacon + liveness sweep
	// (turbulence windows, or quiescence disabled).
	FramesFull *telemetry.Counter
	// FramesQuiet counts quiescent frames that visited only dirty nodes.
	FramesQuiet *telemetry.Counter
	// FramesSilent counts quiescent frames with no queued traffic at all
	// (the short-circuit to a frame-counter increment).
	FramesSilent *telemetry.Counter
	// MessagesFlushed counts queued data messages handed to the channel.
	MessagesFlushed *telemetry.Counter
	// StagedMerged counts dirty-list entries folded from per-shard
	// staging buffers into the shared dirty list at EndStaging.
	StagedMerged *telemetry.Counter
}

// SetTelemetry binds (or, with the zero value, unbinds) the MAC's
// instruments.
func (m *MAC) SetTelemetry(t Telemetry) { m.tel = t }

// New builds a MAC over the channel's graph and assigns the TDMA schedule.
// All nodes that are alive on the channel are registered immediately.
func New(engine *sim.Engine, channel *radio.Channel) (*MAC, error) {
	g := channel.Graph()
	m := &MAC{
		engine:        engine,
		channel:       channel,
		nodes:         make([]nodeState, g.Len()),
		receivers:     make([]func(topology.NodeID, any), g.Len()),
		deadThreshold: DefaultDeadThreshold,
	}
	slots, err := AssignSlots(g)
	if err != nil {
		return nil, err
	}
	maxSlot := 0
	for i := range m.nodes {
		m.nodes[i] = nodeState{
			id:   topology.NodeID(i),
			slot: slots[i],
		}
		if slots[i] > maxSlot {
			maxSlot = slots[i]
		}
	}
	m.slots = maxSlot + 1
	// Flat neighbor-table index over the (static) channel graph.
	n := g.Len()
	m.adjOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		m.adjOff[i+1] = m.adjOff[i] + int32(g.Degree(topology.NodeID(i)))
	}
	m.adjFlat = make([]topology.NodeID, m.adjOff[n])
	m.revEdge = make([]int32, m.adjOff[n])
	m.lastHeard = make([]int64, m.adjOff[n])
	for i := 0; i < n; i++ {
		copy(m.adjFlat[m.adjOff[i]:m.adjOff[i+1]], g.Neighbors(topology.NodeID(i)))
	}
	for i := 0; i < n; i++ {
		row := m.adjFlat[m.adjOff[i]:m.adjOff[i+1]]
		for k, nb := range row {
			nbRow := m.adjFlat[m.adjOff[nb]:m.adjOff[nb+1]]
			p := sort.Search(len(nbRow), func(j int) bool { return nbRow[j] >= topology.NodeID(i) })
			m.revEdge[int(m.adjOff[i])+k] = m.adjOff[nb] + int32(p)
		}
	}
	for e := range m.lastHeard {
		m.lastHeard[e] = unheard
	}
	m.order = make([]topology.NodeID, len(m.nodes))
	for i := range m.order {
		m.order[i] = topology.NodeID(i)
	}
	sort.Slice(m.order, func(i, j int) bool {
		a, b := &m.nodes[m.order[i]], &m.nodes[m.order[j]]
		if a.slot != b.slot {
			return a.slot < b.slot
		}
		return a.id < b.id
	})
	m.orderPos = make([]int32, len(m.nodes))
	for pos, id := range m.order {
		m.orderPos[id] = int32(pos)
	}
	m.inDirty = make([]bool, len(m.nodes))
	m.quiesce = true
	for i := range m.nodes {
		if channel.Alive(topology.NodeID(i)) {
			m.register(topology.NodeID(i))
		}
	}
	channel.OnAliveChange(m.onAliveChange)
	return m, nil
}

// SetQuiescence toggles the steady-state fast path (on by default).
// Disabling it forces the full beacon sweep every frame — the pre-gating
// behaviour, kept as the "naive" reference for equivalence tests and the
// scale benchmarks.
func (m *MAC) SetQuiescence(enabled bool) { m.quiesce = enabled }

// onAliveChange is wired to the channel: any power flip first materializes
// the virtualized liveness stamps (while the old power state is still in
// force) and then opens a turbulence window of full frames, so deaths are
// detected — and joins announced — exactly as the original per-frame
// beacon bookkeeping would have.
func (m *MAC) onAliveChange(topology.NodeID, bool) {
	m.materialize()
	until := m.frame + m.deadThreshold + 2
	if until > m.turbulentUntil {
		m.turbulentUntil = until
	}
}

// materialize brings every lastHeard table up to date with the quiescent
// invariant: all mutually live registered neighbors heard each other in
// the previous frame. A no-op unless quiet frames have run since the last
// full one.
func (m *MAC) materialize() {
	if !m.stale {
		return
	}
	m.stale = false
	for i := range m.nodes {
		st := &m.nodes[i]
		if !st.registered || !m.channel.Alive(st.id) {
			continue
		}
		off := m.adjOff[i]
		row := m.adjFlat[off:m.adjOff[i+1]]
		for k, nb := range row {
			if m.nodes[nb].registered && m.channel.Alive(nb) {
				m.lastHeard[int(off)+k] = m.frame - 1
			}
		}
	}
}

// markDirty records that a node has traffic queued for its next slot.
func (m *MAC) markDirty(id topology.NodeID) {
	if m.inDirty[id] {
		return
	}
	m.inDirty[id] = true
	pos := m.orderPos[id]
	if m.staging {
		// Parallel apply: only the shard that owns id queues from it, so
		// inDirty[id] and the shard's staged list are touched by exactly
		// one goroutine. (inFrame is never true here — frames are serial.)
		m.staged[m.assign[id]] = append(m.staged[m.assign[id]], pos)
		return
	}
	if m.inFrame && pos > m.framePos {
		m.dirtyPush(pos)
	} else {
		m.dirtyNext = append(m.dirtyNext, pos)
	}
}

// ConfigureSharding installs the node→shard assignment the staged-merge
// path needs. Call once, before the first BeginStaging.
func (m *MAC) ConfigureSharding(assign []int32, shards int) {
	if len(assign) != len(m.nodes) {
		panic(fmt.Sprintf("lmac: shard assignment covers %d of %d nodes", len(assign), len(m.nodes)))
	}
	m.assign = assign
	m.staged = make([][]int32, shards)
}

// BeginStaging redirects markDirty into per-shard staging buffers for the
// duration of a parallel apply phase. Requires ConfigureSharding.
func (m *MAC) BeginStaging() {
	if m.staged == nil {
		panic("lmac: BeginStaging without ConfigureSharding")
	}
	m.staging = true
}

// EndStaging folds the per-shard staging buffers into the shared dirty
// list, in shard order, and re-enables direct marking. Quiet frames pop
// dirty positions through a min-heap, so the fold order never reaches
// the wire — only membership does, and that matches the serial run.
func (m *MAC) EndStaging() {
	m.staging = false
	merged := int64(0)
	for s := range m.staged {
		m.dirtyNext = append(m.dirtyNext, m.staged[s]...)
		merged += int64(len(m.staged[s]))
		m.staged[s] = m.staged[s][:0]
	}
	m.tel.StagedMerged.Add(merged)
}

// dirtyPush adds a frame position to the current frame's min-heap.
func (m *MAC) dirtyPush(pos int32) {
	h := append(m.dirtyHeap, pos)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= pos {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = pos
	m.dirtyHeap = h
}

// dirtyPop removes and returns the smallest queued frame position.
func (m *MAC) dirtyPop() int32 {
	h := m.dirtyHeap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	m.dirtyHeap = h[:n]
	h = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h[c+1] < h[c] {
			c++
		}
		if h[c] >= last {
			break
		}
		h[i] = h[c]
		i = c
	}
	if n > 0 {
		h[i] = last
	}
	return top
}

// getTargets returns a pooled slice holding a copy of targets.
func (m *MAC) getTargets(targets []topology.NodeID) []topology.NodeID {
	var buf []topology.NodeID
	if n := len(m.targetFree); n > 0 {
		buf = m.targetFree[n-1][:0]
		m.targetFree = m.targetFree[:n-1]
	}
	return append(buf, targets...)
}

// putTargets returns a slice obtained from getTargets to the pool.
func (m *MAC) putTargets(buf []topology.NodeID) {
	m.targetFree = append(m.targetFree, buf)
}

// register marks a node as MAC-active and primes its neighbor table with
// its currently-live radio neighbors (LMAC learns these during its join
// phase; we start post-convergence, as the paper's simulations do).
func (m *MAC) register(id topology.NodeID) {
	st := &m.nodes[id]
	st.registered = true
	off := m.adjOff[id]
	row := m.adjFlat[off:m.adjOff[id+1]]
	for k, nb := range row {
		if m.channel.Alive(nb) {
			// Primed as "heard just before this frame": a neighbor that
			// stays silent in the current frame has missed one frame.
			m.lastHeard[int(off)+k] = m.frame - 1
		} else {
			m.lastHeard[int(off)+k] = unheard
		}
	}
}

// Slots returns the frame length in slots.
func (m *MAC) Slots() int { return m.slots }

// Slot returns the slot owned by a node.
func (m *MAC) Slot(id topology.NodeID) int { return m.nodes[id].slot }

// Frame returns the number of completed frames.
func (m *MAC) Frame() int64 { return m.frame }

// SetDeadThreshold overrides the missed-frame count before a neighbor is
// declared dead.
func (m *MAC) SetDeadThreshold(frames int64) {
	if frames < 1 {
		panic("lmac: dead threshold must be >= 1")
	}
	m.deadThreshold = frames
}

// Listen registers the upper-layer receive handler for a node.
func (m *MAC) Listen(id topology.NodeID, fn func(from topology.NodeID, msg any)) {
	m.receivers[id] = fn
}

// OnNeighborDead registers the cross-layer callback fired at a node when one
// of its neighbors is detected dead (§4.2: "When LMAC detects that a
// neighboring node has died, it sends a notification to DirQ").
func (m *MAC) OnNeighborDead(fn func(at, dead topology.NodeID)) { m.onDead = fn }

// OnNeighborNew registers the callback fired at a node when a new neighbor
// is heard for the first time.
func (m *MAC) OnNeighborNew(fn func(at, fresh topology.NodeID)) { m.onNew = fn }

// Neighbors returns the sorted live-neighbor view of a node's MAC table.
func (m *MAC) Neighbors(id topology.NodeID) []topology.NodeID {
	m.materialize()
	off := m.adjOff[id]
	row := m.adjFlat[off:m.adjOff[id+1]]
	out := make([]topology.NodeID, 0, len(row))
	for k, nb := range row { // row is sorted, so out is too
		if m.lastHeard[int(off)+k] != unheard {
			out = append(out, nb)
		}
	}
	return out
}

// Unicast queues a data message for transmission to a radio neighbor in the
// sender's next slot.
func (m *MAC) Unicast(from, to topology.NodeID, class radio.Class, msg any) {
	st := &m.nodes[from]
	st.queue = append(st.queue, queuedMsg{to: to, class: class, msg: msg})
	m.markDirty(from)
}

// Broadcast queues a data message for transmission to all radio neighbors
// in the sender's next slot.
func (m *MAC) Broadcast(from topology.NodeID, class radio.Class, msg any) {
	st := &m.nodes[from]
	st.queue = append(st.queue, queuedMsg{to: -1, broadcast: true, class: class, msg: msg})
	m.markDirty(from)
}

// Multicast queues a data message addressed to a specific set of radio
// neighbors; it is sent as one transmission in the sender's next slot.
func (m *MAC) Multicast(from topology.NodeID, targets []topology.NodeID, class radio.Class, msg any) {
	if len(targets) == 0 {
		return
	}
	if m.staging {
		// The address-list pool is shared MAC state; nothing on the
		// parallel apply path multicasts (updates are parent unicasts),
		// so trip loudly rather than race quietly.
		panic(fmt.Sprintf("lmac: multicast from %d during staged (parallel) apply", from))
	}
	st := &m.nodes[from]
	st.queue = append(st.queue, queuedMsg{
		to: -1, targets: m.getTargets(targets),
		class: class, msg: msg,
	})
	m.markDirty(from)
}

// QueueLen reports the number of messages pending at a node.
func (m *MAC) QueueLen(id topology.NodeID) int { return len(m.nodes[id].queue) }

// Start registers frame processing as an engine ticker firing at every
// tick from the engine's current time on. Call once.
func (m *MAC) Start() {
	if m.started {
		panic("lmac: Start called twice")
	}
	m.started = true
	m.engine.AddTicker(PrioMAC, m.RunFrame)
}

// RunFrame executes one complete TDMA frame. While membership is turbulent
// (a kill, join or power flip within the last dead-threshold frames) every
// registered live node, in slot order, beacons and flushes its queue, then
// liveness tables are swept and death/new-neighbor notifications fire.
// Otherwise only nodes with queued traffic are visited — beacons are
// virtual and a silent frame short-circuits entirely.
func (m *MAC) RunFrame() {
	if m.quiesce && m.frame >= m.turbulentUntil {
		m.runQuietFrame()
		return
	}
	m.runFullFrame()
}

// flush transmits a node's queue as it stood at the start of its slot;
// messages enqueued by the node's own deliveries wait for the next slot
// (they land in the swapped-in spare buffer).
func (m *MAC) flush(id topology.NodeID, st *nodeState) {
	pending := st.queue
	st.queue = st.spare[:0]
	m.tel.MessagesFlushed.Add(int64(len(pending)))
	for _, qm := range pending {
		switch {
		case qm.broadcast:
			m.channel.Broadcast(id, qm.class, qm.msg)
		case qm.targets != nil:
			m.channel.Multicast(id, qm.targets, qm.class, qm.msg)
		default:
			m.channel.Unicast(id, qm.to, qm.class, qm.msg)
		}
	}
	// Recycle: address lists go back to the pool, message references
	// are dropped, and the flushed buffer becomes next frame's spare.
	for i := range pending {
		if pending[i].targets != nil {
			m.putTargets(pending[i].targets)
		}
		pending[i] = queuedMsg{}
	}
	st.spare = pending[:0]
}

// runQuietFrame is the steady-membership frame: visit only dirty nodes, in
// the same (slot, id) order the full frame walks, and skip the beacon and
// liveness machinery altogether.
func (m *MAC) runQuietFrame() {
	if len(m.dirtyNext) > 0 {
		for _, pos := range m.dirtyNext {
			m.dirtyPush(pos)
		}
		m.dirtyNext = m.dirtyNext[:0]
	}
	if len(m.dirtyHeap) > 0 {
		m.tel.FramesQuiet.Inc()
		m.inFrame = true
		m.framePos = -1
		for len(m.dirtyHeap) > 0 {
			pos := m.dirtyPop()
			m.framePos = pos
			id := m.order[pos]
			m.inDirty[id] = false
			st := &m.nodes[id]
			if !st.registered || !m.channel.Alive(id) || len(st.queue) == 0 {
				continue // stale entry: killed, or already flushed by a full frame
			}
			m.flush(id, st)
		}
		m.inFrame = false
	} else {
		m.tel.FramesSilent.Inc()
	}
	m.stale = true
	m.frame++
}

// runFullFrame is the original frame: beacon sweep, queue flush, liveness
// sweep. It runs during turbulence windows and when quiescence is disabled.
func (m *MAC) runFullFrame() {
	m.tel.FramesFull.Inc()
	m.materialize()
	// Slot order is static (slots are assigned once), so the frame walks
	// the precomputed (slot, id) order and filters liveness inline.
	for _, id := range m.order {
		st := &m.nodes[id]
		if !st.registered || !m.channel.Alive(id) {
			continue // never joined, or died earlier within this very frame
		}
		// Beacon: every live radio neighbor hears us (un-metered control).
		// revEdge locates our entry in each receiver's table directly.
		off := m.adjOff[id]
		row := m.adjFlat[off:m.adjOff[id+1]]
		for k, nb := range row {
			if !m.channel.Alive(nb) || !m.nodes[nb].registered {
				continue
			}
			w := m.revEdge[int(off)+k]
			if m.lastHeard[w] == unheard && m.onNew != nil {
				m.lastHeard[w] = m.frame
				m.onNew(nb, id)
			} else {
				m.lastHeard[w] = m.frame
			}
		}
		if len(st.queue) > 0 {
			m.flush(id, st)
		}
	}

	// Post-frame liveness sweep. Adjacency rows are sorted, so deaths are
	// collected — and onDead notifications fire — in ascending neighbor
	// order, which keeps same-frame tree surgery deterministic.
	for i := range m.nodes {
		st := &m.nodes[i]
		if !st.registered || !m.channel.Alive(topology.NodeID(i)) {
			continue
		}
		dead := m.deadScratch[:0]
		deadPos := m.deadPosScratch[:0]
		off := m.adjOff[i]
		row := m.adjFlat[off:m.adjOff[i+1]]
		for k, nb := range row {
			last := m.lastHeard[int(off)+k]
			if last != unheard && m.frame-last >= m.deadThreshold {
				dead = append(dead, nb)
				deadPos = append(deadPos, off+int32(k))
			}
		}
		for k, nb := range dead {
			m.lastHeard[deadPos[k]] = unheard
			if m.onDead != nil {
				m.onDead(topology.NodeID(i), nb)
			}
		}
		m.deadScratch = dead[:0]
		m.deadPosScratch = deadPos[:0]
	}
	m.frame++
}

// installListener wires the channel's receiver for a node to the MAC's
// upper-layer handler table.
func (m *MAC) installListener(id topology.NodeID) {
	m.channel.Listen(id, func(from topology.NodeID, msg any) {
		if r := m.receivers[id]; r != nil {
			r(from, msg)
		}
	})
}

// Kill powers a node off: it stops beaconing and transmitting immediately.
// Neighbors will detect the death after the dead-threshold elapses.
func (m *MAC) Kill(id topology.NodeID) {
	if id == topology.Root {
		panic("lmac: killing the root/sink is not modelled")
	}
	m.channel.SetAlive(id, false)
	m.nodes[id].queue = nil
	m.nodes[id].registered = false
}

// Join powers on a (previously dead or never-started) node. Its slot was
// pre-assigned by the global schedule; its neighbors will fire
// OnNeighborNew when they first hear its beacon.
func (m *MAC) Join(id topology.NodeID) {
	m.channel.SetAlive(id, true)
	// Announce even when the power flag did not flip (a node that was
	// powered but never registered): the join must still leave the quiet
	// path so neighbors hear the first beacon.
	m.onAliveChange(id, true)
	m.register(id)
	m.installListener(id)
}

// AssignSlots computes a TDMA schedule in which no two nodes within two hops
// of each other share a slot — the LMAC property that makes slots
// collision-free at every receiver. Nodes pick the lowest free slot in
// BFS-from-root order, mirroring LMAC's gateway-outward wave of slot
// adoption. It returns the slot per node.
func AssignSlots(g *topology.Graph) ([]int, error) {
	n := g.Len()
	slots := make([]int, n)
	for i := range slots {
		slots[i] = -1
	}
	if n == 0 {
		return slots, nil
	}
	order := g.ReachableFrom(topology.Root)
	if len(order) != n {
		return nil, fmt.Errorf("lmac: graph is not connected (%d of %d reachable)", len(order), n)
	}
	// Generation-stamped "used" marks replace a per-node map: one shared
	// slice, reset by bumping the generation counter.
	usedStamp := make([]int32, 64)
	gen := int32(0)
	mark := func(s int) {
		for s >= len(usedStamp) {
			usedStamp = append(usedStamp, 0)
		}
		usedStamp[s] = gen
	}
	for _, id := range order {
		gen++
		for _, nb := range g.Neighbors(id) {
			if slots[nb] >= 0 {
				mark(slots[nb])
			}
			for _, nb2 := range g.Neighbors(nb) {
				if nb2 != id && slots[nb2] >= 0 {
					mark(slots[nb2])
				}
			}
		}
		s := 0
		for s < len(usedStamp) && usedStamp[s] == gen {
			s++
		}
		slots[id] = s
	}
	return slots, nil
}

// VerifySlots checks the two-hop uniqueness property of a slot assignment.
func VerifySlots(g *topology.Graph, slots []int) error {
	for id := 0; id < g.Len(); id++ {
		for _, nb := range g.Neighbors(topology.NodeID(id)) {
			if slots[id] == slots[nb] {
				return fmt.Errorf("lmac: 1-hop slot clash between %d and %d (slot %d)", id, nb, slots[id])
			}
			for _, nb2 := range g.Neighbors(nb) {
				if int(nb2) != id && slots[id] == slots[nb2] {
					return fmt.Errorf("lmac: 2-hop slot clash between %d and %d (slot %d)", id, nb2, slots[id])
				}
			}
		}
	}
	return nil
}

// Init wires the channel listeners for all nodes. Call after constructing
// the MAC and registering upper-layer receivers.
func (m *MAC) Init() {
	for i := range m.nodes {
		m.installListener(topology.NodeID(i))
	}
}
