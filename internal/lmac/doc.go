// Package lmac reproduces the behaviour DirQ needs from LMAC (van Hoesel &
// Havinga, 2004): a TDMA MAC with a distributed, self-organizing schedule in
// which every node owns one time slot per frame that is unique within its
// two-hop neighborhood, plus the cross-layer interface of §4.2 of the DirQ
// paper — notifications when a neighboring node dies or appears.
//
// One frame corresponds to one simulation epoch. During its slot a node
// implicitly beacons (which carries neighborhood liveness, as LMAC's control
// section does) and flushes its queued data messages. Beacons are not
// metered: the paper's §5 cost model counts only query and update messages,
// and MAC control overhead is identical for DirQ and flooding.
//
// In the repo's layer map this is the MAC layer between radio and core:
// DirQ nodes hand Update Messages and query forwards to MAC queues, and
// one RunFrame per epoch delivers them. The frame loop reuses its slot
// order, queue buffers and multicast address lists, so steady-state
// traffic does not allocate.
//
// Frames are quiescence-gated: while membership is steady, a frame visits
// only nodes with queued traffic (in the same slot order as the full
// sweep) and a silent frame short-circuits to a counter increment, with
// beacon bookkeeping virtualized and re-materialized on demand. Any kill,
// join or power flip opens a window of full frames long enough for the
// original beacon-miss detection to run unchanged, so cross-layer death
// and join notifications fire at exactly the epochs they always did.
package lmac
