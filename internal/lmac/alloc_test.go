package lmac

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
)

// allocNet builds a small random network with a started channel.
func allocNet(t *testing.T) (*MAC, *topology.Graph) {
	t.Helper()
	rng := sim.NewRNG(6)
	g, err := topology.PlaceRandom(topology.DefaultPlacement(), rng)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	m, err := New(engine, ch)
	if err != nil {
		t.Fatal(err)
	}
	m.Init()
	return m, g
}

// TestQuietFrameAllocFree pins the steady-state TDMA frame at zero
// allocations: enqueue a unicast and a multicast, run the frame that
// flushes them, repeat. This is the per-epoch link-layer cost at every
// network size, so it must stay off the heap.
func TestQuietFrameAllocFree(t *testing.T) {
	m, g := allocNet(t)
	uniTo := g.Neighbors(1)[0]
	targets := g.Neighbors(3)

	// Warm up queues, spares, the multicast pool and the dirty heap.
	for i := 0; i < 5; i++ {
		m.Unicast(1, uniTo, radio.ClassUpdate, nil)
		m.Multicast(3, targets, radio.ClassQuery, nil)
		m.RunFrame()
	}

	allocs := testing.AllocsPerRun(1000, func() {
		m.Unicast(1, uniTo, radio.ClassUpdate, nil)
		m.Multicast(3, targets, radio.ClassQuery, nil)
		m.RunFrame()
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame allocates %.1f objects, want 0", allocs)
	}
}

// TestSilentFrameAllocFreeAndCheap pins the silent-frame fast path: with
// no queued traffic anywhere a frame is allocation-free (and, by
// construction, touches no per-node state at all).
func TestSilentFrameAllocFreeAndCheap(t *testing.T) {
	m, _ := allocNet(t)
	for i := 0; i < 3; i++ {
		m.RunFrame()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.RunFrame()
	})
	if allocs != 0 {
		t.Fatalf("silent frame allocates %.1f objects, want 0", allocs)
	}
}

// TestQuietFrameMatchesFullFrameDeliveries cross-checks the dirty-list
// fast path against the full sweep: the same enqueue pattern must produce
// identical delivery sequences and meter readings whether quiescence is
// enabled or not.
func TestQuietFrameMatchesFullFrameDeliveries(t *testing.T) {
	type delivery struct {
		at, from topology.NodeID
		msg      any
	}
	run := func(quiesce bool) ([]delivery, radio.Cost) {
		rng := sim.NewRNG(6)
		g, err := topology.PlaceRandom(topology.DefaultPlacement(), rng)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.NewEngine()
		meter := radio.NewMeter(g.Len())
		ch := radio.NewChannel(g, meter)
		m, err := New(engine, ch)
		if err != nil {
			t.Fatal(err)
		}
		m.SetQuiescence(quiesce)
		var got []delivery
		for i := 0; i < g.Len(); i++ {
			id := topology.NodeID(i)
			m.Listen(id, func(from topology.NodeID, msg any) {
				got = append(got, delivery{at: id, from: from, msg: msg})
				// Relay once to exercise mid-frame dirtying (back to the
				// sender, which is a radio neighbor by construction).
				if s, ok := msg.(string); ok && s == "relay" {
					m.Unicast(id, from, radio.ClassQuery, "done")
				}
			})
		}
		m.Init()
		for frame := 0; frame < 12; frame++ {
			switch frame {
			case 1:
				m.Unicast(topology.Root, g.Neighbors(topology.Root)[0], radio.ClassUpdate, "u")
			case 3:
				m.Multicast(2, g.Neighbors(2), radio.ClassQuery, "relay")
			case 7:
				m.Broadcast(4, radio.ClassEstimate, "e")
			}
			m.RunFrame()
		}
		return got, meter.Total()
	}

	quiet, quietCost := run(true)
	full, fullCost := run(false)
	if quietCost != fullCost {
		t.Fatalf("meter diverged: quiet %+v vs full %+v", quietCost, fullCost)
	}
	if len(quiet) != len(full) {
		t.Fatalf("delivery count diverged: quiet %d vs full %d", len(quiet), len(full))
	}
	for i := range quiet {
		if quiet[i] != full[i] {
			t.Fatalf("delivery %d diverged: quiet %+v vs full %+v", i, quiet[i], full[i])
		}
	}
}
