package lmac

import (
	"testing"
	"testing/quick"

	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
)

func newTestNet(t *testing.T, g *topology.Graph) (*sim.Engine, *radio.Channel, *MAC) {
	t.Helper()
	engine := sim.NewEngine()
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	m, err := New(engine, ch)
	if err != nil {
		t.Fatal(err)
	}
	m.Init()
	return engine, ch, m
}

func lineNet(t *testing.T, n int) (*sim.Engine, *radio.Channel, *MAC) {
	t.Helper()
	g, err := topology.PlaceLine(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return newTestNet(t, g)
}

func TestAssignSlotsLine(t *testing.T) {
	g, err := topology.PlaceLine(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := AssignSlots(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySlots(g, slots); err != nil {
		t.Fatal(err)
	}
	// On a line, 3 slots suffice (2-hop coloring of a path).
	max := 0
	for _, s := range slots {
		if s > max {
			max = s
		}
	}
	if max > 2 {
		t.Fatalf("line needed %d slots, want <= 3", max+1)
	}
}

func TestAssignSlotsDisconnected(t *testing.T) {
	g := topology.NewGraph(make([]topology.Position, 3))
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := AssignSlots(g); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestVerifySlotsDetectsClash(t *testing.T) {
	g, _ := topology.PlaceLine(3, 1)
	if err := VerifySlots(g, []int{0, 1, 0}); err == nil {
		t.Fatal("2-hop clash (0 and 2 share slot) not detected")
	}
	if err := VerifySlots(g, []int{0, 0, 1}); err == nil {
		t.Fatal("1-hop clash not detected")
	}
	if err := VerifySlots(g, []int{0, 1, 2}); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
}

func TestUnicastDeliveredInFrame(t *testing.T) {
	_, _, m := lineNet(t, 3)
	var got any
	var from topology.NodeID = -1
	m.Listen(1, func(f topology.NodeID, msg any) { from, got = f, msg })
	m.Unicast(0, 1, radio.ClassUpdate, "up")
	m.RunFrame()
	if from != 0 || got != "up" {
		t.Fatalf("delivered from=%d msg=%v", from, got)
	}
	if m.QueueLen(0) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestBroadcastDeliveredToNeighbors(t *testing.T) {
	_, _, m := lineNet(t, 3)
	heard := map[topology.NodeID]bool{}
	for i := 0; i < 3; i++ {
		id := topology.NodeID(i)
		m.Listen(id, func(f topology.NodeID, msg any) { heard[id] = true })
	}
	m.Broadcast(1, radio.ClassEstimate, "eh")
	m.RunFrame()
	if !heard[0] || !heard[2] || heard[1] {
		t.Fatalf("heard = %v, want 0 and 2 only", heard)
	}
}

func TestForwardingWithinOrAcrossFrames(t *testing.T) {
	// 0 -> 1 -> 2 relay: node 1 re-enqueues on receive. Whether the relay
	// happens in the same frame depends on slot order; in all cases it must
	// arrive within two frames.
	_, _, m := lineNet(t, 3)
	arrived := -1
	m.Listen(1, func(f topology.NodeID, msg any) {
		m.Unicast(1, 2, radio.ClassQuery, msg)
	})
	m.Listen(2, func(f topology.NodeID, msg any) { arrived = int(m.Frame()) })
	m.Unicast(0, 1, radio.ClassQuery, "q")
	m.RunFrame()
	m.RunFrame()
	if arrived < 0 {
		t.Fatal("relayed message never arrived")
	}
	if arrived > 1 {
		t.Fatalf("relay took until frame %d, want <= 1", arrived)
	}
}

func TestStartSchedulesFrames(t *testing.T) {
	engine, _, m := lineNet(t, 3)
	m.Start()
	engine.RunUntil(9)
	if m.Frame() != 10 {
		t.Fatalf("frames after 10 ticks = %d, want 10", m.Frame())
	}
}

func TestStartTwicePanics(t *testing.T) {
	_, _, m := lineNet(t, 2)
	m.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	m.Start()
}

func TestDeadNeighborDetection(t *testing.T) {
	_, _, m := lineNet(t, 3)
	var deaths []struct{ at, dead topology.NodeID }
	m.OnNeighborDead(func(at, dead topology.NodeID) {
		deaths = append(deaths, struct{ at, dead topology.NodeID }{at, dead})
	})
	for i := 0; i < 3; i++ {
		m.RunFrame()
	}
	if len(deaths) != 0 {
		t.Fatalf("spurious deaths: %v", deaths)
	}
	m.Kill(1)
	for i := 0; i < int(DefaultDeadThreshold)+1; i++ {
		m.RunFrame()
	}
	// Both 0 and 2 should have detected node 1's death exactly once.
	seen := map[topology.NodeID]int{}
	for _, d := range deaths {
		if d.dead != 1 {
			t.Fatalf("unexpected dead node %d", d.dead)
		}
		seen[d.at]++
	}
	if seen[0] != 1 || seen[2] != 1 {
		t.Fatalf("death notifications %v, want one each at nodes 0 and 2", seen)
	}
}

func TestDeadNodeStopsTraffic(t *testing.T) {
	_, _, m := lineNet(t, 3)
	m.Unicast(1, 2, radio.ClassQuery, "q")
	m.Kill(1)
	got := false
	m.Listen(2, func(topology.NodeID, any) { got = true })
	m.RunFrame()
	if got {
		t.Fatal("dead node still transmitted its queue")
	}
	if m.QueueLen(1) != 0 {
		t.Fatal("dead node retains queued messages")
	}
}

func TestKillRootPanics(t *testing.T) {
	_, _, m := lineNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("killing root did not panic")
		}
	}()
	m.Kill(topology.Root)
}

func TestJoinFiresOnNeighborNew(t *testing.T) {
	g, err := topology.PlaceLine(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	ch.SetAlive(2, false) // node 2 not yet deployed
	m, err := New(engine, ch)
	if err != nil {
		t.Fatal(err)
	}
	m.Init()
	var fresh []topology.NodeID
	m.OnNeighborNew(func(at, f topology.NodeID) {
		if at == 1 {
			fresh = append(fresh, f)
		}
	})
	m.RunFrame()
	if len(fresh) != 0 {
		t.Fatalf("unexpected new-neighbor events: %v", fresh)
	}
	m.Join(2)
	m.RunFrame()
	if len(fresh) != 1 || fresh[0] != 2 {
		t.Fatalf("new-neighbor events %v, want [2] at node 1", fresh)
	}
	// Node 2's MAC neighbor table should see node 1.
	nbs := m.Neighbors(2)
	if len(nbs) != 1 || nbs[0] != 1 {
		t.Fatalf("joined node neighbors = %v, want [1]", nbs)
	}
}

func TestRejoinAfterDeathDetectedAgain(t *testing.T) {
	_, _, m := lineNet(t, 2)
	deaths, news := 0, 0
	m.OnNeighborDead(func(at, dead topology.NodeID) {
		if at == 0 && dead == 1 {
			deaths++
		}
	})
	m.OnNeighborNew(func(at, fresh topology.NodeID) {
		if at == 0 && fresh == 1 {
			news++
		}
	})
	m.Kill(1)
	for i := 0; i < 6; i++ {
		m.RunFrame()
	}
	if deaths != 1 {
		t.Fatalf("deaths = %d, want 1", deaths)
	}
	m.Join(1)
	m.RunFrame()
	if news != 1 {
		t.Fatalf("news = %d, want 1 after rejoin", news)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g, err := topology.PlaceGrid(3, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	_, _, m := newTestNet(t, g)
	nbs := m.Neighbors(4) // grid centre
	for i := 1; i < len(nbs); i++ {
		if nbs[i-1] >= nbs[i] {
			t.Fatalf("neighbors not sorted: %v", nbs)
		}
	}
	if len(nbs) == 0 {
		t.Fatal("centre node has no neighbors")
	}
}

func TestSetDeadThreshold(t *testing.T) {
	_, _, m := lineNet(t, 2)
	m.SetDeadThreshold(1)
	deaths := 0
	m.OnNeighborDead(func(at, dead topology.NodeID) { deaths++ })
	m.Kill(1)
	m.RunFrame()
	if deaths == 0 {
		t.Fatal("threshold 1 did not detect death after one silent frame")
	}
}

func TestSetDeadThresholdValidation(t *testing.T) {
	_, _, m := lineNet(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("threshold 0 accepted")
		}
	}()
	m.SetDeadThreshold(0)
}

func TestTDMASlotOrderGovernsForwardingLatency(t *testing.T) {
	// Node 0 owns slot 0, node 1 owns slot 1. A message relayed towards a
	// LATER slot goes out in the same frame; one relayed towards an EARLIER
	// slot must wait for the next frame.
	_, _, m := lineNet(t, 2)
	if m.Slot(0) != 0 || m.Slot(1) != 1 {
		t.Fatalf("unexpected slots %d,%d", m.Slot(0), m.Slot(1))
	}

	// Direction 1: 0 -> 1 -> 0. The bounce is enqueued during slot 0 (node
	// 1 hears it then), and node 1's slot 1 is still ahead, so it arrives
	// back at node 0 within frame 0.
	var backFrame int64 = -1
	m.Listen(1, func(f topology.NodeID, msg any) {
		m.Unicast(1, 0, radio.ClassQuery, msg)
	})
	m.Listen(0, func(f topology.NodeID, msg any) { backFrame = m.Frame() })
	m.Unicast(0, 1, radio.ClassQuery, "ping")
	m.RunFrame()
	if backFrame != 0 {
		t.Fatalf("later-slot relay arrived in frame %d, want 0", backFrame)
	}

	// Direction 2: 1 -> 0 -> 1. Node 0 hears during slot 1 but its own slot
	// 0 has already passed this frame, so the bounce waits for frame 2.
	var fwdFrame int64 = -1
	m.Listen(0, func(f topology.NodeID, msg any) {
		m.Unicast(0, 1, radio.ClassQuery, msg)
	})
	m.Listen(1, func(f topology.NodeID, msg any) { fwdFrame = m.Frame() })
	m.Unicast(1, 0, radio.ClassQuery, "pong")
	m.RunFrame() // frame 1: 1 transmits in slot 1; 0 enqueues too late
	if fwdFrame != -1 {
		t.Fatal("earlier-slot relay jumped the frame boundary")
	}
	m.RunFrame() // frame 2: node 0's slot comes first, bounce delivered
	if fwdFrame != 2 {
		t.Fatalf("earlier-slot relay arrived in frame %d, want 2", fwdFrame)
	}
}

// Property: slot assignment over random connected graphs is always two-hop
// conflict-free and uses a bounded number of slots.
func TestPropertySlotAssignment(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		g, err := topology.PlaceRandom(topology.PlacementConfig{
			N: 25, Width: 60, Height: 60, RadioRange: 25,
		}, rng)
		if err != nil {
			return false
		}
		slots, err := AssignSlots(g)
		if err != nil {
			return false
		}
		return VerifySlots(g, slots) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMACMulticast(t *testing.T) {
	g, err := topology.PlaceGrid(3, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	_, ch, m := newTestNet(t, g)
	centre := topology.NodeID(4)
	targets := []topology.NodeID{1, 7}
	heard := map[topology.NodeID]bool{}
	for _, nb := range g.Neighbors(centre) {
		nb := nb
		m.Listen(nb, func(from topology.NodeID, msg any) { heard[nb] = true })
	}
	m.Multicast(centre, targets, radio.ClassQuery, "q")
	m.RunFrame()
	if !heard[1] || !heard[7] {
		t.Fatalf("addressed nodes missed the multicast: %v", heard)
	}
	for nb := range heard {
		if nb != 1 && nb != 7 {
			t.Fatalf("unaddressed node %d received the multicast", nb)
		}
	}
	c := ch.Meter().ByClass(radio.ClassQuery)
	if c.Tx != 1 || c.Rx != 2 {
		t.Fatalf("multicast cost %+v, want tx=1 rx=2", c)
	}
}

func TestMACMulticastEmptyIgnored(t *testing.T) {
	_, _, m := lineNet(t, 3)
	m.Multicast(1, nil, radio.ClassQuery, nil)
	if m.QueueLen(1) != 0 {
		t.Fatal("empty multicast queued")
	}
}

func TestMACMulticastCopiesTargets(t *testing.T) {
	_, _, m := lineNet(t, 3)
	targets := []topology.NodeID{0}
	m.Multicast(1, targets, radio.ClassQuery, nil)
	targets[0] = 2 // caller mutates after queueing
	got := false
	m.Listen(0, func(topology.NodeID, any) { got = true })
	m.RunFrame()
	if !got {
		t.Fatal("queued multicast target list aliased caller slice")
	}
}
