// Package sensordata generates the synthetic environmental dataset the
// paper's evaluation uses: "A synthetic dataset with 4 sensor types has been
// generated where sensor values of nodes located close to one another are
// spatially related. The generated sensor data is also related in the
// temporal dimension." (§7)
//
// Values are produced by a smooth physical field per sensor type — a base
// level, a diurnal sinusoid, and a set of Gaussian "plumes" whose centres
// random-walk across the deployment area — plus small per-node AR(1) noise.
// Nearby nodes therefore see similar values (spatial correlation) and each
// node's series evolves smoothly (temporal correlation).
//
// In the repo's layer map this is the environment layer: core samples the
// generator every epoch (§7 "each sensor acquires a reading every time
// unit") and query resolves ground truth against the same field.
//
// Field evaluation is lazy and activity-gated: Step advances only the
// field state (drawing exactly the RNG sequence it always drew, so runs
// stay bit-reproducible) while the exp-heavy per-node evaluation happens
// on first read. ActiveSweep conservatively refutes hysteresis escapes in
// O(1) per (node, type) — exact diurnal/noise/bias terms plus an
// accumulated bound on plume motion — so a quiescent network's epoch cost
// is a handful of flops per node instead of a field evaluation.
package sensordata
