package sensordata

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Type identifies one of the four sensor types in the evaluation.
type Type int

// The four sensor types.
const (
	Temperature Type = iota
	Humidity
	Light
	SoilMoisture
	NumTypes
)

// String returns the sensor type name.
func (t Type) String() string {
	switch t {
	case Temperature:
		return "temperature"
	case Humidity:
		return "humidity"
	case Light:
		return "light"
	case SoilMoisture:
		return "soil-moisture"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// allTypes backs AllTypes so the hot per-epoch loops can enumerate types
// without allocating.
var allTypes = []Type{Temperature, Humidity, Light, SoilMoisture}

// AllTypes returns the four sensor types in order. The returned slice is
// shared and must not be modified.
func AllTypes() []Type {
	return allTypes
}

// Span returns the physical value range of the sensor type. The DirQ
// threshold δ is expressed as a percentage of this span.
func (t Type) Span() (min, max float64) {
	switch t {
	case Temperature:
		return -10, 40 // °C
	case Humidity:
		return 0, 100 // %RH
	case Light:
		return 0, 1000 // lux (scaled)
	case SoilMoisture:
		return 0, 60 // volumetric %
	default:
		return 0, 1
	}
}

// SpanWidth returns max - min of the type's physical range.
func (t Type) SpanWidth() float64 {
	lo, hi := t.Span()
	return hi - lo
}

// FieldParams tunes the synthetic field for one sensor type.
type FieldParams struct {
	Base        float64 // resting field level
	DiurnalAmp  float64 // amplitude of the day/night sinusoid
	PeriodEpoch int     // epochs per simulated day
	Plumes      int     // number of moving Gaussian plumes
	PlumeAmp    float64 // peak plume amplitude
	PlumeSigma  float64 // plume spatial stddev (same units as positions)
	DriftStep   float64 // plume centre random-walk step per epoch
	NoiseSigma  float64 // per-node AR(1) innovation stddev
	NoisePhi    float64 // AR(1) coefficient in [0,1)
	// BiasSigma is the stddev of each node's static microclimate offset
	// (shade, aspect, soil composition). It creates the persistent
	// node-to-node value diversity range queries discriminate on, without
	// adding temporal volatility.
	BiasSigma float64
}

// DefaultParams returns field parameters that keep each type's values well
// inside its physical span while exhibiting clear spatial and temporal
// structure.
func DefaultParams(t Type) FieldParams {
	switch t {
	case Temperature:
		return FieldParams{Base: 15, DiurnalAmp: 2.5, PeriodEpoch: 1000, Plumes: 4,
			PlumeAmp: 10, PlumeSigma: 20, DriftStep: 0.15, NoiseSigma: 0.025, NoisePhi: 0.9,
			BiasSigma: 6}
	case Humidity:
		return FieldParams{Base: 55, DiurnalAmp: 4, PeriodEpoch: 1000, Plumes: 4,
			PlumeAmp: 16, PlumeSigma: 25, DriftStep: 0.15, NoiseSigma: 0.06, NoisePhi: 0.9,
			BiasSigma: 12}
	case Light:
		return FieldParams{Base: 420, DiurnalAmp: 120, PeriodEpoch: 1000, Plumes: 3,
			PlumeAmp: 180, PlumeSigma: 18, DriftStep: 0.25, NoiseSigma: 0.6, NoisePhi: 0.85,
			BiasSigma: 110}
	case SoilMoisture:
		return FieldParams{Base: 28, DiurnalAmp: 1.5, PeriodEpoch: 1000, Plumes: 4,
			PlumeAmp: 10, PlumeSigma: 20, DriftStep: 0.08, NoiseSigma: 0.02, NoisePhi: 0.95,
			BiasSigma: 7}
	default:
		return FieldParams{Base: 0.5, DiurnalAmp: 0.1, PeriodEpoch: 1000, Plumes: 1,
			PlumeAmp: 0.2, PlumeSigma: 20, DriftStep: 0.3, NoiseSigma: 0.01, NoisePhi: 0.9}
	}
}

// plume is one moving Gaussian hotspot.
type plume struct {
	x, y  float64
	amp   float64
	sigma float64
}

// typeField is the per-sensor-type field state.
type typeField struct {
	params FieldParams
	plumes []plume
	phase  float64 // random diurnal phase offset
	noise  []float64
	bias   []float64 // static per-node microclimate offsets
	rng    *sim.RNG
	width  float64
	height float64

	// Lazy-evaluation state: the diurnal term cached per epoch, and the
	// running sum of conservative per-epoch bounds on how much the plume
	// component of *any* node's value can have moved (see Step).
	dayEpoch int64 // epoch dayVal is valid for; -1 = stale
	dayVal   float64
	cumBound float64

	// Escape-calendar state (see escape.go): escA is the monotone
	// accumulator bounding how much ANY node's value can have moved in
	// total (plume motion + worst-case noise delta + diurnal delta);
	// lastDay is the previous epoch's diurnal term, the baseline for the
	// diurnal delta.
	escA    float64
	lastDay float64
}

// dayAt computes the type's diurnal term for an epoch from scratch.
func (f *typeField) dayAt(epoch int64) float64 {
	if f.params.PeriodEpoch <= 0 {
		return 0
	}
	return f.params.DiurnalAmp *
		math.Sin(2*math.Pi*float64(epoch)/float64(f.params.PeriodEpoch)+f.phase)
}

// day returns the type's diurnal term for the given epoch, cached so the
// per-node paths pay one sin per type per epoch at most.
func (f *typeField) day(epoch int64) float64 {
	if f.dayEpoch != epoch {
		f.dayEpoch = epoch
		f.dayVal = f.dayAt(epoch)
	}
	return f.dayVal
}

// Generator produces the dataset epoch by epoch. It is deterministic given
// its seed stream and must be advanced strictly sequentially with Step.
//
// Values are evaluated lazily: Step advances the field *state* (plume
// positions, per-node AR(1) noise — consuming exactly the same RNG draws
// as always, so determinism is untouched) while the expensive per-node
// field evaluation happens only when a value is actually read. Together
// with ActiveSweep this makes a quiescent network's per-epoch cost
// independent of the plume math: nodes whose reading provably cannot have
// left their hysteresis window are never evaluated at all.
type Generator struct {
	positions []topology.Position
	fields    [NumTypes]*typeField
	epoch     int64
	values    [][NumTypes]float64 // last evaluated value per node per type

	// Per (type, node) lazy-evaluation records, indexed t*N + i.
	stamp     []int64   // epoch values[i][t] was evaluated at
	snapPlume []float64 // plume-sum component recorded at that evaluation
	snapCum   []float64 // cumBound at that evaluation; -Inf = no usable snapshot
	evals     uint64    // total per-(node, type) field evaluations (atomic)

	// workers, when set, parallelizes Step across the (RNG-independent)
	// per-type field streams. Nil means serial.
	workers *sim.Workers

	// Escape-calendar state (see escape.go). nextT[t*N+i] is the escA
	// threshold at which (node i, type t) must be re-examined: NaN = due
	// but not yet examined, +Inf = never (until dirtied). The due set is
	// recomputed once per epoch by escDrain and shared by every sweep of
	// that epoch.
	nextT     []float64
	esc       [NumTypes]escCalendar
	escEpoch  int64 // epoch the due set below is valid for
	escAllDue bool  // next drain marks everything due
	forced    []int32
	dueNodes  []int32 // this epoch's due set, ascending
	dueStamp  []int64 // per node: epoch it was last marked due
	dueMask   []uint8 // per node: due type bits (valid when stamp matches)
	prevDue   []int32 // previous drain's due set (compact)
	prevMask  []uint8 // previous drain's due bits, parallel to prevDue

	tel Telemetry
}

// Telemetry is the generator's instrument set. All fields may be nil (the
// instruments are nil-safe); the counters mirror bookkeeping the generator
// already does and never influence field evolution or RNG draws.
type Telemetry struct {
	// Evals counts per-(node, type) field evaluations — the expensive
	// plume math the lazy layer tries to avoid.
	Evals *telemetry.Counter
	// SweepHits counts nodes ActiveSweep could NOT prove quiet (appended
	// to the worklist).
	SweepHits *telemetry.Counter
	// SweepRefutes counts nodes ActiveSweep examined and proved quiet.
	// With the escape calendar, nodes whose deadline has not arrived are
	// skipped without being examined or counted, so on a quiescent epoch
	// this stays O(active set), not O(N).
	SweepRefutes *telemetry.Counter
}

// SetTelemetry binds (or, with the zero value, unbinds) the generator's
// instruments.
func (g *Generator) SetTelemetry(t Telemetry) { g.tel = t }

// SetWorkers binds a fork-join pool used to advance the per-type field
// streams concurrently in Step. Each type owns an independent seed-derived
// RNG stream, so type-parallel stepping consumes exactly the draws the
// serial order does — byte-for-byte identical state. Nil reverts to serial.
func (g *Generator) SetWorkers(w *sim.Workers) { g.workers = w }

// NewGenerator builds a generator for the given node positions. The area
// bounds are inferred from the positions. The rng should be a dedicated
// stream (e.g. root.Stream("data")).
func NewGenerator(positions []topology.Position, rng *sim.RNG) *Generator {
	var w, h float64
	for _, p := range positions {
		if p.X > w {
			w = p.X
		}
		if p.Y > h {
			h = p.Y
		}
	}
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	g := &Generator{
		positions: append([]topology.Position(nil), positions...),
		values:    make([][NumTypes]float64, len(positions)),
		stamp:     make([]int64, len(positions)*int(NumTypes)),
		snapPlume: make([]float64, len(positions)*int(NumTypes)),
		snapCum:   make([]float64, len(positions)*int(NumTypes)),
	}
	for i := range g.stamp {
		g.stamp[i] = -1
		g.snapCum[i] = math.Inf(-1) // no snapshot yet: nothing provable
	}
	for _, t := range AllTypes() {
		p := DefaultParams(t)
		f := &typeField{
			params:   p,
			phase:    rng.StreamN("phase", int(t)).Float64() * 2 * math.Pi,
			noise:    make([]float64, len(positions)),
			bias:     make([]float64, len(positions)),
			rng:      rng.StreamN("field", int(t)),
			width:    w,
			height:   h,
			dayEpoch: -1,
		}
		// The microclimate bias is itself spatially structured: a static
		// landscape of Gaussian bumps plus a small independent component,
		// so nearby nodes stay "spatially related" (§7) while distant nodes
		// differ persistently.
		if p.BiasSigma > 0 {
			type bump struct{ x, y, amp, sigma float64 }
			var bumps []bump
			for i := 0; i < 4; i++ {
				sign := 1.0
				if f.rng.Bool(0.5) {
					sign = -1
				}
				bumps = append(bumps, bump{
					x: f.rng.Range(0, w), y: f.rng.Range(0, h),
					amp:   sign * p.BiasSigma * f.rng.Range(1.2, 2.2),
					sigma: f.rng.Range(0.15, 0.35) * (w + h) / 2,
				})
			}
			for i, pos := range positions {
				v := f.rng.NormFloat64() * p.BiasSigma * 0.3
				for _, b := range bumps {
					dx, dy := pos.X-b.x, pos.Y-b.y
					v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
				}
				f.bias[i] = v
			}
		}
		for i := 0; i < p.Plumes; i++ {
			f.plumes = append(f.plumes, plume{
				x:     f.rng.Range(0, w),
				y:     f.rng.Range(0, h),
				amp:   p.PlumeAmp * f.rng.Range(0.6, 1.4),
				sigma: p.PlumeSigma * f.rng.Range(0.8, 1.2),
			})
		}
		g.fields[t] = f
	}
	g.escInit()
	g.compute()
	return g
}

// SetParams overrides the field parameters of one sensor type; values
// reflect the change from the current epoch on. It may be called mid-run —
// the run stays deterministic as long as the call happens at the same
// epoch across runs (scripted dynamics rely on this). Changing Plumes
// mid-run alters the per-epoch RNG consumption from that point, which is
// still deterministic but shifts every later draw.
func (g *Generator) SetParams(t Type, p FieldParams) {
	g.fields[t].params = p
	g.invalidate()
}

// invalidate discards every cached evaluation and quiescence snapshot — a
// field parameter changed, so previously proven bounds no longer hold.
func (g *Generator) invalidate() {
	negInf := math.Inf(-1)
	for k := range g.stamp {
		g.stamp[k] = -1
		g.snapCum[k] = negInf
	}
	for _, t := range AllTypes() {
		g.fields[t].dayEpoch = -1
	}
	g.escInvalidate()
}

// Params returns the current field parameters of one sensor type.
func (g *Generator) Params(t Type) FieldParams {
	return g.fields[t].params
}

// ShiftBase adds delta (in the type's physical units) to the resting field
// level of one sensor type — a regime shift: the whole field jumps and
// settles at the new level. Values recompute immediately; like SetParams
// it is deterministic when applied at a fixed epoch.
func (g *Generator) ShiftBase(t Type, delta float64) {
	g.fields[t].params.Base += delta
	g.invalidate()
}

// ScaleDynamics multiplies the temporal volatility of one sensor type —
// plume drift and AR(1) innovation amplitude — by factor. Factors above 1
// model accelerating drift (a storm front, failing sensors); below 1, a
// calming field. The RNG draw count per epoch is unchanged, so the other
// types' streams stay aligned.
func (g *Generator) ScaleDynamics(t Type, factor float64) {
	p := &g.fields[t].params
	p.DriftStep *= factor
	p.NoiseSigma *= factor
	g.invalidate()
}

// Epoch returns the current epoch (starting at 0).
func (g *Generator) Epoch() int64 { return g.epoch }

// NumNodes returns the number of nodes covered by the dataset.
func (g *Generator) NumNodes() int { return len(g.positions) }

// Value returns the current reading of a node for a sensor type, clamped
// to the type's physical span, evaluating the field for that node lazily.
func (g *Generator) Value(id topology.NodeID, t Type) float64 {
	i := int(id)
	if g.stamp[int(t)*len(g.positions)+i] != g.epoch {
		g.eval(i, t)
	}
	return g.values[i][t]
}

// Values returns the current readings of all nodes for one type, indexed by
// NodeID. The returned slice is freshly allocated.
func (g *Generator) Values(t Type) []float64 {
	out := make([]float64, len(g.values))
	for i := range g.values {
		out[i] = g.Value(topology.NodeID(i), t)
	}
	return out
}

// Evals returns the total number of per-(node, type) field evaluations
// performed so far — the work quiescence gating exists to avoid. Tests use
// it to prove that quiet windows cost nothing.
func (g *Generator) Evals() uint64 { return atomic.LoadUint64(&g.evals) }

// maxPlumeSlope is the magnitude of a unit-amplitude Gaussian's steepest
// slope, attained one sigma from the centre: exp(-1/2)/sigma.
const maxPlumeSlope = 0.6065306597126334

// Step advances the dataset by one epoch: plume centres drift, the diurnal
// phase advances, and per-node AR(1) noise evolves. Values are NOT
// recomputed here; each type's cumulative plume-motion bound grows by how
// much this epoch's drift can possibly have changed any node's plume sum,
// which is what lets ActiveSweep refute hysteresis escapes without
// evaluating the field.
func (g *Generator) Step() {
	g.epoch++
	if g.workers.Count() > 1 {
		// Each type's state evolves from its own RNG stream and touches
		// only its own field, so type-parallel stepping is exact.
		g.workers.Run(int(NumTypes), func(t int) { g.stepType(Type(t)) })
		return
	}
	for _, t := range AllTypes() {
		g.stepType(t)
	}
}

// stepType advances one type's field state by one epoch — the body of
// Step, factored out so the per-type streams can run concurrently.
func (g *Generator) stepType(t Type) {
	f := g.fields[t]
	p := f.params
	motion := 0.0
	for i := range f.plumes {
		pl := &f.plumes[i]
		ox, oy := pl.x, pl.y
		pl.x += f.rng.NormFloat64() * p.DriftStep
		pl.y += f.rng.NormFloat64() * p.DriftStep
		// Reflect at the area boundary so plumes stay in play.
		pl.x = reflect(pl.x, f.width)
		pl.y = reflect(pl.y, f.height)
		// Conservative bound on this plume's contribution change at any
		// position: displacement times the Gaussian's steepest slope,
		// capped at the full amplitude. Reflection is a contraction, so
		// the realized displacement is what matters.
		amp := math.Abs(pl.amp)
		b := amp
		if pl.sigma > 0 {
			dx, dy := pl.x-ox, pl.y-oy
			if s := math.Sqrt(dx*dx+dy*dy) * maxPlumeSlope / pl.sigma * amp; s < b {
				b = s
			}
		}
		motion += b
	}
	maxNoiseDelta := 0.0
	for i := range f.noise {
		old := f.noise[i]
		nv := p.NoisePhi*old + f.rng.NormFloat64()*p.NoiseSigma
		f.noise[i] = nv
		if d := math.Abs(nv - old); d > maxNoiseDelta {
			maxNoiseDelta = d
		}
	}
	f.cumBound += motion
	// Grow the escape accumulator by this epoch's total motion budget and
	// eagerly seed the diurnal cache (same deterministic value the lazy
	// fill would compute).
	nd := f.dayAt(g.epoch)
	f.escA += motion + maxNoiseDelta + math.Abs(nd-f.lastDay)
	f.lastDay = nd
	f.dayEpoch = g.epoch
	f.dayVal = nd
}

// reflect folds v back into [0, limit].
func reflect(v, limit float64) float64 {
	for v < 0 || v > limit {
		if v < 0 {
			v = -v
		}
		if v > limit {
			v = 2*limit - v
		}
	}
	return v
}

// eval computes one node's value for one type at the current epoch — the
// exact arithmetic the former eager per-epoch sweep used — and records the
// quiescence snapshot (plume component and cumulative-bound watermark).
func (g *Generator) eval(i int, t Type) {
	f := g.fields[t]
	day := f.day(g.epoch)
	lo, hi := t.Span()
	pos := g.positions[i]
	base := f.params.Base + day + f.noise[i] + f.bias[i]
	v := base
	for _, pl := range f.plumes {
		dx, dy := pos.X-pl.x, pos.Y-pl.y
		v += pl.amp * math.Exp(-(dx*dx+dy*dy)/(2*pl.sigma*pl.sigma))
	}
	k := int(t)*len(g.positions) + i
	g.snapPlume[k] = v - base
	g.snapCum[k] = f.cumBound
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	g.values[i][t] = v
	g.stamp[k] = g.epoch
	atomic.AddUint64(&g.evals, 1)
	g.tel.Evals.Inc()
}

// compute eagerly evaluates every node for every type (generator
// construction; everything after is lazy).
func (g *Generator) compute() {
	for _, t := range AllTypes() {
		for i := range g.positions {
			g.eval(i, t)
		}
	}
}

// ActiveSweep appends to dst the IDs of nodes whose current-epoch reading
// for type t cannot be *proven* to lie inside the caller's per-node window
// [lo[i], hi[i]] — for the DirQ protocol, the node's own hysteresis tuple.
// The proof is conservative and O(1) per node: the diurnal, noise and bias
// terms are exact (the generator evolves them every epoch anyway), only
// the plume sum is bracketed by the cumulative motion bound accumulated
// since the node's last evaluation, and the bracket is clamped to the
// physical span exactly like real readings. Sentinel windows compose
// naturally: (+Inf, -Inf) is always swept out (evaluate every epoch),
// (-Inf, +Inf) never is (unmounted or dead nodes).
//
// A node missing from the result is guaranteed to read a value inside its
// window this epoch, so skipping its hysteresis check is behaviour-
// preserving, not an approximation.
//
// The sweep consumes the escape calendar (see escape.go): only nodes
// whose re-examination deadline has arrived are examined, with the exact
// predicate the full scan used, so the result is byte-identical while the
// per-epoch cost is O(active + due). This imposes a window-stability
// contract: between sweeps, callers may rewrite windows only for nodes
// the previous sweep reported active (the usual sweep→sample→refresh
// cycle), or must announce the rewrite with MarkWindowDirty /
// InvalidateWindows.
func (g *Generator) ActiveSweep(t Type, lo, hi []float64, dst []int32) []int32 {
	g.escDrain()
	f := g.fields[t]
	n := len(g.positions)
	base := f.params.Base + f.day(g.epoch)
	// Tiny absolute margin so float rounding in the reconstruction can
	// never flip a knife-edge case to a false "quiet".
	cum := f.cumBound + 1e-9
	spanLo, spanHi := t.Span()
	noise, bias := f.noise, f.bias
	snapP := g.snapPlume[int(t)*n : int(t)*n+n]
	snapC := g.snapCum[int(t)*n : int(t)*n+n]
	nextT := g.nextT[int(t)*n : int(t)*n+n]
	A := f.escA
	safety := escSafetyMargins[t]
	bit := uint8(1) << uint(t)
	start := len(dst)
	examined := 0
	for _, id := range g.dueNodes {
		if g.dueMask[id]&bit == 0 {
			continue
		}
		examined++
		i := int(id)
		dev := cum - snapC[i]
		c := base + noise[i] + bias[i] + snapP[i]
		vlo, vhi := c-dev, c+dev
		if vlo < spanLo {
			vlo = spanLo
		}
		if vhi > spanHi {
			vhi = spanHi
		}
		if vlo < lo[i] || vhi > hi[i] {
			dst = append(dst, int32(i))
			nextT[i] = A // active: re-examine next epoch
		} else {
			m := vlo - lo[i]
			if d := hi[i] - vhi; d < m {
				m = d
			}
			// m is +Inf for unreachable windows: parked until dirtied.
			T := A + m - safety
			if !(T > A) {
				T = A
			}
			nextT[i] = T
		}
	}
	hits := len(dst) - start
	g.tel.SweepHits.Add(int64(hits))
	g.tel.SweepRefutes.Add(int64(examined - hits))
	return dst
}

// PrepareConcurrentReads warms every mutable read-path cache (today just
// the per-type diurnal term) so that Value, eval and ActiveSweepRange can
// run concurrently for the current epoch without racing on cache fills.
// Call it once per epoch, after Step, before fanning readers out.
func (g *Generator) PrepareConcurrentReads() {
	for _, t := range AllTypes() {
		g.fields[t].day(g.epoch)
	}
	// Resolve this epoch's due set serially so concurrent
	// ActiveSweepRange callers only read the calendar.
	g.escDrain()
}

// ActiveSweepRange is the shard-parallel form of ActiveSweep: it applies
// the identical per-(node, type) quiescence proof to nodes in [from, to)
// across ALL types at once, writing the per-node active-type bitmask into
// mask[i] and appending each active node's ID to dst (ascending, since
// the walk is in ID order). The float expressions are evaluated in the
// exact order ActiveSweep uses, so the swept-out set — and therefore the
// downstream protocol behaviour — is bit-identical to four serial
// per-type sweeps over the same windows.
//
// mask entries for quiet nodes are left untouched (the serial path only
// defines mask for active nodes too). Requires PrepareConcurrentReads for
// the current epoch when ranges run concurrently — it also resolves the
// epoch's escape-calendar due set, which concurrent ranges only read.
// Telemetry totals match the serial sweep: per-type hits and
// examined-but-quiet refutes over this range are added to the (atomic)
// counters. The window-stability contract documented on ActiveSweep
// applies here too.
func (g *Generator) ActiveSweepRange(lo, hi *[NumTypes][]float64, mask []uint8, from, to int, dst []int32) []int32 {
	g.escDrain()
	n := len(g.positions)
	var base, cum, spanLo, spanHi, A [NumTypes]float64
	var noise, bias, snapP, snapC [NumTypes][]float64
	for _, t := range AllTypes() {
		f := g.fields[t]
		base[t] = f.params.Base + f.day(g.epoch)
		cum[t] = f.cumBound + 1e-9
		spanLo[t], spanHi[t] = t.Span()
		noise[t], bias[t] = f.noise, f.bias
		snapP[t] = g.snapPlume[int(t)*n : int(t)*n+n]
		snapC[t] = g.snapCum[int(t)*n : int(t)*n+n]
		A[t] = f.escA
	}
	var hits, examined [NumTypes]int64
	due := g.dueNodes
	p := sort.Search(len(due), func(k int) bool { return int(due[k]) >= from })
	for ; p < len(due) && int(due[p]) < to; p++ {
		i := int(due[p])
		dm := g.dueMask[i]
		var m uint8
		for _, t := range AllTypes() {
			bit := uint8(1) << uint(t)
			if dm&bit == 0 {
				continue
			}
			examined[t]++
			dev := cum[t] - snapC[t][i]
			c := base[t] + noise[t][i] + bias[t][i] + snapP[t][i]
			vlo, vhi := c-dev, c+dev
			if vlo < spanLo[t] {
				vlo = spanLo[t]
			}
			if vhi > spanHi[t] {
				vhi = spanHi[t]
			}
			if vlo < lo[t][i] || vhi > hi[t][i] {
				m |= bit
				hits[t]++
				g.nextT[int(t)*n+i] = A[t]
			} else {
				mg := vlo - lo[t][i]
				if d := hi[t][i] - vhi; d < mg {
					mg = d
				}
				T := A[t] + mg - escSafetyMargins[t]
				if !(T > A[t]) {
					T = A[t]
				}
				g.nextT[int(t)*n+i] = T
			}
		}
		if m != 0 {
			mask[i] = m
			dst = append(dst, int32(i))
		}
	}
	for _, t := range AllTypes() {
		g.tel.SweepHits.Add(hits[t])
		g.tel.SweepRefutes.Add(examined[t] - hits[t])
	}
	return dst
}

// Volatility is an EWMA estimator of a signal's mean absolute per-epoch
// change — the "rate of variation of the measured physical parameter" that
// drives the ATC (§6). The zero value is ready to use with DefaultAlpha.
type Volatility struct {
	alpha   float64
	mean    float64
	last    float64
	started bool
}

// DefaultAlpha is the EWMA smoothing factor used when none is set.
const DefaultAlpha = 0.05

// NewVolatility returns an estimator with the given smoothing factor in
// (0, 1].
func NewVolatility(alpha float64) *Volatility {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("sensordata: EWMA alpha %v outside (0,1]", alpha))
	}
	return &Volatility{alpha: alpha}
}

// Observe feeds the next sample of the signal.
func (v *Volatility) Observe(x float64) {
	if v.alpha == 0 {
		v.alpha = DefaultAlpha
	}
	if !v.started {
		v.started = true
		v.last = x
		return
	}
	d := math.Abs(x - v.last)
	v.last = x
	v.mean = (1-v.alpha)*v.mean + v.alpha*d
}

// MeanAbsDelta returns the smoothed mean absolute per-sample change.
func (v *Volatility) MeanAbsDelta() float64 { return v.mean }

// TypeSet is the set of sensor types mounted on one node.
type TypeSet uint8

// Has reports whether the set contains t.
func (s TypeSet) Has(t Type) bool { return s&(1<<uint(t)) != 0 }

// With returns the set extended with t.
func (s TypeSet) With(t Type) TypeSet { return s | (1 << uint(t)) }

// Without returns the set with t removed.
func (s TypeSet) Without(t Type) TypeSet { return s &^ (1 << uint(t)) }

// typeSetMembers caches the member list of every possible TypeSet, so
// Types — called per node per epoch on the hot simulation path — never
// allocates.
var typeSetMembers = func() [1 << NumTypes][]Type {
	var table [1 << NumTypes][]Type
	for s := range table {
		var members []Type
		for _, t := range allTypes {
			if TypeSet(s).Has(t) {
				members = append(members, t)
			}
		}
		table[s] = members
	}
	return table
}()

// Types lists the members in order. The returned slice is shared and must
// not be modified.
func (s TypeSet) Types() []Type {
	return typeSetMembers[s&(1<<NumTypes-1)]
}

// Len returns the number of types in the set.
func (s TypeSet) Len() int {
	n := 0
	for _, t := range AllTypes() {
		if s.Has(t) {
			n++
		}
	}
	return n
}

// AllTypeSet returns the set containing every sensor type.
func AllTypeSet() TypeSet {
	var s TypeSet
	for _, t := range AllTypes() {
		s = s.With(t)
	}
	return s
}

// AssignTypes gives every node (except the root, which is a pure sink) a
// random non-empty subset of sensor types: each type is mounted with
// probability p. This produces the heterogeneous deployments of §4.1/Fig. 4.
func AssignTypes(n int, p float64, rng *sim.RNG) []TypeSet {
	sets := make([]TypeSet, n)
	for i := 1; i < n; i++ {
		var s TypeSet
		for _, t := range AllTypes() {
			if rng.Bool(p) {
				s = s.With(t)
			}
		}
		if s == 0 {
			s = s.With(AllTypes()[rng.Intn(int(NumTypes))])
		}
		sets[i] = s
	}
	return sets
}

// AssignAllTypes mounts every sensor type on every node except the root —
// the homogeneous configuration used by the headline experiments.
func AssignAllTypes(n int) []TypeSet {
	sets := make([]TypeSet, n)
	for i := 1; i < n; i++ {
		sets[i] = AllTypeSet()
	}
	return sets
}
