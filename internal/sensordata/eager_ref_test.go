package sensordata

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// eagerRef is a from-scratch reimplementation of the pre-lazy generator:
// it performs the construction draws, the per-epoch drift/noise draws and
// the full eager per-epoch evaluation exactly as the original compute()
// loop did. The lazy generator must reproduce its trajectory bit for bit —
// lazy evaluation and quiescence snapshots are allowed to change *when*
// work happens, never *what* it produces.
type eagerRef struct {
	positions []topology.Position
	fields    [NumTypes]*typeField
	epoch     int64
	values    [][NumTypes]float64
}

func newEagerRef(positions []topology.Position, rng *sim.RNG) *eagerRef {
	var w, h float64
	for _, p := range positions {
		if p.X > w {
			w = p.X
		}
		if p.Y > h {
			h = p.Y
		}
	}
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	g := &eagerRef{
		positions: append([]topology.Position(nil), positions...),
		values:    make([][NumTypes]float64, len(positions)),
	}
	for _, t := range AllTypes() {
		p := DefaultParams(t)
		f := &typeField{
			params: p,
			phase:  rng.StreamN("phase", int(t)).Float64() * 2 * math.Pi,
			noise:  make([]float64, len(positions)),
			bias:   make([]float64, len(positions)),
			rng:    rng.StreamN("field", int(t)),
			width:  w,
			height: h,
		}
		if p.BiasSigma > 0 {
			type bump struct{ x, y, amp, sigma float64 }
			var bumps []bump
			for i := 0; i < 4; i++ {
				sign := 1.0
				if f.rng.Bool(0.5) {
					sign = -1
				}
				bumps = append(bumps, bump{
					x: f.rng.Range(0, w), y: f.rng.Range(0, h),
					amp:   sign * p.BiasSigma * f.rng.Range(1.2, 2.2),
					sigma: f.rng.Range(0.15, 0.35) * (w + h) / 2,
				})
			}
			for i, pos := range positions {
				v := f.rng.NormFloat64() * p.BiasSigma * 0.3
				for _, b := range bumps {
					dx, dy := pos.X-b.x, pos.Y-b.y
					v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
				}
				f.bias[i] = v
			}
		}
		for i := 0; i < p.Plumes; i++ {
			f.plumes = append(f.plumes, plume{
				x:     f.rng.Range(0, w),
				y:     f.rng.Range(0, h),
				amp:   p.PlumeAmp * f.rng.Range(0.6, 1.4),
				sigma: p.PlumeSigma * f.rng.Range(0.8, 1.2),
			})
		}
		g.fields[t] = f
	}
	g.compute()
	return g
}

func (g *eagerRef) step() {
	g.epoch++
	for _, t := range AllTypes() {
		f := g.fields[t]
		p := f.params
		for i := range f.plumes {
			pl := &f.plumes[i]
			pl.x += f.rng.NormFloat64() * p.DriftStep
			pl.y += f.rng.NormFloat64() * p.DriftStep
			pl.x = reflect(pl.x, f.width)
			pl.y = reflect(pl.y, f.height)
		}
		for i := range f.noise {
			f.noise[i] = p.NoisePhi*f.noise[i] + f.rng.NormFloat64()*p.NoiseSigma
		}
	}
	g.compute()
}

func (g *eagerRef) compute() {
	for _, t := range AllTypes() {
		f := g.fields[t]
		p := f.params
		day := 0.0
		if p.PeriodEpoch > 0 {
			day = p.DiurnalAmp * math.Sin(2*math.Pi*float64(g.epoch)/float64(p.PeriodEpoch)+f.phase)
		}
		lo, hi := t.Span()
		for i, pos := range g.positions {
			v := p.Base + day + f.noise[i] + f.bias[i]
			for _, pl := range f.plumes {
				dx, dy := pos.X-pl.x, pos.Y-pl.y
				v += pl.amp * math.Exp(-(dx*dx+dy*dy)/(2*pl.sigma*pl.sigma))
			}
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			g.values[i][t] = v
		}
	}
}

// testPositions mirrors how scenarios lay nodes out.
func refPositions(n int, seed uint64) []topology.Position {
	rng := sim.NewRNG(seed)
	pos := make([]topology.Position, n)
	for i := range pos {
		pos[i] = topology.Position{X: rng.Range(0, 100), Y: rng.Range(0, 100)}
	}
	return pos
}

// TestLazyMatchesEagerReference pins the lazy generator to the original
// eager trajectory, reading every node every epoch.
func TestLazyMatchesEagerReference(t *testing.T) {
	pos := refPositions(40, 7)
	lazy := NewGenerator(pos, sim.NewRNG(1).Stream("data"))
	eager := newEagerRef(pos, sim.NewRNG(1).Stream("data"))

	for epoch := 0; epoch < 300; epoch++ {
		if epoch > 0 {
			lazy.Step()
			eager.step()
		}
		for _, ty := range AllTypes() {
			for i := range pos {
				got := lazy.Value(topology.NodeID(i), ty)
				want := eager.values[i][ty]
				if got != want {
					t.Fatalf("epoch %d node %d type %s: lazy %v != eager %v",
						epoch, i, ty, got, want)
				}
			}
		}
	}
}

// TestLazySparseReadsMatchEager reads only a drifting subset of nodes each
// epoch (and everything at the end), so stale snapshots must re-evaluate
// to exactly the eager value no matter how long they slept.
func TestLazySparseReadsMatchEager(t *testing.T) {
	pos := refPositions(40, 11)
	lazy := NewGenerator(pos, sim.NewRNG(3).Stream("data"))
	eager := newEagerRef(pos, sim.NewRNG(3).Stream("data"))

	for epoch := 1; epoch <= 500; epoch++ {
		lazy.Step()
		eager.step()
		// Read a small, epoch-dependent subset.
		for k := 0; k < 3; k++ {
			i := (epoch*7 + k*13) % len(pos)
			ty := AllTypes()[(epoch+k)%int(NumTypes)]
			if got, want := lazy.Value(topology.NodeID(i), ty), eager.values[i][ty]; got != want {
				t.Fatalf("epoch %d node %d type %s: lazy %v != eager %v", epoch, i, ty, got, want)
			}
		}
	}
	for _, ty := range AllTypes() {
		for i := range pos {
			if got, want := lazy.Value(topology.NodeID(i), ty), eager.values[i][ty]; got != want {
				t.Fatalf("final read node %d type %s: lazy %v != eager %v", i, ty, got, want)
			}
		}
	}
}
