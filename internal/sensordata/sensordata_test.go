package sensordata

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func testPositions(n int, rng *sim.RNG) []topology.Position {
	pos := make([]topology.Position, n)
	for i := range pos {
		pos[i] = topology.Position{X: rng.Range(0, 100), Y: rng.Range(0, 100)}
	}
	return pos
}

func TestTypeStringAndSpan(t *testing.T) {
	for _, ty := range AllTypes() {
		if ty.String() == "" {
			t.Fatalf("type %d has empty name", ty)
		}
		lo, hi := ty.Span()
		if hi <= lo {
			t.Fatalf("%v span [%v,%v] inverted", ty, lo, hi)
		}
		if ty.SpanWidth() != hi-lo {
			t.Fatalf("%v SpanWidth mismatch", ty)
		}
	}
	if len(AllTypes()) != int(NumTypes) {
		t.Fatal("AllTypes incomplete")
	}
}

func TestGeneratorValuesWithinSpan(t *testing.T) {
	rng := sim.NewRNG(1)
	g := NewGenerator(testPositions(30, rng), rng.Stream("data"))
	for e := 0; e < 500; e++ {
		for _, ty := range AllTypes() {
			for i := 0; i < g.NumNodes(); i++ {
				v := g.Value(topology.NodeID(i), ty)
				lo, hi := ty.Span()
				if v < lo || v > hi {
					t.Fatalf("epoch %d node %d %v = %v outside [%v,%v]", e, i, ty, v, lo, hi)
				}
			}
		}
		g.Step()
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	rng1 := sim.NewRNG(7)
	rng2 := sim.NewRNG(7)
	pos := testPositions(20, rng1)
	_ = testPositions(20, rng2) // keep streams aligned
	a := NewGenerator(pos, rng1.Stream("data"))
	b := NewGenerator(pos, rng2.Stream("data"))
	for e := 0; e < 100; e++ {
		for i := 0; i < 20; i++ {
			if a.Value(topology.NodeID(i), Temperature) != b.Value(topology.NodeID(i), Temperature) {
				t.Fatalf("divergence at epoch %d node %d", e, i)
			}
		}
		a.Step()
		b.Step()
	}
}

func TestSpatialCorrelation(t *testing.T) {
	// Paper: "sensor values of nodes located close to one another are
	// spatially related". Mean |difference| between near pairs must be
	// smaller than between far pairs.
	rng := sim.NewRNG(3)
	pos := []topology.Position{
		{X: 10, Y: 10}, {X: 12, Y: 10}, // near pair
		{X: 90, Y: 90}, {X: 88, Y: 90}, // near pair
	}
	g := NewGenerator(pos, rng.Stream("data"))
	var nearDiff, farDiff float64
	const epochs = 2000
	for e := 0; e < epochs; e++ {
		nearDiff += math.Abs(g.Value(0, Temperature) - g.Value(1, Temperature))
		nearDiff += math.Abs(g.Value(2, Temperature) - g.Value(3, Temperature))
		farDiff += math.Abs(g.Value(0, Temperature) - g.Value(2, Temperature))
		farDiff += math.Abs(g.Value(1, Temperature) - g.Value(3, Temperature))
		g.Step()
	}
	if nearDiff >= farDiff {
		t.Fatalf("near-pair diff %v >= far-pair diff %v: no spatial correlation", nearDiff, farDiff)
	}
}

func TestTemporalCorrelation(t *testing.T) {
	// Lag-1 autocorrelation of a node's series must be strongly positive.
	rng := sim.NewRNG(5)
	g := NewGenerator(testPositions(5, rng), rng.Stream("data"))
	const epochs = 3000
	series := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		series[e] = g.Value(0, Humidity)
		g.Step()
	}
	mean := 0.0
	for _, v := range series {
		mean += v
	}
	mean /= epochs
	var num, den float64
	for i := 1; i < epochs; i++ {
		num += (series[i] - mean) * (series[i-1] - mean)
	}
	for _, v := range series {
		den += (v - mean) * (v - mean)
	}
	if den == 0 {
		t.Fatal("constant series")
	}
	if ac := num / den; ac < 0.9 {
		t.Fatalf("lag-1 autocorrelation %v, want > 0.9 (temporally related data)", ac)
	}
}

func TestValuesChangOverTime(t *testing.T) {
	rng := sim.NewRNG(11)
	g := NewGenerator(testPositions(5, rng), rng.Stream("data"))
	v0 := g.Value(0, Temperature)
	changed := false
	for e := 0; e < 200; e++ {
		g.Step()
		if g.Value(0, Temperature) != v0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("value frozen over 200 epochs")
	}
}

func TestValuesSliceMatchesValue(t *testing.T) {
	rng := sim.NewRNG(13)
	g := NewGenerator(testPositions(8, rng), rng.Stream("data"))
	vs := g.Values(Light)
	if len(vs) != 8 {
		t.Fatalf("Values length %d", len(vs))
	}
	for i, v := range vs {
		if v != g.Value(topology.NodeID(i), Light) {
			t.Fatalf("Values[%d] mismatch", i)
		}
	}
}

func TestSetParams(t *testing.T) {
	rng := sim.NewRNG(17)
	g := NewGenerator(testPositions(4, rng), rng.Stream("data"))
	p := DefaultParams(Temperature)
	p.Base = 39
	p.DiurnalAmp = 0
	p.PlumeAmp = 0
	p.NoiseSigma = 0
	g.SetParams(Temperature, p)
	// With no plumes/noise contribution the value should sit at Base
	// (plumes still exist but amp comes from construction...). Instead
	// verify the recompute happened and values are near the new base.
	for i := 0; i < 4; i++ {
		v := g.Value(topology.NodeID(i), Temperature)
		if v < 30 || v > 40 {
			t.Fatalf("after SetParams value %v, want near 39", v)
		}
	}
}

func TestReflectStaysInBounds(t *testing.T) {
	for _, v := range []float64{-250.5, -3, 0, 5, 99, 105, 999.5} {
		r := reflect(v, 100)
		if r < 0 || r > 100 {
			t.Fatalf("reflect(%v,100) = %v out of bounds", v, r)
		}
	}
	if reflect(50, 100) != 50 {
		t.Fatal("reflect changed an in-bounds value")
	}
}

func TestVolatilityEstimator(t *testing.T) {
	v := NewVolatility(0.5)
	// Alternating 0,2,0,2... has mean abs delta 2.
	for i := 0; i < 100; i++ {
		v.Observe(float64((i % 2) * 2))
	}
	if got := v.MeanAbsDelta(); math.Abs(got-2) > 0.01 {
		t.Fatalf("MeanAbsDelta = %v, want ~2", got)
	}
}

func TestVolatilityConstantSignal(t *testing.T) {
	v := NewVolatility(0.1)
	for i := 0; i < 50; i++ {
		v.Observe(7)
	}
	if v.MeanAbsDelta() != 0 {
		t.Fatalf("constant signal volatility %v, want 0", v.MeanAbsDelta())
	}
}

func TestVolatilityZeroValueUsable(t *testing.T) {
	var v Volatility
	v.Observe(1)
	v.Observe(2)
	if v.MeanAbsDelta() <= 0 {
		t.Fatal("zero-value Volatility did not accumulate")
	}
}

func TestVolatilityAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v accepted", a)
				}
			}()
			NewVolatility(a)
		}()
	}
}

func TestTypeSetOperations(t *testing.T) {
	var s TypeSet
	if s.Len() != 0 {
		t.Fatal("empty set has members")
	}
	s = s.With(Temperature).With(Light)
	if !s.Has(Temperature) || !s.Has(Light) || s.Has(Humidity) {
		t.Fatalf("set membership wrong: %b", s)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s = s.Without(Temperature)
	if s.Has(Temperature) || !s.Has(Light) {
		t.Fatal("Without broken")
	}
	types := AllTypeSet().Types()
	if len(types) != int(NumTypes) {
		t.Fatalf("AllTypeSet has %d types", len(types))
	}
}

func TestAssignTypes(t *testing.T) {
	rng := sim.NewRNG(23)
	sets := AssignTypes(50, 0.5, rng)
	if sets[0] != 0 {
		t.Fatal("root (node 0) was assigned sensors; it is a pure sink")
	}
	for i := 1; i < 50; i++ {
		if sets[i].Len() == 0 {
			t.Fatalf("node %d has no sensors", i)
		}
	}
	// With p=0.5 over 4 types and 49 nodes, not everyone should have all 4.
	all := 0
	for i := 1; i < 50; i++ {
		if sets[i] == AllTypeSet() {
			all++
		}
	}
	if all == 49 {
		t.Fatal("heterogeneous assignment produced a homogeneous network")
	}
}

func TestAssignAllTypes(t *testing.T) {
	sets := AssignAllTypes(10)
	if sets[0] != 0 {
		t.Fatal("root has sensors")
	}
	for i := 1; i < 10; i++ {
		if sets[i] != AllTypeSet() {
			t.Fatalf("node %d missing types", i)
		}
	}
}
