package sensordata

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// TestStepSweepValueAllocFree pins the generator's steady-state allocation
// ceiling at zero: advancing an epoch, running the quiescence sweep for
// every type and lazily evaluating a handful of nodes must not allocate
// once warm — these run every epoch at every network size.
func TestStepSweepValueAllocFree(t *testing.T) {
	pos := refPositions(200, 5)
	g := NewGenerator(pos, sim.NewRNG(9).Stream("data"))

	n := len(pos)
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := range lo {
		// Mid-width windows so the sweep exercises both outcomes.
		lo[i], hi[i] = 10, 20
	}
	dst := make([]int32, 0, n)

	// Warm up lazy state and the sweep scratch.
	for e := 0; e < 3; e++ {
		g.Step()
		for _, ty := range AllTypes() {
			dst = g.ActiveSweep(ty, lo, hi, dst[:0])
		}
		g.Value(0, Temperature)
	}

	allocs := testing.AllocsPerRun(200, func() {
		g.Step()
		for _, ty := range AllTypes() {
			dst = g.ActiveSweep(ty, lo, hi, dst[:0])
		}
		for i := 0; i < 8; i++ {
			g.Value(topology.NodeID(i*17%len(pos)), Humidity)
		}
	})
	if allocs != 0 {
		t.Fatalf("Step+ActiveSweep+Value allocate %.1f objects per epoch, want 0", allocs)
	}
}

// TestQuiescentWindowZeroEvaluations is the gating property test: with a
// static field (no drift, no noise, no diurnal cycle) every node's value
// is provably frozen, so after the first evaluation a window of epochs
// must perform zero field evaluations and the sweep must return no active
// nodes.
func TestQuiescentWindowZeroEvaluations(t *testing.T) {
	pos := refPositions(64, 3)
	g := NewGenerator(pos, sim.NewRNG(2).Stream("data"))
	for _, ty := range AllTypes() {
		p := g.Params(ty)
		p.DriftStep = 0
		p.NoiseSigma = 0
		p.DiurnalAmp = 0
		g.SetParams(ty, p)
	}

	n := len(pos)
	dst := make([]int32, 0, n)

	// One pass to establish values and hysteresis-style windows around
	// them, exactly as the protocol would after the first reading. The
	// window is deliberately razor thin: with a static field even ±1e-6
	// is provably safe.
	type win struct{ lo, hi []float64 }
	wins := make([]win, NumTypes)
	for _, ty := range AllTypes() {
		wins[ty] = win{lo: make([]float64, n), hi: make([]float64, n)}
		for i := 0; i < n; i++ {
			v := g.Value(topology.NodeID(i), ty)
			wins[ty].lo[i], wins[ty].hi[i] = v-1e-6, v+1e-6
		}
	}

	start := g.Evals()
	for epoch := 0; epoch < 500; epoch++ {
		g.Step()
		for _, ty := range AllTypes() {
			if act := g.ActiveSweep(ty, wins[ty].lo, wins[ty].hi, dst[:0]); len(act) != 0 {
				t.Fatalf("epoch %d: static field flagged %d active nodes for %s",
					epoch, len(act), ty)
			}
		}
	}
	if got := g.Evals(); got != start {
		t.Fatalf("static field still evaluated %d times over the window", got-start)
	}
}

// TestSweepNeverLies is the safety property: whenever the sweep omits a
// node, the node's actual value this epoch must indeed lie inside its
// window. Runs with full default dynamics so plumes, noise and the
// diurnal cycle all push against the bound.
func TestSweepNeverLies(t *testing.T) {
	pos := refPositions(80, 13)
	g := NewGenerator(pos, sim.NewRNG(7).Stream("data"))

	n := len(pos)
	active := make([]bool, n)
	dst := make([]int32, 0, n)

	// Hysteresis-style windows around the initial readings (δ = 5% of
	// span, like the paper's default), re-centred whenever a value
	// escapes — exactly the protocol's rule.
	type win struct{ lo, hi []float64 }
	wins := make([]win, NumTypes)
	for _, ty := range AllTypes() {
		wins[ty] = win{lo: make([]float64, n), hi: make([]float64, n)}
		delta := ty.SpanWidth() * 0.05
		for i := 0; i < n; i++ {
			v := g.Value(topology.NodeID(i), ty)
			wins[ty].lo[i], wins[ty].hi[i] = v-delta, v+delta
		}
	}
	for epoch := 1; epoch <= 400; epoch++ {
		g.Step()
		for _, ty := range AllTypes() {
			w := wins[ty]
			dst = g.ActiveSweep(ty, w.lo, w.hi, dst[:0])
			for i := range active {
				active[i] = false
			}
			for _, i := range dst {
				active[i] = true
			}
			delta := ty.SpanWidth() * 0.05
			for i := 0; i < n; i++ {
				v := g.Value(topology.NodeID(i), ty)
				if !active[i] && (v < w.lo[i] || v > w.hi[i]) {
					t.Fatalf("epoch %d node %d type %s: sweep claimed quiet but value %v escaped [%v, %v]",
						epoch, i, ty, v, w.lo[i], w.hi[i])
				}
				if v < w.lo[i] || v > w.hi[i] {
					// Re-centre, as the hysteresis rule would.
					w.lo[i], w.hi[i] = v-delta, v+delta
				}
			}
		}
	}
	if g.Evals() == 0 {
		t.Fatal("property test never evaluated anything")
	}
	if math.IsNaN(g.Value(0, Temperature)) {
		t.Fatal("NaN escaped the generator")
	}
}
