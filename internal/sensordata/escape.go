package sensordata

import (
	"math"
	"slices"

	"repro/internal/topology"
)

// This file implements the escape-time calendar that makes ActiveSweep and
// ActiveSweepRange O(active + due) per epoch instead of O(N·types).
//
// The idea: every refutation already computes a conservative bracket
// [vlo, vhi] around a node's possible reading and a margin to its window.
// The bracket can only widen as fast as the per-type "motion budget"
// escA — a monotone accumulator of the same per-epoch bounds the sweep
// predicate uses (plume motion + worst-case AR(1) noise delta + diurnal
// delta). A node refuted with margin m therefore cannot become active
// before escA has grown by m, so we schedule its next examination at the
// absolute threshold T = escA + m − safety and park it in a bucketed
// calendar. Each epoch the sweep examines only nodes whose threshold has
// arrived (plus anything explicitly dirtied), applying the *exact* same
// float expression the full scan used — so the active set, and therefore
// every downstream byte of protocol output, is unchanged.
//
// Soundness sketch: with no re-evaluation between the scheduling epoch s
// and a later epoch e, the predicate's clamped bracket endpoints move by
// at most ΔA = escA(e) − escA(s): the centre c moves by the day delta plus
// the node's noise delta (both ≤ their accumulated per-epoch bounds) and
// dev grows by the plume motion bound; clamping is a contraction
// (max(a−d, L) ≥ max(a, L) − d). Re-evaluations of a scheduled-quiet node
// only tighten the bracket around the true value, adding at most the 1e-9
// sweep slop per re-eval; the per-type safety term absorbs those slops
// plus float drift in the accumulator itself.

// escBuckets is the calendar ring size: thresholds further than
// escBuckets buckets ahead are clamped to the horizon, which only causes
// a harmlessly early re-examination every escBuckets buckets.
const escBuckets = 256

// escAllMask has every sensor type's bit set.
const escAllMask = uint8(1<<NumTypes) - 1

// escSafetyMargins is the per-type slack subtracted from a refutation's
// margin before scheduling: it covers accumulated float drift between the
// exact predicate arithmetic and the escA bound, plus the 1e-9 slop each
// re-evaluation can introduce. Margins at or below it mean "due next
// epoch".
var escSafetyMargins = func() [NumTypes]float64 {
	var m [NumTypes]float64
	for _, t := range allTypes {
		m[t] = 1e-5 * (1 + t.SpanWidth())
	}
	return m
}()

// escCalendar is one sensor type's bucketed deadline ring. Entries are
// nodes linked intrusively (next/prev/bucketOf are node-indexed), so
// scheduling and draining never allocate.
type escCalendar struct {
	bw       float64 // A-space width of one bucket
	lastJ    int64   // highest absolute bucket index drained so far
	head     [escBuckets]int32
	next     []int32
	prev     []int32
	bucketOf []int32 // ring slot a node is linked in; -1 = unlinked
}

// push links node i into ring slot s (unlinking it first if needed).
func (c *escCalendar) push(i int, s int32) {
	if c.bucketOf[i] >= 0 {
		c.unlink(i)
	}
	h := c.head[s]
	c.next[i] = h
	c.prev[i] = -1
	if h >= 0 {
		c.prev[h] = int32(i)
	}
	c.head[s] = int32(i)
	c.bucketOf[i] = s
}

// unlink removes node i from whatever slot it is linked in, if any.
func (c *escCalendar) unlink(i int) {
	s := c.bucketOf[i]
	if s < 0 {
		return
	}
	if p := c.prev[i]; p >= 0 {
		c.next[p] = c.next[i]
	} else {
		c.head[s] = c.next[i]
	}
	if n := c.next[i]; n >= 0 {
		c.prev[n] = c.prev[i]
	}
	c.bucketOf[i] = -1
}

// escInit sizes and resets the calendar state for a freshly built
// generator: everything starts due, so the first sweep examines every
// node once (exactly what the pre-calendar full scan did).
func (g *Generator) escInit() {
	n := len(g.positions)
	g.nextT = make([]float64, int(NumTypes)*n)
	g.dueNodes = make([]int32, 0, n)
	g.prevDue = make([]int32, 0, n)
	g.prevMask = make([]uint8, 0, n)
	g.dueMask = make([]uint8, n)
	g.dueStamp = make([]int64, n)
	for i := range g.dueStamp {
		g.dueStamp[i] = -1
	}
	g.escEpoch = -1
	g.escAllDue = true
	for _, t := range AllTypes() {
		f := g.fields[t]
		f.lastDay = f.dayAt(0)
		cal := &g.esc[t]
		cal.next = make([]int32, n)
		cal.prev = make([]int32, n)
		cal.bucketOf = make([]int32, n)
		for i := 0; i < n; i++ {
			cal.next[i], cal.prev[i], cal.bucketOf[i] = -1, -1, -1
		}
		for s := range cal.head {
			cal.head[s] = -1
		}
		cal.bw = g.escBW(t)
	}
}

// escInvalidate flushes the whole calendar: every (node, type) becomes
// due at the next sweep and the bucket widths are re-derived from the
// (possibly changed) field parameters. Called on any event that can
// rewrite windows or field dynamics out from under recorded margins.
func (g *Generator) escInvalidate() {
	g.escAllDue = true
	g.escEpoch = -1 // re-drain even if a sweep already ran this epoch
	g.forced = g.forced[:0]
	for _, t := range AllTypes() {
		f := g.fields[t]
		// Re-anchor the diurnal delta baseline under the current params so
		// the first post-change step accumulates the true day movement.
		f.lastDay = f.dayAt(g.epoch)
		cal := &g.esc[t]
		for s := range cal.head {
			cal.head[s] = -1
		}
		for i := range cal.bucketOf {
			cal.bucketOf[i] = -1
		}
		cal.bw = g.escBW(t)
		cal.lastJ = int64(f.escA / cal.bw)
	}
}

// escBW estimates one type's typical per-epoch escA growth — the bucket
// resolution. Only scheduling granularity depends on it, never
// correctness, so a static analytic estimate is fine.
func (g *Generator) escBW(t Type) float64 {
	f := g.fields[t]
	p := f.params
	est := 0.0
	// Expected per-plume motion bound: mean displacement of a 2D Gaussian
	// step is DriftStep·sqrt(pi/2), times the steepest-slope factor.
	const meanChi2 = 1.2533141373155003
	for _, pl := range f.plumes {
		amp := math.Abs(pl.amp)
		b := amp
		if pl.sigma > 0 {
			if s := meanChi2 * p.DriftStep * maxPlumeSlope / pl.sigma * amp; s < b {
				b = s
			}
		}
		est += b
	}
	n := len(g.positions)
	if n < 2 {
		n = 2
	}
	// Worst-of-N AR(1) innovation per epoch ~ sigma·sqrt(2 ln N).
	est += p.NoiseSigma * (1 + math.Sqrt(2*math.Log(float64(n))))
	if p.PeriodEpoch > 0 {
		est += p.DiurnalAmp * 2 * math.Pi / float64(p.PeriodEpoch)
	}
	if est < 1e-12 {
		est = 1e-12
	}
	return est
}

// MarkWindowDirty schedules a node for re-examination (all types) at the
// next sweep, regardless of any recorded refutation margin. Callers must
// invoke it whenever they rewrite a node's sweep windows outside the
// sweep→sample→refresh cycle (joining, parking, reconfiguration); windows
// of nodes the previous sweep reported active may change freely.
func (g *Generator) MarkWindowDirty(id topology.NodeID) {
	if g.escAllDue {
		return
	}
	g.forced = append(g.forced, int32(id))
}

// InvalidateWindows forces every (node, type) pair to be re-examined at
// the next sweep without discarding evaluation snapshots. Use it after a
// bulk window rewrite (e.g. a global retune).
func (g *Generator) InvalidateWindows() {
	g.escInvalidate()
}

// escMarkDue adds the given type bits of node i to this epoch's due set.
func (g *Generator) escMarkDue(i int, bits uint8, epoch int64) {
	if g.dueStamp[i] != epoch {
		g.dueStamp[i] = epoch
		g.dueMask[i] = 0
		g.dueNodes = append(g.dueNodes, int32(i))
	}
	g.dueMask[i] |= bits
}

// escDrain computes the current epoch's due set: the previous due set is
// routed into calendar buckets (or kept due) per the thresholds the exams
// recorded, dirtied nodes are forced due, and every bucket whose deadline
// the motion accumulator has passed is drained. Runs once per epoch — the
// first sweep (or PrepareConcurrentReads) triggers it; concurrent
// ActiveSweepRange callers only read.
func (g *Generator) escDrain() {
	if g.escEpoch == g.epoch {
		return
	}
	g.escEpoch = g.epoch
	n := len(g.positions)
	epoch := g.epoch
	g.dueNodes = g.dueNodes[:0]
	if g.escAllDue {
		g.escAllDue = false
		g.forced = g.forced[:0]
		for i := 0; i < n; i++ {
			g.dueStamp[i] = epoch
			g.dueMask[i] = escAllMask
			g.dueNodes = append(g.dueNodes, int32(i))
		}
		nan := math.NaN()
		for k := range g.nextT {
			g.nextT[k] = nan
		}
		g.prevDue = append(g.prevDue[:0], g.dueNodes...)
		g.prevMask = g.prevMask[:0]
		for range g.dueNodes {
			g.prevMask = append(g.prevMask, escAllMask)
		}
		return
	}
	// Dirtied nodes: due now for every type, and out of the buckets so a
	// later placement can never double-link them.
	for _, id := range g.forced {
		i := int(id)
		for _, t := range AllTypes() {
			g.esc[t].unlink(i)
		}
		g.escMarkDue(i, escAllMask, epoch)
	}
	g.forced = g.forced[:0]
	// Placement: route the previous due set per the recorded thresholds.
	// NaN means the exam never ran (caller swept a subset of types) — stay
	// due; +Inf means the window is unreachable — parked until dirtied.
	for p, id := range g.prevDue {
		i := int(id)
		pm := g.prevMask[p]
		for _, t := range AllTypes() {
			bit := uint8(1) << uint(t)
			if pm&bit == 0 {
				continue
			}
			if g.dueStamp[i] == epoch && g.dueMask[i]&bit != 0 {
				continue // already forced due this epoch
			}
			T := g.nextT[int(t)*n+i]
			if math.IsInf(T, 1) {
				continue
			}
			if math.IsNaN(T) {
				g.escMarkDue(i, bit, epoch)
				continue
			}
			cal := &g.esc[t]
			j := int64(T / cal.bw)
			if j <= cal.lastJ {
				g.escMarkDue(i, bit, epoch)
				continue
			}
			if j >= cal.lastJ+escBuckets {
				j = cal.lastJ + escBuckets - 1
			}
			cal.push(i, int32(j%escBuckets))
		}
	}
	// Advance each type's calendar to its accumulator and drain every
	// bucket whose deadline has arrived.
	for _, t := range AllTypes() {
		cal := &g.esc[t]
		bit := uint8(1) << uint(t)
		j1 := int64(g.fields[t].escA / cal.bw)
		if j1 <= cal.lastJ {
			continue
		}
		lo := cal.lastJ + 1
		if j1-cal.lastJ > escBuckets {
			lo = j1 - escBuckets + 1
		}
		for j := lo; j <= j1; j++ {
			slot := int32(j % escBuckets)
			for id := cal.head[slot]; id >= 0; {
				nxt := cal.next[id]
				cal.bucketOf[id] = -1
				g.escMarkDue(int(id), bit, epoch)
				id = nxt
			}
			cal.head[slot] = -1
		}
		cal.lastJ = j1
	}
	slices.Sort(g.dueNodes)
	// Mark every due (node, type) unexamined; exams overwrite the mark
	// with the next threshold, and anything still NaN next drain stays
	// due.
	nan := math.NaN()
	for _, id := range g.dueNodes {
		i := int(id)
		m := g.dueMask[i]
		for _, t := range AllTypes() {
			if m&(1<<uint(t)) != 0 {
				g.nextT[int(t)*n+i] = nan
			}
		}
	}
	g.prevDue = append(g.prevDue[:0], g.dueNodes...)
	g.prevMask = g.prevMask[:0]
	for _, id := range g.dueNodes {
		g.prevMask = append(g.prevMask, g.dueMask[id])
	}
}
