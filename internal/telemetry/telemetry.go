// Package telemetry is a zero-dependency metrics layer for the simulator
// and its serving stack: counters, gauges and fixed-bucket histograms
// behind a registry with Prometheus-text and JSON exposition.
//
// Two properties shape the design:
//
//   - Hot-path writes are allocation-free and lock-free. Instruments are
//     plain structs of atomics; Inc/Add/Set/Observe never allocate, never
//     take the registry lock, and are safe from any goroutine (the serve
//     layer increments from its shard loops while /metrics scrapes).
//   - Instrumentation is provably inert. Every instrument method is a
//     no-op on a nil receiver, so instrumented code paths carry bare
//     `c.Inc()` calls with no conditional wiring; a simulation with no
//     registry attached executes the identical instruction stream minus
//     the atomic writes. Nothing ever reads an instrument back into
//     simulation behaviour, and no instrument touches an RNG stream, so
//     outputs are byte-identical with telemetry on or off (enforced by
//     equivalence tests in scenario, script, serve and experiments).
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one dimension of a metric series (e.g. {shard="s0"}).
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing int64. A nil *Counter is a valid
// no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the Prometheus contract; this is not
// checked on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. A nil *Gauge is a valid no-op
// instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-watermark (e.g. peak event-heap depth).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: counts per upper bound plus a
// +Inf overflow bucket, a total count, and a sum. Observe is lock-free
// and allocation-free. A nil *Histogram is a valid no-op instrument.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram validates bounds (ascending, finite) and allocates.
func newHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: non-finite histogram bound %v", b))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %v", b))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~20) and the scan avoids the
	// bounds-check and call overhead of sort.Search on the hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of samples (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// LatencyBuckets is a 1ms..~16s exponential ladder for query latencies,
// in seconds.
func LatencyBuckets() []float64 { return ExponentialBuckets(0.001, 2, 15) }

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Kind discriminates instrument types in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// series is one registered instrument with its identity.
type series struct {
	name   string
	help   string
	kind   string
	labels []Label // sorted by key

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry owns a set of metric series. Registration is idempotent: the
// same (name, labels) returns the same instrument, so rebuilding a
// simulation on a recycled engine (or restarting a shard) re-binds to the
// counters it already owns instead of losing or duplicating them.
// Registration takes a lock; instrument writes do not.
type Registry struct {
	mu     sync.Mutex
	series []*series
	index  map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*series{}}
}

// Instrumenter is the registration surface instrumented layers accept. It
// is satisfied by *Registry and by Scoped views; configs carry it as an
// interface so a nil value stays encodable (encoding/gob chokes on typed
// nil pointers to unexported-field structs, and scenario results are
// gob-compared by the fuzz oracles).
type Instrumenter interface {
	Counter(name, help string, labels ...Label) *Counter
	Gauge(name, help string, labels ...Label) *Gauge
	Histogram(name, help string, bounds []float64, labels ...Label) *Histogram
}

// seriesKey builds the identity key for (name, sorted labels).
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or creates a series, panicking on a kind clash (two call
// sites disagreeing about what a name means is a programming error).
func (r *Registry) lookup(name, help, kind string, labels []Label) *series {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := seriesKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.index[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, s.kind))
		}
		return s
	}
	s := &series{name: name, help: help, kind: kind, labels: ls}
	r.index[key] = s
	r.series = append(r.series, s)
	return s
}

// Counter returns the counter registered under (name, labels), creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, KindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, KindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram registered under (name, labels),
// creating it with the given bucket upper bounds on first use (later
// registrations reuse the first bounds).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, KindHistogram, labels)
	if s.hist == nil {
		s.hist = newHistogram(bounds)
	}
	return s.hist
}

// scoped is an Instrumenter view that prepends constant labels — how the
// serve manager gives every shard its own {shard="..."} series family.
type scoped struct {
	r    *Registry
	base []Label
}

// Scoped returns an Instrumenter that registers every instrument on r
// with the given labels prepended.
func Scoped(r *Registry, labels ...Label) Instrumenter {
	return &scoped{r: r, base: append([]Label(nil), labels...)}
}

func (s *scoped) all(labels []Label) []Label {
	return append(append([]Label(nil), s.base...), labels...)
}

func (s *scoped) Counter(name, help string, labels ...Label) *Counter {
	return s.r.Counter(name, help, s.all(labels)...)
}

func (s *scoped) Gauge(name, help string, labels ...Label) *Gauge {
	return s.r.Gauge(name, help, s.all(labels)...)
}

func (s *scoped) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return s.r.Histogram(name, help, bounds, s.all(labels)...)
}
