package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketCount is one cumulative histogram bucket in a snapshot: the count
// of samples <= LE.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// SeriesSnapshot is one metric series at a point in time — the wire form
// of /metrics.json, decodable by clients (serve.Client.Metrics).
type SeriesSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`

	// Value is the current value of a counter or gauge.
	Value float64 `json:"value"`

	// Histogram fields. Buckets are cumulative; the last is the +Inf
	// bucket (encoded as JSON null LE is impossible, so +Inf is
	// represented by math.MaxFloat64 on the wire — see infOnWire).
	Count   int64         `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
	P50     float64       `json:"p50,omitempty"`
	P90     float64       `json:"p90,omitempty"`
	P99     float64       `json:"p99,omitempty"`
}

// infOnWire stands in for +Inf in JSON bucket bounds (JSON has no
// infinity literal).
const infOnWire = math.MaxFloat64

// Quantile estimates the q-quantile (0 < q < 1) of a histogram snapshot
// by linear interpolation inside the containing bucket. The overflow
// bucket yields its lower bound (the last finite LE). Returns 0 with no
// samples.
func (s SeriesSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	lower := 0.0
	prev := int64(0)
	for i, b := range s.Buckets {
		if float64(b.Count) >= rank {
			le := b.LE
			if le >= infOnWire || math.IsInf(le, +1) {
				return lower // overflow bucket: no finite upper bound
			}
			in := b.Count - prev
			if in <= 0 {
				return le
			}
			if i == 0 {
				lower = 0
			}
			return lower + (le-lower)*(rank-float64(prev))/float64(in)
		}
		if !math.IsInf(b.LE, +1) && b.LE < infOnWire {
			lower = b.LE
		}
		prev = b.Count
	}
	return lower
}

// snapshotLocked captures one series. Callers hold r.mu.
func (s *series) snapshot() SeriesSnapshot {
	out := SeriesSnapshot{Name: s.name, Kind: s.kind, Help: s.help}
	if len(s.labels) > 0 {
		out.Labels = make(map[string]string, len(s.labels))
		for _, l := range s.labels {
			out.Labels[l.Key] = l.Value
		}
	}
	switch s.kind {
	case KindCounter:
		out.Value = float64(s.counter.Value())
	case KindGauge:
		out.Value = float64(s.gauge.Value())
	case KindHistogram:
		h := s.hist
		out.Sum = h.Sum()
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := infOnWire
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			out.Buckets = append(out.Buckets, BucketCount{LE: le, Count: cum})
		}
		// The cumulative +Inf bucket is the authoritative count: buckets
		// are read before the count field would be, so a racing Observe
		// can never yield count > buckets.
		out.Count = cum
		out.P50 = out.Quantile(0.50)
		out.P90 = out.Quantile(0.90)
		out.P99 = out.Quantile(0.99)
	}
	return out
}

// Snapshot captures every registered series, sorted by (name, labels) so
// output is deterministic however registration interleaved.
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s.snapshot())
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

// labelString renders a label map as sorted k="v" pairs.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value in Prometheus text form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1) || v >= infOnWire:
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLine writes one sample line, merging extra labels into the series
// labels.
func promLine(w io.Writer, name string, labels map[string]string, extraK, extraV, value string) error {
	ls := labelString(labels)
	if extraK != "" {
		pair := extraK + `="` + escapeLabel(extraV) + `"`
		if ls == "" {
			ls = pair
		} else {
			ls += "," + pair
		}
	}
	if ls != "" {
		ls = "{" + ls + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, ls, value)
	return err
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per metric family, then
// the family's series sorted by labels. Histograms expand to _bucket
// (cumulative, with le), _sum and _count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	lastFamily := ""
	for _, s := range snaps {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				if err := promLine(w, s.Name+"_bucket", s.Labels, "le", formatFloat(b.LE),
					strconv.FormatInt(b.Count, 10)); err != nil {
					return err
				}
			}
			if err := promLine(w, s.Name+"_sum", s.Labels, "", "", formatFloat(s.Sum)); err != nil {
				return err
			}
			if err := promLine(w, s.Name+"_count", s.Labels, "", "",
				strconv.FormatInt(s.Count, 10)); err != nil {
				return err
			}
		default:
			if err := promLine(w, s.Name, s.Labels, "", "", formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// MetricsJSON is the top-level document of /metrics.json.
type MetricsJSON struct {
	Metrics []SeriesSnapshot `json:"metrics"`
}

// WriteJSON renders every series as one indented JSON document
// ({"metrics": [...]}), sorted like Snapshot, with estimated p50/p90/p99
// on histograms.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsJSON{Metrics: r.Snapshot()})
}
