package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilInstrumentsAreNoOps: the inertness contract — every method on a
// nil instrument is callable and does nothing.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Errorf("nil counter Value() = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3)
	g.Add(2)
	g.SetMax(9)
	if got := g.Value(); got != 0 {
		t.Errorf("nil gauge Value() = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram Count/Sum = %d/%v, want 0/0", h.Count(), h.Sum())
	}
}

// TestRegistryIdempotent: the same (name, labels) yields the same
// instrument — in any label order — and a different label value yields a
// distinct series.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Label{"shard", "s0"}, Label{"kind", "full"})
	b := r.Counter("x_total", "", Label{"kind", "full"}, Label{"shard", "s0"})
	if a != b {
		t.Error("same (name, labels) in different order returned distinct counters")
	}
	c := r.Counter("x_total", "", Label{"kind", "quiet"}, Label{"shard", "s0"})
	if a == c {
		t.Error("distinct label values returned the same counter")
	}
	if n := len(r.Snapshot()); n != 2 {
		t.Errorf("registry has %d series, want 2", n)
	}
}

// TestKindClashPanics: re-registering a name as a different kind is a
// programming error and must panic rather than silently alias.
func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestConcurrentWrites hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the data-race audit, and
// the final counter/histogram totals must be exact.
func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
				h.Observe(float64(i % 5))
				if i%64 == 0 {
					r.Snapshot() // concurrent scrapes must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if want := int64(workers*per - 1); g.Value() != want {
		t.Errorf("gauge high-watermark = %d, want %d", g.Value(), want)
	}
	if want := float64(workers) * per * (0 + 1 + 2 + 3 + 4) / 5; h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

// TestHistogramBucketEdges: a sample exactly on an upper bound lands in
// that bucket (le is inclusive, as in Prometheus), and overflow lands in
// +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()[0]
	// Cumulative: <=1 holds {0.5, 1}; <=2 adds {1.0000001, 2}; <=4 adds
	// {4}; +Inf adds {100}.
	want := []BucketCount{{1, 2}, {2, 4}, {4, 5}, {infOnWire, 6}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(snap.Buckets), len(want))
	}
	for i, b := range snap.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = {%v %d}, want {%v %d}", i, b.LE, b.Count, want[i].LE, want[i].Count)
		}
	}
	if snap.Count != 6 {
		t.Errorf("count = %d, want 6", snap.Count)
	}
	if snap.Sum != 0.5+1+1.0000001+2+4+100 {
		t.Errorf("sum = %v", snap.Sum)
	}
}

// TestHistogramBadBounds: non-ascending or non-finite bounds are rejected
// at registration.
func TestHistogramBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{{2, 1}, {1, 1}, {math.Inf(1)}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewRegistry().Histogram("h", "", bounds)
		}()
	}
}

// TestQuantile: interpolation within buckets and the overflow clamp.
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{10, 20, 40})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%2)*10 + 5) // 50 samples in (0,10], 50 in (10,20]
	}
	snap := r.Snapshot()[0]
	if p50 := snap.Quantile(0.50); p50 != 10 {
		t.Errorf("p50 = %v, want 10 (upper edge of the first bucket)", p50)
	}
	if p75 := snap.Quantile(0.75); p75 != 15 {
		t.Errorf("p75 = %v, want 15 (midway through the second bucket)", p75)
	}
	h.Observe(1e9) // one overflow sample
	snap = r.Snapshot()[0]
	if p := snap.Quantile(0.9999); p != 40 {
		t.Errorf("overflow quantile = %v, want the last finite bound 40", p)
	}
	var empty SeriesSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile != 0")
	}
}

// TestPrometheusText: family headers, sample lines, histogram expansion
// and label escaping, against the exact expected exposition.
func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "things\ndone", Label{"q", `va"l\ue`}).Add(3)
	r.Gauge("b", "").Set(-2)
	h := r.Histogram("c_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total things\ndone
# TYPE a_total counter
a_total{q="va\"l\\ue"} 3
# TYPE b gauge
b -2
# HELP c_seconds latency
# TYPE c_seconds histogram
c_seconds_bucket{le="0.5"} 1
c_seconds_bucket{le="1"} 1
c_seconds_bucket{le="+Inf"} 2
c_seconds_sum 2.25
c_seconds_count 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteJSON: the JSON document round-trips through the public wire
// types (what serve.Client.Metrics decodes).
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", Label{"shard", "s0"}).Add(7)
	r.Histogram("lat", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc MetricsJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("decoded %d metrics, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "a_total" || doc.Metrics[0].Value != 7 ||
		doc.Metrics[0].Labels["shard"] != "s0" {
		t.Errorf("counter decoded as %+v", doc.Metrics[0])
	}
	if doc.Metrics[1].Count != 1 || doc.Metrics[1].Sum != 0.5 {
		t.Errorf("histogram decoded as %+v", doc.Metrics[1])
	}
}

// TestScoped: a scoped view prepends its constant labels, and the same
// underlying series is shared with direct registration.
func TestScoped(t *testing.T) {
	r := NewRegistry()
	sc := Scoped(r, Label{"shard", "s1"})
	c1 := sc.Counter("x_total", "", Label{"kind", "full"})
	c2 := r.Counter("x_total", "", Label{"shard", "s1"}, Label{"kind", "full"})
	if c1 != c2 {
		t.Error("scoped and direct registration returned distinct counters")
	}
	snap := r.Snapshot()[0]
	if snap.Labels["shard"] != "s1" || snap.Labels["kind"] != "full" {
		t.Errorf("scoped labels = %v", snap.Labels)
	}
}

// TestSnapshotSorted: snapshot order is (name, labels), independent of
// registration order, so exposition is deterministic.
func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Counter("a_total", "", Label{"shard", "s1"})
	r.Counter("a_total", "", Label{"shard", "s0"})
	var names []string
	for _, s := range r.Snapshot() {
		names = append(names, s.Name+"{"+labelString(s.Labels)+"}")
	}
	want := `a_total{shard="s0"} a_total{shard="s1"} z_total{}`
	if got := strings.Join(names, " "); got != want {
		t.Errorf("snapshot order = %s, want %s", got, want)
	}
}

// TestHotPathAllocations: the inertness budget — instrument writes must
// not allocate, whether the instrument is live or nil. This is what keeps
// telemetry invisible to the simulator's allocation profile.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LatencyBuckets())
	var nilC *Counter
	var nilH *Histogram
	for name, fn := range map[string]func(){
		"Counter.Inc":     func() { c.Inc() },
		"Counter.Add":     func() { c.Add(2) },
		"Gauge.Set":       func() { g.Set(1) },
		"Gauge.SetMax":    func() { g.SetMax(2) },
		"Histogram.Obs":   func() { h.Observe(0.01) },
		"nil Counter.Inc": func() { nilC.Inc() },
		"nil Hist.Obs":    func() { nilH.Observe(1) },
	} {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per call, want 0", name, allocs)
		}
	}
}

// TestExponentialBuckets: the ladder and its argument checks.
func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ExponentialBuckets(0, 2, 3) did not panic")
		}
	}()
	ExponentialBuckets(0, 2, 3)
}
