package scenario

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/atc"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/flood"
	"repro/internal/lmac"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sampling"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ThresholdMode selects how nodes pick δ.
type ThresholdMode int

// Threshold modes.
const (
	// FixedDelta uses Config.FixedPct on every node (§7.1).
	FixedDelta ThresholdMode = iota
	// ATC uses the Adaptive Threshold Control of §6.
	ATC
	// StaticIndex freezes all range updates after the warm-up phase — the
	// Semantic Routing Tree baseline of §2, suited only to constant
	// attributes. Queries keep routing on the stale index.
	StaticIndex
)

// String names the mode.
func (m ThresholdMode) String() string {
	switch m {
	case FixedDelta:
		return "fixed"
	case ATC:
		return "atc"
	case StaticIndex:
		return "static"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config fully parameterizes one simulation run.
type Config struct {
	Seed uint64

	// Topology (§7: 50 nodes including one root, k=8, d=10).
	NumNodes   int
	Width      float64
	Height     float64
	RadioRange float64
	MaxFanout  int // the paper's k
	MaxDepth   int // the paper's d

	// Timing (§7: one reading per epoch for 20 000 epochs, a query every
	// 20 epochs).
	Epochs        int64
	QueryInterval int64
	EpochsPerHour int

	// LoadPhases optionally varies the query injection rate over the run —
	// the "extrinsic" dynamism of §1. Each phase applies its interval until
	// its end epoch; after the last phase QueryInterval applies again.
	// Phases must be ordered by Until and have positive intervals.
	LoadPhases []LoadPhase

	// Workload: target fraction of nodes involved per query (0.2/0.4/0.6).
	Coverage float64

	// Threshold control.
	Mode     ThresholdMode
	FixedPct float64 // δ for FixedDelta mode, in percent of span
	// Rho is the fraction of the flooding-cost headroom the ATC budgets
	// for Update Messages. Query dissemination itself costs roughly
	// 10-15 % of flooding, so ρ=0.4 lands the paper's 45-55 % total-cost
	// band (§6).
	Rho float64
	// ATCFeedbackOff disables the controller's multiplicative feedback,
	// leaving only the volatility feedforward (an ablation knob).
	ATCFeedbackOff bool

	// Heterogeneous mounts each sensor type with probability TypeProb
	// instead of giving every node all four types.
	Heterogeneous bool
	TypeProb      float64

	// PacketLoss enables Bernoulli reception loss (0 = lossless).
	PacketLoss float64

	// PredictiveSampling enables the §8 extension: nodes skip physical
	// sensor acquisitions whenever a per-node forecaster proves the reading
	// could not have changed the range table.
	PredictiveSampling bool

	// DisableActivityGating forces the naive epoch loop: every node
	// evaluates every mounted sensor every epoch and the MAC walks every
	// frame in full. Gated and naive runs are byte-identical by
	// construction (guarded by gated_test.go); the knob exists so the
	// equivalence is testable and so the scale benchmarks can record the
	// ungated cost for comparison.
	DisableActivityGating bool

	// Shards selects the intra-run parallel epoch engine: the routing tree
	// is partitioned into this many subtree shards whose per-epoch sweep
	// and apply phases run concurrently, merging deterministically at the
	// epoch boundary. Sharded runs are byte-identical to serial ones in
	// every mode (sharded_test.go and the sharded-vs-serial fuzz oracle
	// enforce this); modes whose per-node work shares serial state (naive
	// loop, predictive sampling, tracing) silently keep the serial loop.
	// 0 or 1 means serial; -1 auto-sizes to min(GOMAXPROCS, 8), staying
	// serial below 512 nodes where fan-out overhead outweighs the win.
	Shards int

	// EnergyCapacity, when positive, attaches a battery of that many units
	// to every non-root node (energy.DefaultModel proportions). Nodes that
	// deplete are powered off through the cross-layer path, and the Result
	// reports lifetime statistics.
	EnergyCapacity float64

	// DisseminateByFlooding replaces directed dissemination with the §5.1
	// baseline: every query floods the whole network. Range updates are
	// suppressed (δ is effectively infinite). Used for lifetime and cost
	// comparisons against the same workload.
	DisseminateByFlooding bool

	// DisableWorkload suppresses the built-in coverage-targeted query
	// workload. Queries then enter the network only through explicit
	// Runner.Inject calls — the live query-serving path (internal/serve),
	// where clients, not the simulation, decide what to ask and when.
	DisableWorkload bool

	// Script optionally attaches a scenario-dynamics timeline (built by
	// internal/script) that Run executes instead of the plain
	// step-to-the-horizon drive: scheduled node kills, sensor regime
	// shifts, workload bursts, threshold retuning. The driver owns the
	// query workload, so DisableWorkload must be set alongside it
	// (script.Run does both). Typed as an interface to keep the layering
	// acyclic; only internal/script implements it.
	Script Dynamics `json:"-"`

	// Telemetry, when non-nil, registers instruments for every layer of
	// the built simulation (engine, radio, MAC, field generator, protocol)
	// on the given registry. Telemetry is provably inert: counters are
	// write-only from simulation code and consume no RNG draws, so runs
	// with and without a registry produce byte-identical Results (enforced
	// by telemetry_test.go). Typed as an interface and excluded from JSON
	// so Configs stay encodable (gob rejects typed nil pointers to
	// unexported-field structs; the fuzz oracles gob-compare Results).
	Telemetry telemetry.Instrumenter `json:"-"`

	// TraceCapacity, when positive, records the most recent protocol
	// events (updates, deliveries, deaths, re-attachments) into a ring
	// buffer exposed as Runner.Trace.
	TraceCapacity int

	// BucketEpochs is the reporting bucket width (Fig. 6/7 use 100).
	BucketEpochs int64

	// WarmupEpochs delays the first query so initial range reports can
	// climb the tree.
	WarmupEpochs int64
}

// Dynamics drives a started Runner to its horizon on behalf of Run,
// applying a scenario-dynamics timeline and injecting its own query
// workload between steps. Implementations must be deterministic: the same
// timeline on the same Config reproduces the identical event sequence.
// internal/script provides the declarative implementation.
type Dynamics interface {
	Drive(r *Runner)
}

// LoadPhase is one segment of a time-varying query workload.
type LoadPhase struct {
	// Until is the exclusive end epoch of the phase.
	Until int64
	// Interval is the epochs between query injections during the phase.
	Interval int64
}

// intervalAt returns the injection interval in force at the given epoch.
func (c Config) intervalAt(epoch int64) int64 {
	for _, ph := range c.LoadPhases {
		if epoch < ph.Until {
			return ph.Interval
		}
	}
	return c.QueryInterval
}

// ScaleDefault returns the paper's configuration stretched to nodes-sized
// deployments at constant node density: the area grows linearly with the
// node count (side ∝ √N, keeping the paper's ~25-unit radio range
// meaningful) and the tree depth cap grows with the area diagonal. For
// nodes <= 50 it is exactly Default with the node count applied.
func ScaleDefault(nodes int) Config {
	cfg := Default()
	cfg.NumNodes = nodes
	if nodes > 50 {
		side := 100 * math.Sqrt(float64(nodes)/50)
		cfg.Width, cfg.Height = side, side
		cfg.MaxDepth = int(2*side/cfg.RadioRange) + 10
	}
	return cfg
}

// Default returns the paper's §7 configuration with the given threshold
// mode and coverage.
func Default() Config {
	return Config{
		Seed:          1,
		NumNodes:      50,
		Width:         100,
		Height:        100,
		RadioRange:    25,
		MaxFanout:     8,
		MaxDepth:      10,
		Epochs:        20000,
		QueryInterval: 20,
		EpochsPerHour: 100,
		Coverage:      0.4,
		Mode:          FixedDelta,
		FixedPct:      5,
		Rho:           0.4,
		TypeProb:      0.6,
		BucketEpochs:  100,
		WarmupEpochs:  40,
	}
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if c.NumNodes < 2 {
		return fmt.Errorf("scenario: NumNodes %d < 2", c.NumNodes)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("scenario: Epochs %d < 1", c.Epochs)
	}
	if c.QueryInterval < 1 {
		return fmt.Errorf("scenario: QueryInterval %d < 1", c.QueryInterval)
	}
	if c.EpochsPerHour < 1 {
		return fmt.Errorf("scenario: EpochsPerHour %d < 1", c.EpochsPerHour)
	}
	if c.Coverage <= 0 || c.Coverage > 1 {
		return fmt.Errorf("scenario: Coverage %v outside (0,1]", c.Coverage)
	}
	if c.Mode == FixedDelta && c.FixedPct < 0 {
		return fmt.Errorf("scenario: negative FixedPct %v", c.FixedPct)
	}
	if c.Mode == ATC && (c.Rho <= 0 || c.Rho > 1) {
		return fmt.Errorf("scenario: Rho %v outside (0,1]", c.Rho)
	}
	if c.BucketEpochs < 1 {
		return fmt.Errorf("scenario: BucketEpochs %d < 1", c.BucketEpochs)
	}
	if c.PacketLoss < 0 || c.PacketLoss >= 1 {
		return fmt.Errorf("scenario: PacketLoss %v outside [0,1)", c.PacketLoss)
	}
	if c.Shards < -1 {
		return fmt.Errorf("scenario: Shards %d < -1 (use -1 for auto, 0/1 for serial, >=2 for sharded)", c.Shards)
	}
	if c.Script != nil && !c.DisableWorkload {
		return fmt.Errorf("scenario: Script drives the query workload itself; set DisableWorkload (script.Run does)")
	}
	prev := int64(0)
	for i, ph := range c.LoadPhases {
		if ph.Interval < 1 {
			return fmt.Errorf("scenario: load phase %d interval %d < 1", i, ph.Interval)
		}
		if ph.Until <= prev {
			return fmt.Errorf("scenario: load phase %d end %d not increasing", i, ph.Until)
		}
		prev = ph.Until
	}
	return nil
}

// Result carries everything the experiments need from one run.
type Result struct {
	Config Config

	// Accuracies holds one entry per injected query, in injection order.
	Accuracies []metrics.Accuracy
	// Summary aggregates the accuracies (Fig. 5 quantities).
	Summary metrics.AccuracySummary

	// UpdateTxPerBucket is the number of Update Messages transmitted in
	// each BucketEpochs-wide interval (Fig. 6's y-axis).
	UpdateTxPerBucket []float64
	// OvershootPerBucket is the mean per-query overshoot %% per bucket
	// (Fig. 7's y-axis).
	OvershootPerBucket []metrics.Bucket
	// DeltaPctPerBucket is the network-mean δ sampled at each bucket end.
	DeltaPctPerBucket []float64

	// Costs (paper unit model: 1 per tx, 1 per rx).
	QueryCost    radio.Cost // directed dissemination
	UpdateCost   radio.Cost // Update Messages
	EstimateCost radio.Cost // hourly EHr distribution
	FloodCost    int64      // what flooding the same queries would have cost
	// CostFraction is (QueryCost+UpdateCost)/FloodCost — the paper's
	// headline "45% to 55% the cost of flooding".
	CostFraction float64

	// UmaxPerHour is Fig. 6's reference level for the realized query rate.
	UmaxPerHour float64

	// QueriesInjected counts queries.
	QueriesInjected int
	// Sampling reports acquisition counts when PredictiveSampling is on.
	Sampling sampling.Stats
	// EHrSeries is the root's hourly query-count forecast over the run.
	EHrSeries []int
	// FirstDeathEpoch is the epoch of the first battery depletion (-1 if
	// none, or if EnergyCapacity is 0).
	FirstDeathEpoch int64
	// DeadAtEnd counts depleted nodes at the end of the run.
	DeadAtEnd int
	// TreeDepth and TreeInternal describe the deployed tree.
	TreeDepth    int
	TreeInternal int
}

// Runner holds a fully built simulation, exposed so tests and examples can
// poke at intermediate state. Create with Build, then either run to the
// horizon in one shot with Run, or drive it incrementally: Start once,
// Step repeatedly (injecting queries between steps with Inject), and
// Snapshot whenever a Result is wanted. Both drive styles execute the
// identical event sequence, so a Step-driven run with the same injected
// workload reproduces Run's Result bit for bit.
type Runner struct {
	Cfg     Config
	Engine  *sim.Engine
	Graph   *topology.Graph
	Tree    *topology.Tree
	Channel *radio.Channel
	Meter   *radio.Meter
	MAC     *lmac.MAC
	Gen     *sensordata.Generator
	Mounted []sensordata.TypeSet
	Proto   *core.Protocol
	Params  atc.NetworkParams

	Trace *trace.Recorder

	started    bool
	gate       *sampling.Gate
	bank       *energy.Bank
	floodBFS   flood.Scratch
	prevCosts  []radio.Cost
	firstDeath int64
	workload   *query.Workload
	records    []*core.QueryRecord
	updates    *metrics.Series
	deltas     *metrics.Series
	flooded    int64
	queries    int
	lastTx     int64
}

// Build constructs the simulation without running it.
func Build(cfg Config) (*Runner, error) {
	return BuildWithEngine(cfg, nil)
}

// resolveShards maps Config.Shards onto an effective shard count: -1
// auto-sizes to min(GOMAXPROCS, 8) but stays serial below 512 nodes,
// where the per-epoch fork-join overhead outweighs the parallel win.
func resolveShards(cfg Config) int {
	s := cfg.Shards
	if s == -1 {
		if cfg.NumNodes < 512 {
			return 1
		}
		s = runtime.GOMAXPROCS(0)
		if s > 8 {
			s = 8
		}
	}
	if s < 1 {
		return 1
	}
	return s
}

// BuildWithEngine is Build on a caller-supplied event engine, which is
// Reset before use: a finished run's engine can host the next run without
// reallocating its queue storage (the experiment sweeps and serving
// shards use this to recycle engines). A nil engine means build a fresh
// one. The caller must not touch the engine's previous run afterwards;
// results are byte-identical to a fresh-engine build.
func BuildWithEngine(cfg Config, engine *sim.Engine) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if engine == nil {
		engine = sim.NewEngine()
	} else {
		engine.Reset()
	}
	rng := sim.NewRNG(cfg.Seed)

	g, err := topology.PlaceRandom(topology.PlacementConfig{
		N: cfg.NumNodes, Width: cfg.Width, Height: cfg.Height, RadioRange: cfg.RadioRange,
	}, rng.Stream("place"))
	if err != nil {
		return nil, err
	}
	tree, err := topology.BuildSpanningTree(g, topology.Root, cfg.MaxFanout, cfg.MaxDepth)
	if err != nil {
		return nil, err
	}

	internal := 0
	for _, id := range tree.Nodes() {
		if len(tree.Children(id)) > 0 {
			internal++
		}
	}
	params := atc.NetworkParams{N: g.Len(), Internal: internal, Links: g.EdgeCount()}

	meter := radio.NewMeter(g.Len())
	channel := radio.NewChannel(g, meter)
	if cfg.PacketLoss > 0 {
		channel.SetLoss(cfg.PacketLoss, rng.Stream("loss"))
	}
	mac, err := lmac.New(engine, channel)
	if err != nil {
		return nil, err
	}
	if cfg.DisableActivityGating {
		mac.SetQuiescence(false)
	}

	pos := make([]topology.Position, g.Len())
	for i := range pos {
		pos[i] = g.Pos(topology.NodeID(i))
	}
	gen := sensordata.NewGenerator(pos, rng.Stream("data"))

	var mounted []sensordata.TypeSet
	if cfg.Heterogeneous {
		mounted = sensordata.AssignTypes(g.Len(), cfg.TypeProb, rng.Stream("types"))
	} else {
		mounted = sensordata.AssignAllTypes(g.Len())
	}

	pcfg := core.Config{
		EpochsPerHour: cfg.EpochsPerHour,
		MaxFanout:     cfg.MaxFanout,
		MaxDepth:      cfg.MaxDepth,
		DisableGating: cfg.DisableActivityGating,
	}
	shards := resolveShards(cfg)
	if shards > 1 {
		workers := sim.NewWorkers(shards)
		gen.SetWorkers(workers)
		pcfg.Workers = workers
		pcfg.Shards = shards
	}
	if cfg.Telemetry != nil {
		// Central wiring point for every layer's instruments: the metric
		// name inventory lives here (and is documented in the README).
		// Registration is idempotent, so recycled engines and restarted
		// shards re-bind to the counters they already own.
		reg := cfg.Telemetry
		engine.SetTelemetry(sim.Telemetry{
			Scheduled:  reg.Counter("dirq_engine_events_scheduled_total", "Events pushed onto the simulation heap."),
			Dispatched: reg.Counter("dirq_engine_events_dispatched_total", "One-shot events executed."),
			TickerRuns: reg.Counter("dirq_engine_ticker_runs_total", "Per-epoch ticker invocations."),
			HeapPeak:   reg.Gauge("dirq_engine_heap_depth_peak", "High watermark of pending events."),
		})
		channel.SetTelemetry(radio.Telemetry{
			Tx:    reg.Counter("dirq_radio_tx_total", "Physical transmissions."),
			Rx:    reg.Counter("dirq_radio_rx_total", "Successful receptions."),
			Drops: reg.Counter("dirq_radio_drops_total", "Receptions lost to the Bernoulli loss process."),
		})
		mac.SetTelemetry(lmac.Telemetry{
			FramesFull:      reg.Counter("dirq_lmac_frames_total", "TDMA frames by kind.", telemetry.Label{Key: "kind", Value: "full"}),
			FramesQuiet:     reg.Counter("dirq_lmac_frames_total", "TDMA frames by kind.", telemetry.Label{Key: "kind", Value: "quiet"}),
			FramesSilent:    reg.Counter("dirq_lmac_frames_total", "TDMA frames by kind.", telemetry.Label{Key: "kind", Value: "silent"}),
			MessagesFlushed: reg.Counter("dirq_lmac_messages_flushed_total", "Queued data messages handed to the channel."),
			StagedMerged:    reg.Counter("dirq_lmac_staged_dirty_merged_total", "Dirty-list entries folded from per-shard staging buffers."),
		})
		gen.SetTelemetry(sensordata.Telemetry{
			Evals:        reg.Counter("dirq_field_evals_total", "Per-(node,type) field evaluations."),
			SweepHits:    reg.Counter("dirq_field_sweep_hits_total", "Nodes ActiveSweep could not prove quiet."),
			SweepRefutes: reg.Counter("dirq_field_sweep_refutations_total", "Nodes ActiveSweep proved quiet and skipped."),
		})
		pcfg.Telemetry = core.Telemetry{
			Epochs:        reg.Counter("dirq_epochs_total", "Simulation epochs executed."),
			ActiveNodes:   reg.Counter("dirq_core_active_nodes_total", "Nodes processed across all epoch worklists."),
			ActiveSetSize: reg.Histogram("dirq_core_active_set_size", "Per-epoch worklist size.", telemetry.ExponentialBuckets(1, 2, 14)),
			TuplesSent:    reg.Counter("dirq_core_tuples_sent_total", "Update Messages transmitted."),
			Retunes:       reg.Counter("dirq_core_retunes_total", "Controllers accepting a RetuneAll change."),
		}
		if shards > 1 {
			// Shard-balance instruments. Every quantity derives from the
			// deterministic worklist — never from goroutine timing — so
			// instrumented traces stay byte-reproducible across runs.
			sh := make([]*telemetry.Counter, shards)
			for s := range sh {
				sh[s] = reg.Counter("dirq_core_shard_active_nodes_total",
					"Worklist nodes applied per shard.",
					telemetry.Label{Key: "shard", Value: fmt.Sprintf("s%d", s)})
			}
			pcfg.Telemetry.ShardActive = sh
			pcfg.Telemetry.ShardImbalance = reg.Histogram("dirq_core_shard_imbalance",
				"Per-epoch spread (max-min) of per-shard worklist sizes.",
				telemetry.ExponentialBuckets(1, 2, 12))
		}
	}
	var gate *sampling.Gate
	if cfg.PredictiveSampling {
		gate, err = sampling.NewGate(sampling.DefaultConfig())
		if err != nil {
			return nil, err
		}
		pcfg.Sampler = gate
	}
	switch {
	case cfg.DisseminateByFlooding:
		// No DirQ: suppress update traffic with an effectively infinite
		// threshold (only the one-off initial table reports remain).
		pcfg.Controllers = func(topology.NodeID) core.Controller {
			return &core.FixedController{Pct: 1e9}
		}
	case cfg.Mode == FixedDelta:
		pct := cfg.FixedPct
		pcfg.Controllers = func(topology.NodeID) core.Controller {
			return &core.FixedController{Pct: pct}
		}
	case cfg.Mode == StaticIndex:
		pct := cfg.FixedPct
		after := int(cfg.WarmupEpochs)
		pcfg.Controllers = func(topology.NodeID) core.Controller {
			return &core.FreezeController{Pct: pct, AfterEpochs: after}
		}
	case cfg.Mode == ATC:
		acfg := atc.DefaultConfig(cfg.EpochsPerHour)
		if cfg.ATCFeedbackOff {
			acfg.FeedbackGamma = 0
		}
		pcfg.Controllers = func(topology.NodeID) core.Controller {
			c, cerr := atc.NewController(acfg)
			if cerr != nil {
				panic(cerr) // static config, validated above
			}
			return c
		}
		bf, berr := atc.BudgetFunc(params, cfg.Rho)
		if berr != nil {
			return nil, berr
		}
		pcfg.Budget = bf
	default:
		return nil, fmt.Errorf("scenario: unknown threshold mode %d", cfg.Mode)
	}
	var bank *energy.Bank
	if cfg.EnergyCapacity > 0 {
		bank, err = energy.NewBank(g.Len(), energy.DefaultModel(cfg.EnergyCapacity))
		if err != nil {
			return nil, err
		}
	}
	var rec *trace.Recorder
	if cfg.TraceCapacity > 0 {
		rec, err = trace.NewRecorder(cfg.TraceCapacity)
		if err != nil {
			return nil, err
		}
		pcfg.Trace = rec.Hook(engine)
	}

	proto, err := core.New(engine, mac, channel, tree, gen, mounted, pcfg)
	if err != nil {
		return nil, err
	}
	wl, err := query.NewWorkload(cfg.Coverage, rng.Stream("workload"))
	if err != nil {
		return nil, err
	}
	return &Runner{
		Cfg: cfg, Engine: engine, Graph: g, Tree: tree, Channel: channel,
		Meter: meter, MAC: mac, Gen: gen, Mounted: mounted, Proto: proto,
		Params:     params,
		Trace:      rec,
		gate:       gate,
		bank:       bank,
		firstDeath: -1,
		workload:   wl,
		updates:    metrics.NewSeries(cfg.BucketEpochs),
		deltas:     metrics.NewSeries(cfg.BucketEpochs),
	}, nil
}

// Inject disseminates q immediately at the current epoch (directed, or
// network-wide in the flooding-baseline mode), registers its ground truth
// for accuracy accounting, and accrues the flooding-baseline cost. The
// returned record fills in as the query propagates over subsequent
// epochs; floodCost is what flooding this one query would have cost.
//
// The built-in workload uses this same path; external callers (the live
// serving layer) may call it between Step calls to admit client queries
// at epoch boundaries. Query IDs must be unique across the run.
func (r *Runner) Inject(q query.Query, truth query.GroundTruth) (rec *core.QueryRecord, floodCost int64) {
	now := r.Engine.Now()
	if r.Cfg.DisseminateByFlooding {
		fr := r.floodBFS.Disseminate(r.Channel, topology.Root, core.QueryMsg{Q: q})
		rec = &core.QueryRecord{
			Query: q, Truth: truth, InjectedAt: now,
			Received: map[topology.NodeID]bool{},
			Sources:  map[topology.NodeID]bool{},
		}
		for _, id := range fr.Reached {
			if id != topology.Root {
				rec.Received[id] = true
			}
		}
		for _, src := range truth.Sources {
			if rec.Received[src] {
				rec.Sources[src] = true
			}
		}
		r.records = append(r.records, rec)
	} else {
		rec = r.Proto.InjectQuery(q, truth)
		r.records = append(r.records, rec)
	}
	r.queries++
	floodCost = r.floodBFS.CostOnly(r.Graph, r.Channel.Alive, topology.Root).Total()
	r.flooded += floodCost
	return rec, floodCost
}

// NextWorkloadQuery draws the next query from the built-in workload
// generator without injecting it, for callers that drive injection
// themselves (e.g. a DisableWorkload run fed at chosen epochs).
func (r *Runner) NextWorkloadQuery() (query.Query, query.GroundTruth) {
	return r.workload.Next(r.Gen, r.Tree, r.Mounted)
}

// Resolve computes the ground truth of an arbitrary query against the
// current state of the dataset — what Inject needs for a client-supplied
// query that did not come out of the built-in workload.
func (r *Runner) Resolve(q query.Query) query.GroundTruth {
	return query.Resolve(q, r.Tree, r.Mounted, func(id topology.NodeID) float64 {
		return r.Gen.Value(id, q.Type)
	})
}

// Start arms the simulation: the protocol and MAC begin, and the query
// workload (unless Cfg.DisableWorkload), per-bucket metric sampling, and
// energy accounting are scheduled. Call exactly once, then drive the
// clock with Step.
func (r *Runner) Start() {
	if r.started {
		panic("scenario: Runner.Start called twice")
	}
	r.started = true
	cfg := r.Cfg
	r.Proto.Start()
	r.MAC.Start()

	// Query injections: every QueryInterval epochs after warm-up, at
	// application priority but after the epoch's sensor acquisition
	// (priority +1 keeps it within the same tick, after readings).
	if !cfg.DisableWorkload {
		var inject func()
		inject = func() {
			now := r.Engine.Now()
			q, truth := r.workload.Next(r.Gen, r.Tree, r.Mounted)
			r.Inject(q, truth)
			next := now + sim.Time(cfg.intervalAt(int64(now)))
			if int64(next) < cfg.Epochs {
				r.Engine.SchedulePrio(next, lmac.PrioApp+1, inject)
			}
		}
		first := sim.Time(cfg.WarmupEpochs)
		if first == 0 {
			first = sim.Time(cfg.QueryInterval)
		}
		if int64(first) < cfg.Epochs {
			r.Engine.SchedulePrio(first, lmac.PrioApp+1, inject)
		}
	}

	// Per-bucket sampling of update traffic and mean δ, at end-of-epoch
	// priority on the last epoch of each bucket.
	var sample func()
	sample = func() {
		now := r.Engine.Now()
		tx := r.Meter.ByClass(radio.ClassUpdate).Tx
		r.updates.Add(int64(now), float64(tx-r.lastTx))
		r.lastTx = tx
		var dsum float64
		var dcnt int
		for _, id := range r.Tree.Nodes() {
			if id == topology.Root {
				continue
			}
			dsum += r.Proto.Node(id).DeltaPct()
			dcnt++
		}
		if dcnt > 0 {
			r.deltas.Add(int64(now), dsum/float64(dcnt))
		}
		next := now + sim.Time(cfg.BucketEpochs)
		if int64(next) <= cfg.Epochs {
			r.Engine.SchedulePrio(next, lmac.PrioMetrics, sample)
		}
	}
	r.Engine.SchedulePrio(sim.Time(cfg.BucketEpochs-1), lmac.PrioMetrics, sample)

	if r.bank != nil {
		r.bank.OnDeath(func(id topology.NodeID) {
			if r.firstDeath < 0 {
				r.firstDeath = int64(r.Engine.Now())
			}
			if r.Tree.Contains(id) {
				r.Proto.KillNode(id)
			}
		})
		var energyTick func()
		energyTick = func() {
			r.bank.DrainIdleEpoch()
			for _, id := range r.Tree.Nodes() {
				if id == topology.Root || !r.Channel.Alive(id) {
					continue
				}
				for range r.Mounted[id].Types() {
					r.bank.DrainSample(id)
				}
			}
			r.prevCosts = r.bank.ApplyMeterDelta(r.Meter, r.prevCosts)
			next := r.Engine.Now() + 1
			if int64(next) < cfg.Epochs {
				r.Engine.SchedulePrio(next, lmac.PrioMetrics, energyTick)
			}
		}
		r.Engine.SchedulePrio(0, lmac.PrioMetrics, energyTick)
	}
}

// Step advances the simulation by up to n epochs, stopping at the
// configured horizon (Cfg.Epochs). It returns the number of epochs
// actually advanced — 0 once the horizon is reached. Start must have
// been called.
func (r *Runner) Step(n int64) int64 {
	if !r.started {
		panic("scenario: Runner.Step before Start")
	}
	if n < 0 {
		panic(fmt.Sprintf("scenario: Runner.Step(%d) negative", n))
	}
	now := int64(r.Engine.Now())
	target := now + n
	if target > r.Cfg.Epochs {
		target = r.Cfg.Epochs
	}
	if target <= now {
		return 0
	}
	r.Engine.RunUntil(sim.Time(target))
	return target - now
}

// Epoch returns the current simulation epoch.
func (r *Runner) Epoch() int64 { return int64(r.Engine.Now()) }

// Done reports whether the simulation has reached its horizon.
func (r *Runner) Done() bool { return int64(r.Engine.Now()) >= r.Cfg.Epochs }

// QueriesInjected returns the number of queries injected so far.
func (r *Runner) QueriesInjected() int { return r.queries }

// FloodBaseline returns the cumulative cost flooding would have incurred
// for every query injected so far — the denominator of the paper's
// headline cost fraction.
func (r *Runner) FloodBaseline() int64 { return r.flooded }

// SetWorkloadCoverage retargets the built-in workload generator's
// involved-node fraction for queries drawn after the call (scripted
// selectivity changes).
func (r *Runner) SetWorkloadCoverage(target float64) error {
	return r.workload.SetTarget(target)
}

// Run executes the configured number of epochs and produces the Result.
// Without a Config.Script it is equivalent to Start, Step to the horizon,
// Snapshot; with one, the script's driver owns the stepping (and the
// query workload) between Start and Snapshot.
func (r *Runner) Run() *Result {
	r.Start()
	if r.Cfg.Script != nil {
		r.Cfg.Script.Drive(r)
	} else {
		r.Step(r.Cfg.Epochs)
	}
	return r.Snapshot()
}

// Snapshot evaluates all query records injected so far and assembles a
// Result. It does not mutate the simulation and may be called at any
// point of an incrementally driven run — queries still in flight are
// evaluated against what they have reached so far.
func (r *Runner) Snapshot() *Result {
	cfg := r.Cfg
	res := &Result{
		Config:          cfg,
		QueriesInjected: r.queries,
		QueryCost:       r.Meter.ByClass(radio.ClassQuery),
		UpdateCost:      r.Meter.ByClass(radio.ClassUpdate),
		EstimateCost:    r.Meter.ByClass(radio.ClassEstimate),
		FloodCost:       r.flooded,
		TreeDepth:       r.Tree.MaxDepth(),
		TreeInternal:    r.Params.Internal,
	}

	overshoot := metrics.NewSeries(cfg.BucketEpochs)
	for _, rec := range r.records {
		a := metrics.Eval(rec, r.Graph.Len())
		res.Accuracies = append(res.Accuracies, a)
		overshoot.Add(int64(rec.InjectedAt), a.OvershootPct)
	}
	res.Summary = metrics.Summarize(res.Accuracies, r.Graph.Len())
	res.UpdateTxPerBucket = r.updates.Sums()
	res.OvershootPerBucket = overshoot.Buckets()
	res.DeltaPctPerBucket = r.deltas.Sums()

	if res.FloodCost > 0 {
		res.CostFraction = float64(res.QueryCost.Total()+res.UpdateCost.Total()) /
			float64(res.FloodCost)
	}
	qph := 0
	if cfg.QueryInterval > 0 {
		qph = int(float64(cfg.EpochsPerHour) / float64(cfg.QueryInterval))
	}
	res.UmaxPerHour = r.Params.UmaxPerHour(qph)
	if r.gate != nil {
		res.Sampling = r.gate.Stats()
	}
	for _, e := range r.Proto.EstimatesEmitted() {
		res.EHrSeries = append(res.EHrSeries, e.QueriesPerHr)
	}
	res.FirstDeathEpoch = r.firstDeath
	if r.bank != nil {
		res.DeadAtEnd = r.Graph.Len() - r.bank.LiveCount()
	}
	if cfg.DisseminateByFlooding {
		// In flooding mode the dissemination cost lives under ClassFlood.
		res.QueryCost = r.Meter.ByClass(radio.ClassFlood)
		if res.FloodCost > 0 {
			res.CostFraction = float64(res.QueryCost.Total()+res.UpdateCost.Total()) /
				float64(res.FloodCost)
		}
	}
	return res
}

// Run builds and runs a scenario in one call.
func Run(cfg Config) (*Result, error) {
	r, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(), nil
}
