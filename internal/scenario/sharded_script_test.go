// Scripted-chaos corner of the sharded equivalence matrix. This lives in
// an external test package because the script Player (the chaos driver)
// imports scenario; the rest of the matrix is in sharded_test.go.
package scenario_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/scenario"
	"repro/internal/script"
)

// chaosScript is a timeline that exercises every runner-facing op while a
// sharded engine is stepping: kills (tree repair re-partitions nothing —
// the shard map is fixed at build time, dead nodes just stop matching),
// a cascade, field regime shifts, volatility drift, controller retuning,
// and workload bursts.
func chaosScript() *script.Script {
	return &script.Script{
		Name: "sharded-chaos",
		Events: []script.Event{
			{At: 150, Op: script.OpShift, Type: "temperature", Delta: 4},
			{At: 220, Op: script.OpKill},
			{At: 300, Op: script.OpBurst, Interval: 15},
			{At: 360, Op: script.OpDrift, Scale: 2.5},
			{At: 450, Op: script.OpCascade, Count: 3, Spacing: 5},
			{At: 600, Op: script.OpRetune, Delta: 7},
			{At: 700, Op: script.OpCoverage, Coverage: 0.8},
			{At: 780, Op: script.OpShift, Type: "light", Delta: -60},
		},
	}
}

// runScriptedShards executes the chaos script with the given shard count
// and returns the gob-encoded Result+Report bundle, with the Shards knob
// and driver handle normalized out of the encoding.
func runScriptedShards(t *testing.T, shards int) []byte {
	t.Helper()
	p, err := script.NewPlayer(chaosScript())
	if err != nil {
		t.Fatal(err)
	}
	cfg := scenario.Default()
	cfg.Epochs = 1000
	cfg.DisableWorkload = true
	cfg.Script = p
	cfg.Shards = shards
	r, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	res.Config.Script = nil
	res.Config.Shards = 0
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&script.Result{Result: res, Report: p.Report()}); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	return buf.Bytes()
}

// TestShardedScriptedChaosEquivalence pins sharded == serial under the
// chaos timeline: script ops mutate the runner serially between steps, so
// the sharded epochs in between must still reproduce the serial run bit
// for bit across kills, cascades, shifts, drift, and retuning.
func TestShardedScriptedChaosEquivalence(t *testing.T) {
	want := runScriptedShards(t, 0)
	for _, k := range []int{2, 4, 7} {
		if got := runScriptedShards(t, k); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d scripted-chaos run diverged from serial", k)
		}
	}
}
