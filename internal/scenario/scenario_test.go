package scenario

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// small returns a fast configuration for tests.
func small() Config {
	cfg := Default()
	cfg.NumNodes = 25
	cfg.Epochs = 1200
	cfg.Seed = 7
	return cfg
}

func TestValidate(t *testing.T) {
	good := small()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumNodes = 1 },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.QueryInterval = 0 },
		func(c *Config) { c.EpochsPerHour = 0 },
		func(c *Config) { c.Coverage = 0 },
		func(c *Config) { c.Coverage = 1.2 },
		func(c *Config) { c.Mode = FixedDelta; c.FixedPct = -1 },
		func(c *Config) { c.Mode = ATC; c.Rho = 0 },
		func(c *Config) { c.BucketEpochs = 0 },
		func(c *Config) { c.PacketLoss = 1 },
	}
	for i, mutate := range cases {
		c := small()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if FixedDelta.String() != "fixed" || ATC.String() != "atc" {
		t.Fatal("mode names")
	}
	if ThresholdMode(9).String() == "" {
		t.Fatal("unknown mode should stringify")
	}
}

func TestRunFixedDeltaProducesQueries(t *testing.T) {
	res, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	wantQueries := int((small().Epochs - small().WarmupEpochs + small().QueryInterval - 1) / small().QueryInterval)
	if res.QueriesInjected == 0 {
		t.Fatal("no queries injected")
	}
	if math.Abs(float64(res.QueriesInjected-wantQueries)) > 2 {
		t.Fatalf("queries %d, want ≈ %d", res.QueriesInjected, wantQueries)
	}
	if len(res.Accuracies) != res.QueriesInjected {
		t.Fatalf("%d accuracies for %d queries", len(res.Accuracies), res.QueriesInjected)
	}
	if res.FloodCost <= 0 {
		t.Fatal("flooding baseline cost not accounted")
	}
	if res.QueryCost.Total() <= 0 || res.UpdateCost.Total() <= 0 {
		t.Fatalf("missing costs: %+v %+v", res.QueryCost, res.UpdateCost)
	}
}

func TestDirQCheaperThanFlooding(t *testing.T) {
	// The core claim: directed dissemination plus updates costs less than
	// flooding every query, across threshold modes.
	for _, mode := range []ThresholdMode{FixedDelta, ATC} {
		cfg := small()
		cfg.Mode = mode
		cfg.FixedPct = 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.CostFraction <= 0 || res.CostFraction >= 1 {
			t.Fatalf("%v: cost fraction %v, want in (0,1)", mode, res.CostFraction)
		}
	}
}

func TestLargerDeltaFewerUpdates(t *testing.T) {
	run := func(pct float64) int64 {
		cfg := small()
		cfg.FixedPct = pct
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.UpdateCost.Tx
	}
	u3, u9 := run(3), run(9)
	if u9 >= u3 {
		t.Fatalf("δ=9%% sent %d updates, δ=3%% sent %d: larger δ must send fewer", u9, u3)
	}
}

func TestLargerDeltaMoreOvershoot(t *testing.T) {
	run := func(pct float64) float64 {
		cfg := small()
		cfg.Coverage = 0.2 // accuracy effects are strongest at low coverage (§7.1)
		cfg.FixedPct = pct
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.PctShouldNot
	}
	o1, o9 := run(1), run(9)
	if o9 <= o1 {
		t.Fatalf("wrongly-reached%%: δ=9%%:%v <= δ=1%%:%v; Fig. 5 trend violated", o9, o1)
	}
}

func TestATCStaysWithinBudgetBand(t *testing.T) {
	cfg := small()
	cfg.Mode = ATC
	cfg.Epochs = 3000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After convergence (skip the first 10 buckets), the per-bucket update
	// count should sit below Umax and above zero.
	sums := res.UpdateTxPerBucket
	if len(sums) < 15 {
		t.Fatalf("only %d buckets", len(sums))
	}
	var late []float64
	for _, v := range sums[10:] {
		late = append(late, v)
	}
	mean := 0.0
	for _, v := range late {
		mean += v
	}
	mean /= float64(len(late))
	if mean <= 0 {
		t.Fatal("ATC sent no updates after convergence")
	}
	if mean >= res.UmaxPerHour {
		t.Fatalf("ATC update rate %v exceeds Umax %v", mean, res.UmaxPerHour)
	}
}

func TestATCCostFractionNearTarget(t *testing.T) {
	cfg := small()
	cfg.Mode = ATC
	cfg.Epochs = 4000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: between 45% and 55% of flooding. Allow slack
	// for the small test network, but require the right ballpark.
	if res.CostFraction < 0.2 || res.CostFraction > 0.8 {
		t.Fatalf("ATC cost fraction %v, want in the vicinity of 0.5", res.CostFraction)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if a.QueryCost != b.QueryCost || a.UpdateCost != b.UpdateCost ||
		a.FloodCost != b.FloodCost || a.Summary != b.Summary {
		t.Fatal("identical configs produced different results")
	}
}

func TestSeedChangesResults(t *testing.T) {
	a, _ := Run(small())
	cfg := small()
	cfg.Seed = 8
	b, _ := Run(cfg)
	if a.UpdateCost == b.UpdateCost && a.QueryCost == b.QueryCost {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestHeterogeneousNetworkRuns(t *testing.T) {
	cfg := small()
	cfg.Heterogeneous = true
	cfg.TypeProb = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesInjected == 0 || res.Summary.PctReceived <= 0 {
		t.Fatalf("heterogeneous run degenerate: %+v", res.Summary)
	}
}

func TestPacketLossRuns(t *testing.T) {
	cfg := small()
	cfg.PacketLoss = 0.05
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesInjected == 0 {
		t.Fatal("lossy run injected no queries")
	}
}

func TestBucketsCoverRun(t *testing.T) {
	cfg := small()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int(cfg.Epochs / cfg.BucketEpochs)
	if len(res.UpdateTxPerBucket) != want {
		t.Fatalf("%d update buckets, want %d", len(res.UpdateTxPerBucket), want)
	}
	if len(res.DeltaPctPerBucket) != want {
		t.Fatalf("%d delta buckets, want %d", len(res.DeltaPctPerBucket), want)
	}
}

func TestCoverageTracksTarget(t *testing.T) {
	for _, cov := range []float64{0.2, 0.6} {
		cfg := small()
		cfg.Coverage = cov
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := res.Summary.PctShould / 100
		if math.Abs(got-cov) > 0.12 {
			t.Fatalf("coverage %v: mean involved fraction %v", cov, got)
		}
	}
}

func TestUmaxReference(t *testing.T) {
	res, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	// 5 queries/hour on the deployed tree.
	if res.UmaxPerHour <= 0 {
		t.Fatalf("UmaxPerHour = %v", res.UmaxPerHour)
	}
}

func TestBuildErrors(t *testing.T) {
	cfg := small()
	cfg.NumNodes = 0
	if _, err := Build(cfg); err == nil {
		t.Fatal("invalid config built")
	}
	cfg = small()
	cfg.MaxDepth = 1 // cannot span a 25-node multihop network
	cfg.MaxFanout = 2
	if _, err := Build(cfg); err == nil {
		t.Fatal("impossible tree caps accepted")
	}
}

func TestPredictiveSamplingSavesAcquisitions(t *testing.T) {
	cfg := small()
	cfg.PredictiveSampling = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling.Taken == 0 {
		t.Fatal("no samples recorded")
	}
	if res.Sampling.SkipFraction() < 0.2 {
		t.Fatalf("skip fraction %v, want meaningful savings on calm data", res.Sampling.SkipFraction())
	}
	// Accuracy must not collapse relative to the always-sample run.
	base, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MeanOvershoot > base.Summary.MeanOvershoot+6 {
		t.Fatalf("sampling degraded overshoot too much: %v vs %v",
			res.Summary.MeanOvershoot, base.Summary.MeanOvershoot)
	}
}

func TestPredictiveSamplingOffByDefault(t *testing.T) {
	res, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling.Taken != 0 || res.Sampling.Skipped != 0 {
		t.Fatalf("sampling stats populated without the flag: %+v", res.Sampling)
	}
}

func TestLoadPhasesValidation(t *testing.T) {
	cfg := small()
	cfg.LoadPhases = []LoadPhase{{Until: 100, Interval: 0}}
	if cfg.Validate() == nil {
		t.Fatal("zero-interval phase accepted")
	}
	cfg.LoadPhases = []LoadPhase{{Until: 100, Interval: 5}, {Until: 50, Interval: 5}}
	if cfg.Validate() == nil {
		t.Fatal("non-increasing phase ends accepted")
	}
	cfg.LoadPhases = []LoadPhase{{Until: 100, Interval: 5}, {Until: 300, Interval: 40}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid phases rejected: %v", err)
	}
}

func TestTimeVaryingLoadTrackedByPredictor(t *testing.T) {
	cfg := small()
	cfg.Epochs = 2400
	// Hour = 100 epochs. Phase 1 (until 1200): a query every 5 epochs
	// (20/hour). Phase 2: every 50 epochs (2/hour).
	cfg.LoadPhases = []LoadPhase{{Until: 1200, Interval: 5}}
	cfg.QueryInterval = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EHrSeries) < 20 {
		t.Fatalf("only %d estimates emitted", len(res.EHrSeries))
	}
	// Forecast during the busy phase must exceed the late quiet phase.
	busy := res.EHrSeries[10] // after 1000 epochs of 20/hour
	quiet := res.EHrSeries[len(res.EHrSeries)-1]
	if busy <= quiet {
		t.Fatalf("EHr did not track load change: busy=%d quiet=%d (series %v)",
			busy, quiet, res.EHrSeries)
	}
	if busy < 12 {
		t.Fatalf("busy-phase forecast %d, want near 20", busy)
	}
	if quiet > 8 {
		t.Fatalf("quiet-phase forecast %d, want near 2", quiet)
	}
}

func TestTimeVaryingLoadATCDeltaReacts(t *testing.T) {
	// With ATC, higher query load means a bigger update budget and thus a
	// smaller delta during the busy phase.
	cfg := small()
	cfg.Mode = ATC
	cfg.Epochs = 3000
	cfg.LoadPhases = []LoadPhase{{Until: 1500, Interval: 5}}
	cfg.QueryInterval = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buckets := res.DeltaPctPerBucket
	if len(buckets) < 28 {
		t.Fatalf("only %d delta buckets", len(buckets))
	}
	busyDelta := buckets[13]              // end of busy phase
	quietDelta := buckets[len(buckets)-1] // settled quiet phase
	if busyDelta >= quietDelta {
		t.Fatalf("delta did not widen when load dropped: busy=%v quiet=%v", busyDelta, quietDelta)
	}
}

func TestFloodingModeCostsApproxBaseline(t *testing.T) {
	cfg := small()
	cfg.DisseminateByFlooding = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flooding dissemination plus (one-off) initial table reports should
	// cost essentially the flooding baseline.
	if res.CostFraction < 0.95 || res.CostFraction > 1.1 {
		t.Fatalf("flooding-mode cost fraction %v, want ~1", res.CostFraction)
	}
	// Every node receives every query: received ~= 100%.
	if res.Summary.PctReceived < 95 {
		t.Fatalf("flooding delivered to %v%% of nodes, want ~100", res.Summary.PctReceived)
	}
	// And updates are suppressed beyond the initial reports.
	if res.UpdateCost.Tx > int64(cfg.NumNodes*8) {
		t.Fatalf("flooding mode sent %d updates, want only initial reports", res.UpdateCost.Tx)
	}
}

func TestEnergyLifetimeDirQOutlivesFlooding(t *testing.T) {
	// The operational consequence of the 45-55% headline: with equal
	// batteries, the DirQ network outlives the flooding network.
	run := func(floodMode bool) *Result {
		cfg := small()
		cfg.Epochs = 4000
		cfg.EnergyCapacity = 800
		cfg.DisseminateByFlooding = floodMode
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dirq := run(false)
	fld := run(true)
	if fld.FirstDeathEpoch < 0 {
		t.Skip("flooding network survived the whole run; raise epochs or lower capacity")
	}
	if dirq.FirstDeathEpoch >= 0 && dirq.FirstDeathEpoch <= fld.FirstDeathEpoch {
		t.Fatalf("DirQ first death at %d, flooding at %d: DirQ should live longer",
			dirq.FirstDeathEpoch, fld.FirstDeathEpoch)
	}
	if dirq.DeadAtEnd > fld.DeadAtEnd {
		t.Fatalf("DirQ lost %d nodes vs flooding %d", dirq.DeadAtEnd, fld.DeadAtEnd)
	}
}

func TestEnergyDisabledByDefault(t *testing.T) {
	res, err := Run(small())
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDeathEpoch != -1 || res.DeadAtEnd != 0 {
		t.Fatalf("energy stats populated without capacity: %d %d",
			res.FirstDeathEpoch, res.DeadAtEnd)
	}
}

func coreTraceUpdate() core.TraceKind        { return core.TraceUpdateSent }
func coreTraceQueryReceived() core.TraceKind { return core.TraceQueryReceived }
func coreTraceEstimate() core.TraceKind      { return core.TraceEstimate }

func TestTraceRecordsProtocolEvents(t *testing.T) {
	cfg := small()
	cfg.TraceCapacity = 10000
	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if r.Trace == nil {
		t.Fatal("recorder missing")
	}
	if got := r.Trace.Count(coreTraceUpdate()); got == 0 {
		t.Fatal("no update events traced")
	}
	if r.Trace.Count(coreTraceQueryReceived()) == 0 {
		t.Fatal("no query events traced")
	}
	if r.Trace.Count(coreTraceEstimate()) == 0 {
		t.Fatal("no estimate events traced")
	}
	_ = res
}

func TestStaticIndexMissesMoreThanDirQ(t *testing.T) {
	// The §2 comparison: a frozen (SRT-style) index, built once at
	// deployment, misses relevant nodes as soon as the measured values
	// drift away from the recorded ranges; DirQ's Update Messages keep the
	// miss rate low. "SRT is more suited for constant attributes... DirQ
	// is capable of working with varying attributes."
	missRate := func(accs []metrics.Accuracy) float64 {
		var missed, should int
		for _, a := range accs {
			missed += a.NumMissed
			should += a.NumShould
		}
		if should == 0 {
			return 0
		}
		return float64(missed) / float64(should)
	}
	run := func(mode ThresholdMode) float64 {
		cfg := small()
		cfg.Epochs = 4000
		cfg.Mode = mode
		cfg.FixedPct = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Skip the first quarter: both start from the same fresh index.
		q := len(res.Accuracies) / 4
		return missRate(res.Accuracies[q:])
	}
	dirq := run(FixedDelta)
	static := run(StaticIndex)
	if static <= dirq*1.5 {
		t.Fatalf("static index miss rate %v not clearly worse than DirQ's %v", static, dirq)
	}
}

func TestStaticIndexSendsNoLateUpdates(t *testing.T) {
	cfg := small()
	cfg.Mode = StaticIndex
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All update traffic must predate the freeze (bucket 0 only, since
	// warmup is 40 epochs and buckets are 100 wide).
	for i, v := range res.UpdateTxPerBucket {
		if i > 0 && v > 0 {
			t.Fatalf("bucket %d has %v updates after the freeze", i, v)
		}
	}
	if res.UpdateTxPerBucket[0] == 0 {
		t.Fatal("no index-build updates at all")
	}
}
