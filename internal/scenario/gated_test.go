package scenario

import (
	"encoding/json"
	"testing"
)

// gatedVsNaive runs the same configuration with activity gating on and
// off and requires byte-identical Results. The gate skips work only when
// the skipped work is provably unobservable, so any divergence — however
// small — is a bug in the quiescence proof, not tolerable noise.
func gatedVsNaive(t *testing.T, cfg Config) {
	t.Helper()
	gated, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableActivityGating = true
	naive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The knob itself is part of Config (inside Result); blank it so the
	// comparison covers everything else.
	naive.Config.DisableActivityGating = false
	g, err := json.Marshal(gated)
	if err != nil {
		t.Fatal(err)
	}
	n, err := json.Marshal(naive)
	if err != nil {
		t.Fatal(err)
	}
	if string(g) != string(n) {
		t.Fatalf("gated run diverged from naive run\ngated: %.300s\nnaive: %.300s", g, n)
	}
}

// TestGatedNaiveEquivalencePaperScale pins gated == naive at the paper's
// 50-node scale for every threshold mode, including the flooding baseline
// and a node-death (energy) run.
func TestGatedNaiveEquivalencePaperScale(t *testing.T) {
	base := Default()
	base.Epochs = 1200

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"fixed", func(c *Config) {}},
		{"atc", func(c *Config) { c.Mode = ATC }},
		{"static", func(c *Config) { c.Mode = StaticIndex }},
		{"flood", func(c *Config) { c.DisseminateByFlooding = true }},
		{"hetero-loss", func(c *Config) { c.Heterogeneous = true; c.PacketLoss = 0.05 }},
		{"energy-deaths", func(c *Config) { c.EnergyCapacity = 1500 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			gatedVsNaive(t, cfg)
		})
	}
}

// TestGatedNaiveEquivalenceLargeN is the scale-frontier guard: at 1000
// nodes the gated loop must still reproduce the naive loop bit for bit.
func TestGatedNaiveEquivalenceLargeN(t *testing.T) {
	cfg := ScaleDefault(1000)
	cfg.Epochs = 250
	gatedVsNaive(t, cfg)
}

// TestScaleDefaultBuilds checks the stretched configurations actually
// deploy (connected placement, depth cap adequate) across the bench sizes.
func TestScaleDefaultBuilds(t *testing.T) {
	for _, n := range []int{50, 250, 1000} {
		cfg := ScaleDefault(n)
		cfg.Epochs = 1
		r, err := Build(cfg)
		if err != nil {
			t.Fatalf("ScaleDefault(%d): %v", n, err)
		}
		if r.Tree.Len() != n {
			t.Fatalf("ScaleDefault(%d): tree holds %d nodes", n, r.Tree.Len())
		}
	}
}
