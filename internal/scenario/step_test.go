package scenario

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// stepTestConfig is a reduced-scale config that still exercises warm-up,
// several query injections, bucket sampling, and hourly estimates.
func stepTestConfig(mode ThresholdMode) Config {
	cfg := Default()
	cfg.NumNodes = 25
	cfg.Epochs = 600
	cfg.EpochsPerHour = 100
	cfg.QueryInterval = 20
	cfg.Mode = mode
	return cfg
}

func gobBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	return buf.Bytes()
}

// TestStepEquivalence checks the tentpole refactor invariant: a run driven
// incrementally through Start/Step — in chunks of any size, even or uneven —
// produces a byte-identical Result to the monolithic Run, for both
// threshold modes.
func TestStepEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		mode  ThresholdMode
		steps []int64 // step sizes, cycled until the horizon
	}{
		{"fixed/epoch-at-a-time", FixedDelta, []int64{1}},
		{"fixed/uneven-chunks", FixedDelta, []int64{7, 1, 93, 13}},
		{"fixed/one-big-step", FixedDelta, []int64{600}},
		{"fixed/overshooting-step", FixedDelta, []int64{100000}},
		{"atc/epoch-at-a-time", ATC, []int64{1}},
		{"atc/uneven-chunks", ATC, []int64{17, 250, 3}},
		{"atc/bucket-sized", ATC, []int64{100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := stepTestConfig(tc.mode)

			mono, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			r, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r.Start()
			for i := 0; !r.Done(); i++ {
				n := tc.steps[i%len(tc.steps)]
				if adv := r.Step(n); adv == 0 && !r.Done() {
					t.Fatalf("Step(%d) advanced 0 epochs before the horizon (epoch %d)", n, r.Epoch())
				}
			}
			if got, want := r.Epoch(), cfg.Epochs; got != want {
				t.Fatalf("final epoch %d, want %d", got, want)
			}
			if r.Step(10) != 0 {
				t.Fatal("Step advanced past the horizon")
			}
			stepped := r.Snapshot()

			if !reflect.DeepEqual(mono, stepped) {
				t.Fatalf("stepped Result differs from monolithic Run\nmono:    %+v\nstepped: %+v",
					mono.Summary, stepped.Summary)
			}
			if !bytes.Equal(gobBytes(t, mono), gobBytes(t, stepped)) {
				t.Fatal("stepped Result not byte-identical to monolithic Run")
			}
		})
	}
}

// TestSnapshotMidRunIsNonDestructive checks that Snapshot can be taken
// mid-run without perturbing the remainder of the simulation.
func TestSnapshotMidRunIsNonDestructive(t *testing.T) {
	cfg := stepTestConfig(FixedDelta)

	mono, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	for !r.Done() {
		r.Step(150)
		r.Snapshot() // discarded: must have no effect on the run
	}
	if !reflect.DeepEqual(mono, r.Snapshot()) {
		t.Fatal("mid-run Snapshots perturbed the final Result")
	}
}

// TestDisableWorkload checks that a workload-disabled run injects nothing
// by itself and that external Inject calls are accounted exactly like
// workload queries.
func TestDisableWorkload(t *testing.T) {
	cfg := stepTestConfig(FixedDelta)
	cfg.DisableWorkload = true

	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Step(100)
	if n := r.QueriesInjected(); n != 0 {
		t.Fatalf("workload disabled but %d queries injected", n)
	}

	q, truth := r.NextWorkloadQuery()
	rec, floodCost := r.Inject(q, truth)
	if rec == nil {
		t.Fatal("Inject returned nil record")
	}
	if floodCost <= 0 {
		t.Fatalf("flood-equivalent cost %d, want > 0", floodCost)
	}
	if n := r.QueriesInjected(); n != 1 {
		t.Fatalf("QueriesInjected = %d, want 1", n)
	}
	if r.FloodBaseline() != floodCost {
		t.Fatalf("FloodBaseline %d != query flood cost %d", r.FloodBaseline(), floodCost)
	}
	r.Step(50)
	res := r.Snapshot()
	if res.QueriesInjected != 1 || len(res.Accuracies) != 1 {
		t.Fatalf("Snapshot saw %d queries / %d accuracies, want 1/1",
			res.QueriesInjected, len(res.Accuracies))
	}
	if len(rec.Received) == 0 && len(truth.Should) > 0 {
		t.Error("externally injected query reached no nodes")
	}
}
