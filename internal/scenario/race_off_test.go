//go:build !race

package scenario

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions skip themselves under it.
const raceEnabled = false
