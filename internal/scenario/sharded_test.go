package scenario

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// shardCounts is the shard-count matrix every equivalence corner runs
// against: an even split, the bench default, and a prime that cannot
// divide the node count evenly.
var shardCounts = []int{2, 4, 7}

// shardedVsSerial runs the same configuration serially and with each
// shard count and requires byte-identical Results. Sharding is a pure
// scheduling change — the partition, merge order, and per-node arithmetic
// are all fixed by (topology, K) — so any divergence is a determinism bug,
// not tolerable noise.
func shardedVsSerial(t *testing.T, cfg Config) {
	t.Helper()
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := gobBytes(t, serial)
	for _, k := range shardCounts {
		scfg := cfg
		scfg.Shards = k
		sharded, err := Run(scfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		// The knob itself is part of Config (inside Result); blank it so
		// the comparison covers everything else.
		sharded.Config.Shards = 0
		if got := gobBytes(t, sharded); !bytes.Equal(got, want) {
			t.Fatalf("shards=%d diverged from serial\nserial:  %+v\nsharded: %+v",
				k, serial.Summary, sharded.Summary)
		}
	}
}

// TestShardedSerialEquivalencePaperScale pins sharded == serial at the
// paper's 50-node scale for every threshold mode, the flooding baseline,
// heterogeneous lossy radios, and a node-death (energy) run — the same
// corner set gated_test.go proves for the activity gate.
func TestShardedSerialEquivalencePaperScale(t *testing.T) {
	base := Default()
	base.Epochs = 1200

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"fixed", func(c *Config) {}},
		{"atc", func(c *Config) { c.Mode = ATC }},
		{"static", func(c *Config) { c.Mode = StaticIndex }},
		{"flood", func(c *Config) { c.DisseminateByFlooding = true }},
		{"hetero-loss", func(c *Config) { c.Heterogeneous = true; c.PacketLoss = 0.05 }},
		{"energy-deaths", func(c *Config) { c.EnergyCapacity = 1500 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			shardedVsSerial(t, cfg)
		})
	}
}

// TestShardedSerialEquivalenceLargeN is the scale-frontier guard: at 1000
// nodes the sharded loop must still reproduce the serial loop bit for bit.
func TestShardedSerialEquivalenceLargeN(t *testing.T) {
	cfg := ScaleDefault(1000)
	cfg.Epochs = 250
	shardedVsSerial(t, cfg)
}

// TestShardedStepEquivalence checks that sharding composes with the
// incremental Start/Step driver: a sharded run driven in ragged chunks is
// byte-identical to the monolithic serial Run.
func TestShardedStepEquivalence(t *testing.T) {
	for _, mode := range []ThresholdMode{FixedDelta, ATC} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := stepTestConfig(mode)

			serial, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			cfg.Shards = 4
			r, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r.Start()
			steps := []int64{7, 1, 93, 13}
			for i := 0; !r.Done(); i++ {
				if adv := r.Step(steps[i%len(steps)]); adv == 0 && !r.Done() {
					t.Fatalf("Step advanced 0 epochs before the horizon (epoch %d)", r.Epoch())
				}
			}
			stepped := r.Snapshot()
			stepped.Config.Shards = 0
			if !bytes.Equal(gobBytes(t, serial), gobBytes(t, stepped)) {
				t.Fatalf("sharded stepped run diverged from serial Run\nserial:  %+v\nsharded: %+v",
					serial.Summary, stepped.Summary)
			}
		})
	}
}

// TestShardedAutoResolve checks the Shards=-1 auto knob: it must stay
// serial below the auto threshold and never exceed GOMAXPROCS or the cap,
// and an auto-resolved run must still match serial output.
func TestShardedAutoResolve(t *testing.T) {
	small := Default()
	small.Shards = -1
	if got := resolveShards(small); got != 1 {
		t.Fatalf("auto shards at %d nodes resolved to %d, want 1 (serial)", small.NumNodes, got)
	}
	big := ScaleDefault(1000)
	big.Shards = -1
	got := resolveShards(big)
	if got < 1 || got > 8 || got > runtime.GOMAXPROCS(0) {
		t.Fatalf("auto shards at 1000 nodes resolved to %d (GOMAXPROCS %d)", got, runtime.GOMAXPROCS(0))
	}

	cfg := ScaleDefault(600)
	cfg.Epochs = 120
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = -1
	auto, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	auto.Config.Shards = 0
	if !bytes.Equal(gobBytes(t, serial), gobBytes(t, auto)) {
		t.Fatal("auto-sharded run diverged from serial")
	}
}

// TestShardedLeavesNoGoroutines asserts the Runner tears down clean: the
// shard workers are fork-join per call, so no goroutine may outlive the
// run.
func TestShardedLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := Default()
	cfg.Epochs = 400
	cfg.Shards = 7
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before sharded run, %d still running after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardedSteadyStateAllocs pins the sharded engine's per-epoch
// steady-state allocation ceiling. The fork-join workers spawn fresh
// goroutines each phase (two phases per epoch), which is the deliberate
// price of leak-free teardown; everything else — worklists, staged dirty
// lists, message pools — must reuse its buffers. A jump here means a
// per-epoch buffer started escaping.
func TestShardedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	cfg := Default()
	cfg.Epochs = 1 << 20 // open horizon: the test only steps a slice of it
	cfg.DisableWorkload = true
	cfg.Shards = 4
	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	r.Step(300) // warm-up: pools filled, buffers at steady-state size

	const ceiling = 64.0
	avg := testing.AllocsPerRun(200, func() { r.Step(1) })
	if avg > ceiling {
		t.Fatalf("sharded epoch allocates %.1f objects/epoch at steady state, ceiling %.0f", avg, ceiling)
	}
}
