// Package scenario assembles a complete, reproducible DirQ simulation from
// one Config: topology placement, spanning tree, LMAC, synthetic dataset,
// the DirQ protocol with either fixed-δ or ATC threshold control, a
// coverage-targeted query workload, and the flooding-baseline cost
// accounting the paper compares against.
//
// In the repo's layer map this is assembly: the one place the substrate
// (sim, topology, radio), MAC (lmac), environment (sensordata), protocol
// (core, atc), workload (query), baseline (flood) and extensions are wired
// into a runnable whole. experiments and serve both build runs here;
// BuildWithEngine lets them recycle event engines across runs.
package scenario
