package scenario

import (
	"testing"

	"repro/internal/telemetry"
)

// TestQuiescentSweepExaminationsScaleWithActiveSet pins the escape-time
// calendar's central promise: on a quiescent network the per-epoch sweep
// examines O(active set) (node, type) windows, not O(all mounted).
//
// The scenario makes quiescence structural — a wide fixed threshold
// (50% of each type's span) parks almost every node, so the worklist
// runs near-empty. dirq_field_sweep_refutations_total counts windows the
// sweep examined and proved quiet; under the pre-calendar full scan it
// grew by (mounted windows) every epoch no matter how quiet the network
// was (1.2M over this run), while the calendar only examines windows
// whose accumulated field motion could have crossed their recorded
// margin. The two assertions pin the shape from both ends: examinations
// must stay an order of magnitude under the full-scan count, and must be
// bounded by an affine function of the active set plus a small per-epoch
// due-churn allowance (the deterministic run makes the measured totals
// exact, so the margins only absorb intentional future dynamics changes).
func TestQuiescentSweepExaminationsScaleWithActiveSet(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := ScaleDefault(1000)
	cfg.Epochs = 300
	cfg.Mode = FixedDelta
	cfg.FixedPct = 50
	cfg.Telemetry = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	vals := map[string]int64{}
	for _, s := range reg.Snapshot() {
		if s.Kind != telemetry.KindHistogram {
			vals[s.Name] += int64(s.Value)
		}
	}
	epochs := vals["dirq_epochs_total"]
	active := vals["dirq_core_active_nodes_total"]
	refutes := vals["dirq_field_sweep_refutations_total"]
	hits := vals["dirq_field_sweep_hits_total"]
	if epochs <= 0 || refutes <= 0 {
		t.Fatalf("telemetry did not record the run: epochs=%d refutes=%d", epochs, refutes)
	}
	examined := refutes + hits

	// All nodes mount all 4 types here, so a full scan examines 4N
	// windows per epoch. Measured: ~30k examinations vs 1.2M full-scan
	// over the run (about 100/epoch against an active total of ~1.4k).
	fullScan := epochs * int64(cfg.NumNodes) * 4
	if examined*10 > fullScan {
		t.Fatalf("quiescent sweep examined %d windows over %d epochs — more than a tenth of the %d a full scan would (active total %d)",
			examined, epochs, fullScan, active)
	}
	if bound := 16*active + 48*epochs; examined > bound {
		t.Fatalf("quiescent sweep examined %d windows; O(active) bound is %d (active total %d over %d epochs)",
			examined, bound, active, epochs)
	}
	t.Logf("examined %d windows over %d epochs (active total %d, full scan %d)",
		examined, epochs, active, fullScan)
}
