package scenario

import (
	"testing"
)

// TestBuildAllocBound pins full-stack construction to a small constant
// number of allocations per node. Measured ~4.9 allocs/node at 5000
// nodes when flattened construction landed (PR 10): node state, window
// state, MAC slot/adjacency state and the spanning tree all build out of
// backing arrays, so what remains is per-node controllers, listener
// registrations and child-list growth. The map-per-node construction
// this replaced sat at an order of magnitude more; the ceiling catches
// any slide back long before it shows up as a large-N setup cliff.
func TestBuildAllocBound(t *testing.T) {
	const n = 5000
	cfg := ScaleDefault(n)
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := Build(cfg); err != nil {
			t.Fatal(err)
		}
	})
	const perNodeCeiling = 8
	if allocs > float64(perNodeCeiling*n) {
		t.Fatalf("scenario.Build at %d nodes: %.0f allocs (%.2f/node), ceiling %d/node",
			n, allocs, allocs/n, perNodeCeiling)
	}
	t.Logf("scenario.Build at %d nodes: %.0f allocs (%.2f/node, ceiling %d/node)",
		n, allocs, allocs/n, perNodeCeiling)
}
