package scenario

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// resetGuardConfig is a small-but-complete run: both threshold modes, the
// built-in workload, tracing off.
func resetGuardConfig(mode ThresholdMode, seed uint64) Config {
	cfg := Default()
	cfg.NumNodes = 40
	cfg.Epochs = 1500
	cfg.Seed = seed
	cfg.Mode = mode
	return cfg
}

// marshalResult renders a Result the way dirqsim -json renders its
// summary: one canonical JSON byte string, so "byte-identical output"
// is literal.
func marshalResult(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEngineResetReuseDeterminism is the pooled-engine determinism guard:
// a run built on a recycled (Reset) engine must produce byte-identical
// results to a fresh-engine run, for both FixedDelta and ATC modes, even
// when the engine previously hosted a different scenario.
func TestEngineResetReuseDeterminism(t *testing.T) {
	for _, mode := range []ThresholdMode{FixedDelta, ATC} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := resetGuardConfig(mode, 7)

			fresh, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := marshalResult(t, fresh)

			// Dirty an engine with a different run (other mode, other
			// seed), then reuse it for cfg.
			eng := sim.NewEngine()
			warmCfg := resetGuardConfig(FixedDelta, 99)
			warmCfg.Mode = ATC
			warm, err := BuildWithEngine(warmCfg, eng)
			if err != nil {
				t.Fatal(err)
			}
			warm.Run()

			reused, err := BuildWithEngine(cfg, eng)
			if err != nil {
				t.Fatal(err)
			}
			got := marshalResult(t, reused.Run())

			if string(got) != string(want) {
				t.Fatalf("engine reuse changed the result\nfresh:  %.200s\nreused: %.200s",
					want, got)
			}
		})
	}
}

// TestEngineResetReuseSteppedDeterminism repeats the guard for the
// steppable drive style the serving layer uses (Start/Step/Snapshot).
func TestEngineResetReuseSteppedDeterminism(t *testing.T) {
	cfg := resetGuardConfig(ATC, 11)

	fresh, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh.Start()
	for fresh.Step(77) > 0 {
	}
	want := marshalResult(t, fresh.Snapshot())

	eng := sim.NewEngine()
	warm, err := BuildWithEngine(resetGuardConfig(FixedDelta, 5), eng)
	if err != nil {
		t.Fatal(err)
	}
	warm.Run()

	reused, err := BuildWithEngine(cfg, eng)
	if err != nil {
		t.Fatal(err)
	}
	reused.Start()
	for reused.Step(77) > 0 {
	}
	got := marshalResult(t, reused.Snapshot())

	if string(got) != string(want) {
		t.Fatalf("stepped engine reuse changed the result\nfresh:  %.200s\nreused: %.200s",
			want, got)
	}
}
