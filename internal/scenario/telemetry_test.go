package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/telemetry"
)

// telemetryVariants are the configuration corners the inertness proof
// covers: every protocol mode, the lossy/heterogeneous radio, the ungated
// reference engine, energy-limited deaths and predictive sampling.
func telemetryVariants() map[string]Config {
	base := Default()
	base.NumNodes = 30
	base.Epochs = 400
	v := map[string]Config{}
	mk := func(name string, mut func(*Config)) {
		cfg := base
		mut(&cfg)
		v[name] = cfg
	}
	mk("fixed", func(c *Config) {})
	mk("atc", func(c *Config) { c.Mode = ATC })
	mk("flood", func(c *Config) { c.DisseminateByFlooding = true })
	mk("hetero-loss", func(c *Config) { c.Heterogeneous = true; c.PacketLoss = 0.1 })
	mk("naive", func(c *Config) { c.DisableActivityGating = true })
	mk("energy", func(c *Config) { c.EnergyCapacity = 1500 })
	mk("predictive", func(c *Config) { c.PredictiveSampling = true })
	return v
}

// TestTelemetryInert is the zero-drift proof at the scenario layer: a run
// with a registry attached must produce byte-identical results to the
// same run without one. Telemetry only ever writes counters; nothing
// reads back, nothing draws randomness.
func TestTelemetryInert(t *testing.T) {
	for name, cfg := range telemetryVariants() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			off := cfg
			off.Telemetry = nil
			offRes, err := Run(off)
			if err != nil {
				t.Fatal(err)
			}
			on := cfg
			on.Telemetry = telemetry.NewRegistry()
			onRes, err := Run(on)
			if err != nil {
				t.Fatal(err)
			}
			offJSON, err := json.Marshal(offRes)
			if err != nil {
				t.Fatal(err)
			}
			onJSON, err := json.Marshal(onRes)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(offJSON, onJSON) {
				t.Errorf("results differ with telemetry attached:\noff: %.200s\non:  %.200s",
					offJSON, onJSON)
			}
		})
	}
}

// TestTelemetryCounts sanity-checks that the instrumented run actually
// recorded the work: the layer counters are live, consistent with the
// run's own statistics, and frame kinds partition the frame count.
func TestTelemetryCounts(t *testing.T) {
	cfg := Default()
	cfg.NumNodes = 30
	cfg.Epochs = 400
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]telemetry.SeriesSnapshot{}
	for _, s := range reg.Snapshot() {
		key := s.Name
		if k := s.Labels["kind"]; k != "" {
			key += ":" + k
		}
		vals[key] = s
	}
	count := func(key string) int64 {
		s, ok := vals[key]
		if !ok {
			t.Errorf("metric %s not registered", key)
			return 0
		}
		if s.Kind == telemetry.KindHistogram {
			return s.Count
		}
		return int64(s.Value)
	}

	if got := count("dirq_epochs_total"); got != int64(cfg.Epochs)+1 {
		// Epochs+1: the warmup flush epoch at t=0 also steps the protocol.
		t.Errorf("dirq_epochs_total = %d, want %d", got, cfg.Epochs+1)
	}
	for _, name := range []string{
		"dirq_engine_events_scheduled_total",
		"dirq_engine_events_dispatched_total",
		"dirq_radio_tx_total",
		"dirq_radio_rx_total",
		"dirq_field_evals_total",
		"dirq_core_active_nodes_total",
	} {
		if count(name) <= 0 {
			t.Errorf("%s = %d, want > 0", name, count(name))
		}
	}
	if count("dirq_core_active_set_size") != int64(cfg.Epochs)+1 {
		t.Errorf("active-set histogram observed %d epochs, want %d",
			count("dirq_core_active_set_size"), cfg.Epochs+1)
	}
	full := count("dirq_lmac_frames_total:full")
	quiet := count("dirq_lmac_frames_total:quiet")
	silent := count("dirq_lmac_frames_total:silent")
	if full+quiet+silent <= 0 {
		t.Errorf("no LMAC frames counted (full=%d quiet=%d silent=%d)", full, quiet, silent)
	}
	if sent := count("dirq_core_tuples_sent_total"); sent <= 0 {
		t.Errorf("dirq_core_tuples_sent_total = %d, want > 0", sent)
	}
	// The run's own cost accounting and the radio counter must agree in
	// magnitude: every unit of QueryCost/UpdateCost is a tx or rx.
	if res.QueryCost.Tx+res.UpdateCost.Tx > count("dirq_radio_tx_total") {
		t.Errorf("radio tx counter %d below the run's own tx cost %d",
			count("dirq_radio_tx_total"), res.QueryCost.Tx+res.UpdateCost.Tx)
	}
}

// TestTelemetryLossCounters: with packet loss on, drops are counted and
// rx falls short of what the topology would deliver losslessly.
func TestTelemetryLossCounters(t *testing.T) {
	cfg := Default()
	cfg.NumNodes = 30
	cfg.Epochs = 300
	cfg.PacketLoss = 0.2
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var drops int64
	for _, s := range reg.Snapshot() {
		if s.Name == "dirq_radio_drops_total" {
			drops = int64(s.Value)
		}
	}
	if drops <= 0 {
		t.Errorf("dirq_radio_drops_total = %d with 20%% loss, want > 0", drops)
	}
}
