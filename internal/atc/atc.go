package atc

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// NetworkParams are the deployment-time constants every node knows (they
// are set during tree construction, like the paper's k and d).
type NetworkParams struct {
	// N is the network size including the root.
	N int
	// Internal is the number of non-leaf tree nodes (root included).
	Internal int
	// Links is the number of radio links in the connectivity graph. On a
	// pure tree topology this is N-1; on a real deployment it is larger,
	// which makes flooding correspondingly more expensive (§5.1 counts a
	// reception on every link in both directions).
	Links int
}

// Validate checks the parameters.
func (p NetworkParams) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("atc: network size %d < 2", p.N)
	}
	if p.Internal < 1 || p.Internal >= p.N {
		return fmt.Errorf("atc: internal node count %d outside [1, %d)", p.Internal, p.N)
	}
	if p.Links < p.N-1 {
		return fmt.Errorf("atc: %d links cannot connect %d nodes", p.Links, p.N)
	}
	return nil
}

// CFTotal is the flooding cost of the deployment: every node broadcasts
// once (cost N) and every link delivers twice (cost 2·Links) — eq. (3).
func (p NetworkParams) CFTotal() float64 { return float64(p.N + 2*p.Links) }

// CQDMax is the worst-case directed dissemination cost on the deployed
// tree: every internal node transmits once, every non-root node receives
// once (§5.2 generalized from the k-ary closed form).
func (p NetworkParams) CQDMax() float64 { return float64(p.Internal + p.N - 1) }

// CUDMax is the cost of one network-wide update wave: every non-root node
// unicasts once to its parent (§5.2).
func (p NetworkParams) CUDMax() float64 { return float64(2 * (p.N - 1)) }

// FMax is the update frequency at which worst-case DirQ cost equals
// flooding (eq. (8) generalized to the deployed tree).
func (p NetworkParams) FMax() float64 {
	return (p.CFTotal() - p.CQDMax()) / p.CUDMax()
}

// UmaxPerHour returns the network-wide Update Message count per hour at
// which DirQ's worst case reaches the cost of flooding for the given query
// rate — the "Umax/Hr" reference line of Fig. 6. Each update message costs
// one tx and one rx, so Umax = (CF - CQDmax) · EHr / 2; equivalently
// fMax·EHr·(N-1).
func (p NetworkParams) UmaxPerHour(queriesPerHr int) float64 {
	return (p.CFTotal() - p.CQDMax()) * float64(queriesPerHr) / 2
}

// BudgetPerNode returns the per-node hourly update budget for a target
// cost fraction rho: the network-wide budget rho·Umax split evenly over the
// N-1 reporting nodes (= rho·fMax·EHr), which caps the network's update
// cost at rho of the headroom between worst-case dissemination and
// flooding.
func (p NetworkParams) BudgetPerNode(queriesPerHr int, rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	return rho * p.UmaxPerHour(queriesPerHr) / float64(p.N-1)
}

// Config tunes a Controller.
type Config struct {
	// EpochsPerHour maps volatility (per epoch) to the hourly budget.
	EpochsPerHour int
	// InitialPct is δ before the first estimate arrives.
	InitialPct float64
	// MinPct / MaxPct clamp δ.
	MinPct float64
	MaxPct float64
	// FeedbackGamma is the exponent of the multiplicative feedback
	// correction (0 disables feedback; 0.5 is a damped default).
	FeedbackGamma float64
}

// DefaultConfig returns the controller tuning used by the experiments.
func DefaultConfig(epochsPerHour int) Config {
	return Config{
		EpochsPerHour: epochsPerHour,
		InitialPct:    5,
		MinPct:        0.25,
		MaxPct:        20,
		FeedbackGamma: 0.5,
	}
}

// Controller is the per-node ATC state machine. It implements
// core.Controller.
type Controller struct {
	cfg Config

	deltaPct float64
	normVol  float64 // latest normalized volatility (span fraction / epoch)

	budget       float64 // allowed updates per hour (from the root)
	haveBudget   bool
	sentThisHour int
	gain         float64
}

var _ core.Controller = (*Controller)(nil)

// NewController builds an ATC controller.
func NewController(cfg Config) (*Controller, error) {
	if cfg.EpochsPerHour < 1 {
		return nil, fmt.Errorf("atc: EpochsPerHour %d < 1", cfg.EpochsPerHour)
	}
	if cfg.InitialPct <= 0 || cfg.MinPct <= 0 || cfg.MaxPct < cfg.MinPct {
		return nil, fmt.Errorf("atc: inconsistent δ bounds init=%v min=%v max=%v",
			cfg.InitialPct, cfg.MinPct, cfg.MaxPct)
	}
	if cfg.FeedbackGamma < 0 || cfg.FeedbackGamma > 1 {
		return nil, fmt.Errorf("atc: FeedbackGamma %v outside [0,1]", cfg.FeedbackGamma)
	}
	return &Controller{cfg: cfg, deltaPct: cfg.InitialPct, gain: 1}, nil
}

// DeltaPct implements core.Controller.
func (c *Controller) DeltaPct() float64 { return c.deltaPct }

// OnEpoch implements core.Controller: it stores the node's latest
// normalized volatility.
func (c *Controller) OnEpoch(normVolatility float64) { c.normVol = normVolatility }

// OnUpdateSent implements core.Controller.
func (c *Controller) OnUpdateSent() { c.sentThisHour++ }

// OnEstimate implements core.Controller: at each hourly estimate the node
// closes its accounting hour, applies feedback against its budget, and
// recomputes δ feedforward from volatility and the new budget.
func (c *Controller) OnEstimate(e core.EstimateMsg) {
	sent := c.sentThisHour
	c.sentThisHour = 0

	budget := e.BudgetPerNode
	if budget <= 0 {
		// No query load expected: spend nothing — widen δ to the maximum.
		c.budget, c.haveBudget = 0, true
		c.deltaPct = c.cfg.MaxPct
		return
	}

	// Feedback: if we overspent last hour, widen; if we underspent, narrow.
	if c.haveBudget && c.cfg.FeedbackGamma > 0 && c.budget > 0 {
		ratio := (float64(sent) + 0.5) / (c.budget + 0.5)
		c.gain *= math.Pow(ratio, c.cfg.FeedbackGamma)
		c.gain = clamp(c.gain, 0.05, 40)
	}
	c.budget, c.haveBudget = budget, true

	// Feedforward: solve  volatility * E / width = budget  for the window
	// width (as a span fraction), then convert to percent.
	e2 := float64(c.cfg.EpochsPerHour)
	widthFrac := c.normVol * e2 / budget
	pct := widthFrac * 100 * c.gain
	c.deltaPct = clamp(pct, c.cfg.MinPct, c.cfg.MaxPct)
}

// Retune implements core.Retunable: pct becomes the new ceiling of the
// control band (the floor shrinks with it if needed) and the current δ is
// reclamped immediately. Subsequent estimates keep adapting inside the new
// band, so a retune steers the ATC without suspending it. Non-positive pct
// is ignored.
func (c *Controller) Retune(pct float64) {
	if pct <= 0 {
		return
	}
	c.cfg.MaxPct = pct
	if c.cfg.MinPct > pct {
		c.cfg.MinPct = pct
	}
	c.deltaPct = clamp(c.deltaPct, c.cfg.MinPct, c.cfg.MaxPct)
}

// Gain exposes the feedback gain (for ablation experiments and tests).
func (c *Controller) Gain() float64 { return c.gain }

// Budget exposes the current per-hour budget.
func (c *Controller) Budget() float64 { return c.budget }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BudgetFunc builds the root-side core.BudgetFunc for the given deployed
// tree shape and target cost fraction rho.
func BudgetFunc(p NetworkParams, rho float64) (core.BudgetFunc, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rho <= 0 || rho > 1 {
		return nil, fmt.Errorf("atc: rho %v outside (0,1]", rho)
	}
	return func(queriesPerHr int) float64 {
		return p.BudgetPerNode(queriesPerHr, rho)
	}, nil
}
