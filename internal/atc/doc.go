// Package atc implements the paper's §6 Adaptive Threshold Control: every
// node autonomously picks its threshold δ from (a) the root's hourly
// estimate of query load, EHr, and (b) the locally observed rate of change
// of the measured physical parameter, so that the total cost of DirQ stays
// in the 45–55 %-of-flooding band.
//
// The ICPPW'06 paper defers the controller internals to its unavailable
// companion paper [13], specifying only the inputs and the goal. This
// implementation (documented in DESIGN.md as a substitution) uses exactly
// those inputs:
//
//   - Budgeting. The root derives, from the §5 cost model applied to the
//     deployed tree, the network-wide update frequency fMax at which DirQ's
//     cost would reach flooding, scales it by the target cost fraction ρ
//     (default 0.5, the centre of the paper's 45–55 % band), and broadcasts
//     the resulting per-node hourly Update Message budget alongside EHr.
//   - Feedforward. A node predicts its update rate for threshold width w
//     from its volatility m (mean |Δreading|/epoch): a signal that moves m
//     per epoch escapes a ±w window roughly m·E/w times per hour, so the
//     node solves m·E/w = budget for w.
//   - Feedback. Each hour the node compares the updates it actually sent
//     with its budget and corrects δ multiplicatively, absorbing the
//     crossing-model error for its local signal shape.
//
// In the repo's layer map this is protocol, beside core: core nodes own a
// Controller each and feed it volatility and estimate broadcasts.
package atc
