package atc

import (
	"math"
	"testing"

	"repro/internal/core"
)

func params() NetworkParams { return NetworkParams{N: 31, Internal: 15, Links: 30} }

func TestNetworkParamsCostModel(t *testing.T) {
	// A perfect binary tree of depth 4 has N=31, 15 internal nodes; the
	// generalized formulas must reproduce the §5 closed forms.
	p := params()
	if p.CFTotal() != 91 {
		t.Fatalf("CFTotal = %v, want 91", p.CFTotal())
	}
	if p.CQDMax() != 45 {
		t.Fatalf("CQDMax = %v, want 45", p.CQDMax())
	}
	if p.CUDMax() != 60 {
		t.Fatalf("CUDMax = %v, want 60", p.CUDMax())
	}
	if math.Abs(p.FMax()-46.0/60.0) > 1e-12 {
		t.Fatalf("FMax = %v, want 46/60 (the paper's 0.76 example)", p.FMax())
	}
}

func TestNetworkParamsValidate(t *testing.T) {
	bad := []NetworkParams{
		{N: 1, Internal: 1, Links: 0},
		{N: 10, Internal: 0, Links: 9},
		{N: 10, Internal: 10, Links: 9},
		{N: 10, Internal: 5, Links: 3},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
	if err := params().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestUmaxPerHourScalesWithLoad(t *testing.T) {
	p := params()
	u5 := p.UmaxPerHour(5)
	u10 := p.UmaxPerHour(10)
	if math.Abs(u10-2*u5) > 1e-9 {
		t.Fatalf("Umax not linear in query rate: %v vs %v", u5, u10)
	}
	// fMax * qph * (N-1) = 46/60 * 5 * 30 = 115.
	if math.Abs(u5-115) > 1e-9 {
		t.Fatalf("UmaxPerHour(5) = %v, want 115", u5)
	}
}

func TestBudgetPerNode(t *testing.T) {
	p := params()
	b := p.BudgetPerNode(10, 0.5)
	// 0.5 * 46/60 * 10 ≈ 3.83 updates/node/hour.
	if math.Abs(b-0.5*46.0/60.0*10) > 1e-9 {
		t.Fatalf("BudgetPerNode = %v", b)
	}
	if p.BudgetPerNode(10, 0) != 0 {
		t.Fatal("rho=0 should give zero budget")
	}
	// Network-wide consistency: budget * (N-1) == rho * Umax.
	if math.Abs(b*30-0.5*p.UmaxPerHour(10)) > 1e-9 {
		t.Fatal("per-node budget inconsistent with network Umax")
	}
}

func TestNewControllerValidation(t *testing.T) {
	bad := []Config{
		{EpochsPerHour: 0, InitialPct: 5, MinPct: 1, MaxPct: 10},
		{EpochsPerHour: 100, InitialPct: 0, MinPct: 1, MaxPct: 10},
		{EpochsPerHour: 100, InitialPct: 5, MinPct: 5, MaxPct: 1},
		{EpochsPerHour: 100, InitialPct: 5, MinPct: 1, MaxPct: 10, FeedbackGamma: 2},
	}
	for i, cfg := range bad {
		if _, err := NewController(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewController(DefaultConfig(100)); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestControllerInitialDelta(t *testing.T) {
	c, _ := NewController(DefaultConfig(100))
	if c.DeltaPct() != 5 {
		t.Fatalf("initial δ %v, want 5", c.DeltaPct())
	}
}

func TestFeedforwardScalesWithVolatility(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.FeedbackGamma = 0 // isolate feedforward
	lowC, _ := NewController(cfg)
	highC, _ := NewController(cfg)
	est := core.EstimateMsg{Seq: 1, QueriesPerHr: 10, BudgetPerNode: 4}
	lowC.OnEpoch(0.0005) // calm signal
	highC.OnEpoch(0.01)  // volatile signal
	lowC.OnEstimate(est)
	highC.OnEstimate(est)
	if lowC.DeltaPct() >= highC.DeltaPct() {
		t.Fatalf("volatile node should use larger δ: calm=%v volatile=%v",
			lowC.DeltaPct(), highC.DeltaPct())
	}
	// Feedforward solution: width = vol*E/budget → pct = vol*100*100/4.
	want := 0.01 * 100 / 4 * 100
	if want > cfg.MaxPct {
		want = cfg.MaxPct
	}
	if math.Abs(highC.DeltaPct()-want) > 1e-9 {
		t.Fatalf("feedforward δ %v, want %v", highC.DeltaPct(), want)
	}
}

func TestFeedforwardScalesInverselyWithBudget(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.FeedbackGamma = 0
	a, _ := NewController(cfg)
	b, _ := NewController(cfg)
	a.OnEpoch(0.002)
	b.OnEpoch(0.002)
	a.OnEstimate(core.EstimateMsg{Seq: 1, BudgetPerNode: 1})
	b.OnEstimate(core.EstimateMsg{Seq: 1, BudgetPerNode: 8})
	if a.DeltaPct() <= b.DeltaPct() {
		t.Fatalf("bigger budget must narrow δ: budget1=%v budget8=%v",
			a.DeltaPct(), b.DeltaPct())
	}
}

func TestZeroBudgetWidensToMax(t *testing.T) {
	cfg := DefaultConfig(100)
	c, _ := NewController(cfg)
	c.OnEpoch(0.002)
	c.OnEstimate(core.EstimateMsg{Seq: 1, BudgetPerNode: 0})
	if c.DeltaPct() != cfg.MaxPct {
		t.Fatalf("zero budget δ = %v, want max %v", c.DeltaPct(), cfg.MaxPct)
	}
}

func TestFeedbackCorrectsOverspend(t *testing.T) {
	cfg := DefaultConfig(100)
	c, _ := NewController(cfg)
	c.OnEpoch(0.002)
	est := core.EstimateMsg{Seq: 1, BudgetPerNode: 2}
	c.OnEstimate(est)
	base := c.DeltaPct()
	// Overspend: 20 updates against a budget of 2.
	for i := 0; i < 20; i++ {
		c.OnUpdateSent()
	}
	c.OnEstimate(core.EstimateMsg{Seq: 2, BudgetPerNode: 2})
	if c.DeltaPct() <= base {
		t.Fatalf("overspend did not widen δ: %v -> %v", base, c.DeltaPct())
	}
	if c.Gain() <= 1 {
		t.Fatalf("gain %v after overspend, want > 1", c.Gain())
	}
}

func TestFeedbackCorrectsUnderspend(t *testing.T) {
	cfg := DefaultConfig(100)
	c, _ := NewController(cfg)
	c.OnEpoch(0.01)
	c.OnEstimate(core.EstimateMsg{Seq: 1, BudgetPerNode: 10})
	// Send nothing for two hours.
	c.OnEstimate(core.EstimateMsg{Seq: 2, BudgetPerNode: 10})
	if c.Gain() >= 1 {
		t.Fatalf("gain %v after underspend, want < 1", c.Gain())
	}
}

func TestGainClamped(t *testing.T) {
	cfg := DefaultConfig(100)
	c, _ := NewController(cfg)
	c.OnEpoch(0.002)
	c.OnEstimate(core.EstimateMsg{Seq: 1, BudgetPerNode: 1})
	for hour := 0; hour < 50; hour++ {
		for i := 0; i < 1000; i++ {
			c.OnUpdateSent()
		}
		c.OnEstimate(core.EstimateMsg{Seq: int64(hour + 2), BudgetPerNode: 1})
	}
	if c.Gain() > 40 {
		t.Fatalf("gain %v exceeded clamp", c.Gain())
	}
	if c.DeltaPct() > cfg.MaxPct {
		t.Fatalf("δ %v exceeded max", c.DeltaPct())
	}
}

func TestDeltaAlwaysWithinBounds(t *testing.T) {
	cfg := DefaultConfig(100)
	c, _ := NewController(cfg)
	vols := []float64{0, 1e-9, 1e-4, 0.01, 0.5, 10}
	budgets := []float64{0.01, 0.1, 1, 10, 1000}
	seq := int64(1)
	for _, v := range vols {
		for _, b := range budgets {
			c.OnEpoch(v)
			c.OnEstimate(core.EstimateMsg{Seq: seq, BudgetPerNode: b})
			seq++
			if c.DeltaPct() < cfg.MinPct || c.DeltaPct() > cfg.MaxPct {
				t.Fatalf("δ %v outside [%v,%v] for vol=%v budget=%v",
					c.DeltaPct(), cfg.MinPct, cfg.MaxPct, v, b)
			}
		}
	}
}

func TestControllerConvergesToBudget(t *testing.T) {
	// Closed-loop sanity: simulate a node whose update count for threshold
	// width w is exactly vol*E/w per hour, and verify the sent count
	// converges near the budget.
	cfg := DefaultConfig(100)
	c, _ := NewController(cfg)
	const vol = 0.004 // span fraction per epoch
	const budget = 3.0
	c.OnEpoch(vol)
	c.OnEstimate(core.EstimateMsg{Seq: 1, BudgetPerNode: budget})
	var lastSent float64
	for hour := 0; hour < 30; hour++ {
		widthFrac := c.DeltaPct() / 100
		sent := vol * float64(cfg.EpochsPerHour) / widthFrac
		lastSent = sent
		for i := 0; i < int(sent+0.5); i++ {
			c.OnUpdateSent()
		}
		c.OnEpoch(vol)
		c.OnEstimate(core.EstimateMsg{Seq: int64(hour + 2), BudgetPerNode: budget})
	}
	if lastSent < budget*0.6 || lastSent > budget*1.4 {
		t.Fatalf("converged update rate %v per hour, want ≈ %v", lastSent, budget)
	}
}

func TestBudgetFunc(t *testing.T) {
	f, err := BudgetFunc(params(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f(10), params().BudgetPerNode(10, 0.5); got != want {
		t.Fatalf("BudgetFunc(10) = %v, want %v", got, want)
	}
	if _, err := BudgetFunc(params(), 0); err == nil {
		t.Fatal("rho=0 accepted")
	}
	if _, err := BudgetFunc(params(), 1.5); err == nil {
		t.Fatal("rho=1.5 accepted")
	}
	if _, err := BudgetFunc(NetworkParams{N: 1, Internal: 1, Links: 0}, 0.5); err == nil {
		t.Fatal("invalid params accepted")
	}
}
