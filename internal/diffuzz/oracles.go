package diffuzz

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/script"
	"repro/internal/sensordata"
	"repro/internal/serve"
	"repro/internal/sim"
)

// The oracle names, accepted by RunOracle and the -oracles CLI flag.
const (
	// OracleDeterminism runs the scripted case twice and requires
	// byte-identical Result+Report.
	OracleDeterminism = "determinism"
	// OracleGating runs the case gated and with DisableActivityGating and
	// requires byte-identical output.
	OracleGating = "gating"
	// OracleStepping compares monolithic Runner.Run against manual
	// Start/Step driving under seed-derived chunkings, and a
	// DisableWorkload run with external Inject/Resolve admission under two
	// different chunk schedules.
	OracleStepping = "stepping"
	// OracleServe serves seed-derived queries against a live chaos shard
	// and requires Replay of the admission log to reproduce every response.
	OracleServe = "serve"
	// OracleWorkers runs one experiment sweep with 1 and with N workers
	// and requires identical tables.
	OracleWorkers = "workers"
	// OracleSharded runs the scripted case serially and with shard counts
	// 2, 4, and 7 and requires byte-identical output from the intra-run
	// sharded epoch engine.
	OracleSharded = "sharded-vs-serial"
)

// AllOracles lists every oracle in canonical execution order.
func AllOracles() []string {
	return []string{OracleDeterminism, OracleGating, OracleStepping, OracleServe, OracleWorkers, OracleSharded}
}

// Divergence is an oracle failure: two executions that the repository's
// invariants require to be identical were not. Infrastructure errors
// (unbuildable shrink candidates, serve timeouts) are ordinary errors;
// only a *Divergence counts as a fuzzing find.
type Divergence struct {
	Oracle string
	Seed   uint64
	Detail string
}

// Error implements error.
func (d *Divergence) Error() string {
	return fmt.Sprintf("diffuzz: oracle %q diverged on seed %d: %s", d.Oracle, d.Seed, d.Detail)
}

// RunOracle executes one named oracle against a case. perturb, when
// non-nil, is applied to the built runner of the second determinism run
// before it starts — test instrumentation for proving the harness catches
// an injected divergence (e.g. silently consuming one RNG draw).
func RunOracle(name string, c Case, perturb func(*scenario.Runner)) error {
	switch name {
	case OracleDeterminism:
		return oracleDeterminism(c, perturb)
	case OracleGating:
		return oracleGating(c)
	case OracleStepping:
		return oracleStepping(c)
	case OracleServe:
		return oracleServe(c)
	case OracleWorkers:
		return oracleWorkers(c)
	case OracleSharded:
		return oracleSharded(c)
	default:
		return fmt.Errorf("diffuzz: unknown oracle %q (known: %v)", name, AllOracles())
	}
}

// runScripted executes the case's scripted run and returns the encoded
// Result+Report bundle. naive disables activity gating; the knob is
// normalized out of the encoding so gated and naive runs compare equal
// when (and only when) everything else matches.
func runScripted(c Case, naive bool, perturb func(*scenario.Runner)) ([]byte, *script.Result, error) {
	p, err := script.NewPlayer(c.Script)
	if err != nil {
		return nil, nil, err
	}
	cfg := c.Cfg
	cfg.DisableActivityGating = naive
	cfg.DisableWorkload = true
	cfg.Script = p
	r, err := scenario.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	if perturb != nil {
		perturb(r)
	}
	res := r.Run()
	res.Config.DisableActivityGating = false
	res.Config.Script = nil
	bundle := &script.Result{Result: res, Report: p.Report()}
	enc, err := encode(bundle)
	return enc, bundle, err
}

// runScriptedShards executes the case's scripted run with the given shard
// count (0: serial) and returns the encoded Result+Report bundle, with
// the Shards knob normalized out of the encoding so serial and sharded
// runs compare equal when (and only when) everything else matches.
func runScriptedShards(c Case, shards int) ([]byte, *script.Result, error) {
	p, err := script.NewPlayer(c.Script)
	if err != nil {
		return nil, nil, err
	}
	cfg := c.Cfg
	cfg.DisableWorkload = true
	cfg.Script = p
	cfg.Shards = shards
	r, err := scenario.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	res := r.Run()
	res.Config.Script = nil
	res.Config.Shards = 0
	bundle := &script.Result{Result: res, Report: p.Report()}
	enc, err := encode(bundle)
	return enc, bundle, err
}

// encode gob-serializes a value. Gob rather than JSON because per-query
// accuracies can carry +Inf (RelOvershootPct), which JSON refuses.
func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("diffuzz: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// encodeResult encodes a plain scenario Result with the driver handle
// cleared (interface fields don't gob-encode).
func encodeResult(res *scenario.Result) ([]byte, error) {
	res.Config.Script = nil
	return encode(res)
}

// diffDetail locates the first differing byte of two encodings and
// renders a short human-readable summary alongside it.
func diffDetail(a, b []byte, aName, bName, aRepr, bRepr string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return fmt.Sprintf("%s and %s differ from byte %d (lengths %d vs %d)\n%s: %s\n%s: %s",
		aName, bName, i, len(a), len(b), aName, aRepr, bName, bRepr)
}

// summarize renders the comparable headline of one scripted bundle.
func summarize(r *script.Result) string {
	return fmt.Sprintf("queries=%d summary=%+v costFraction=%.6f windows=%d faults=%d",
		r.QueriesInjected, r.Summary, r.CostFraction, len(r.Report.Windows), len(r.Report.Faults))
}

// oracleDeterminism: the same case executed twice must be byte-identical.
func oracleDeterminism(c Case, perturb func(*scenario.Runner)) error {
	a, ra, err := runScripted(c, false, nil)
	if err != nil {
		return err
	}
	b, rb, err := runScripted(c, false, perturb)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return &Divergence{Oracle: OracleDeterminism, Seed: c.Seed,
			Detail: diffDetail(a, b, "run-1", "run-2", summarize(ra), summarize(rb))}
	}
	return nil
}

// oracleGating: the activity-gated engine must reproduce the naive epoch
// loop bit for bit.
func oracleGating(c Case) error {
	g, rg, err := runScripted(c, false, nil)
	if err != nil {
		return err
	}
	n, rn, err := runScripted(c, true, nil)
	if err != nil {
		return err
	}
	if !bytes.Equal(g, n) {
		return &Divergence{Oracle: OracleGating, Seed: c.Seed,
			Detail: diffDetail(g, n, "gated", "naive", summarize(rg), summarize(rn))}
	}
	return nil
}

// oracleStepping: monolithic Run vs manual driving.
func oracleStepping(c Case) error {
	// Variant 1: the built-in workload run, monolithic vs seed-derived
	// random step chunks.
	cfg := c.Cfg
	mono, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	r, err := scenario.Build(cfg)
	if err != nil {
		return err
	}
	r.Start()
	chunks := sim.NewRNG(c.Seed).Stream("diffuzz/chunks")
	for !r.Done() {
		if r.Step(int64(chunks.Intn(97))+1) == 0 && !r.Done() {
			return fmt.Errorf("diffuzz: Step advanced 0 epochs before the horizon (epoch %d)", r.Epoch())
		}
	}
	em, err := encodeResult(mono)
	if err != nil {
		return err
	}
	stepped := r.Snapshot()
	es, err := encodeResult(stepped)
	if err != nil {
		return err
	}
	if !bytes.Equal(em, es) {
		return &Divergence{Oracle: OracleStepping, Seed: c.Seed,
			Detail: diffDetail(em, es, "monolithic", "stepped",
				fmt.Sprintf("%+v", mono.Summary), fmt.Sprintf("%+v", stepped.Summary))}
	}

	// Variant 2: external admission — the serve-layer drive style. Queries
	// are injected with Inject/Resolve at seed-derived epoch boundaries;
	// two different chunk schedules must agree.
	coarse, cres, err := manualDrive(c, false)
	if err != nil {
		return err
	}
	fine, fres, err := manualDrive(c, true)
	if err != nil {
		return err
	}
	if !bytes.Equal(coarse, fine) {
		return &Divergence{Oracle: OracleStepping, Seed: c.Seed,
			Detail: diffDetail(coarse, fine, "coarse-inject", "fine-inject",
				fmt.Sprintf("%+v", cres.Summary), fmt.Sprintf("%+v", fres.Summary))}
	}
	return nil
}

// manualDrive runs the case's config with the workload disabled and
// injects seed-derived queries at fixed epoch boundaries, advancing in
// one chunk per boundary (fine=false) or in small ragged chunks
// (fine=true). Both schedules hit every boundary exactly, so the
// simulations must be indistinguishable.
func manualDrive(c Case, fine bool) ([]byte, *scenario.Result, error) {
	cfg := c.Cfg
	cfg.DisableWorkload = true
	r, err := scenario.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	r.Start()

	erng := sim.NewRNG(c.Seed).Stream("diffuzz/injects")
	k := 3 + erng.Intn(6)
	lo := cfg.WarmupEpochs + 1
	seen := map[int64]bool{}
	var boundaries []int64
	for i := 0; i < k; i++ {
		at := lo + int64(erng.Intn(int(cfg.Epochs-lo)))
		if !seen[at] {
			seen[at] = true
			boundaries = append(boundaries, at)
		}
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })

	crng := sim.NewRNG(c.Seed).Stream("diffuzz/fine")
	for _, at := range boundaries {
		for r.Epoch() < at {
			step := at - r.Epoch()
			if fine {
				if s := int64(crng.Intn(7)) + 1; s < step {
					step = s
				}
			}
			r.Step(step)
		}
		// The workload generator supplies the query shape; the ground
		// truth is recomputed through the external Resolve path, exactly
		// like a client-supplied query in the serving layer.
		q, _ := r.NextWorkloadQuery()
		r.Inject(q, r.Resolve(q))
	}
	r.Step(cfg.Epochs)
	res := r.Snapshot()
	enc, err := encodeResult(res)
	return enc, res, err
}

// oracleServe: a live shard under chaos injection must be exactly
// reproduced by replaying its admission log.
func oracleServe(c Case) error {
	scn := c.Cfg
	scn.Script = nil
	scn.LoadPhases = nil
	// The serving horizon is open-ended: the clients and settle windows,
	// not the case horizon, bound how far the shard simulates.
	scn.Epochs = 1 << 20
	var chaos []script.Event
	for _, e := range c.Script.Events {
		if e.RunnerOp() {
			chaos = append(chaos, e)
		}
	}
	shcfg := serve.ShardConfig{
		ID:       fmt.Sprintf("fuzz-%d", c.Seed),
		Scenario: scn,
		// Small step and tick so the oracle resolves in milliseconds.
		StepEpochs: 16,
		Tick:       200 * time.Microsecond,
		Chaos:      chaos,
		// Case-drawn backpressure knobs (zero: serve defaults). With a
		// tight queue some of the concurrent submissions below shed, and
		// the oracle then also proves shedding leaves no log trace.
		QueueDepth: c.QueueDepth,
		MaxBatch:   c.MaxBatch,
	}
	sh, err := serve.NewShard(shcfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- sh.Serve(ctx) }()

	// Request shapes are drawn serially (deterministic per seed); the
	// submissions race, so which ones shed under a bounded queue is
	// scheduler-dependent — exactly why replay correctness must not
	// depend on it.
	qrng := sim.NewRNG(c.Seed).Stream("diffuzz/queries")
	const clients = 8
	reqs := make([]serve.Request, clients)
	for i := range reqs {
		reqs[i] = randRequest(qrng)
	}
	type submission struct {
		resp *serve.Response
		err  error
	}
	results := make([]submission, clients)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qctx, qcancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer qcancel()
			resp, qerr := sh.Submit(qctx, reqs[i])
			results[i] = submission{resp, qerr}
		}(i)
	}
	wg.Wait()
	live := map[int64]*serve.Response{}
	shed := 0
	for i, r := range results {
		switch {
		case r.err == nil:
			live[r.resp.QueryID] = r.resp
		case errors.Is(r.err, serve.ErrOverloaded):
			shed++
		default:
			cancel()
			<-serveDone
			return fmt.Errorf("diffuzz: serve oracle: live query %d: %w", i, r.err)
		}
	}
	cancel()
	if err := <-serveDone; err != nil {
		return fmt.Errorf("diffuzz: serve oracle: %w", err)
	}
	if got := sh.QueriesShed(); got != int64(shed) {
		return &Divergence{Oracle: OracleServe, Seed: c.Seed,
			Detail: fmt.Sprintf("shard counted %d shed queries, clients saw %d", got, shed)}
	}

	log := sh.AdmittedLog()
	logged := 0
	for _, e := range log {
		if e.Event == nil {
			logged++
		}
	}
	if logged != len(live) {
		return &Divergence{Oracle: OracleServe, Seed: c.Seed,
			Detail: fmt.Sprintf("admission log holds %d query entries for %d answered queries (%d shed — shed queries must not be logged)",
				logged, len(live), shed)}
	}
	fresh, err := serve.NewShard(shcfg)
	if err != nil {
		return err
	}
	replayed, err := fresh.Replay(log)
	if err != nil {
		// A log the shard itself produced but cannot replay is a broken
		// determinism contract, not an infrastructure error.
		return &Divergence{Oracle: OracleServe, Seed: c.Seed,
			Detail: fmt.Sprintf("replay of the live admission log failed: %v", err)}
	}
	if len(replayed) != len(live) {
		return &Divergence{Oracle: OracleServe, Seed: c.Seed,
			Detail: fmt.Sprintf("replay produced %d responses for %d live queries", len(replayed), len(live))}
	}
	for _, rr := range replayed {
		lr, ok := live[rr.QueryID]
		if !ok {
			return &Divergence{Oracle: OracleServe, Seed: c.Seed,
				Detail: fmt.Sprintf("replayed query %d has no live counterpart", rr.QueryID)}
		}
		a, aerr := json.Marshal(lr)
		b, berr := json.Marshal(rr)
		if aerr != nil || berr != nil {
			return fmt.Errorf("diffuzz: serve oracle: marshal response %d: %v / %v", rr.QueryID, aerr, berr)
		}
		if !bytes.Equal(a, b) {
			return &Divergence{Oracle: OracleServe, Seed: c.Seed,
				Detail: fmt.Sprintf("query %d differs\nlive:   %s\nreplay: %s", rr.QueryID, a, b)}
		}
	}
	return nil
}

// randRequest draws one range query over a random sensor type's span.
func randRequest(rng *sim.RNG) serve.Request {
	typ := sensordata.AllTypes()[rng.Intn(int(sensordata.NumTypes))]
	min, max := typ.Span()
	lo := rng.Range(min, max)
	return serve.Request{Type: typ, Lo: lo, Hi: lo + rng.Range(0, max-lo)}
}

// oracleSharded: the intra-run sharded epoch engine must reproduce the
// serial engine bit for bit at every shard count. Cases that fall back to
// serial (predictive sampling, gating disabled) still run — they prove
// the fallback changes nothing.
func oracleSharded(c Case) error {
	serial, rs, err := runScriptedShards(c, 0)
	if err != nil {
		return err
	}
	for _, k := range []int{2, 4, 7} {
		sharded, rk, err := runScriptedShards(c, k)
		if err != nil {
			return err
		}
		if !bytes.Equal(serial, sharded) {
			return &Divergence{Oracle: OracleSharded, Seed: c.Seed,
				Detail: diffDetail(serial, sharded, "serial", fmt.Sprintf("shards=%d", k),
					summarize(rs), summarize(rk))}
		}
	}
	return nil
}

// workerIDs are the experiment sweeps the workers oracle samples: cheap
// enough to run twice per case, and together covering the plain-run pool
// (fig5), the threshold sweep (fig6), and the scripted engine-pool path
// (churn).
var workerIDs = []string{experiments.IDFig5a, experiments.IDFig6, experiments.IDChurn}

// oracleWorkers: experiment results must not depend on the worker count.
// Errors are part of the contract too: if the serial sweep fails, the
// parallel sweep must fail identically.
func oracleWorkers(c Case) error {
	rng := sim.NewRNG(c.Seed).Stream("diffuzz/workers")
	id := workerIDs[rng.Intn(len(workerIDs))]
	o := experiments.Options{
		Seed:     rng.Uint64(),
		NumNodes: 30 + rng.Intn(16),
		Epochs:   int64(300 + rng.Intn(201)),
	}
	workers := 2 + rng.Intn(6)

	o.Workers = 1
	serial, serr := experiments.Run(id, o)
	o.Workers = workers
	par, perr := experiments.Run(id, o)

	switch {
	case (serr == nil) != (perr == nil):
		return &Divergence{Oracle: OracleWorkers, Seed: c.Seed,
			Detail: fmt.Sprintf("experiment %q: workers=1 err=%v, workers=%d err=%v", id, serr, workers, perr)}
	case serr != nil:
		if serr.Error() != perr.Error() {
			return &Divergence{Oracle: OracleWorkers, Seed: c.Seed,
				Detail: fmt.Sprintf("experiment %q errors differ: %q vs %q", id, serr, perr)}
		}
		return nil
	case !reflect.DeepEqual(serial, par):
		return &Divergence{Oracle: OracleWorkers, Seed: c.Seed,
			Detail: fmt.Sprintf("experiment %q tables differ between workers=1 and workers=%d\nserial: %+v\nparallel: %+v",
				id, workers, serial, par)}
	}
	return nil
}
