package diffuzz

import (
	"fmt"
	"sort"

	"repro/internal/scenario"
	"repro/internal/script"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Case is one generated fuzz scenario: a complete simulation
// configuration plus a scripted dynamics timeline, both derived
// deterministically from Seed. Identical seeds produce identical cases on
// every run, so a failure report is reproducible from its seed alone (the
// config and script are still serialized into repro files, so a corpus
// entry survives generator changes).
type Case struct {
	Seed   uint64          `json:"seed"`
	Cfg    scenario.Config `json:"config"`
	Script *script.Script  `json:"script"`
	// QueueDepth / MaxBatch, when non-zero, bound the serve oracle's
	// admission queue and drain batch, so the oracle exercises the
	// backpressure path: concurrent submissions may shed with
	// ErrOverloaded, and the shed queries must leave no trace in the
	// admission log. Zero means the serve defaults (additive JSON —
	// older corpus entries decode with the knobs off).
	QueueDepth int `json:"queue_depth,omitempty"`
	MaxBatch   int `json:"max_batch,omitempty"`
}

// nodeLadder is the usual network-size menu; shrinking walks it downward.
var nodeLadder = []int{12, 16, 20, 25, 30, 40, 50}

// bigNodes are the occasional large-N sizes (ScaleDefault stretches the
// deployment area to keep the paper's node density).
var bigNodes = []int{80, 120}

// minEpochs is the shortest horizon generation and shrinking use: it
// keeps the default 40-epoch warm-up, one metrics bucket, and at least a
// few workload injections inside the run.
const minEpochs = 120

// Generate derives the Case for one seed. The scenario seed embedded in
// the config is walked forward until the deployment actually builds
// (connected placement within the depth cap), so every generated case is
// runnable by construction.
func Generate(seed uint64) Case { return GenerateSized(seed, 0) }

// GenerateSized is Generate with the network size forced to nodes (0
// keeps the generator's own ladder draw) — the focused large-N pass the
// nightly campaign runs at a few thousand nodes. The override replaces
// the drawn size after all of the size draws have been consumed, so a
// sized case shares every other knob (mode, workload, optional
// subsystems, script shape) with the unsized case of the same seed, the
// unsized path is byte-identical to what it always was, and sized
// generation stays a pure function of (seed, nodes).
func GenerateSized(seed uint64, nodes int) Case {
	rng := sim.NewRNG(seed).Stream("diffuzz/gen")
	cfg := genConfig(rng, nodes)
	r := buildable(&cfg)
	c := Case{Seed: seed, Cfg: cfg, Script: genScript(rng, seed, cfg, r)}
	// Backpressure knobs come from their own stream so their addition
	// left every pre-existing seed's config and script untouched. Depths
	// of 1..4 against the serve oracle's 8 concurrent clients make real
	// shedding plausible without starving the run entirely.
	brng := sim.NewRNG(seed).Stream("diffuzz/backpressure")
	if brng.Bool(0.4) {
		c.QueueDepth = 1 + brng.Intn(4)
		c.MaxBatch = 1 + brng.Intn(c.QueueDepth)
	}
	return c
}

// buildable walks cfg.Seed forward to the first deployment that builds
// and returns the built (never-started) runner so the script generator
// can derive concrete targets from the real topology.
func buildable(cfg *scenario.Config) *scenario.Runner {
	for tries := 0; ; tries++ {
		r, err := scenario.Build(*cfg)
		if err == nil {
			return r
		}
		if tries >= 200 {
			panic(fmt.Sprintf("diffuzz: no buildable deployment near seed %d: %v", cfg.Seed, err))
		}
		cfg.Seed++
	}
}

// genConfig draws one scenario configuration: ScaleDefault geometry at a
// random size, random workload and controller knobs, and each optional
// subsystem (heterogeneous mounts, lossy radio, energy, predictive
// sampling, the flooding baseline, load phases) enabled with a fixed
// probability.
func genConfig(rng *sim.RNG, forceNodes int) scenario.Config {
	nodes := nodeLadder[rng.Intn(len(nodeLadder))]
	if rng.Bool(0.1) {
		nodes = bigNodes[rng.Intn(len(bigNodes))]
	}
	if forceNodes > 0 {
		nodes = forceNodes
	}
	cfg := scenario.ScaleDefault(nodes)
	cfg.Seed = rng.Uint64()
	cfg.Epochs = int64(240 + rng.Intn(481)) // 240..720
	if forceNodes >= 1000 {
		// Large-N cases fold the horizon draw into 120..240 epochs (before
		// anything downstream reads cfg.Epochs), keeping a focused pass at
		// thousands of nodes affordable without losing draw determinism.
		cfg.Epochs = minEpochs + cfg.Epochs%121
	}
	cfg.QueryInterval = []int64{5, 10, 20, 30}[rng.Intn(4)]
	cfg.Coverage = 0.2 + 0.6*rng.Float64()

	switch p := rng.Float64(); {
	case p < 0.5:
		cfg.Mode = scenario.FixedDelta
		cfg.FixedPct = 2 + 8*rng.Float64()
	case p < 0.8:
		cfg.Mode = scenario.ATC
		cfg.Rho = 0.2 + 0.4*rng.Float64()
	default:
		cfg.Mode = scenario.StaticIndex
		cfg.FixedPct = 2 + 8*rng.Float64()
	}

	if rng.Bool(0.25) {
		cfg.Heterogeneous = true
		cfg.TypeProb = 0.4 + 0.4*rng.Float64()
	}
	if rng.Bool(0.2) {
		cfg.PacketLoss = 0.01 + 0.09*rng.Float64()
	}
	if rng.Bool(0.15) {
		cfg.EnergyCapacity = 800 + 1200*rng.Float64()
	}
	if rng.Bool(0.15) {
		cfg.PredictiveSampling = true
	}
	if rng.Bool(0.1) {
		cfg.DisseminateByFlooding = true
	}
	if rng.Bool(0.2) {
		cfg.LoadPhases = []scenario.LoadPhase{
			{Until: cfg.Epochs / 3, Interval: int64(3 + rng.Intn(20))},
			{Until: 2 * cfg.Epochs / 3, Interval: int64(3 + rng.Intn(40))},
		}
	}
	return cfg
}

// genScript draws a timeline over all seven ops. Kill targets are mostly
// auto-picked; explicit ones come from the built topology's live non-root
// tree nodes, so they are valid at epoch 0 (an earlier kill can still
// invalidate them mid-run — the event is then recorded as skipped, which
// is itself deterministic and therefore fair game for the oracles).
func genScript(rng *sim.RNG, seed uint64, cfg scenario.Config, r *scenario.Runner) *script.Script {
	s := &script.Script{Name: fmt.Sprintf("fuzz-%d", seed)}
	if rng.Bool(0.5) {
		s.Workload.Interval = int64(5 + rng.Intn(26))
	}
	if rng.Bool(0.3) {
		s.Workload.Coverage = 0.1 + 0.8*rng.Float64()
	}

	var targets []topology.NodeID
	for _, id := range r.Tree.Nodes() {
		if id != topology.Root {
			targets = append(targets, id)
		}
	}

	n := rng.Intn(9) // 0..8 events; empty timelines keep the oracles honest on quiet runs
	for i := 0; i < n; i++ {
		at := int64(1 + rng.Intn(int(cfg.Epochs)-1))
		var e script.Event
		switch rng.Intn(7) {
		case 0:
			e = script.Event{At: at, Op: script.OpKill}
			if len(targets) > 0 && rng.Bool(0.3) {
				e.Node = int(targets[rng.Intn(len(targets))])
			}
		case 1:
			e = script.Event{At: at, Op: script.OpCascade,
				Count: 1 + rng.Intn(4), Spacing: int64(1 + rng.Intn(30))}
		case 2:
			delta := rng.Range(1, 10)
			if rng.Bool(0.5) {
				delta = -delta
			}
			e = script.Event{At: at, Op: script.OpShift, Type: randType(rng), Delta: delta}
		case 3:
			e = script.Event{At: at, Op: script.OpDrift, Scale: 0.3 + 2.7*rng.Float64()}
			if rng.Bool(0.75) {
				e.Type = randType(rng)
			}
		case 4:
			e = script.Event{At: at, Op: script.OpBurst, Interval: int64(3 + rng.Intn(38))}
		case 5:
			e = script.Event{At: at, Op: script.OpCoverage, Coverage: 0.1 + 0.8*rng.Float64()}
		case 6:
			e = script.Event{At: at, Op: script.OpRetune, Delta: 1 + 11*rng.Float64()}
		}
		s.Events = append(s.Events, e)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}

// randType names a random sensor type.
func randType(rng *sim.RNG) string {
	return sensordata.AllTypes()[rng.Intn(int(sensordata.NumTypes))].String()
}

// clone deep-copies the case so shrink candidates never alias the
// original's script or load-phase slices.
func (c Case) clone() Case {
	s := *c.Script
	s.Events = append([]script.Event(nil), c.Script.Events...)
	c.Script = &s
	if c.Cfg.LoadPhases != nil {
		c.Cfg.LoadPhases = append([]scenario.LoadPhase(nil), c.Cfg.LoadPhases...)
	}
	return c
}
