package diffuzz

import (
	"errors"

	"repro/internal/scenario"
	"repro/internal/script"
	"repro/internal/topology"
)

// DefaultShrinkBudget bounds how many oracle re-executions one shrink may
// spend. Each shrink pass re-runs the failing oracle on a candidate, so
// the budget is the knob that trades minimality against wall time.
const DefaultShrinkBudget = 150

// Shrink minimizes a failing case with a ddmin-style greedy reduction:
// drop script events (all at once, then one at a time), halve the epoch
// horizon, walk the node count down the generation ladder, and zero the
// optional config knobs — repeating until a fixpoint or the budget runs
// out. A candidate survives only if the oracle still reports a
// *Divergence; infrastructure errors (e.g. a smaller network that no
// longer builds) reject the candidate rather than masking the find.
//
// Returns the minimized case and the number of oracle runs spent.
func Shrink(c Case, oracle string, perturb func(*scenario.Runner), budget int) (Case, int) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	used := 0
	check := func(cand Case) bool {
		if used >= budget {
			return false
		}
		used++
		var d *Divergence
		return errors.As(RunOracle(oracle, cand, perturb), &d)
	}

	best := c.clone()
	for changed := true; changed && used < budget; {
		changed = false

		// Pass 1: the timeline. Try the empty script first (most failures
		// are not event-dependent at all), then remove single events.
		if len(best.Script.Events) > 0 {
			cand := best.clone()
			cand.Script.Events = nil
			if check(cand) {
				best = cand
				changed = true
			}
		}
		for i := 0; i < len(best.Script.Events) && used < budget; {
			cand := best.clone()
			cand.Script.Events = append(cand.Script.Events[:i], cand.Script.Events[i+1:]...)
			if check(cand) {
				best = cand
				changed = true
			} else {
				i++
			}
		}

		// Pass 2: the horizon. Events past the new horizon would never
		// fire; drop them so the repro stays readable.
		for best.Cfg.Epochs/2 >= minEpochs && used < budget {
			cand := best.clone()
			cand.Cfg.Epochs /= 2
			kept := cand.Script.Events[:0]
			for _, e := range cand.Script.Events {
				if e.At < cand.Cfg.Epochs {
					kept = append(kept, e)
				}
			}
			cand.Script.Events = kept
			if !check(cand) {
				break
			}
			best = cand
			changed = true
		}

		// Pass 3: the network, stepping down the generation ladder. The
		// scenario seed is kept, so a smaller deployment may fail to
		// build — that rejects the candidate, it does not end the shrink.
		for used < budget {
			n := nextSmaller(best.Cfg.NumNodes)
			if n == 0 {
				break
			}
			if cand, ok := withNodes(best, n); ok && check(cand) {
				best = cand
				changed = true
				continue
			}
			break
		}

		// Pass 4: the optional knobs, one at a time.
		for _, pass := range knobPasses {
			if used >= budget {
				break
			}
			cand := best.clone()
			if !pass(&cand) {
				continue
			}
			if check(cand) {
				best = cand
				changed = true
			}
		}
	}
	return best, used
}

// nextSmaller returns the largest ladder size strictly below n, or 0.
func nextSmaller(n int) int {
	best := 0
	for _, v := range append(append([]int(nil), nodeLadder...), bigNodes...) {
		if v < n && v > best {
			best = v
		}
	}
	return best
}

// withNodes rebuilds the case's geometry for a smaller network via the
// ScaleDefault template, keeping every other knob. Explicit kill targets
// outside the new node range fall back to auto-victim selection.
func withNodes(c Case, n int) (Case, bool) {
	cand := c.clone()
	tmpl := scenario.ScaleDefault(n)
	cand.Cfg.NumNodes = tmpl.NumNodes
	cand.Cfg.Width = tmpl.Width
	cand.Cfg.Height = tmpl.Height
	cand.Cfg.MaxDepth = tmpl.MaxDepth
	for i := range cand.Script.Events {
		if cand.Script.Events[i].Op == script.OpKill && cand.Script.Events[i].Node >= n {
			cand.Script.Events[i].Node = int(topology.Root) // 0: auto
		}
	}
	return cand, true
}

// knobPasses each zero one optional subsystem, returning false when the
// knob is already off (so the shrink spends no oracle run on it).
var knobPasses = []func(*Case) bool{
	func(c *Case) bool {
		if c.Cfg.PacketLoss == 0 {
			return false
		}
		c.Cfg.PacketLoss = 0
		return true
	},
	func(c *Case) bool {
		if !c.Cfg.Heterogeneous {
			return false
		}
		c.Cfg.Heterogeneous = false
		return true
	},
	func(c *Case) bool {
		if c.Cfg.EnergyCapacity == 0 {
			return false
		}
		c.Cfg.EnergyCapacity = 0
		return true
	},
	func(c *Case) bool {
		if !c.Cfg.PredictiveSampling {
			return false
		}
		c.Cfg.PredictiveSampling = false
		return true
	},
	func(c *Case) bool {
		if !c.Cfg.DisseminateByFlooding {
			return false
		}
		c.Cfg.DisseminateByFlooding = false
		return true
	},
	func(c *Case) bool {
		if c.Cfg.LoadPhases == nil {
			return false
		}
		c.Cfg.LoadPhases = nil
		return true
	},
	func(c *Case) bool {
		if c.Script.Workload == (script.Workload{}) {
			return false
		}
		c.Script.Workload = script.Workload{}
		return true
	},
	func(c *Case) bool {
		if c.Cfg.Mode == scenario.FixedDelta {
			return false
		}
		c.Cfg.Mode = scenario.FixedDelta
		if c.Cfg.FixedPct == 0 {
			c.Cfg.FixedPct = 5
		}
		return true
	},
	func(c *Case) bool {
		if c.QueueDepth == 0 && c.MaxBatch == 0 {
			return false
		}
		c.QueueDepth, c.MaxBatch = 0, 0
		return true
	},
}
