package diffuzz

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/scenario"
)

// Options configures one fuzzing campaign.
type Options struct {
	// SeedBase is the first seed; seeds SeedBase..SeedBase+Seeds-1 run.
	SeedBase uint64
	// Seeds is how many consecutive seeds to fuzz.
	Seeds int
	// Oracles selects which oracles run per case; nil means AllOracles.
	Oracles []string
	// Nodes, when positive, forces every case's network to this size via
	// GenerateSized — the focused large-N pass. 0 keeps the generator's
	// own size ladder.
	Nodes int
	// Context, when non-nil, bounds the campaign: seeds not yet started
	// when it is done are skipped (reported in Summary.Skipped). The
	// deadline lives here rather than in a duration knob so this package
	// never reads the wall clock itself.
	Context context.Context
	// Shrink minimizes failing cases before reporting them.
	Shrink bool
	// ShrinkBudget bounds oracle re-runs per shrink (0: DefaultShrinkBudget).
	ShrinkBudget int
	// CorpusDir, when set, receives a repro JSON per failure.
	CorpusDir string
	// Workers bounds concurrent cases (0: GOMAXPROCS).
	Workers int
	// Perturb, when non-nil, is applied to the second determinism run of
	// every case — test instrumentation for injecting a divergence.
	Perturb func(*scenario.Runner)
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Failure is one divergence found by a campaign.
type Failure struct {
	Seed   uint64
	Oracle string
	// Detail is the divergence message from the original (unshrunk) case.
	Detail string
	// Case is the generated case; Minimized is the shrunk variant (equal
	// to Case when shrinking is off or failed to reduce anything).
	Case      Case
	Minimized Case
	// ReproPath is where the repro JSON was written, if CorpusDir was set.
	ReproPath string
	// ShrinkRuns counts oracle re-executions the shrink spent.
	ShrinkRuns int
}

// Summary reports one campaign.
type Summary struct {
	Cases      int // cases fully executed
	Skipped    int // seeds skipped because the Context expired
	OracleRuns int // oracle executions, including shrink re-runs
	Failures   []Failure
}

// Fuzz runs a campaign: generate one case per seed, run the selected
// oracles, shrink and record any divergence. Oracle errors that are not
// Divergences (infrastructure failures) abort the campaign — they mean
// the harness itself is broken, which must not scroll past as noise.
func Fuzz(o Options) (*Summary, error) {
	if o.Seeds <= 0 {
		return nil, fmt.Errorf("diffuzz: Seeds must be positive, got %d", o.Seeds)
	}
	oracles := o.Oracles
	if len(oracles) == 0 {
		oracles = AllOracles()
	}
	for _, name := range oracles {
		known := false
		for _, o := range AllOracles() {
			known = known || o == name
		}
		if !known {
			return nil, fmt.Errorf("diffuzz: unknown oracle %q (known: %v)", name, AllOracles())
		}
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.Seeds {
		workers = o.Seeds
	}

	var (
		mu       sync.Mutex
		failures []Failure
		cases    atomic.Int64
		skipped  atomic.Int64
		runs     atomic.Int64
		infraErr error
		next     atomic.Uint64
		wg       sync.WaitGroup
	)
	next.Store(o.SeedBase)
	last := o.SeedBase + uint64(o.Seeds)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seed := next.Add(1) - 1
				if seed >= last {
					return
				}
				if ctx.Err() != nil {
					skipped.Add(1)
					continue
				}
				c := GenerateSized(seed, o.Nodes)
				cases.Add(1)
				for _, name := range oracles {
					runs.Add(1)
					err := RunOracle(name, c, o.Perturb)
					if err == nil {
						continue
					}
					var d *Divergence
					if !errors.As(err, &d) {
						mu.Lock()
						if infraErr == nil {
							infraErr = fmt.Errorf("diffuzz: seed %d oracle %s: %w", seed, name, err)
						}
						mu.Unlock()
						return
					}
					f := Failure{Seed: seed, Oracle: name, Detail: d.Detail, Case: c, Minimized: c}
					if o.Shrink {
						f.Minimized, f.ShrinkRuns = Shrink(c, name, o.Perturb, o.ShrinkBudget)
						runs.Add(int64(f.ShrinkRuns))
					}
					if o.CorpusDir != "" {
						path, werr := WriteRepro(o.CorpusDir, Repro{
							Oracle: name,
							Note:   firstLine(d.Detail),
							Case:   f.Minimized,
						})
						if werr != nil {
							logf("diffuzz: seed %d: writing repro: %v", seed, werr)
						} else {
							f.ReproPath = path
						}
					}
					mu.Lock()
					failures = append(failures, f)
					mu.Unlock()
					logf("FAIL seed=%d oracle=%s events=%d->%d %s",
						seed, name, len(f.Case.Script.Events), len(f.Minimized.Script.Events), firstLine(d.Detail))
				}
			}
		}()
	}
	wg.Wait()
	if infraErr != nil {
		return nil, infraErr
	}
	sort.Slice(failures, func(i, j int) bool {
		if failures[i].Seed != failures[j].Seed {
			return failures[i].Seed < failures[j].Seed
		}
		return failures[i].Oracle < failures[j].Oracle
	})
	return &Summary{
		Cases:      int(cases.Load()),
		Skipped:    int(skipped.Load()),
		OracleRuns: int(runs.Load()),
		Failures:   failures,
	}, nil
}

// firstLine truncates a multi-line detail to its headline.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
