package diffuzz

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/script"
)

// TestGenerateDeterministic: the generator is a pure function of the seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGenerateCoverage: over a modest seed range the generator exercises
// every controller mode and every script op at least once.
func TestGenerateCoverage(t *testing.T) {
	modes := map[scenario.ThresholdMode]bool{}
	ops := map[script.Op]bool{}
	for seed := uint64(0); seed < 60; seed++ {
		c := Generate(seed)
		modes[c.Cfg.Mode] = true
		for _, e := range c.Script.Events {
			ops[e.Op] = true
		}
	}
	if len(modes) < 3 {
		t.Errorf("only %d controller modes generated in 60 seeds", len(modes))
	}
	if len(ops) < 7 {
		t.Errorf("only %d of 7 script ops generated in 60 seeds: %v", len(ops), ops)
	}
}

// TestFuzzSmoke runs a small all-oracle campaign; the repository's
// equivalence invariants must hold on every generated case.
func TestFuzzSmoke(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	sum, err := Fuzz(Options{Seeds: seeds, Shrink: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cases != seeds {
		t.Fatalf("ran %d cases, want %d", sum.Cases, seeds)
	}
	for _, f := range sum.Failures {
		t.Errorf("seed %d oracle %s diverged: %s", f.Seed, f.Oracle, f.Detail)
	}
}

// TestInjectedDivergence is the harness's own acceptance test: silently
// consuming one RNG draw in the second determinism run must be caught and
// shrunk to a near-empty repro (≤3 events), proving both the oracle's
// sensitivity and the shrinker's reduction.
func TestInjectedDivergence(t *testing.T) {
	dir := t.TempDir()
	perturb := func(r *scenario.Runner) { r.NextWorkloadQuery() }
	sum, err := Fuzz(Options{
		SeedBase:  3, // a seed whose generated case has a non-empty timeline
		Seeds:     1,
		Oracles:   []string{OracleDeterminism},
		Shrink:    true,
		CorpusDir: dir,
		Perturb:   perturb,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) != 1 {
		t.Fatalf("injected divergence not caught: %d failures", len(sum.Failures))
	}
	f := sum.Failures[0]
	if got := len(f.Minimized.Script.Events); got > 3 {
		t.Errorf("shrink left %d events, want <= 3", got)
	}
	if f.Minimized.Cfg.Epochs > f.Case.Cfg.Epochs {
		t.Errorf("shrink grew the horizon: %d -> %d", f.Case.Cfg.Epochs, f.Minimized.Cfg.Epochs)
	}

	// The minimized case must still reproduce under the same perturbation…
	var d *Divergence
	if err := RunOracle(OracleDeterminism, f.Minimized, perturb); !errors.As(err, &d) {
		t.Fatalf("minimized case does not reproduce: %v", err)
	}
	// …and its repro file must round-trip runnable.
	if f.ReproPath == "" {
		t.Fatal("no repro written")
	}
	r, err := LoadRepro(f.ReproPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunOracle(r.Oracle, r.Case, perturb); !errors.As(err, &d) {
		t.Fatalf("loaded repro does not reproduce: %v", err)
	}
	// Without the perturbation the minimized case is clean — the find was
	// the injection, not a real engine bug.
	if err := RunOracle(OracleDeterminism, f.Minimized, nil); err != nil {
		t.Fatalf("minimized case fails without the perturbation: %v", err)
	}
}

// TestCorpusReplay pins every committed repro: each must load, validate,
// and pass its recorded oracle (they are committed fixed — a regression
// that re-breaks one fails here first).
func TestCorpusReplay(t *testing.T) {
	repros, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatal("committed corpus is empty; expected pinned repro files under testdata/corpus")
	}
	for _, r := range repros {
		t.Run(ReproName(r.Seed, r.Oracle), func(t *testing.T) {
			if err := RunOracle(r.Oracle, r.Case, nil); err != nil {
				t.Errorf("pinned repro regressed: %v", err)
			}
		})
	}
}

// TestReproRoundTrip: write → load preserves the case exactly.
func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := Generate(7)
	path, err := WriteRepro(dir, Repro{Oracle: OracleGating, Note: "round-trip", Case: c})
	if err != nil {
		t.Fatal(err)
	}
	r, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Case, c) {
		t.Fatalf("repro round-trip mutated the case:\nwrote %+v\nread  %+v", c, r.Case)
	}
}

// TestUnknownOracle: bad oracle names are rejected up front.
func TestUnknownOracle(t *testing.T) {
	if _, err := Fuzz(Options{Seeds: 1, Oracles: []string{"nope"}}); err == nil {
		t.Fatal("unknown oracle accepted")
	}
}
