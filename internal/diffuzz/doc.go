// Package diffuzz is the deterministic scenario fuzzer and
// differential-oracle harness: it derives random-but-reproducible
// simulation configurations and scripted event timelines from integer
// seeds, then checks each generated case against the repository's own
// equivalence invariants instead of hand-written expectations.
//
// The oracle panel (see oracles.go) covers every determinism contract the
// previous PRs established one test at a time:
//
//   - determinism: the same case run twice is byte-identical;
//   - gating: the activity-gated epoch engine reproduces the naive
//     (DisableActivityGating) loop bit for bit;
//   - stepping: monolithic Runner.Run equals manual Start/Step driving
//     under arbitrary chunkings, including external Inject/Resolve
//     admission at epoch boundaries;
//   - serve: a live shard's responses under chaos injection are exactly
//     reproduced by Replay of its admission log;
//   - workers: experiment sweeps are invariant to the worker count.
//
// A case that fails an oracle is shrunk (shrink.go) to a minimal repro —
// events dropped, the horizon halved, the network shrunk, knobs
// simplified — and written as a runnable repro JSON into a corpus
// directory. Committed repros under testdata/corpus/ are replayed by the
// package tests forever after, so every divergence the fuzzer ever found
// stays fixed.
//
// cmd/dirqfuzz is the CLI front end; CI runs a reduced-seed smoke on
// every PR and a scheduled nightly long run. See TESTING.md for the
// workflow.
package diffuzz
