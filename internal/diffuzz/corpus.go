package diffuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ReproSchema identifies the repro file format, mirroring the
// "dirq/bench/v1" convention of the bench baselines.
const ReproSchema = "dirq/diffuzz-repro/v1"

// Repro is one minimized failing (or pinned passing) case on disk. The
// full config and script are serialized, not just the seed, so a corpus
// entry stays runnable even after the generator's draw sequence changes.
type Repro struct {
	Schema string `json:"schema"`
	// Oracle is the oracle that diverged (one of AllOracles).
	Oracle string `json:"oracle"`
	// Note is free-form context: what the divergence was, or why a
	// passing case was pinned.
	Note string `json:"note,omitempty"`
	Case
}

// Validate rejects malformed repro files.
func (r Repro) Validate() error {
	if r.Schema != ReproSchema {
		return fmt.Errorf("diffuzz: repro schema %q, want %q", r.Schema, ReproSchema)
	}
	known := false
	for _, o := range AllOracles() {
		if o == r.Oracle {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("diffuzz: repro names unknown oracle %q", r.Oracle)
	}
	if r.Script == nil {
		return fmt.Errorf("diffuzz: repro has no script")
	}
	if err := r.Script.Validate(); err != nil {
		return err
	}
	return r.Cfg.Validate()
}

// ReproName is the canonical corpus filename for a seed+oracle pair.
func ReproName(seed uint64, oracle string) string {
	return fmt.Sprintf("repro-%d-%s.json", seed, oracle)
}

// WriteRepro writes one repro into dir (created if missing) and returns
// the file path.
func WriteRepro(dir string, r Repro) (string, error) {
	r.Schema = ReproSchema
	if err := r.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, ReproName(r.Seed, r.Oracle))
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads and validates one repro file.
func LoadRepro(path string) (Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Repro{}, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return Repro{}, fmt.Errorf("diffuzz: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return Repro{}, fmt.Errorf("diffuzz: %s: %w", path, err)
	}
	return r, nil
}

// LoadCorpus loads every *.json repro in dir, sorted by filename. A
// missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Repro, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	repros := make([]Repro, 0, len(names))
	for _, name := range names {
		r, err := LoadRepro(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		repros = append(repros, r)
	}
	return repros, nil
}
