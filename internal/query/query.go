package query

import (
	"fmt"

	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Query is a one-shot range query over one sensor type.
type Query struct {
	ID   int64
	Type sensordata.Type
	Lo   float64
	Hi   float64
}

// Matches reports whether a sensor value satisfies the query range.
func (q Query) Matches(v float64) bool { return v >= q.Lo && v <= q.Hi }

// String renders the query in the paper's style.
func (q Query) String() string {
	return fmt.Sprintf("q%d: %s in [%.2f, %.2f]", q.ID, q.Type, q.Lo, q.Hi)
}

// GroundTruth captures which nodes are relevant to a query given perfectly
// fresh information: the source nodes (mounted sensor of the right type,
// current reading inside the range) and the full "should receive" set —
// sources plus every intermediate forwarding node on the tree paths from
// the root to the sources (§7.1's definition). The root itself, being the
// injector, is in neither set.
type GroundTruth struct {
	Sources []topology.NodeID
	Should  map[topology.NodeID]bool
}

// InvolvedFraction returns |Should| / (N-1): the fraction of non-root nodes
// involved in servicing the query — the paper's "percentage of nodes
// involved in responding to a query".
func (gt GroundTruth) InvolvedFraction(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(len(gt.Should)) / float64(n-1)
}

// Resolve computes the ground truth of q over the current data. mounted
// reports each node's sensor complement; value returns the node's current
// true reading for the query's type.
func Resolve(q Query, tree *topology.Tree, mounted []sensordata.TypeSet,
	value func(topology.NodeID) float64) GroundTruth {

	gt := GroundTruth{Should: map[topology.NodeID]bool{}}
	root := tree.Root()
	for i := range mounted {
		id := topology.NodeID(i)
		if id == root || !mounted[i].Has(q.Type) || !tree.Contains(id) {
			continue
		}
		if q.Matches(value(id)) {
			gt.Sources = append(gt.Sources, id)
			// Walk the path to the root in place. Once a hop is already
			// marked, so are all of its ancestors (paths to the root share
			// their suffix), so the walk can stop early.
			for hop := id; hop != root; {
				if gt.Should[hop] {
					break
				}
				gt.Should[hop] = true
				p, ok := tree.Parent(hop)
				if !ok {
					break
				}
				hop = p
			}
		}
	}
	return gt
}

// Workload generates random range queries whose ground-truth involvement is
// as close as possible to a target fraction of the network (§7: "Random
// queries which covered 20%, 40% and 60% of the nodes"). The value window
// is centred on a randomly chosen live node's current reading and its width
// is binary-searched: involvement grows monotonically with width.
type Workload struct {
	target  float64
	rng     *sim.RNG
	nextID  int64
	typeSeq int

	// Reusable scratch for Next: candidate centre nodes, and an epoch-
	// stamped visited marker so the width search can count involvement
	// without building a GroundTruth per probe.
	cand  []topology.NodeID
	stamp []int32
	pass  int32
}

// NewWorkload creates a workload generator targeting the given involved-
// node fraction (0 < target <= 1).
func NewWorkload(target float64, rng *sim.RNG) (*Workload, error) {
	if target <= 0 || target > 1 {
		return nil, fmt.Errorf("query: target coverage %v outside (0,1]", target)
	}
	return &Workload{target: target, rng: rng}, nil
}

// Target returns the configured involvement fraction.
func (w *Workload) Target() float64 { return w.target }

// SetTarget retargets the involvement fraction mid-stream (scripted
// selectivity changes). Queries generated after the call aim for the new
// fraction; the RNG stream is untouched, so the change is deterministic
// when applied at a fixed point of the query sequence.
func (w *Workload) SetTarget(target float64) error {
	if target <= 0 || target > 1 {
		return fmt.Errorf("query: target coverage %v outside (0,1]", target)
	}
	w.target = target
	return nil
}

// Next produces the next query against the current state of the dataset.
// Sensor types rotate round-robin so all four types are exercised. The
// returned ground truth is the query's at generation time.
func (w *Workload) Next(gen *sensordata.Generator, tree *topology.Tree,
	mounted []sensordata.TypeSet) (Query, GroundTruth) {

	qt := sensordata.AllTypes()[w.typeSeq%int(sensordata.NumTypes)]
	w.typeSeq++

	value := func(id topology.NodeID) float64 { return gen.Value(id, qt) }

	// Centre the window on a random node that actually mounts this type.
	candidates := w.cand[:0]
	for i := range mounted {
		id := topology.NodeID(i)
		if id != tree.Root() && mounted[i].Has(qt) && tree.Contains(id) {
			candidates = append(candidates, id)
		}
	}
	w.cand = candidates
	q := Query{ID: w.nextID, Type: qt}
	w.nextID++
	if len(candidates) == 0 {
		// No node carries this type: emit an unsatisfiable query.
		lo, _ := qt.Span()
		q.Lo, q.Hi = lo, lo
		return q, Resolve(q, tree, mounted, value)
	}
	centre := value(candidates[w.rng.Intn(len(candidates))])

	// Binary search the half-width for the target involvement. The probes
	// only need the involved-node count, so they use the allocation-free
	// counter; the winning query is fully resolved once at the end.
	span := qt.SpanWidth()
	n := tree.Len()
	loW, hiW := 0.0, span
	var best Query
	bestErr := 2.0
	for iter := 0; iter < 24; iter++ {
		mid := (loW + hiW) / 2
		cand := Query{ID: q.ID, Type: qt, Lo: centre - mid, Hi: centre + mid}
		involved := w.involvedCount(cand, tree, mounted, value)
		frac := 0.0
		if n > 1 {
			frac = float64(involved) / float64(n-1)
		}
		if e := abs(frac - w.target); e < bestErr {
			bestErr = e
			best = cand
		}
		if frac < w.target {
			loW = mid
		} else {
			hiW = mid
		}
	}
	return best, Resolve(best, tree, mounted, value)
}

// involvedCount returns what len(Resolve(q, ...).Should) would be — the
// number of distinct non-root nodes on root-to-source paths — using a
// reusable stamp buffer instead of materializing the set.
func (w *Workload) involvedCount(q Query, tree *topology.Tree,
	mounted []sensordata.TypeSet, value func(topology.NodeID) float64) int {

	n := len(mounted)
	if cap(w.stamp) < n {
		w.stamp = make([]int32, n)
	}
	stamp := w.stamp[:n]
	w.pass++
	root := tree.Root()
	count := 0
	for i := range mounted {
		id := topology.NodeID(i)
		if id == root || !mounted[i].Has(q.Type) || !tree.Contains(id) {
			continue
		}
		if !q.Matches(value(id)) {
			continue
		}
		for hop := id; hop != root; {
			if stamp[hop] == w.pass {
				break
			}
			stamp[hop] = w.pass
			count++
			p, ok := tree.Parent(hop)
			if !ok {
				break
			}
			hop = p
		}
	}
	return count
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Predictor forecasts the number of queries in the next hour from history,
// standing in for the paper's web-server-style access predictor [10]. It is
// an EWMA over completed hours with a configurable smoothing factor.
type Predictor struct {
	alpha    float64
	estimate float64
	seeded   bool
	current  int
}

// NewPredictor returns a predictor with smoothing factor alpha in (0, 1].
func NewPredictor(alpha float64) (*Predictor, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("query: predictor alpha %v outside (0,1]", alpha)
	}
	return &Predictor{alpha: alpha}, nil
}

// Observe records one injected query in the current hour.
func (p *Predictor) Observe() { p.current++ }

// EndHour closes the current hour and folds its count into the forecast.
func (p *Predictor) EndHour() {
	c := float64(p.current)
	p.current = 0
	if !p.seeded {
		p.seeded = true
		p.estimate = c
		return
	}
	p.estimate = (1-p.alpha)*p.estimate + p.alpha*c
}

// PredictNextHour returns the forecast query count for the next hour,
// rounded to the nearest integer and never negative. Before any completed
// hour the forecast is zero.
func (p *Predictor) PredictNextHour() int {
	if p.estimate < 0 {
		return 0
	}
	return int(p.estimate + 0.5)
}

// ResolveGeo computes the ground truth of a location-constrained query:
// sources must additionally lie inside rect. The forwarding closure is the
// tree paths to those sources, as for plain queries.
func ResolveGeo(q Query, rect topology.Rect, tree *topology.Tree,
	mounted []sensordata.TypeSet, value func(topology.NodeID) float64,
	pos func(topology.NodeID) topology.Position) GroundTruth {

	gt := GroundTruth{Should: map[topology.NodeID]bool{}}
	for _, id := range tree.Nodes() {
		if id == tree.Root() || !mounted[id].Has(q.Type) {
			continue
		}
		if !rect.Contains(pos(id)) {
			continue
		}
		if q.Matches(value(id)) {
			gt.Sources = append(gt.Sources, id)
			for _, hop := range tree.PathToRoot(id) {
				if hop != tree.Root() {
					gt.Should[hop] = true
				}
			}
		}
	}
	return gt
}
