package query

import (
	"math"
	"testing"

	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestQueryMatches(t *testing.T) {
	q := Query{Type: sensordata.Temperature, Lo: 22, Hi: 25}
	for v, want := range map[float64]bool{21.9: false, 22: true, 23.5: true, 25: true, 25.1: false} {
		if q.Matches(v) != want {
			t.Fatalf("Matches(%v) = %v, want %v", v, !want, want)
		}
	}
}

func TestQueryString(t *testing.T) {
	q := Query{ID: 3, Type: sensordata.Humidity, Lo: 10, Hi: 20}
	if q.String() == "" {
		t.Fatal("empty String")
	}
}

// fixedTree builds the 7-node example tree with all nodes mounting all types.
//
//	     0
//	   / | \
//	  1  2  3
//	 / \     \
//	4   5     6
func fixedTree(t *testing.T) (*topology.Tree, []sensordata.TypeSet) {
	t.Helper()
	tr := topology.NewTree(0)
	for _, e := range [][2]topology.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 5}, {3, 6}} {
		if err := tr.Attach(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return tr, sensordata.AssignAllTypes(7)
}

func TestResolveSourcesAndForwarders(t *testing.T) {
	tr, mounted := fixedTree(t)
	// Node values: only nodes 4 and 6 match [10, 20].
	vals := map[topology.NodeID]float64{1: 50, 2: 50, 3: 50, 4: 15, 5: 50, 6: 12}
	q := Query{Type: sensordata.Temperature, Lo: 10, Hi: 20}
	gt := Resolve(q, tr, mounted, func(id topology.NodeID) float64 { return vals[id] })
	if len(gt.Sources) != 2 {
		t.Fatalf("sources = %v, want [4 6]", gt.Sources)
	}
	// Should = {4, 1} ∪ {6, 3}; root excluded.
	want := map[topology.NodeID]bool{1: true, 3: true, 4: true, 6: true}
	if len(gt.Should) != len(want) {
		t.Fatalf("Should = %v, want %v", gt.Should, want)
	}
	for id := range want {
		if !gt.Should[id] {
			t.Fatalf("missing %d in Should set %v", id, gt.Should)
		}
	}
	if gt.Should[0] {
		t.Fatal("root in Should set")
	}
}

func TestResolveRespectsMountedTypes(t *testing.T) {
	tr, _ := fixedTree(t)
	mounted := make([]sensordata.TypeSet, 7)
	for i := 1; i < 7; i++ {
		mounted[i] = sensordata.TypeSet(0).With(sensordata.Humidity)
	}
	// Node 4 additionally has temperature.
	mounted[4] = mounted[4].With(sensordata.Temperature)
	q := Query{Type: sensordata.Temperature, Lo: 0, Hi: 100}
	gt := Resolve(q, tr, mounted, func(topology.NodeID) float64 { return 50 })
	if len(gt.Sources) != 1 || gt.Sources[0] != 4 {
		t.Fatalf("sources = %v, want [4] (only node with the sensor)", gt.Sources)
	}
}

func TestResolveEmptyResult(t *testing.T) {
	tr, mounted := fixedTree(t)
	q := Query{Type: sensordata.Temperature, Lo: 10, Hi: 20}
	gt := Resolve(q, tr, mounted, func(topology.NodeID) float64 { return 99 })
	if len(gt.Sources) != 0 || len(gt.Should) != 0 {
		t.Fatalf("expected empty ground truth, got %+v", gt)
	}
	if gt.InvolvedFraction(7) != 0 {
		t.Fatal("InvolvedFraction of empty set non-zero")
	}
}

func TestInvolvedFraction(t *testing.T) {
	gt := GroundTruth{Should: map[topology.NodeID]bool{1: true, 2: true, 3: true}}
	if f := gt.InvolvedFraction(7); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("InvolvedFraction = %v, want 0.5 (3 of 6 non-root)", f)
	}
	if gt.InvolvedFraction(1) != 0 {
		t.Fatal("single-node network should report 0")
	}
}

func newTestNetwork(t *testing.T, seed uint64) (*topology.Tree, []sensordata.TypeSet, *sensordata.Generator, *sim.RNG) {
	t.Helper()
	rng := sim.NewRNG(seed)
	g, err := topology.PlaceRandom(topology.DefaultPlacement(), rng.Stream("place"))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := topology.BuildSpanningTree(g, topology.Root, 8, 10)
	if err != nil {
		t.Skip("spanning tree caps too tight for this draw")
	}
	pos := make([]topology.Position, g.Len())
	for i := range pos {
		pos[i] = g.Pos(topology.NodeID(i))
	}
	gen := sensordata.NewGenerator(pos, rng.Stream("data"))
	return tr, sensordata.AssignAllTypes(g.Len()), gen, rng
}

func TestWorkloadHitsTargetCoverage(t *testing.T) {
	for _, target := range []float64{0.2, 0.4, 0.6} {
		tr, mounted, gen, rng := newTestNetwork(t, 42)
		w, err := NewWorkload(target, rng.Stream("workload"))
		if err != nil {
			t.Fatal(err)
		}
		var sumErr float64
		const nq = 40
		for i := 0; i < nq; i++ {
			q, gt := w.Next(gen, tr, mounted)
			if q.Lo > q.Hi {
				t.Fatalf("inverted range %+v", q)
			}
			sumErr += math.Abs(gt.InvolvedFraction(tr.Len()) - target)
			for j := 0; j < 20; j++ {
				gen.Step()
			}
		}
		if avg := sumErr / nq; avg > 0.08 {
			t.Fatalf("target %v: mean coverage error %v too large", target, avg)
		}
	}
}

func TestWorkloadRotatesTypes(t *testing.T) {
	tr, mounted, gen, rng := newTestNetwork(t, 7)
	w, err := NewWorkload(0.4, rng.Stream("workload"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[sensordata.Type]bool{}
	for i := 0; i < int(sensordata.NumTypes); i++ {
		q, _ := w.Next(gen, tr, mounted)
		seen[q.Type] = true
	}
	if len(seen) != int(sensordata.NumTypes) {
		t.Fatalf("types seen %v, want all %d", seen, sensordata.NumTypes)
	}
}

func TestWorkloadIDsMonotonic(t *testing.T) {
	tr, mounted, gen, rng := newTestNetwork(t, 9)
	w, _ := NewWorkload(0.3, rng.Stream("w"))
	var last int64 = -1
	for i := 0; i < 10; i++ {
		q, _ := w.Next(gen, tr, mounted)
		if q.ID <= last {
			t.Fatalf("IDs not monotonic: %d after %d", q.ID, last)
		}
		last = q.ID
	}
}

func TestWorkloadNoMountedType(t *testing.T) {
	tr, _, gen, rng := newTestNetwork(t, 11)
	mounted := make([]sensordata.TypeSet, tr.Len()) // nobody has sensors
	w, _ := NewWorkload(0.4, rng.Stream("w"))
	q, gt := w.Next(gen, tr, mounted)
	if len(gt.Sources) != 0 {
		t.Fatalf("sources %v for sensorless network", gt.Sources)
	}
	if q.Lo > q.Hi {
		t.Fatal("unsatisfiable query has inverted range")
	}
}

func TestWorkloadValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := NewWorkload(0, rng); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := NewWorkload(1.5, rng); err == nil {
		t.Fatal("target 1.5 accepted")
	}
}

func TestPredictorConstantRate(t *testing.T) {
	p, err := NewPredictor(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if p.PredictNextHour() != 0 {
		t.Fatal("forecast before history non-zero")
	}
	for h := 0; h < 10; h++ {
		for i := 0; i < 5; i++ {
			p.Observe()
		}
		p.EndHour()
	}
	if got := p.PredictNextHour(); got != 5 {
		t.Fatalf("constant-rate forecast = %d, want 5", got)
	}
}

func TestPredictorTracksChange(t *testing.T) {
	p, _ := NewPredictor(0.5)
	for h := 0; h < 5; h++ {
		for i := 0; i < 2; i++ {
			p.Observe()
		}
		p.EndHour()
	}
	low := p.PredictNextHour()
	for h := 0; h < 8; h++ {
		for i := 0; i < 20; i++ {
			p.Observe()
		}
		p.EndHour()
	}
	high := p.PredictNextHour()
	if high <= low {
		t.Fatalf("forecast did not rise with load: %d -> %d", low, high)
	}
	if high < 15 {
		t.Fatalf("forecast %d too sluggish for sustained load of 20/hr", high)
	}
}

func TestPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewPredictor(2); err == nil {
		t.Fatal("alpha 2 accepted")
	}
}

func TestResolveGeo(t *testing.T) {
	tr, mounted := fixedTree(t)
	positions := map[topology.NodeID]topology.Position{
		1: {X: 10, Y: 10}, 2: {X: 90, Y: 10}, 3: {X: 50, Y: 50},
		4: {X: 12, Y: 14}, 5: {X: 15, Y: 80}, 6: {X: 52, Y: 55},
	}
	pos := func(id topology.NodeID) topology.Position { return positions[id] }
	val := func(topology.NodeID) float64 { return 20 } // everyone matches on value
	q := Query{Type: sensordata.Temperature, Lo: 0, Hi: 50}

	rect := topology.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30}
	gt := ResolveGeo(q, rect, tr, mounted, val, pos)
	// Only nodes 1 and 4 are inside the rect.
	if len(gt.Sources) != 2 {
		t.Fatalf("geo sources %v, want nodes 1 and 4", gt.Sources)
	}
	for _, s := range gt.Sources {
		if s != 1 && s != 4 {
			t.Fatalf("out-of-rect source %d", s)
		}
	}
	// Forwarding closure: node 1 is on node 4's path; should = {1, 4}.
	if len(gt.Should) != 2 || !gt.Should[1] || !gt.Should[4] {
		t.Fatalf("geo Should = %v", gt.Should)
	}

	// Empty rectangle coverage.
	empty := topology.Rect{MinX: 200, MinY: 200, MaxX: 210, MaxY: 210}
	if gt := ResolveGeo(q, empty, tr, mounted, val, pos); len(gt.Sources) != 0 {
		t.Fatalf("sources %v for empty-region rect", gt.Sources)
	}
}

func TestWorkloadDeterministicGivenSeed(t *testing.T) {
	run := func() []Query {
		tr, mounted, gen, _ := newTestNetwork(t, 77)
		w, err := NewWorkload(0.4, sim.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		var qs []Query
		for i := 0; i < 8; i++ {
			q, _ := w.Next(gen, tr, mounted)
			qs = append(qs, q)
			gen.Step()
		}
		return qs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("workload diverged at query %d: %v vs %v", i, a[i], b[i])
		}
	}
}
