// Package query defines the one-shot range queries users inject into the
// network (§3: "Acquire all temperature readings that are currently between
// 22°C and 25°C"), the ground-truth resolver that determines which nodes a
// query *should* reach, a workload generator that targets the paper's
// 20/40/60 % node-involvement levels, and the root-side predictor of hourly
// query counts that feeds the EHr estimate broadcasts.
//
// In the repo's layer map this is the workload layer: scenario injects
// Workload-generated queries during batch runs, and serve resolves client
// queries through the same ground-truth path (§7.1).
package query
