package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTreeSize(t *testing.T) {
	cases := []struct {
		k, d int
		want int64
	}{
		{2, 1, 3},
		{2, 4, 31},
		{3, 2, 13},
		{8, 2, 73},
		{8, 3, 585},
	}
	for _, c := range cases {
		got, err := TreeSize(c.k, c.d)
		if err != nil {
			t.Fatalf("TreeSize(%d,%d): %v", c.k, c.d, err)
		}
		if got != c.want {
			t.Fatalf("TreeSize(%d,%d) = %d, want %d", c.k, c.d, got, c.want)
		}
	}
}

func TestCFTotalMatches3NMinus2(t *testing.T) {
	for k := 2; k <= 6; k++ {
		for d := 1; d <= 5; d++ {
			n, err := TreeSize(k, d)
			if err != nil {
				t.Fatal(err)
			}
			cf, err := CFTotal(k, d)
			if err != nil {
				t.Fatal(err)
			}
			if cf != 3*n-2 {
				t.Fatalf("CFTotal(%d,%d) = %d, want 3N-2 = %d", k, d, cf, 3*n-2)
			}
		}
	}
}

func TestPaperWorkedExampleK2D4(t *testing.T) {
	// §5.3: "if k = 2 and d = 4, then fMax < 0.76".
	cf, err := CFTotal(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cf != 91 {
		t.Fatalf("CFTotal(2,4) = %d, want 91", cf)
	}
	cqd, err := CQDMax(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cqd != 45 {
		t.Fatalf("CQDMax(2,4) = %d, want 45", cqd)
	}
	cud, err := CUDMax(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cud != 60 {
		t.Fatalf("CUDMax(2,4) = %d, want 60", cud)
	}
	fmax, err := FMax(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fmax-46.0/60.0) > 1e-12 {
		t.Fatalf("FMax(2,4) = %v, want 46/60", fmax)
	}
	if !(fmax > 0.76 && fmax < 0.77) {
		t.Fatalf("FMax(2,4) = %v, paper says ≈0.76", fmax)
	}
}

func TestFMaxConsistentWithDefinition(t *testing.T) {
	// fMax must satisfy CQD + fMax*CUD == CF exactly.
	for k := 2; k <= 8; k++ {
		for d := 1; d <= 4; d++ {
			cf, _ := CFTotal(k, d)
			cqd, _ := CQDMax(k, d)
			cud, _ := CUDMax(k, d)
			fmax, _ := FMax(k, d)
			if math.Abs(float64(cqd)+fmax*float64(cud)-float64(cf)) > 1e-9 {
				t.Fatalf("(k=%d,d=%d) CQD+fMax*CUD = %v != CF %d",
					k, d, float64(cqd)+fmax*float64(cud), cf)
			}
		}
	}
}

func TestCTDMax(t *testing.T) {
	// At f = 0 the total equals CQDmax; at f = fMax it equals CFTotal.
	ctd0, err := CTDMax(2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctd0 != 45 {
		t.Fatalf("CTDMax(2,4,0) = %v, want 45", ctd0)
	}
	fmax, _ := FMax(2, 4)
	ctdF, err := CTDMax(2, 4, fmax)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ctdF-91) > 1e-9 {
		t.Fatalf("CTDMax(2,4,fMax) = %v, want 91", ctdF)
	}
}

func TestValidation(t *testing.T) {
	if _, err := TreeSize(1, 3); err == nil {
		t.Fatal("k=1 accepted (closed form divides by k-1)")
	}
	if _, err := CFTotal(2, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := FMax(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TreeSize(2, 100); err == nil {
		t.Fatal("overflowing parameters accepted")
	}
}

func TestCostFloodTree(t *testing.T) {
	// A tree with N nodes has N-1 links: flooding costs 3N-2.
	if got := CostFloodTree(31, 30); got != 91 {
		t.Fatalf("CostFloodTree(31,30) = %d, want 91", got)
	}
	// Non-tree graph: extra links only add reception cost.
	if got := CostFloodTree(4, 6); got != 16 {
		t.Fatalf("CostFloodTree(4,6) = %d, want 16", got)
	}
}

func TestTable(t *testing.T) {
	rows, err := Table([]int{2, 3}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Ratio <= 0 || r.Ratio >= 1 {
			t.Fatalf("row %+v: CQD/CF ratio %v not in (0,1)", r, r.Ratio)
		}
		if r.FMax <= 0 {
			t.Fatalf("row %+v: non-positive fMax", r)
		}
	}
}

func TestTablePropagatesErrors(t *testing.T) {
	if _, err := Table([]int{1}, []int{2}); err == nil {
		t.Fatal("invalid k in Table accepted")
	}
}

// Property: directed dissemination (even worst-case) is always cheaper than
// flooding, and fMax is always positive — the structural claim of §5.
func TestPropertyDirectedBeatsFlooding(t *testing.T) {
	f := func(kk, dd uint8) bool {
		k := int(kk)%7 + 2 // 2..8
		d := int(dd)%5 + 1 // 1..5
		cf, err1 := CFTotal(k, d)
		cqd, err2 := CQDMax(k, d)
		fmax, err3 := FMax(k, d)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return cqd < cf && fmax > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
