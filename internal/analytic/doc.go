// Package analytic implements the paper's §5 closed-form cost model of
// flooding versus directed query dissemination on a perfect k-ary tree of
// depth d, with unit transmission and reception costs.
//
// Derivations (N = number of nodes, L = N-1 tree links):
//
//   - Flooding (§5.1): every node broadcasts the query exactly once
//     (tx cost N) and every link delivers it in both directions
//     (rx cost 2L), so CFTotal = N + 2(N-1) = 3N - 2, i.e. eq. (4)
//     CFTotal = (3k^(d+1) - 2k - 1) / (k - 1).
//
//   - Worst-case directed dissemination (§5.2): every leaf is relevant.
//     Leaf nodes do not transmit, so the (k^d - 1)/(k - 1) internal nodes
//     broadcast once each, and every non-root node receives once, giving
//     eq. (5) CQDmax = (k^(d+1) + k^d - k - 1) / (k - 1).
//
//   - Worst-case update cost (§5.2): every non-root node unicasts one
//     Update Message to its parent (1 tx + 1 rx per link), giving eq. (6)
//     CUDmax = 2(k^(d+1) - k) / (k - 1).
//
//   - fMax (§5.3, eq. (8)): the largest update-per-query frequency f for
//     which CQDmax + f·CUDmax <= CFTotal:
//     fMax = (2k^(d+1) - k^d - k) / (2(k^(d+1) - k)).
//     For k=2, d=4 this is 46/60 ≈ 0.766, the paper's "fMax < 0.76" example.
//
// In the repo's layer map this is evaluation: cmd/dirqcalc and the
// analytic experiment print these closed forms; no simulation involved.
package analytic
