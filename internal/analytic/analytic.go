package analytic

import (
	"fmt"
	"math"
)

// validate rejects parameter combinations outside the model's domain.
// k == 1 is excluded because the closed forms divide by k-1; use the
// generic Cost*Tree helpers for degenerate chains.
func validate(k, d int) error {
	if k < 2 {
		return fmt.Errorf("analytic: fan-out k=%d, need k >= 2", k)
	}
	if d < 1 {
		return fmt.Errorf("analytic: depth d=%d, need d >= 1", d)
	}
	if float64(d+1)*math.Log(float64(k)) > 62*math.Ln2 {
		return fmt.Errorf("analytic: k=%d d=%d overflows int64", k, d)
	}
	return nil
}

// pow returns k^e for small non-negative e.
func pow(k, e int) int64 {
	p := int64(1)
	for i := 0; i < e; i++ {
		p *= int64(k)
	}
	return p
}

// TreeSize returns N = (k^(d+1) - 1)/(k - 1), the node count of a perfect
// k-ary tree of depth d.
func TreeSize(k, d int) (int64, error) {
	if err := validate(k, d); err != nil {
		return 0, err
	}
	return (pow(k, d+1) - 1) / int64(k-1), nil
}

// CFTotal returns the cost of flooding one query: eq. (4),
// (3k^(d+1) - 2k - 1)/(k - 1) = 3N - 2.
func CFTotal(k, d int) (int64, error) {
	if err := validate(k, d); err != nil {
		return 0, err
	}
	return (3*pow(k, d+1) - int64(2*k) - 1) / int64(k-1), nil
}

// CQDMax returns the worst-case cost of disseminating one directed query
// (all leaves relevant): eq. (5), (k^(d+1) + k^d - k - 1)/(k - 1).
func CQDMax(k, d int) (int64, error) {
	if err := validate(k, d); err != nil {
		return 0, err
	}
	return (pow(k, d+1) + pow(k, d) - int64(k) - 1) / int64(k-1), nil
}

// CUDMax returns the worst-case cost of one network-wide update wave (every
// non-root node sends one Update Message to its parent): eq. (6),
// 2(k^(d+1) - k)/(k - 1).
func CUDMax(k, d int) (int64, error) {
	if err := validate(k, d); err != nil {
		return 0, err
	}
	return 2 * (pow(k, d+1) - int64(k)) / int64(k-1), nil
}

// CTDMax returns the worst-case total DirQ cost per query for an update
// frequency f (updates per query): eq. (7), CQDmax + f·CUDmax.
func CTDMax(k, d int, f float64) (float64, error) {
	cqd, err := CQDMax(k, d)
	if err != nil {
		return 0, err
	}
	cud, err := CUDMax(k, d)
	if err != nil {
		return 0, err
	}
	return float64(cqd) + f*float64(cud), nil
}

// FMax returns the maximum updates-per-query frequency for which DirQ's
// worst case stays below flooding: eq. (8),
// (CFTotal - CQDmax) / CUDmax = (2k^(d+1) - k^d - k) / (2(k^(d+1) - k)).
func FMax(k, d int) (float64, error) {
	if err := validate(k, d); err != nil {
		return 0, err
	}
	num := 2*pow(k, d+1) - pow(k, d) - int64(k)
	den := 2 * (pow(k, d+1) - int64(k))
	return float64(num) / float64(den), nil
}

// Row is one line of the §5 cost table for a (k, d) pair.
type Row struct {
	K, D  int
	N     int64   // tree size
	CF    int64   // flooding cost, eq. (4)
	CQD   int64   // worst-case directed dissemination cost, eq. (5)
	CUD   int64   // worst-case update-wave cost, eq. (6)
	FMax  float64 // eq. (8)
	Ratio float64 // CQD / CF: directed dissemination alone vs flooding
}

// Table computes rows for every (k, d) combination given.
func Table(ks, ds []int) ([]Row, error) {
	var rows []Row
	for _, k := range ks {
		for _, d := range ds {
			n, err := TreeSize(k, d)
			if err != nil {
				return nil, err
			}
			cf, err := CFTotal(k, d)
			if err != nil {
				return nil, err
			}
			cqd, err := CQDMax(k, d)
			if err != nil {
				return nil, err
			}
			cud, err := CUDMax(k, d)
			if err != nil {
				return nil, err
			}
			fmax, err := FMax(k, d)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				K: k, D: d, N: n, CF: cf, CQD: cqd, CUD: cud,
				FMax: fmax, Ratio: float64(cqd) / float64(cf),
			})
		}
	}
	return rows, nil
}

// CostFloodTree returns the flooding cost N + 2·links for an arbitrary tree
// topology (eq. (3)); works for any connected graph given its node and link
// counts.
func CostFloodTree(nodes, links int64) int64 {
	return nodes + 2*links
}
