package script

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

// testCfg is a reduced-scale scenario that still exercises warm-up,
// injections, hourly estimates, and tree repair.
func testCfg(mode scenario.ThresholdMode) scenario.Config {
	cfg := scenario.Default()
	cfg.Seed = 7
	cfg.NumNodes = 30
	cfg.Epochs = 1500
	cfg.Mode = mode
	return cfg
}

// testScript exercises every op: kill, cascade, shift, drift, burst,
// coverage, retune.
func testScript() *Script {
	return &Script{
		Name:     "all-ops",
		Workload: Workload{Interval: 20, Coverage: 0.4},
		Events: []Event{
			{At: 300, Op: OpKill},
			{At: 450, Op: OpCascade, Count: 2, Spacing: 60},
			{At: 600, Op: OpShift, Type: "temperature", Delta: 5},
			{At: 700, Op: OpDrift, Scale: 2},
			{At: 900, Op: OpBurst, Interval: 5},
			{At: 1100, Op: OpBurst, Interval: 40},
			{At: 1200, Op: OpCoverage, Coverage: 0.2},
			{At: 1300, Op: OpRetune, Delta: 3},
		},
	}
}

// stripDriver clears the non-comparable driver handle so two Results can
// be DeepEqual-ed field by field.
func stripDriver(res *Result) {
	res.Config.Script = nil
}

// TestReplayDeterminism is the tentpole invariant: the same script on the
// same seed reproduces byte-identical metrics — scenario Result and
// script Report — for both threshold modes.
func TestReplayDeterminism(t *testing.T) {
	for _, mode := range []scenario.ThresholdMode{scenario.FixedDelta, scenario.ATC} {
		t.Run(mode.String(), func(t *testing.T) {
			a, err := Run(testCfg(mode), testScript())
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(testCfg(mode), testScript())
			if err != nil {
				t.Fatal(err)
			}
			stripDriver(a)
			stripDriver(b)
			if !reflect.DeepEqual(a.Result, b.Result) {
				t.Fatalf("scenario Results differ across identical scripted runs\na: %+v\nb: %+v",
					a.Summary, b.Summary)
			}
			if !reflect.DeepEqual(a.Report, b.Report) {
				t.Fatalf("script Reports differ across identical scripted runs\na: %+v\nb: %+v",
					a.Report, b.Report)
			}
			// The wire form must be deterministic too (CI diffs two runs).
			ja, _ := json.Marshal(a)
			jb, _ := json.Marshal(b)
			if string(ja) != string(jb) {
				t.Fatal("JSON encodings differ across identical scripted runs")
			}
		})
	}
}

// TestRunVsManualDrive checks that the packaged Run and an explicitly
// driven Build/Start/Drive/Snapshot sequence produce identical results —
// the scripted analogue of scenario's Run/Step equivalence.
func TestRunVsManualDrive(t *testing.T) {
	for _, mode := range []scenario.ThresholdMode{scenario.FixedDelta, scenario.ATC} {
		t.Run(mode.String(), func(t *testing.T) {
			packaged, err := Run(testCfg(mode), testScript())
			if err != nil {
				t.Fatal(err)
			}

			p, err := NewPlayer(testScript())
			if err != nil {
				t.Fatal(err)
			}
			cfg := testCfg(mode)
			cfg.DisableWorkload = true
			cfg.Script = p
			r, err := scenario.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r.Start()
			p.Drive(r)
			manual := &Result{Result: r.Snapshot(), Report: p.Report()}

			stripDriver(packaged)
			stripDriver(manual)
			if !reflect.DeepEqual(packaged.Result, manual.Result) {
				t.Fatal("manual drive diverged from script.Run")
			}
			if !reflect.DeepEqual(packaged.Report, manual.Report) {
				t.Fatal("manual drive Report diverged from script.Run")
			}
		})
	}
}

// TestKillRepair checks that scripted kills are absorbed: faults get
// resolved victims and finite repair latencies, and the tree invariants
// hold afterwards.
func TestKillRepair(t *testing.T) {
	cfg := testCfg(scenario.FixedDelta)
	// Paper-scale density: sparse draws can legitimately strand orphans
	// after repeated hub kills (the churn experiment measures exactly
	// that); here every kill should be absorbable.
	cfg.NumNodes = 50
	s := &Script{Events: []Event{
		{At: 300, Op: OpKill},
		{At: 700, Op: OpCascade, Count: 2, Spacing: 50},
	}}
	p, err := NewPlayer(s)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableWorkload = true
	cfg.Script = p
	r, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	rep := p.Report()

	if len(rep.Faults) != 3 {
		t.Fatalf("got %d faults, want 3: %+v", len(rep.Faults), rep.Faults)
	}
	for i, f := range rep.Faults {
		if f.Node <= 0 {
			t.Fatalf("fault %d: unresolved victim: %+v", i, f)
		}
		if f.RepairedAt < 0 || f.RepairEpochs <= 0 {
			t.Fatalf("fault %d not repaired: %+v", i, f)
		}
		if f.Detached < 1 {
			t.Fatalf("fault %d: empty subtree: %+v", i, f)
		}
		if r.Tree.Contains(topology.NodeID(f.Node)) {
			t.Fatalf("fault %d: victim %d still in tree", i, f.Node)
		}
	}
	if err := r.Tree.Validate(); err != nil {
		t.Fatalf("tree invariants violated after scripted churn: %v", err)
	}
	if res.QueriesInjected == 0 {
		t.Fatal("no queries injected by the script workload")
	}
}

// TestBurstAndCoverage checks the workload ops through the window report:
// a 4x injection-rate burst multiplies the per-window query count, and a
// coverage drop shrinks the involved-node fraction.
func TestBurstAndCoverage(t *testing.T) {
	res, err := Run(testCfg(scenario.FixedDelta), testScript())
	if err != nil {
		t.Fatal(err)
	}
	byFrom := map[int64]Window{}
	for _, w := range res.Report.Windows {
		byFrom[w.From] = w
	}
	before, burst := byFrom[700], byFrom[900]
	if before.To != 900 || burst.To != 1100 {
		t.Fatalf("unexpected window boundaries: %+v", res.Report.Windows)
	}
	// Interval 20 -> 5 over an equal 200-epoch span: ~4x the queries.
	if burst.Queries < 3*before.Queries {
		t.Fatalf("burst window has %d queries vs %d before; want ~4x", burst.Queries, before.Queries)
	}
	cov := byFrom[1200]
	if cov.Queries == 0 || before.Queries == 0 {
		t.Fatalf("empty comparison windows: %+v", res.Report.Windows)
	}
	if cov.PctShould >= before.PctShould {
		t.Fatalf("coverage 0.2 window involvement %.1f%% not below coverage 0.4 window %.1f%%",
			cov.PctShould, before.PctShould)
	}
}

// TestShiftMovesField checks the regime-shift hook end to end: applying
// OpShift moves the network-mean reading by about the delta.
func TestShiftMovesField(t *testing.T) {
	cfg := testCfg(scenario.FixedDelta)
	r, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func() float64 {
		sum := 0.0
		n := 0
		for id := 0; id < r.Graph.Len(); id++ {
			sum += r.Gen.Value(topology.NodeID(id), sensordata.Temperature)
			n++
		}
		return sum / float64(n)
	}
	before := mean()
	if _, ok, note := Apply(r, Event{Op: OpShift, Type: "temperature", Delta: 5}); !ok {
		t.Fatalf("shift not applied: %s", note)
	}
	if got := mean() - before; got < 3 || got > 7 {
		// Clamping at span edges keeps the realized shift near, not at, 5.
		t.Fatalf("mean moved by %.2f, want ~5", got)
	}
}

// TestExpandCascade checks cascade flattening and ordering.
func TestExpandCascade(t *testing.T) {
	s := &Script{Events: []Event{
		{At: 100, Op: OpCascade, Count: 3, Spacing: 50, Node: 4},
		{At: 120, Op: OpShift, Type: "light", Delta: -10},
	}}
	events, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 100, Op: OpKill, Node: 4},
		{At: 120, Op: OpShift, Type: "light", Delta: -10},
		{At: 150, Op: OpKill},
		{At: 200, Op: OpKill},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("expanded timeline\ngot:  %+v\nwant: %+v", events, want)
	}
}

// TestParseRejects exercises the JSON validation surface.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unknown op", `{"events":[{"at":10,"op":"explode"}]}`},
		{"unknown field", `{"events":[{"at":10,"op":"kill","frobnicate":1}]}`},
		{"unordered", `{"events":[{"at":20,"op":"kill"},{"at":10,"op":"kill"}]}`},
		{"negative epoch", `{"events":[{"at":-1,"op":"kill"}]}`},
		{"bad type", `{"events":[{"at":5,"op":"shift","type":"pressure","delta":1}]}`},
		{"zero shift", `{"events":[{"at":5,"op":"shift","type":"light"}]}`},
		{"bad scale", `{"events":[{"at":5,"op":"drift","scale":0}]}`},
		{"bad interval", `{"events":[{"at":5,"op":"burst"}]}`},
		{"bad coverage", `{"events":[{"at":5,"op":"coverage","coverage":1.5}]}`},
		{"bad retune", `{"events":[{"at":5,"op":"retune"}]}`},
		{"bad cascade", `{"events":[{"at":5,"op":"cascade"}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.doc)); err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
		})
	}
}

// TestCommittedExampleScript keeps the repo's example scenario file (used
// by the CI determinism smoke job and the README) parseable and valid.
func TestCommittedExampleScript(t *testing.T) {
	s, err := Load("../../scripts/churn.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) == 0 {
		t.Fatal("example script has no events")
	}
	ops := map[Op]bool{}
	for _, e := range s.Events {
		ops[e.Op] = true
	}
	for _, want := range []Op{OpKill, OpDrift, OpBurst} {
		if !ops[want] && !(want == OpKill && ops[OpCascade]) {
			t.Fatalf("example script misses op %q (has %v)", want, ops)
		}
	}

	// The serving-chaos example must parse too, and must stay runner-ops
	// only (dirqd -chaos rejects workload ops).
	chaos, err := Load("../../scripts/chaos.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range chaos.Events {
		if !e.RunnerOp() {
			t.Fatalf("chaos example contains workload op %q", e.Op)
		}
	}
}

// TestScriptRequiresDisabledWorkload guards against double workloads.
func TestScriptRequiresDisabledWorkload(t *testing.T) {
	p, err := NewPlayer(&Script{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(scenario.FixedDelta)
	cfg.Script = p
	if _, err := scenario.Build(cfg); err == nil {
		t.Fatal("Build accepted a Script without DisableWorkload")
	}
}

// TestHorizonEventSkipped checks the timeline bound: an event at or past
// the horizon never fires (no phantom fault), and is recorded as skipped.
func TestHorizonEventSkipped(t *testing.T) {
	cfg := testCfg(scenario.FixedDelta)
	s := &Script{Events: []Event{
		{At: cfg.Epochs, Op: OpKill},
		{At: cfg.Epochs + 100, Op: OpKill},
	}}
	p, err := NewPlayer(s)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableWorkload = true
	cfg.Script = p
	r, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	rep := p.Report()
	if len(rep.Faults) != 0 {
		t.Fatalf("horizon event produced faults: %+v", rep.Faults)
	}
	if len(rep.Events) != 2 {
		t.Fatalf("%d events recorded, want 2", len(rep.Events))
	}
	for _, e := range rep.Events {
		if e.Applied || e.Note != "at or past the horizon" {
			t.Fatalf("horizon event not skipped: %+v", e)
		}
	}
}
