// Package script is the declarative scenario-dynamics engine: a Script is
// a timeline of scheduled events — node kills and cascading failures
// (§4.2's topology changes), sensor-value regime shifts and drift (the
// "rate of variation" §6's ATC adapts to), query-workload bursts and
// selectivity changes (§1's extrinsic dynamism), and threshold retuning —
// that a Player drives deterministically through scenario's steppable
// runner. Between events the Player captures per-window metrics
// (accuracy, cost vs flooding) and after every fault it measures the
// tree-repair latency, so one scripted run answers "how does DirQ behave
// while the network changes underneath it" — the paper's central claim —
// without hand-written driver code.
//
// In the repo's layer map this is assembly, one level above scenario:
// scripts are plain Go values or JSON documents (Parse/Load), and the
// same script with the same seed reproduces byte-identical results
// however the run is driven. The serve layer reuses the event vocabulary
// for chaos-mode shards (ShardConfig.Chaos), where events apply while
// live client queries are being served and are recorded in the admission
// log so Shard.Replay stays exact; the experiments layer sweeps scripted
// failure rates in the "churn" experiment; cmd/dirqsim runs a script from
// -script file.json.
package script
