package script

import (
	"repro/internal/scenario"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

// Apply executes one runner-op event against a live simulation at the
// current epoch. It returns the event with auto-picked parameters resolved
// (a kill's concrete victim), whether it applied, and a human-readable
// note when it did not. Workload ops (burst, coverage) are the Player's
// business and report "workload op" unapplied.
//
// Apply is what both drivers share: the Player's timeline and the serve
// layer's chaos mode (live application and log replay) funnel through it,
// so an event means exactly the same thing everywhere.
func Apply(r *scenario.Runner, e Event) (Event, bool, string) {
	switch e.Op {
	case OpKill:
		victim := topology.NodeID(e.Node)
		if e.Node <= 0 {
			victim = pickVictim(r)
			if victim < 0 {
				return e, false, "no live internal node to kill"
			}
		} else if !killable(r, victim) {
			return e, false, "target not a live non-root tree node"
		}
		e.Node = int(victim)
		r.Proto.KillNode(victim)
		return e, true, ""
	case OpShift:
		t, err := parseType(e.Type)
		if err != nil {
			return e, false, err.Error()
		}
		r.Gen.ShiftBase(t, e.Delta)
		return e, true, ""
	case OpDrift:
		if e.Type == "" {
			for _, t := range sensordata.AllTypes() {
				r.Gen.ScaleDynamics(t, e.Scale)
			}
			return e, true, ""
		}
		t, err := parseType(e.Type)
		if err != nil {
			return e, false, err.Error()
		}
		r.Gen.ScaleDynamics(t, e.Scale)
		return e, true, ""
	case OpRetune:
		if n := r.Proto.RetuneAll(e.Delta); n == 0 {
			return e, false, "no retunable controllers"
		}
		return e, true, ""
	case OpBurst, OpCoverage:
		return e, false, "workload op"
	default:
		return e, false, "unknown op"
	}
}

// killable reports whether id is a live, non-root member of the tree.
func killable(r *scenario.Runner, id topology.NodeID) bool {
	return id != topology.Root && int(id) < r.Graph.Len() &&
		r.Channel.Alive(id) && r.Tree.Contains(id)
}

// pickVictim deterministically selects the auto-kill target: the live
// non-root tree node with the most children (an internal node, so the
// death actually orphans a subtree), lowest ID on ties; a leaf if the tree
// has no internal node left; -1 if only the root survives.
func pickVictim(r *scenario.Runner) topology.NodeID {
	best := topology.NodeID(-1)
	bestKids := -1
	for _, id := range r.Tree.Nodes() {
		if id == topology.Root || !r.Channel.Alive(id) {
			continue
		}
		kids := len(r.Tree.Children(id))
		if kids > bestKids || (kids == bestKids && id < best) {
			best, bestKids = id, kids
		}
	}
	return best
}

// Subtree counts the nodes of the tree rooted at id (including id) — the
// blast radius of killing it.
func Subtree(r *scenario.Runner, id topology.NodeID) int {
	if !r.Tree.Contains(id) {
		return 0
	}
	n := 1
	for _, kid := range r.Tree.Children(id) {
		n += Subtree(r, kid)
	}
	return n
}
