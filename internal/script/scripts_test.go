package script

import (
	"path/filepath"
	"testing"
)

// TestAllCommittedScripts runs the full Load→Expand→NewPlayer pipeline
// over every scenario file committed under scripts/, so example scripts
// can never drift out of schema: adding a new file makes it validated
// with no test change.
func TestAllCommittedScripts(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scripts", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed scripts found under scripts/*.json")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if s.Name == "" {
				t.Error("committed script has no name")
			}
			expanded, err := s.Expand()
			if err != nil {
				t.Fatalf("expand: %v", err)
			}
			if len(expanded) < len(s.Events) {
				t.Errorf("expand shrank the timeline: %d -> %d", len(s.Events), len(expanded))
			}
			if _, err := NewPlayer(s); err != nil {
				t.Fatalf("player: %v", err)
			}
		})
	}
}
