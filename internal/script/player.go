package script

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
)

// AppliedEvent is one timeline entry as it actually played out: resolved
// parameters (a kill's concrete victim), whether it applied, and why not.
type AppliedEvent struct {
	Event
	Applied bool   `json:"applied"`
	Note    string `json:"note,omitempty"`
}

// Window is the metric capture between two timeline boundaries (event
// epochs, plus the run's start and horizon): the queries injected in
// [From, To) evaluated at To, and the message costs accrued over the
// window. Queries still in flight at To count what they have reached so
// far — windows are deterministic snapshots, not settled reports.
type Window struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Queries injected inside the window.
	Queries int `json:"queries"`
	// PctShould / PctReceived / MeanOvershootPct are the window's query
	// accuracy means (§7.1 quantities), zero when Queries is 0.
	PctShould        float64 `json:"pct_should"`
	PctReceived      float64 `json:"pct_received"`
	MeanOvershootPct float64 `json:"mean_overshoot_pct"`
	// QueryCost / UpdateCost / FloodCost are the window's cost deltas;
	// CostFraction is (QueryCost+UpdateCost)/FloodCost for the window.
	QueryCost    int64   `json:"query_cost"`
	UpdateCost   int64   `json:"update_cost"`
	FloodCost    int64   `json:"flood_cost"`
	CostFraction float64 `json:"cost_fraction"`
}

// Fault is the repair record of one applied kill: how big the detached
// subtree was and how long the cross-layer path took to absorb it (MAC
// death detection + re-attachment of every orphan).
type Fault struct {
	At   int64 `json:"at"`
	Node int   `json:"node"`
	// Detached is the subtree size rooted at the victim at kill time
	// (including the victim).
	Detached int `json:"detached"`
	// RepairedAt is the first epoch observed with the victim purged and no
	// orphans left (-1 if the horizon arrived first); RepairEpochs is the
	// latency. Repairs triggered by a scripted kill's own detection sweep
	// are observed within one epoch; a heal caused by a non-scripted death
	// (e.g. battery depletion under EnergyCapacity) is attributed to the
	// next step boundary after it.
	RepairedAt   int64 `json:"repaired_at"`
	RepairEpochs int64 `json:"repair_epochs"`
	// OrphansLeft is the network-wide count of nodes still detached when
	// measurement ended — faults unhealed at the same horizon report the
	// same number (orphans are not attributable to a single kill).
	OrphansLeft int `json:"orphans_left"`
}

// Report is everything the Player measured beyond the scenario's own
// Result: the resolved timeline, per-window metrics, and fault repairs.
type Report struct {
	Name    string         `json:"name,omitempty"`
	Events  []AppliedEvent `json:"events"`
	Windows []Window       `json:"windows"`
	Faults  []Fault        `json:"faults"`
}

// Result bundles the scenario Result with the script Report.
type Result struct {
	*scenario.Result
	Report *Report `json:"script"`
}

// Player drives one Script through one Runner. It implements
// scenario.Dynamics and is one-shot: build with NewPlayer, attach as
// Config.Script (plus DisableWorkload), run, then read Report.
type Player struct {
	script *Script
	events []Event // expanded timeline
	driven bool
	report Report
}

// NewPlayer compiles a script into a one-shot driver.
func NewPlayer(s *Script) (*Player, error) {
	events, err := s.Expand()
	if err != nil {
		return nil, err
	}
	return &Player{script: s, events: events, report: Report{Name: s.Name}}, nil
}

// Report returns what the Player measured. Valid after the run.
func (p *Player) Report() *Report { return &p.report }

// faultWatch tracks one applied kill until the tree heals. detected flips
// once the MAC has noticed the death (the victim left the tree); from
// then on the orphan set only changes at later death/join events, so the
// Player stops single-stepping for this watch.
type faultWatch struct {
	fault    Fault
	victim   topology.NodeID
	open     bool
	detected bool
}

// Drive implements scenario.Dynamics: it owns the workload injection and
// the stepping loop from Start to the horizon, fires timeline events at
// their exact epochs, closes a metric window at every event boundary, and
// single-steps through fault aftermaths to pin down repair latency.
func (p *Player) Drive(r *scenario.Runner) {
	if p.driven {
		panic("script: Player.Drive called twice (players are one-shot)")
	}
	p.driven = true
	if !r.Cfg.DisableWorkload {
		panic("script: scripted runs need Config.DisableWorkload (use script.Run)")
	}

	horizon := r.Cfg.Epochs
	interval := p.script.Workload.Interval
	if interval <= 0 {
		interval = r.Cfg.QueryInterval
	}
	if cov := p.script.Workload.Coverage; cov > 0 {
		if err := r.SetWorkloadCoverage(cov); err != nil {
			panic(fmt.Sprintf("script: workload coverage: %v", err)) // validated
		}
	}
	// First injection mirrors the built-in workload's warm-up behaviour;
	// later ones follow the (burst-adjustable) interval. Injections happen
	// at epoch boundaries between steps, like the live serving layer.
	nextInject := r.Cfg.WarmupEpochs
	if nextInject == 0 {
		nextInject = interval
	}

	win := windowTracker{}
	win.open(r, 0)
	var watches []*faultWatch
	ei := 0

	for {
		now := r.Epoch()
		if r.Done() {
			// Events scheduled at or past the horizon never fire — the
			// timeline bound is [0, horizon).
			break
		}

		// Timeline events due at this epoch, in order. Every distinct
		// event epoch closes the current metric window.
		if ei < len(p.events) && p.events[ei].At == now {
			if now > win.from {
				p.report.Windows = append(p.report.Windows, win.close(r, now))
				win.open(r, now)
			}
			for ei < len(p.events) && p.events[ei].At == now {
				ev := p.events[ei]
				ei++
				switch ev.Op {
				case OpBurst:
					interval = ev.Interval
					p.record(ev, true, "")
				case OpCoverage:
					if err := r.SetWorkloadCoverage(ev.Coverage); err != nil {
						p.record(ev, false, err.Error())
						continue
					}
					p.record(ev, true, "")
				default:
					applied, ok, note := Apply(r, ev)
					p.record(applied, ok, note)
					if ok && applied.Op == OpKill {
						victim := topology.NodeID(applied.Node)
						watches = append(watches, &faultWatch{
							fault: Fault{
								At:       now,
								Node:     applied.Node,
								Detached: Subtree(r, victim),
							},
							victim: victim,
							open:   true,
						})
					}
				}
			}
		}

		// Workload injection at the epoch boundary.
		for nextInject == now {
			q, truth := r.NextWorkloadQuery()
			rec, _ := r.Inject(q, truth)
			win.records = append(win.records, rec)
			nextInject = now + interval
		}

		// Advance to the next boundary: injection, event, or horizon —
		// one epoch at a time while a fault's death detection is still
		// pending, so the repair epoch is pinned exactly.
		target := horizon
		if nextInject > now && nextInject < target {
			target = nextInject
		}
		if ei < len(p.events) && p.events[ei].At < target {
			target = p.events[ei].At
		}
		if target <= now {
			// A stale boundary (e.g. an event scheduled at or before the
			// current epoch); fall through one epoch so the loop always
			// progresses.
			target = now + 1
		}
		if detectionPending(watches) && target > now+1 {
			target = now + 1
		}
		r.Step(target - now)

		// Repair detection: the victim purged from the tree and no
		// orphans outstanding.
		if len(watches) > 0 {
			p.observeRepairs(r, watches)
		}
	}

	// Horizon: close the final window and any unhealed faults.
	if end := r.Epoch(); end > win.from {
		p.report.Windows = append(p.report.Windows, win.close(r, end))
	}
	for _, w := range watches {
		if w.open {
			w.fault.RepairedAt = -1
			w.fault.RepairEpochs = -1
			w.fault.OrphansLeft = r.Proto.OrphanCount()
			w.open = false
		}
		p.report.Faults = append(p.report.Faults, w.fault)
	}
	// Skip timeline entries scheduled at or past the horizon.
	for ; ei < len(p.events); ei++ {
		p.record(p.events[ei], false, "at or past the horizon")
	}
}

// observeRepairs closes fault watches once the tree has healed: death
// detected (victim purged) and no orphans outstanding. A watch whose
// subtree stays stranded remains open — a later kill's repair sweep can
// still re-attach it. In Player-driven runs re-attachment happens only
// inside a death-detection sweep, and every scripted kill single-steps
// through its own detection window, so kill-driven heals are observed
// within one epoch of happening; only heals triggered by non-scripted
// deaths (battery depletion) land at the next step boundary instead.
func (p *Player) observeRepairs(r *scenario.Runner, watches []*faultWatch) {
	healedNet := r.Proto.OrphanCount() == 0
	for _, w := range watches {
		if !w.open {
			continue
		}
		if !w.detected && !r.Tree.Contains(w.victim) {
			w.detected = true
		}
		if w.detected && healedNet {
			w.fault.RepairedAt = r.Epoch()
			w.fault.RepairEpochs = w.fault.RepairedAt - w.fault.At
			w.open = false
		}
	}
}

// detectionPending reports whether any open watch is still waiting for
// the MAC to notice its death — the only phase that needs single-epoch
// stepping (a few epochs per kill, bounded by the MAC's dead threshold).
func detectionPending(watches []*faultWatch) bool {
	for _, w := range watches {
		if w.open && !w.detected {
			return true
		}
	}
	return false
}

// record appends one resolved timeline entry to the report.
func (p *Player) record(e Event, applied bool, note string) {
	p.report.Events = append(p.report.Events, AppliedEvent{Event: e, Applied: applied, Note: note})
}

// windowTracker accumulates one metric window.
type windowTracker struct {
	from    int64
	records []*core.QueryRecord
	query   int64
	update  int64
	flood   int64
}

// open snapshots the cost counters at the window start.
func (w *windowTracker) open(r *scenario.Runner, at int64) {
	w.from = at
	w.records = w.records[:0]
	w.query = queryCost(r)
	w.update = r.Meter.ByClass(radio.ClassUpdate).Total()
	w.flood = r.FloodBaseline()
}

// close evaluates the window's queries and cost deltas at epoch to.
func (w *windowTracker) close(r *scenario.Runner, to int64) Window {
	out := Window{
		From:       w.from,
		To:         to,
		Queries:    len(w.records),
		QueryCost:  queryCost(r) - w.query,
		UpdateCost: r.Meter.ByClass(radio.ClassUpdate).Total() - w.update,
		FloodCost:  r.FloodBaseline() - w.flood,
	}
	n := r.Graph.Len()
	for _, rec := range w.records {
		a := metrics.Eval(rec, n)
		out.PctShould += metrics.Pct(a.NumShould, n)
		out.PctReceived += metrics.Pct(a.NumReceived, n)
		out.MeanOvershootPct += a.OvershootPct
	}
	if out.Queries > 0 {
		out.PctShould /= float64(out.Queries)
		out.PctReceived /= float64(out.Queries)
		out.MeanOvershootPct /= float64(out.Queries)
	}
	if out.FloodCost > 0 {
		out.CostFraction = float64(out.QueryCost+out.UpdateCost) / float64(out.FloodCost)
	}
	return out
}

// queryCost reads the dissemination cost under the mode's meter class.
func queryCost(r *scenario.Runner) int64 {
	if r.Cfg.DisseminateByFlooding {
		return r.Meter.ByClass(radio.ClassFlood).Total()
	}
	return r.Meter.ByClass(radio.ClassQuery).Total()
}

// Run builds and executes a scripted scenario: the script owns the query
// workload (cfg.DisableWorkload is set for you) and drives cfg.Epochs of
// simulation, firing the timeline on the way. Same cfg + same script ⇒
// byte-identical Result, whichever way the run is driven.
func Run(cfg scenario.Config, s *Script) (*Result, error) {
	return RunWithEngine(cfg, s, nil)
}

// RunWithEngine is Run on a recycled event engine (nil = fresh), for
// pooled sweeps like the churn experiment.
func RunWithEngine(cfg scenario.Config, s *Script, engine *sim.Engine) (*Result, error) {
	p, err := NewPlayer(s)
	if err != nil {
		return nil, err
	}
	cfg.DisableWorkload = true
	cfg.Script = p
	r, err := scenario.BuildWithEngine(cfg, engine)
	if err != nil {
		return nil, err
	}
	res := r.Run()
	return &Result{Result: res, Report: p.Report()}, nil
}
