package script

import (
	"encoding/json"
	"testing"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// TestTelemetryInertUnderScript extends the zero-drift proof to scripted
// dynamics: node kills, regime shifts, drift, workload bursts and retunes
// must all land identically whether or not a telemetry registry is
// attached. Chaos paths touch the RNG streams and the event queue — the
// two things instrumentation must never perturb.
func TestTelemetryInertUnderScript(t *testing.T) {
	for _, mode := range []scenario.ThresholdMode{scenario.FixedDelta, scenario.ATC} {
		t.Run(mode.String(), func(t *testing.T) {
			off, err := Run(testCfg(mode), testScript())
			if err != nil {
				t.Fatal(err)
			}
			onCfg := testCfg(mode)
			reg := telemetry.NewRegistry()
			onCfg.Telemetry = reg
			on, err := Run(onCfg, testScript())
			if err != nil {
				t.Fatal(err)
			}
			stripDriver(off)
			stripDriver(on)
			offJSON, _ := json.Marshal(off)
			onJSON, _ := json.Marshal(on)
			if string(offJSON) != string(onJSON) {
				t.Fatal("scripted results differ with telemetry attached")
			}
			// The instrumented run must also have recorded the chaos the
			// script inflicted: kills force tree repairs, and the retune op
			// lands in the retune counter.
			var retunes, epochs float64
			for _, s := range reg.Snapshot() {
				switch s.Name {
				case "dirq_core_retunes_total":
					retunes = s.Value
				case "dirq_epochs_total":
					epochs = s.Value
				}
			}
			if retunes <= 0 {
				t.Errorf("dirq_core_retunes_total = %v after an OpRetune script, want > 0", retunes)
			}
			if epochs <= 0 {
				t.Errorf("dirq_epochs_total = %v, want > 0", epochs)
			}
		})
	}
}
