package script

import "testing"

// TestParseErrorMessages pins the exact error text of every Parse
// rejection path. Hand-written scenario files get these strings verbatim;
// changing one is an interface change and should fail a test, not slip
// through.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"unknown top-level field",
			`{"nope":1}`,
			`script: bad JSON: json: unknown field "nope"`,
		},
		{
			"unknown event field",
			`{"events":[{"at":10,"op":"kill","frobnicate":1}]}`,
			`script: bad JSON: json: unknown field "frobnicate"`,
		},
		{
			"unknown op",
			`{"events":[{"at":10,"op":"explode"}]}`,
			`script: unknown op "explode" at epoch 10`,
		},
		{
			"negative epoch",
			`{"events":[{"at":-3,"op":"kill"}]}`,
			`script: event "kill" at negative epoch -3`,
		},
		{
			"events out of order",
			`{"events":[{"at":20,"op":"kill"},{"at":10,"op":"kill"}]}`,
			`script: events not ordered by epoch at index 1 (10 after 20)`,
		},
		{
			"cascade without count",
			`{"events":[{"at":5,"op":"cascade"}]}`,
			`script: cascade at 5: count 0 < 1`,
		},
		{
			"cascade negative spacing",
			`{"events":[{"at":5,"op":"cascade","count":2,"spacing":-1}]}`,
			`script: cascade at 5: negative spacing -1`,
		},
		{
			"shift with empty target set",
			`{"events":[{"at":5,"op":"shift","delta":2}]}`,
			`script: shift at 5: unknown sensor type ""`,
		},
		{
			"shift unknown sensor type",
			`{"events":[{"at":5,"op":"shift","type":"pressure","delta":2}]}`,
			`script: shift at 5: unknown sensor type "pressure"`,
		},
		{
			"shift zero delta",
			`{"events":[{"at":5,"op":"shift","type":"light"}]}`,
			`script: shift at 5: zero delta`,
		},
		{
			"drift unknown sensor type",
			`{"events":[{"at":5,"op":"drift","type":"wind","scale":2}]}`,
			`script: drift at 5: unknown sensor type "wind"`,
		},
		{
			"drift non-positive scale",
			`{"events":[{"at":5,"op":"drift","scale":0}]}`,
			`script: drift at 5: scale 0 <= 0`,
		},
		{
			"burst without interval",
			`{"events":[{"at":5,"op":"burst"}]}`,
			`script: burst at 5: interval 0 < 1`,
		},
		{
			"coverage out of range",
			`{"events":[{"at":5,"op":"coverage","coverage":1.5}]}`,
			`script: coverage at 5: target 1.5 outside (0,1]`,
		},
		{
			"retune non-positive delta",
			`{"events":[{"at":5,"op":"retune"}]}`,
			`script: retune at 5: delta 0 <= 0`,
		},
		{
			"negative workload interval",
			`{"workload":{"interval":-4}}`,
			`script: negative workload interval -4`,
		},
		{
			"workload coverage out of range",
			`{"workload":{"coverage":1.5}}`,
			`script: workload coverage 1.5 outside [0,1]`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.doc)
			}
			if err.Error() != tc.want {
				t.Fatalf("error message drifted:\n got %q\nwant %q", err, tc.want)
			}
		})
	}
}

// TestDuplicateEpochEventsLegal: several events at one epoch are valid
// (ties keep document order through Validate and the stable Expand sort),
// so chaos scripts can stack a kill and a burst on the same epoch.
func TestDuplicateEpochEventsLegal(t *testing.T) {
	s, err := Parse([]byte(`{"events":[
		{"at":10,"op":"kill"},
		{"at":10,"op":"burst","interval":5},
		{"at":10,"op":"retune","delta":2}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []Op{OpKill, OpBurst, OpRetune}
	if len(expanded) != len(wantOps) {
		t.Fatalf("expanded %d events, want %d", len(expanded), len(wantOps))
	}
	for i, e := range expanded {
		if e.At != 10 || e.Op != wantOps[i] {
			t.Fatalf("tie order not preserved at %d: got %q@%d want %q@10", i, e.Op, e.At, wantOps[i])
		}
	}
}
