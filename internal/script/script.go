package script

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/sensordata"
)

// Op names one kind of scheduled event.
type Op string

// The event vocabulary.
const (
	// OpKill powers one node off (Node, or an auto-picked internal node
	// when Node <= 0). The MAC detects the death and DirQ repairs the tree.
	OpKill Op = "kill"
	// OpCascade is Count kills spaced Spacing epochs apart, each target
	// auto-picked (or starting from Node when it is > 0) — a cascading or
	// batch failure. It expands to OpKill events at compile time.
	OpCascade Op = "cascade"
	// OpShift adds Delta (physical units) to the resting level of sensor
	// Type — a regime shift in the measured field.
	OpShift Op = "shift"
	// OpDrift multiplies the temporal volatility (plume drift, AR(1)
	// noise) of sensor Type by Scale; Type "" scales every type.
	OpDrift Op = "drift"
	// OpBurst sets the script workload's query injection interval to
	// Interval epochs — a load burst (or, with a larger interval, a lull).
	OpBurst Op = "burst"
	// OpCoverage retargets the workload's involved-node fraction to
	// Coverage — a selectivity/range change in what clients ask.
	OpCoverage Op = "coverage"
	// OpRetune retargets every live node's threshold controller to Delta
	// percent: fixed-δ controllers take it verbatim, the ATC re-caps its
	// control band.
	OpRetune Op = "retune"
)

// Event is one scheduled timeline entry. Exactly the fields its Op reads
// are meaningful; the rest stay zero (and are omitted from JSON).
type Event struct {
	// At is the epoch the event fires, in [0, horizon).
	At int64 `json:"at"`
	Op Op    `json:"op"`

	// Node targets a specific node for OpKill/OpCascade (<= 0 = auto-pick
	// the live internal node with the most children; the root never dies).
	Node int `json:"node,omitempty"`
	// Count and Spacing shape an OpCascade.
	Count   int   `json:"count,omitempty"`
	Spacing int64 `json:"spacing,omitempty"`
	// Type is the sensor type name for OpShift/OpDrift.
	Type string `json:"type,omitempty"`
	// Delta is the OpShift offset (physical units) or the OpRetune δ (%).
	Delta float64 `json:"delta,omitempty"`
	// Scale is the OpDrift volatility multiplier.
	Scale float64 `json:"scale,omitempty"`
	// Interval is the OpBurst injection interval (epochs).
	Interval int64 `json:"interval,omitempty"`
	// Coverage is the OpCoverage involvement target in (0, 1].
	Coverage float64 `json:"coverage,omitempty"`
}

// Validate rejects a malformed event (unknown op, missing or out-of-range
// parameters). The horizon is not known here: events scheduled at or past
// it are skipped by the driver and recorded as such, not rejected.
func (e Event) Validate() error {
	if e.At < 0 {
		return fmt.Errorf("script: event %q at negative epoch %d", e.Op, e.At)
	}
	switch e.Op {
	case OpKill:
		// Node <= 0 means auto-pick; nothing else to check.
	case OpCascade:
		if e.Count < 1 {
			return fmt.Errorf("script: cascade at %d: count %d < 1", e.At, e.Count)
		}
		if e.Spacing < 0 {
			return fmt.Errorf("script: cascade at %d: negative spacing %d", e.At, e.Spacing)
		}
	case OpShift:
		if _, err := parseType(e.Type); err != nil {
			return fmt.Errorf("script: shift at %d: %w", e.At, err)
		}
		if e.Delta == 0 {
			return fmt.Errorf("script: shift at %d: zero delta", e.At)
		}
	case OpDrift:
		if e.Type != "" {
			if _, err := parseType(e.Type); err != nil {
				return fmt.Errorf("script: drift at %d: %w", e.At, err)
			}
		}
		if e.Scale <= 0 {
			return fmt.Errorf("script: drift at %d: scale %v <= 0", e.At, e.Scale)
		}
	case OpBurst:
		if e.Interval < 1 {
			return fmt.Errorf("script: burst at %d: interval %d < 1", e.At, e.Interval)
		}
	case OpCoverage:
		if e.Coverage <= 0 || e.Coverage > 1 {
			return fmt.Errorf("script: coverage at %d: target %v outside (0,1]", e.At, e.Coverage)
		}
	case OpRetune:
		if e.Delta <= 0 {
			return fmt.Errorf("script: retune at %d: delta %v <= 0", e.At, e.Delta)
		}
	default:
		return fmt.Errorf("script: unknown op %q at epoch %d", e.Op, e.At)
	}
	return nil
}

// RunnerOp reports whether the op applies to the simulation itself (kills,
// field changes, retuning) as opposed to the script's own workload
// (bursts, coverage). Only runner ops are allowed in serve chaos mode,
// where clients are the workload.
func (e Event) RunnerOp() bool {
	switch e.Op {
	case OpBurst, OpCoverage:
		return false
	default:
		return true
	}
}

// String renders the event compactly for logs and reports.
func (e Event) String() string {
	switch e.Op {
	case OpKill:
		if e.Node > 0 {
			return fmt.Sprintf("@%d kill node %d", e.At, e.Node)
		}
		return fmt.Sprintf("@%d kill (auto)", e.At)
	case OpCascade:
		return fmt.Sprintf("@%d cascade %d kills every %d epochs", e.At, e.Count, e.Spacing)
	case OpShift:
		return fmt.Sprintf("@%d shift %s by %+g", e.At, e.Type, e.Delta)
	case OpDrift:
		t := e.Type
		if t == "" {
			t = "all types"
		}
		return fmt.Sprintf("@%d drift %s x%g", e.At, t, e.Scale)
	case OpBurst:
		return fmt.Sprintf("@%d burst: query every %d epochs", e.At, e.Interval)
	case OpCoverage:
		return fmt.Sprintf("@%d coverage -> %.0f%%", e.At, e.Coverage*100)
	case OpRetune:
		return fmt.Sprintf("@%d retune delta -> %g%%", e.At, e.Delta)
	default:
		return fmt.Sprintf("@%d %s", e.At, e.Op)
	}
}

// Workload sets the script-owned query workload. Zero fields inherit the
// scenario's QueryInterval and Coverage.
type Workload struct {
	// Interval is the epochs between query injections (OpBurst changes it
	// mid-run).
	Interval int64 `json:"interval,omitempty"`
	// Coverage is the target involved-node fraction (OpCoverage changes
	// it mid-run).
	Coverage float64 `json:"coverage,omitempty"`
}

// Script is one declarative scenario-dynamics timeline.
type Script struct {
	// Name labels reports and artifacts.
	Name string `json:"name,omitempty"`
	// Workload configures the script-owned query workload.
	Workload Workload `json:"workload,omitzero"`
	// Events is the timeline, ordered by At (ties fire in slice order).
	Events []Event `json:"events"`
}

// Validate checks every event and the timeline ordering.
func (s *Script) Validate() error {
	if s.Workload.Interval < 0 {
		return fmt.Errorf("script: negative workload interval %d", s.Workload.Interval)
	}
	if s.Workload.Coverage < 0 || s.Workload.Coverage > 1 {
		return fmt.Errorf("script: workload coverage %v outside [0,1]", s.Workload.Coverage)
	}
	prev := int64(0)
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return err
		}
		if e.At < prev {
			return fmt.Errorf("script: events not ordered by epoch at index %d (%d after %d)", i, e.At, prev)
		}
		prev = e.At
	}
	return nil
}

// Expand validates the script and returns the flattened timeline:
// cascades become individual kills, and the result is stably re-sorted by
// epoch (so a cascade interleaves deterministically with later events).
func (s *Script) Expand() ([]Event, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]Event, 0, len(s.Events))
	for _, e := range s.Events {
		if e.Op != OpCascade {
			out = append(out, e)
			continue
		}
		for k := 0; k < e.Count; k++ {
			kill := Event{At: e.At + int64(k)*e.Spacing, Op: OpKill}
			if k == 0 {
				kill.Node = e.Node // an explicit first victim, if any
			}
			out = append(out, kill)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// Parse decodes and validates a JSON script. Unknown fields are rejected
// so typos in hand-written scenario files fail loudly.
func Parse(data []byte) (*Script, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Script
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("script: bad JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a JSON script file.
func Load(path string) (*Script, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// parseType resolves a sensor-type name.
func parseType(name string) (sensordata.Type, error) {
	for _, t := range sensordata.AllTypes() {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown sensor type %q", name)
}
