package serve

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func startHTTP(t *testing.T, cfgs ...ShardConfig) (*Manager, *Client) {
	t.Helper()
	m := startManager(t, cfgs...)
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return m, NewClient(srv.URL, srv.Client())
}

// TestHTTPEndToEnd drives the full stack — Client -> handler -> manager
// -> shard -> simulation — including concurrent queries.
func TestHTTPEndToEnd(t *testing.T) {
	_, c := startHTTP(t, testShardConfig("s0", 1), testShardConfig("s1", 2))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	infos, err := c.Shards(ctx)
	if err != nil || len(infos) != 2 {
		t.Fatalf("shards: %v, %v", infos, err)
	}

	const n = 16
	var wg sync.WaitGroup
	resps := make([]*Response, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			typ, lo, hi := spread(i)
			resps[i], errs[i] = c.QueryRange(ctx, typ.String(), lo, hi)
		}(i)
	}
	wg.Wait()
	shardsSeen := map[string]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if resps[i].AnsweredEpoch <= 0 {
			t.Fatalf("query %d: answered at epoch %d", i, resps[i].AnsweredEpoch)
		}
		shardsSeen[resps[i].Shard] = true
	}
	if len(shardsSeen) != 2 {
		t.Fatalf("round-robin used shards %v, want both", shardsSeen)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, st := range stats.Shards {
		total += st.QueriesServed
	}
	if total != n {
		t.Fatalf("stats count %d queries served, want %d", total, n)
	}
}

// TestHTTPSpanDefaultsAndPinning checks omitted lo/hi default to the
// sensor span and that shard pinning works over the wire.
func TestHTTPSpanDefaultsAndPinning(t *testing.T) {
	_, c := startHTTP(t, testShardConfig("s0", 1), testShardConfig("s1", 2))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	r, err := c.Query(ctx, QueryRequestWire{Shard: "s1", Type: "humidity"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shard != "s1" {
		t.Fatalf("pinned to s1, served by %q", r.Shard)
	}
	if r.Lo != 0 || r.Hi != 100 {
		t.Fatalf("span defaults [%v, %v], want [0, 100]", r.Lo, r.Hi)
	}
}

// TestHTTPErrors checks the error statuses clients see.
func TestHTTPErrors(t *testing.T) {
	_, c := startHTTP(t, testShardConfig("s0", 1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.Query(ctx, QueryRequestWire{Type: "pressure"}); err == nil ||
		!strings.Contains(err.Error(), "unknown sensor type") {
		t.Fatalf("unknown type: %v", err)
	}
	lo, hi := 5.0, 1.0
	if _, err := c.Query(ctx, QueryRequestWire{Type: "temperature", Lo: &lo, Hi: &hi}); err == nil ||
		!strings.Contains(err.Error(), "empty range") {
		t.Fatalf("empty range: %v", err)
	}
	if _, err := c.Query(ctx, QueryRequestWire{Shard: "nope", Type: "temperature"}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown shard: %v", err)
	}
}
