package serve

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/script"
)

// chaosShardConfig schedules kills, a regime shift and drift early enough
// that a test run's queries straddle them.
func chaosShardConfig(id string, seed uint64) ShardConfig {
	cfg := testShardConfig(id, seed)
	cfg.Scenario.NumNodes = 50 // dense enough that the kills are absorbable
	cfg.Chaos = []script.Event{
		{At: 40, Op: script.OpKill},
		{At: 80, Op: script.OpCascade, Count: 2, Spacing: 30},
		{At: 150, Op: script.OpShift, Type: "temperature", Delta: 4},
		{At: 200, Op: script.OpDrift, Scale: 2},
	}
	return cfg
}

// TestChaosShardReplay is the chaos-mode acceptance test: a shard that
// runs a script while serving concurrent live queries still reproduces
// every response from its admission log — the log now interleaving
// queries with the applied (resolved) script events.
func TestChaosShardReplay(t *testing.T) {
	const clients = 24
	cfg := chaosShardConfig("chaos", 11)
	m := startManager(t, cfg)

	live := make([]*Response, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Spread admissions across epochs so queries land before,
			// between, and after the chaos events.
			time.Sleep(time.Duration(i) * 200 * time.Microsecond)
			typ, lo, hi := spread(i)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			live[i], errs[i] = m.Query(ctx, Request{Type: typ, Lo: lo, Hi: hi})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	sh, _ := m.Shard("chaos")
	// Let the timeline finish firing even if all queries resolved early.
	deadline := time.Now().Add(10 * time.Second)
	for sh.Stats().ChaosPending > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()

	st := sh.Stats()
	if st.ChaosPending != 0 {
		t.Fatalf("chaos timeline did not finish: %+v", st)
	}
	if st.ChaosApplied == 0 {
		t.Fatal("no chaos events applied")
	}

	log := sh.AdmittedLog()
	events, queries := 0, 0
	for _, e := range log {
		if e.Event != nil {
			events++
			if e.Event.Op == script.OpKill && e.Event.Node <= 0 {
				t.Fatalf("logged kill not resolved to a concrete victim: %+v", e.Event)
			}
		} else {
			queries++
		}
	}
	if events != st.ChaosApplied {
		t.Fatalf("%d event entries in log, stats say %d applied", events, st.ChaosApplied)
	}
	if queries != clients {
		t.Fatalf("%d query entries in log, want %d", queries, clients)
	}

	byID := map[int64]*Response{}
	for _, r := range live {
		byID[r.QueryID] = r
	}
	fresh, err := NewShard(chaosShardConfig("chaos", 11))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Replay(log)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(replayed) != queries {
		t.Fatalf("replay returned %d responses for %d query entries", len(replayed), queries)
	}
	for _, rr := range replayed {
		lr := byID[rr.QueryID]
		if lr == nil {
			t.Fatalf("replayed query %d has no live counterpart", rr.QueryID)
		}
		if !reflect.DeepEqual(lr, rr) {
			t.Fatalf("query %d diverged under chaos replay\nlive:   %+v\nreplay: %+v",
				rr.QueryID, lr, rr)
		}
	}
	// The fresh shard consumed the same timeline.
	if got := fresh.Stats().ChaosApplied; got != events {
		t.Fatalf("replay applied %d chaos events, live applied %d", got, events)
	}
}

// TestReplayRejectsPastHorizonEvent checks that a log entry beyond the
// shard's horizon errors instead of spinning (a query entry would hit
// ErrHorizonReached; an event entry needs its own guard).
func TestReplayRejectsPastHorizonEvent(t *testing.T) {
	cfg := testShardConfig("h", 5)
	cfg.Scenario.Epochs = 100
	sh, err := NewShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kill := script.Event{At: 200, Op: script.OpKill, Node: 3}
	if _, err := sh.Replay([]AdmittedQuery{{Epoch: 200, Event: &kill}}); err == nil {
		t.Fatal("Replay accepted an event entry past the horizon")
	}
}

// TestChaosRejectsWorkloadOps checks the config-time validation: burst
// and coverage ops make no sense when clients are the workload.
func TestChaosRejectsWorkloadOps(t *testing.T) {
	cfg := testShardConfig("bad", 1)
	cfg.Chaos = []script.Event{{At: 10, Op: script.OpBurst, Interval: 5}}
	if _, err := NewShard(cfg); err == nil {
		t.Fatal("NewShard accepted a workload op in Chaos")
	}
	cfg.Chaos = []script.Event{{At: 10, Op: script.OpCoverage, Coverage: 0.2}}
	if _, err := NewShard(cfg); err == nil {
		t.Fatal("NewShard accepted a coverage op in Chaos")
	}
}
