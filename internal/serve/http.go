package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"
)

// QueryRequestWire is the JSON body of POST /query. Lo/Hi default to the
// sensor type's physical span when omitted.
type QueryRequestWire struct {
	Shard string   `json:"shard,omitempty"`
	Type  string   `json:"type"`
	Lo    *float64 `json:"lo,omitempty"`
	Hi    *float64 `json:"hi,omitempty"`
	// TimeoutMs bounds the server-side wait for the answer (default
	// 30000).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// StatsReply is the JSON body of GET /stats.
type StatsReply struct {
	Server *ServerStats `json:"server,omitempty"`
	Shards []ShardStats `json:"shards"`
}

// ServerStats is the process-level section of GET /stats: build identity,
// uptime and Go runtime health.
type ServerStats struct {
	Version        string  `json:"version,omitempty"`
	GoVersion      string  `json:"go_version"`
	UptimeSeconds  float64 `json:"uptime_seconds,omitempty"`
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
}

// ServerInfo parameterizes the process-level parts of the handler: the
// ldflags-stamped build version and a wall clock for uptime (nil Now
// omits uptime — the serving layer itself never reads wall time).
type ServerInfo struct {
	Version string
	Now     func() time.Time
}

// serverStats builds the /stats server section.
func (info ServerInfo) serverStats(started time.Time) *ServerStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := &ServerStats{
		Version:        info.Version,
		GoVersion:      runtime.Version(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
	}
	if info.Now != nil {
		st.UptimeSeconds = info.Now().Sub(started).Seconds()
	}
	return st
}

// HealthReply is the JSON body of GET /healthz.
type HealthReply struct {
	Status string          `json:"status"` // "ok" or "degraded"
	Shards map[string]bool `json:"shards"` // shard ID -> loop running
}

// ShardInfo describes one hosted shard for GET /shards.
type ShardInfo struct {
	ID           string `json:"id"`
	Nodes        int    `json:"nodes"`
	Seed         uint64 `json:"seed"`
	Mode         string `json:"mode"`
	StepEpochs   int64  `json:"step_epochs"`
	SettleEpochs int64  `json:"settle_epochs"`
	Horizon      int64  `json:"horizon_epochs"`
	// ChaosEvents counts the scheduled chaos-mode script events, after
	// cascade expansion (the same unit Stats' chaos counters use).
	ChaosEvents int `json:"chaos_events,omitempty"`
}

// errorReply is the JSON body of every non-2xx response.
type errorReply struct {
	Error string `json:"error"`
}

const defaultQueryTimeout = 30 * time.Second

// overloadedRetryAfter is the Retry-After value (in seconds) sent with
// 429 replies. A settle window is typically well under a second, so one
// second is a conservative "the queue will have drained" hint.
const overloadedRetryAfter = "1"

// NewHandler exposes a Manager over HTTP:
//
//	POST /query         admit one range query, wait for its answer
//	GET  /stats         live per-shard counters plus server/runtime info
//	GET  /healthz       liveness of every shard loop
//	GET  /shards        static shard descriptions
//	GET  /metrics       telemetry registry, Prometheus text format
//	GET  /metrics.json  telemetry registry, JSON with p50/p90/p99
//
// The optional ServerInfo stamps /stats with a build version and uptime.
func NewHandler(m *Manager, info ...ServerInfo) http.Handler {
	var si ServerInfo
	haveInfo := len(info) > 0
	if haveInfo {
		si = info[0]
	}
	var started time.Time
	if si.Now != nil {
		started = si.Now()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		var wire QueryRequestWire
		if err := json.NewDecoder(r.Body).Decode(&wire); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
			return
		}
		req, timeout, err := wire.toRequest()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		resp, err := m.Query(ctx, req)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, resp)
		case errors.Is(err, ErrNoSuchShard):
			writeError(w, http.StatusNotFound, err)
		case errors.Is(err, ErrOverloaded):
			// Backpressure, not failure: the shard shed the query because
			// its admission queue is full. Retry-After carries the hint
			// serve.Client's bounded-backoff retry honors.
			w.Header().Set("Retry-After", overloadedRetryAfter)
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrHorizonReached):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		reply := StatsReply{Shards: m.Stats()}
		if haveInfo {
			// The server section appears only when the caller supplied
			// ServerInfo, keeping the pre-existing wire format intact for
			// embedders that did not.
			reply.Server = si.serverStats(started)
		}
		writeJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.Telemetry().WritePrometheus(w) //nolint:errcheck // client gone is not actionable
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m.Telemetry().WriteJSON(w) //nolint:errcheck // client gone is not actionable
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		rep := HealthReply{Status: "ok", Shards: map[string]bool{}}
		for _, sh := range m.Shards() {
			running := sh.Running()
			rep.Shards[sh.ID()] = running
			if !running {
				rep.Status = "degraded"
			}
		}
		code := http.StatusOK
		if rep.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, rep)
	})
	mux.HandleFunc("GET /shards", func(w http.ResponseWriter, r *http.Request) {
		var infos []ShardInfo
		for _, sh := range m.Shards() {
			cfg := sh.Config()
			infos = append(infos, ShardInfo{
				ID:           cfg.ID,
				Nodes:        cfg.Scenario.NumNodes,
				Seed:         cfg.Scenario.Seed,
				Mode:         cfg.Scenario.Mode.String(),
				StepEpochs:   cfg.StepEpochs,
				SettleEpochs: cfg.SettleEpochs,
				Horizon:      cfg.Scenario.Epochs,
				ChaosEvents:  sh.ChaosEvents(),
			})
		}
		writeJSON(w, http.StatusOK, infos)
	})
	return mux
}

// toRequest validates the wire form and fills span defaults.
func (wire QueryRequestWire) toRequest() (Request, time.Duration, error) {
	t, err := ParseSensorType(wire.Type)
	if err != nil {
		return Request{}, 0, err
	}
	lo, hi := t.Span()
	if wire.Lo != nil {
		lo = *wire.Lo
	}
	if wire.Hi != nil {
		hi = *wire.Hi
	}
	req := Request{Shard: wire.Shard, Type: t, Lo: lo, Hi: hi}
	if err := req.Validate(); err != nil {
		return Request{}, 0, err
	}
	timeout := defaultQueryTimeout
	if wire.TimeoutMs > 0 {
		timeout = time.Duration(wire.TimeoutMs) * time.Millisecond
	}
	return req, timeout, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is not actionable
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorReply{Error: err.Error()})
}
