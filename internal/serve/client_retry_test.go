package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// retryServer fails the first n POST /query calls with the given status
// (sending Retry-After when ra != "") and answers 200 afterwards.
func retryServer(t *testing.T, n int32, status int, ra string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	hits := &atomic.Int32{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= n {
			if ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":%q}`, ErrOverloaded.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"shard":"s0","query_id":7,"type":"temperature"}`)
	}))
	t.Cleanup(srv.Close)
	return srv, hits
}

// TestClientRetrySucceeds: two 429s then a 200 — a retrying client
// absorbs the sheds and returns the eventual answer, honoring the
// server's Retry-After hint over its own (smaller) backoff.
func TestClientRetrySucceeds(t *testing.T) {
	srv, hits := retryServer(t, 2, http.StatusTooManyRequests, "1")
	var sleeps []time.Duration
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseBackoff: time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	resp, err := c.QueryRange(context.Background(), "temperature", 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if resp.QueryID != 7 {
		t.Errorf("query_id = %d, want 7", resp.QueryID)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if len(sleeps) != 2 {
		t.Fatalf("client slept %d times, want 2", len(sleeps))
	}
	for i, d := range sleeps {
		// Retry-After: 1 dominates the 1ms base backoff exactly.
		if d != time.Second {
			t.Errorf("sleep %d = %v, want 1s from Retry-After", i, d)
		}
	}
}

// TestClientRetryExhaustion: a persistently overloaded server exhausts
// MaxAttempts and the last 429 surfaces as a *StatusError; the jittered
// exponential backoff stays inside its documented envelope.
func TestClientRetryExhaustion(t *testing.T) {
	srv, hits := retryServer(t, 1<<30, http.StatusTooManyRequests, "")
	var sleeps []time.Duration
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	})
	_, err := c.QueryRange(context.Background(), "temperature", 0, 50)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("error after exhaustion = %v, want *StatusError 429", err)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want MaxAttempts=3", got)
	}
	if len(sleeps) != 2 {
		t.Fatalf("client slept %d times, want 2", len(sleeps))
	}
	// Jitter spans [0.5, 1.5) of the doubling backoff: 10ms then 20ms.
	bounds := []struct{ lo, hi time.Duration }{
		{5 * time.Millisecond, 15 * time.Millisecond},
		{10 * time.Millisecond, 30 * time.Millisecond},
	}
	for i, d := range sleeps {
		if d < bounds[i].lo || d >= bounds[i].hi {
			t.Errorf("sleep %d = %v outside jitter envelope [%v, %v)", i, d, bounds[i].lo, bounds[i].hi)
		}
	}
}

// TestClientRetryOnlyTransient: non-transient statuses are not retried,
// and a zero-value policy means a single attempt even on 429.
func TestClientRetryOnlyTransient(t *testing.T) {
	srv, hits := retryServer(t, 1<<30, http.StatusNotFound, "")
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		Sleep:       func(time.Duration) { t.Error("slept on a non-retryable status") },
	})
	_, err := c.QueryRange(context.Background(), "temperature", 0, 50)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("error = %v, want *StatusError 404", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d attempts for a 404, want 1", got)
	}

	srv2, hits2 := retryServer(t, 1<<30, http.StatusTooManyRequests, "")
	if _, err := NewClient(srv2.URL, srv2.Client()).QueryRange(context.Background(), "temperature", 0, 50); err == nil {
		t.Fatal("zero-value policy returned success from a 429 server")
	}
	if got := hits2.Load(); got != 1 {
		t.Errorf("zero-value policy made %d attempts, want 1", got)
	}
}

// TestClientRetry503 covers the other transient status: 503 from a
// shutting-down daemon is retried the same way.
func TestClientRetry503(t *testing.T) {
	srv, hits := retryServer(t, 1, http.StatusServiceUnavailable, "")
	c := NewClient(srv.URL, srv.Client()).WithRetry(RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		Sleep:       func(time.Duration) {},
	})
	if _, err := c.QueryRange(context.Background(), "temperature", 0, 50); err != nil {
		t.Fatal(err)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d attempts, want 2", got)
	}
}

// TestClientJitterDeterministicRange: the splitmix-derived jitter stays
// in [0.5, 1.5) and varies draw to draw without ambient entropy.
func TestClientJitterDeterministicRange(t *testing.T) {
	c := NewClient("http://unused", nil)
	seen := map[float64]bool{}
	for i := 0; i < 1000; i++ {
		j := c.jitter()
		if j < 0.5 || j >= 1.5 {
			t.Fatalf("jitter draw %d = %v outside [0.5, 1.5)", i, j)
		}
		seen[j] = true
	}
	if len(seen) < 900 {
		t.Errorf("only %d distinct jitter values in 1000 draws", len(seen))
	}
}
