package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sensordata"
)

// TestSubmitShedsWhenQueueFull: a full admission queue sheds new
// submissions with ErrOverloaded immediately — without disturbing the
// queries already queued, which still answer normally and still replay
// byte-identically from the admission log.
func TestSubmitShedsWhenQueueFull(t *testing.T) {
	cfg := testShardConfig("bp", 7)
	cfg.QueueDepth = 2
	sh, err := NewShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		resp *Response
		err  error
	}
	out := make(chan result, 2)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		typ, lo, hi := spread(i)
		go func() {
			r, err := sh.Submit(ctx, Request{Type: typ, Lo: lo, Hi: hi})
			out <- result{r, err}
		}()
	}
	// The shard is not serving yet, so both submissions stay queued.
	deadline := time.Now().Add(5 * time.Second)
	for sh.Backlog() < 2 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if got := sh.Backlog(); got != 2 {
		t.Fatalf("backlog = %d, want 2", got)
	}

	typ, lo, hi := spread(2)
	if _, err := sh.Submit(ctx, Request{Type: typ, Lo: lo, Hi: hi}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit on a full queue = %v, want ErrOverloaded", err)
	}
	if got := sh.QueriesShed(); got != 1 {
		t.Errorf("QueriesShed = %d, want 1", got)
	}

	// Serving resolves the queued pair as if nothing was shed.
	sctx, cancel := context.WithCancel(context.Background())
	go sh.Serve(sctx) //nolint:errcheck // claim verified via responses
	live := make([]*Response, 0, 2)
	for i := 0; i < 2; i++ {
		r := <-out
		if r.err != nil {
			t.Fatalf("queued query failed: %v", r.err)
		}
		live = append(live, r.resp)
	}
	cancel()
	<-sh.done
	sort.Slice(live, func(i, j int) bool { return live[i].QueryID < live[j].QueryID })

	if st := sh.Stats(); st.QueriesServed != 2 || st.QueriesShed != 1 {
		t.Errorf("stats served=%d shed=%d, want 2 and 1", st.QueriesServed, st.QueriesShed)
	}

	// The shed query left no trace: the log replays to exactly the two
	// answered responses.
	fresh, err := NewShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Replay(sh.AdmittedLog())
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replay returned %d responses, want 2", len(replayed))
	}
	for i, rr := range replayed {
		if !reflect.DeepEqual(live[i], rr) {
			t.Errorf("query %d diverged between live run and replay", i)
		}
	}
}

// TestShedMidChaosReplay: with a depth-2 queue, a single-query drain cap
// and waves of concurrent clients racing a chaos timeline, some queries
// shed and some answer — and the answered ones still replay
// byte-identically, because shed queries never enter the admission log.
func TestShedMidChaosReplay(t *testing.T) {
	cfg := chaosShardConfig("bpchaos", 11)
	cfg.QueueDepth = 2
	cfg.MaxBatch = 1
	// Long step and settle windows make each scheduler pass tens of
	// milliseconds of real simulation work, so a wave of concurrent
	// clients genuinely races a busy scheduler instead of being served
	// one by one between submissions.
	cfg.StepEpochs = 4000
	cfg.SettleEpochs = 4000
	m := startManager(t, cfg)
	sh, _ := m.Shard("bpchaos")

	var mu sync.Mutex
	byID := map[int64]*Response{}
	answered, shed := 0, 0
	for wave := 0; wave < 30 && (shed == 0 || answered < 8); wave++ {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				typ, lo, hi := spread(i)
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				r, err := m.Query(ctx, Request{Type: typ, Lo: lo, Hi: hi})
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					byID[r.QueryID] = r
					answered++
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					t.Errorf("unexpected query error: %v", err)
				}
			}(i)
		}
		wg.Wait()
	}
	if shed == 0 {
		t.Fatal("no queries shed despite a depth-2 queue under 16-way waves")
	}
	if answered == 0 {
		t.Fatal("no queries answered")
	}
	if got := sh.QueriesShed(); got != int64(shed) {
		t.Errorf("shard counted %d shed queries, clients saw %d", got, shed)
	}

	// Let the chaos timeline finish so the log covers every event.
	deadline := time.Now().Add(10 * time.Second)
	for sh.Stats().ChaosPending > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	if sh.Stats().ChaosApplied == 0 {
		t.Fatal("no chaos events applied")
	}

	log := sh.AdmittedLog()
	queries := 0
	for _, e := range log {
		if e.Event == nil {
			queries++
		}
	}
	if queries != answered {
		t.Fatalf("admission log has %d query entries, want exactly the %d answered (shed queries must not be logged)",
			queries, answered)
	}

	fresh, err := NewShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != answered {
		t.Fatalf("replay returned %d responses, want %d", len(replayed), answered)
	}
	for _, rr := range replayed {
		lr := byID[rr.QueryID]
		if lr == nil {
			t.Fatalf("replayed query %d has no live counterpart", rr.QueryID)
		}
		if !reflect.DeepEqual(lr, rr) {
			t.Errorf("query %d diverged between live chaos run and replay", rr.QueryID)
		}
	}
}

// TestOverloadedWireFormat pins the 429 contract: status code,
// Retry-After header, JSON error body, and the typed *StatusError the
// client surfaces with the parsed hint.
func TestOverloadedWireFormat(t *testing.T) {
	cfg := testShardConfig("wire", 9)
	cfg.QueueDepth = 1
	// The manager is deliberately never started: the queue fills and
	// stays full, making the 429 path deterministic.
	m, err := NewManager([]ShardConfig{cfg})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	hold, cancelHold := context.WithCancel(context.Background())
	defer cancelHold()
	go func() {
		req, _ := http.NewRequestWithContext(hold, http.MethodPost, srv.URL+"/query",
			strings.NewReader(`{"type":"temperature","lo":0,"hi":50}`))
		srv.Client().Do(req) //nolint:errcheck // canceled at test end
	}()
	sh, _ := m.Shard("wire")
	deadline := time.Now().Add(5 * time.Second)
	for sh.Backlog() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if sh.Backlog() != 1 {
		t.Fatal("queue slot never filled")
	}

	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"type":"temperature","lo":0,"hi":50}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	var er errorReply
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error != ErrOverloaded.Error() {
		t.Errorf("error body %q, want %q", er.Error, ErrOverloaded.Error())
	}

	_, qerr := NewClient(srv.URL, srv.Client()).QueryRange(context.Background(), "temperature", 0, 50)
	var se *StatusError
	if !errors.As(qerr, &se) {
		t.Fatalf("client error = %v (%T), want *StatusError", qerr, qerr)
	}
	if se.Code != http.StatusTooManyRequests || se.RetryAfter != time.Second {
		t.Errorf("StatusError = %+v, want code 429 with 1s Retry-After", se)
	}
}

// TestLeastLoadedRouting: pick honors the live backlog gauge — the
// emptiest shard wins, ties break toward configuration order, and the
// default stays round-robin.
func TestLeastLoadedRouting(t *testing.T) {
	m, err := NewManager([]ShardConfig{testShardConfig("a", 1), testShardConfig("b", 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.RoutingPolicy(); got != RouteRoundRobin {
		t.Fatalf("default routing = %v, want round-robin", got)
	}
	if first, second := m.pick(), m.pick(); first.ID() == second.ID() {
		t.Errorf("round-robin picked %s twice in a row", first.ID())
	}

	// Pile blocked submissions onto shard a only (the manager is never
	// started, so backlogs hold still while pick reads them).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fill := func(id string, n int) {
		sh, _ := m.Shard(id)
		for i := 0; i < n; i++ {
			go sh.Submit(ctx, Request{Type: sensordata.Temperature, Lo: 0, Hi: 50}) //nolint:errcheck // released via cancel
		}
		deadline := time.Now().Add(5 * time.Second)
		for sh.Backlog() < n && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		if got := sh.Backlog(); got < n {
			t.Fatalf("shard %s backlog = %d, want %d", id, got, n)
		}
	}
	fill("a", 3)
	m.SetRouting(RouteLeastLoaded)
	if got := m.RoutingPolicy(); got != RouteLeastLoaded {
		t.Fatalf("routing after SetRouting = %v", got)
	}
	for i := 0; i < 4; i++ {
		if got := m.pick(); got.ID() != "b" {
			t.Fatalf("least-loaded picked %s with backlogs a=3 b=0", got.ID())
		}
	}
	fill("b", 3)
	if got := m.pick(); got.ID() != "a" {
		t.Fatalf("tie broke to %s, want configuration order (a)", got.ID())
	}
}

// TestParseRouting covers the flag-facing name resolution.
func TestParseRouting(t *testing.T) {
	for name, want := range map[string]Routing{
		"round-robin":  RouteRoundRobin,
		"least-loaded": RouteLeastLoaded,
	} {
		got, err := ParseRouting(name)
		if err != nil || got != want {
			t.Errorf("ParseRouting(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("Routing(%v).String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseRouting("random"); err == nil {
		t.Error("ParseRouting accepted an unknown policy")
	}
}
