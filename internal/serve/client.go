package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/telemetry"
)

// Client is a small Go client for a dirqd endpoint — the programmatic
// counterpart of `curl`. The zero value is not usable; construct with
// NewClient.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a dirqd base URL (e.g. "http://127.0.0.1:8080").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// Query submits one range query and waits for the answer.
func (c *Client) Query(ctx context.Context, req QueryRequestWire) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var resp Response
	if err := c.do(hreq, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryRange is the common case: a range query on one sensor type,
// routed round-robin.
func (c *Client) QueryRange(ctx context.Context, typ string, lo, hi float64) (*Response, error) {
	return c.Query(ctx, QueryRequestWire{Type: typ, Lo: &lo, Hi: &hi})
}

// Stats fetches the live per-shard counters.
func (c *Client) Stats(ctx context.Context) (*StatsReply, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/stats", nil)
	if err != nil {
		return nil, err
	}
	var reply StatsReply
	if err := c.do(hreq, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Healthz checks daemon liveness, returning an error unless every shard
// loop is running.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	var reply HealthReply
	return c.do(hreq, &reply)
}

// Metrics fetches and decodes the /metrics.json telemetry snapshot.
func (c *Client) Metrics(ctx context.Context) ([]telemetry.SeriesSnapshot, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	var doc telemetry.MetricsJSON
	if err := c.do(hreq, &doc); err != nil {
		return nil, err
	}
	return doc.Metrics, nil
}

// Shards lists the hosted shards.
func (c *Client) Shards(ctx context.Context) ([]ShardInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/shards", nil)
	if err != nil {
		return nil, err
	}
	var infos []ShardInfo
	if err := c.do(hreq, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// do executes one request and decodes the JSON reply, surfacing the
// server's error message on non-2xx statuses.
func (c *Client) do(hreq *http.Request, out any) error {
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 10<<20))
	if err != nil {
		return err
	}
	if hresp.StatusCode/100 != 2 {
		var er errorReply
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			return fmt.Errorf("serve: %s: %s", hresp.Status, er.Error)
		}
		return fmt.Errorf("serve: %s", hresp.Status)
	}
	return json.Unmarshal(body, out)
}
