package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// StatusError is a non-2xx reply from the daemon, carrying the HTTP
// status code so callers (and the client's own retry loop) can branch
// on it — 429 means backpressure (the shard shed the query), 503 means
// the daemon is shutting down or degraded.
type StatusError struct {
	// Code is the HTTP status code (e.g. 429).
	Code int
	// Status is the full status line (e.g. "429 Too Many Requests").
	Status string
	// Msg is the server's JSON error message, if it sent one.
	Msg string
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("serve: %s: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("serve: %s", e.Status)
}

// retryable reports whether the reply signals transient pressure worth
// retrying: 429 (admission queue full) or 503 (shutting down mid-drain
// or briefly degraded).
func (e *StatusError) retryable() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// RetryPolicy bounds the client's automatic retries of 429/503 replies.
// The zero value disables retrying (every call is a single attempt).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call, including the
	// first (values below 1 mean 1 — no retry).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry (default 10ms).
	// Each subsequent retry doubles it, capped at MaxBackoff, and a
	// deterministic jitter in [0.5, 1.5) de-synchronizes clients that
	// were shed by the same full queue. A server Retry-After hint longer
	// than the computed backoff takes precedence.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Sleep waits between attempts; nil means time.Sleep. Injectable so
	// tests can count and fast-forward the waits.
	Sleep func(time.Duration)
}

// Client is a small Go client for a dirqd endpoint — the programmatic
// counterpart of `curl`. The zero value is not usable; construct with
// NewClient.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
	// jig seeds the deterministic backoff jitter. Shared by WithRetry
	// copies so concurrent callers keep drawing distinct values; never
	// wall-clock- or math/rand-derived (the repo bans ambient entropy).
	jig *atomic.Uint64
}

// NewClient targets a dirqd base URL (e.g. "http://127.0.0.1:8080").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   httpClient,
		jig:  new(atomic.Uint64),
	}
}

// WithRetry returns a copy of the client that retries 429/503 replies
// under the given policy. The copy shares the underlying http.Client.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	cp := *c
	cp.retry = p
	return &cp
}

// Query submits one range query and waits for the answer.
func (c *Client) Query(ctx context.Context, req QueryRequestWire) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := c.do(ctx, http.MethodPost, "/query", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryRange is the common case: a range query on one sensor type,
// routed by the daemon's configured policy.
func (c *Client) QueryRange(ctx context.Context, typ string, lo, hi float64) (*Response, error) {
	return c.Query(ctx, QueryRequestWire{Type: typ, Lo: &lo, Hi: &hi})
}

// Stats fetches the live per-shard counters.
func (c *Client) Stats(ctx context.Context) (*StatsReply, error) {
	var reply StatsReply
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Healthz checks daemon liveness, returning an error unless every shard
// loop is running.
func (c *Client) Healthz(ctx context.Context) error {
	var reply HealthReply
	return c.do(ctx, http.MethodGet, "/healthz", nil, &reply)
}

// Metrics fetches and decodes the /metrics.json telemetry snapshot.
func (c *Client) Metrics(ctx context.Context) ([]telemetry.SeriesSnapshot, error) {
	var doc telemetry.MetricsJSON
	if err := c.do(ctx, http.MethodGet, "/metrics.json", nil, &doc); err != nil {
		return nil, err
	}
	return doc.Metrics, nil
}

// Shards lists the hosted shards.
func (c *Client) Shards(ctx context.Context) ([]ShardInfo, error) {
	var infos []ShardInfo
	if err := c.do(ctx, http.MethodGet, "/shards", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// do executes one logical call, retrying 429/503 replies under the
// client's RetryPolicy with exponential jittered backoff. Each attempt
// rebuilds the request from the body bytes, so retries are exact.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := c.retry.BaseBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	maxBackoff := c.retry.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = time.Second
	}
	sleep := c.retry.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	for attempt := 1; ; attempt++ {
		err := c.once(ctx, method, path, body, out)
		var se *StatusError
		if err == nil || attempt >= attempts || !errors.As(err, &se) || !se.retryable() {
			return err
		}
		wait := time.Duration(float64(backoff) * c.jitter())
		if se.RetryAfter > wait {
			wait = se.RetryAfter
		}
		sleep(wait)
		if cerr := ctx.Err(); cerr != nil {
			// The deadline expired while backing off; surface the last
			// server verdict rather than a bare context error.
			return err
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// once executes one HTTP attempt and decodes the JSON reply, surfacing
// non-2xx statuses as *StatusError.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 10<<20))
	if err != nil {
		return err
	}
	if hresp.StatusCode/100 != 2 {
		se := &StatusError{Code: hresp.StatusCode, Status: hresp.Status}
		var er errorReply
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			se.Msg = er.Error
		}
		if secs, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && secs > 0 {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return se
	}
	return json.Unmarshal(raw, out)
}

// jitter draws a deterministic factor in [0.5, 1.5) by hashing an
// atomic counter through a splitmix64 finalizer — uniform enough to
// de-synchronize retries without math/rand or wall-clock seeding.
func (c *Client) jitter() float64 {
	z := c.jig.Add(0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return 0.5 + float64(z>>11)/float64(1<<53)
}
