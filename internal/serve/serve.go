package serve

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/script"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

// Request is one client range query: "which nodes currently read a value
// of Type in [Lo, Hi]?". Shard optionally pins the query to a named
// shard; empty means the manager picks one round-robin.
type Request struct {
	Shard string          `json:"shard,omitempty"`
	Type  sensordata.Type `json:"-"`
	Lo    float64         `json:"lo"`
	Hi    float64         `json:"hi"`
}

// Validate rejects malformed requests.
func (r Request) Validate() error {
	if r.Type < 0 || r.Type >= sensordata.NumTypes {
		return fmt.Errorf("serve: unknown sensor type %d", int(r.Type))
	}
	if r.Lo > r.Hi {
		return fmt.Errorf("serve: empty range [%v, %v]", r.Lo, r.Hi)
	}
	return nil
}

// ParseSensorType resolves a sensor-type name ("temperature", "humidity",
// "light", "soil-moisture") to its Type.
func ParseSensorType(s string) (sensordata.Type, error) {
	for _, t := range sensordata.AllTypes() {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown sensor type %q", s)
}

// Accuracy is the per-query accuracy accounting of one served query,
// against the ground truth captured at admission (§7.1 quantities).
type Accuracy struct {
	// Should counts nodes that should have been reached: ground-truth
	// sources plus the forwarding nodes on their root paths.
	Should int `json:"should"`
	// Received counts nodes the query actually reached.
	Received int `json:"received"`
	// Sources counts the ground-truth source nodes at admission time.
	Sources int `json:"sources"`
	// Wrong counts nodes reached that should not have been.
	Wrong int `json:"wrong"`
	// Missed counts nodes that should have been reached but were not.
	Missed int `json:"missed"`
	// OvershootPct is Wrong as a percentage of the non-root population.
	OvershootPct float64 `json:"overshoot_pct"`
}

// Cost relates the served query's traffic to the flooding baseline.
type Cost struct {
	// FloodEquivalent is what flooding this one query would have cost.
	FloodEquivalent int64 `json:"flood_equivalent"`
	// QueryTotal / UpdateTotal are the shard's cumulative directed
	// dissemination and range-update costs at answer time.
	QueryTotal  int64 `json:"query_total"`
	UpdateTotal int64 `json:"update_total"`
	// FloodBaseline is the shard's cumulative flooding-equivalent cost.
	FloodBaseline int64 `json:"flood_baseline"`
	// FractionOfFlooding is (QueryTotal+UpdateTotal)/FloodBaseline — the
	// paper's headline metric, live (45–55 % under ATC).
	FractionOfFlooding float64 `json:"fraction_of_flooding"`
}

// Response answers one Request.
type Response struct {
	Shard         string  `json:"shard"`
	QueryID       int64   `json:"query_id"`
	Type          string  `json:"type"`
	Lo            float64 `json:"lo"`
	Hi            float64 `json:"hi"`
	AdmittedEpoch int64   `json:"admitted_epoch"`
	AnsweredEpoch int64   `json:"answered_epoch"`
	// Matched lists the nodes the query was delivered to, ascending.
	Matched []int `json:"matched"`
	// Sources lists the matched nodes whose own reading satisfied the
	// range when the query reached them, ascending.
	Sources  []int    `json:"sources"`
	Accuracy Accuracy `json:"accuracy"`
	Cost     Cost     `json:"cost"`
}

// AdmittedQuery is one entry of a shard's admission log: everything that
// determines the simulation's evolution from the client side. Entries are
// either client queries (Event nil) or chaos-mode script events applied
// mid-serve (Event set, with auto-picked parameters resolved, and the
// query fields zero) — recording both, in application order, keeps
// Shard.Replay exact under scripted dynamics.
type AdmittedQuery struct {
	Epoch int64           `json:"epoch"`
	Type  sensordata.Type `json:"type"`
	Lo    float64         `json:"lo"`
	Hi    float64         `json:"hi"`
	Event *script.Event   `json:"event,omitempty"`
}

// ShardStats is one shard's live counters for /stats.
type ShardStats struct {
	ID              string `json:"id"`
	Epoch           int64  `json:"epoch"`
	Running         bool   `json:"running"`
	Done            bool   `json:"done"`
	Nodes           int    `json:"nodes"`
	TreeDepth       int    `json:"tree_depth"`
	Seed            uint64 `json:"seed"`
	Mode            string `json:"mode"`
	QueriesServed   int64  `json:"queries_served"`
	QueriesInjected int    `json:"queries_injected"`
	// QueriesShed counts submissions refused with ErrOverloaded because
	// the bounded admission queue was full. Shed queries never enter the
	// admission log, so they do not affect Replay.
	QueriesShed   int64   `json:"queries_shed"`
	QueryCost     int64   `json:"query_cost"`
	UpdateCost    int64   `json:"update_cost"`
	EstimateCost  int64   `json:"estimate_cost"`
	FloodBaseline int64   `json:"flood_baseline"`
	CostFraction  float64 `json:"cost_fraction"`
	// MeanOvershootPct / PctShould / PctReceived summarize the queries
	// answered so far, each evaluated at its answer epoch (Fig. 5
	// quantities, live).
	MeanOvershootPct float64 `json:"mean_overshoot_pct"`
	PctShould        float64 `json:"pct_should"`
	PctReceived      float64 `json:"pct_received"`
	// TraceEvents counts protocol events ever recorded, when the shard's
	// scenario enables tracing.
	TraceEvents uint64 `json:"trace_events,omitempty"`
	// ChaosApplied / ChaosPending count the chaos-mode script events
	// already applied and still scheduled, when the shard runs one.
	ChaosApplied int `json:"chaos_applied,omitempty"`
	ChaosPending int `json:"chaos_pending,omitempty"`
}

// accuracyOf converts the metrics accounting to the wire form (dropping
// the possibly-infinite relative overshoot, which JSON cannot carry).
func accuracyOf(a metrics.Accuracy) Accuracy {
	return Accuracy{
		Should:       a.NumShould,
		Received:     a.NumReceived,
		Sources:      a.NumSources,
		Wrong:        a.NumWrong,
		Missed:       a.NumMissed,
		OvershootPct: a.OvershootPct,
	}
}

// sortedIDs flattens a node set to an ascending []int.
func sortedIDs(set map[topology.NodeID]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out
}

// evalRecord builds the accuracy and matched sets of one query record.
func evalRecord(rec *core.QueryRecord, n int) (acc Accuracy, matched, sources []int) {
	return accuracyOf(metrics.Eval(rec, n)), sortedIDs(rec.Received), sortedIDs(rec.Sources)
}
