// Package serve is the live query-serving layer over steppable DirQ
// simulations: the paper's actual use case — a user asking "which nodes
// read 10–25 °C right now?" — served online instead of from a canned
// batch workload.
//
// A Manager hosts one or more Shards. Each Shard owns a live simulated
// sensor network (one scenario config + seed), advances it continuously
// on its own goroutine, and admits external range queries at epoch
// boundaries through a batching admission queue: all client queries that
// arrived since the previous simulation pass are injected together, in
// arrival order, at the same epoch. Every admitted query is answered
// after a fixed settle window (enough epochs for directed dissemination
// to run its course down the tree) with the matched node set, accuracy
// against the ground truth captured at admission, and message cost
// against the flooding baseline.
//
// Determinism: a shard's simulation consumes no randomness beyond its
// seed, and admitted queries influence it only at their admission epochs.
// The same seed plus the same admitted sequence (epoch, type, range —
// recorded in the shard's admission log) therefore reproduces identical
// responses, which Shard.Replay verifies by re-driving a fresh shard
// single-threadedly through a recorded log.
//
// NewHandler exposes a Manager over HTTP (POST /query, GET /stats,
// GET /healthz, GET /shards) and Client is the matching Go client;
// cmd/dirqd wires both into a daemon.
//
// In the repo's layer map this is the serving layer, the top of the
// stack: it drives scenario's steppable runner and is packaged as the
// cmd/dirqd daemon.
package serve
