package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sensordata"
	"repro/internal/telemetry"
)

// TestManagerAutoTelemetry: the manager attaches one registry across all
// shards, each scoped by a {shard="..."} label, and wires the scenario
// instrumentation too.
func TestManagerAutoTelemetry(t *testing.T) {
	m := startManager(t, testShardConfig("a", 11), testShardConfig("b", 22))
	reg := m.Telemetry()
	if reg == nil {
		t.Fatal("Manager.Telemetry() is nil")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Query(ctx, Request{Shard: "a", Type: sensordata.Temperature, Lo: 0, Hi: 50}); err != nil {
		t.Fatal(err)
	}
	shards := map[string]bool{}
	families := map[string]bool{}
	for _, s := range reg.Snapshot() {
		families[s.Name] = true
		if sh := s.Labels["shard"]; sh != "" {
			shards[sh] = true
		} else {
			t.Errorf("series %s has no shard label", s.Name)
		}
	}
	if !shards["a"] || !shards["b"] {
		t.Errorf("shard labels = %v, want both a and b", shards)
	}
	for _, want := range []string{
		"dirq_epochs_total",                   // protocol layer
		"dirq_radio_tx_total",                 // radio layer
		"dirq_engine_events_dispatched_total", // event queue
		"dirq_serve_queries_served_total",     // serving layer
		"dirq_serve_admission_queue_depth",    // admission gauge
	} {
		if !families[want] {
			t.Errorf("metric family %s not registered", want)
		}
	}
	if len(families) < 10 {
		t.Errorf("only %d metric families registered, want >= 10", len(families))
	}
}

// TestLatencyClockIsolation: the injected wall clock feeds only the
// latency histogram — responses are identical with and without it, and
// the histogram observes exactly the submitted queries.
func TestLatencyClockIsolation(t *testing.T) {
	var fake atomic.Int64
	cfg := testShardConfig("clocked", 33)
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	cfg.Clock = func() int64 { return fake.Add(int64(time.Millisecond)) }
	m := startManager(t, cfg)

	const n = 5
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	live := make([]*Response, n)
	for i := range live {
		typ, lo, hi := spread(i)
		r, err := m.Query(ctx, Request{Type: typ, Lo: lo, Hi: hi})
		if err != nil {
			t.Fatal(err)
		}
		live[i] = r
	}
	m.Stop()

	var lat telemetry.SeriesSnapshot
	for _, s := range reg.Snapshot() {
		if s.Name == "dirq_serve_query_latency_seconds" {
			lat = s
		}
	}
	if lat.Count != n {
		t.Errorf("latency histogram observed %d queries, want %d", lat.Count, n)
	}
	if lat.Sum <= 0 {
		t.Errorf("latency histogram sum = %v, want > 0", lat.Sum)
	}

	// Replay on a fresh shard with no telemetry and no clock: responses
	// must match byte for byte — the clock is invisible to resolution.
	sh, _ := m.Shard("clocked")
	fresh, err := NewShard(testShardConfig("clocked", 33))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := fresh.Replay(sh.AdmittedLog())
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != n {
		t.Fatalf("replay returned %d responses, want %d", len(replayed), n)
	}
	for i, rr := range replayed {
		if !reflect.DeepEqual(live[i], rr) {
			t.Errorf("query %d diverged between clocked live run and bare replay", i)
		}
	}
}

// TestMetricsEndpoints: /metrics serves well-formed Prometheus text with
// a healthy number of families, /metrics.json decodes through the public
// client, and /stats carries the server build/runtime section.
func TestMetricsEndpoints(t *testing.T) {
	m := startManager(t, testShardConfig("s0", 5))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := m.Query(ctx, Request{Type: sensordata.Temperature, Lo: 0, Hi: 50}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(m, ServerInfo{Version: "test-build", Now: time.Now}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	text := string(body)
	typeLines := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typeLines++
		}
	}
	if typeLines < 10 {
		t.Errorf("/metrics exposes %d families, want >= 10:\n%s", typeLines, text)
	}
	if !strings.Contains(text, `dirq_serve_queries_served_total{shard="s0"} 1`) {
		t.Errorf("/metrics missing the served-queries sample:\n%s", text)
	}

	c := NewClient(srv.URL, nil)
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) < 10 {
		t.Errorf("/metrics.json returned %d series, want >= 10", len(metrics))
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server == nil {
		t.Fatal("/stats has no server section despite ServerInfo")
	}
	if stats.Server.Version != "test-build" {
		t.Errorf("server version = %q, want test-build", stats.Server.Version)
	}
	if stats.Server.Goroutines <= 0 || stats.Server.HeapAllocBytes <= 0 {
		t.Errorf("runtime stats not populated: %+v", stats.Server)
	}
	if stats.Server.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", stats.Server.UptimeSeconds)
	}

	// Without ServerInfo the section stays absent (backward-compatible
	// wire format).
	bare := httptest.NewServer(NewHandler(m))
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var reply map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if _, ok := reply["server"]; ok {
		t.Error("/stats includes a server section without ServerInfo")
	}
}

// TestServeMetricHelpTexts guards against copy-paste help strings: every
// dirq_serve_* metric's help must actually describe the metric it is
// attached to — it has to mention at least one word from the metric's own
// name, and timing metrics must state their unit. (A past bug shipped
// dirq_serve_admission_queue_depth with the drain-batch counter's help
// text; that string mentions neither "admission", "queue", nor "depth"
// and fails this test.)
func TestServeMetricHelpTexts(t *testing.T) {
	cfg := testShardConfig("help", 3)
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	if _, err := NewShard(cfg); err != nil {
		t.Fatal(err)
	}

	checked := 0
	for _, s := range reg.Snapshot() {
		if !strings.HasPrefix(s.Name, "dirq_serve_") {
			continue
		}
		checked++
		if s.Help == "" {
			t.Errorf("%s has no help text", s.Name)
			continue
		}
		help := strings.ToLower(s.Help)
		matched := false
		for _, w := range strings.Split(strings.TrimPrefix(s.Name, "dirq_serve_"), "_") {
			// "total"/"seconds" are unit suffixes, not subjects; short
			// words ("le", "sum") are too ambiguous to anchor on.
			if len(w) < 4 || w == "total" || w == "seconds" {
				continue
			}
			// Prefix match so "queries" in the name matches "query" in
			// prose and vice versa.
			if strings.Contains(help, w[:4]) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s help %q does not mention anything from the metric name", s.Name, s.Help)
		}
		if strings.HasSuffix(s.Name, "_seconds") && !strings.Contains(help, "second") {
			t.Errorf("%s help %q does not state the unit (seconds)", s.Name, s.Help)
		}
	}
	if checked < 8 {
		t.Errorf("only %d dirq_serve_ metrics checked, want >= 8", checked)
	}
}
