package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/script"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ErrShuttingDown is returned for queries caught by a shard shutdown.
var ErrShuttingDown = errors.New("serve: shard shutting down")

// ErrHorizonReached is returned when a query is admitted into a shard
// whose simulation has already reached its configured epoch horizon.
var ErrHorizonReached = errors.New("serve: shard reached its epoch horizon")

// ErrOverloaded is returned by Submit when the admission queue already
// holds QueueDepth queries: the query is shed immediately instead of
// queueing without bound. A shed query never enters the admission log,
// so Replay of the log is unaffected by shedding. The HTTP layer maps
// this to 429 Too Many Requests with a Retry-After hint, and
// serve.Client can retry it with bounded jittered backoff.
var ErrOverloaded = errors.New("serve: admission queue full")

// ShardConfig parameterizes one live shard.
type ShardConfig struct {
	// ID names the shard in requests, responses, and stats.
	ID string
	// Scenario is the simulation hosted by the shard. Its built-in query
	// workload is always disabled — clients are the workload — and its
	// Epochs field becomes the serving horizon (set it large for an
	// effectively unbounded daemon).
	Scenario scenario.Config
	// StepEpochs caps how many epochs one scheduler pass advances before
	// the admission queue is drained again (default 25). Smaller values
	// admit queries sooner; larger ones simulate faster.
	StepEpochs int64
	// SettleEpochs is the fixed window between a query's admission and
	// its answer, covering directed dissemination down the tree (default
	// Scenario.MaxDepth + 2). Fixed — not "when it looks done" — so that
	// answers are a deterministic function of the admitted sequence.
	SettleEpochs int64
	// Tick paces the simulation while idle: each pass advances StepEpochs
	// and then waits Tick for queries (default 2ms; queries interrupt the
	// wait, and pending queries skip it entirely).
	Tick time.Duration
	// QueueDepth bounds the admission queue (default 256). Submit sheds
	// with ErrOverloaded — it does not block — once the queue is full.
	QueueDepth int
	// MaxBatch caps how many queued queries one scheduler pass admits
	// (default QueueDepth, i.e. drain everything). A smaller cap spreads a
	// full queue's admissions over several passes, smoothing the settle-
	// window latency spikes a single unbounded drain causes.
	MaxBatch int
	// Chaos optionally schedules scenario-dynamics events (node kills and
	// cascades, sensor regime shifts and drift, threshold retuning) that
	// fire at their exact epochs while the shard serves live queries.
	// Workload ops (burst, coverage) are rejected — clients are the
	// workload here. Applied events are recorded in the admission log, so
	// Replay reproduces a chaos shard's responses exactly.
	Chaos []script.Event
	// Telemetry, when non-nil, registers the shard's serving instruments
	// (admissions, latency histogram, queue depth, chaos events) on the
	// given registry. Pass a telemetry.Scoped view to label the series
	// per shard. Independent of Scenario.Telemetry, which instruments the
	// hosted simulation itself.
	Telemetry telemetry.Instrumenter
	// Clock returns wall time in nanoseconds, used only for the query
	// latency histogram; nil disables latency observation. Injected by
	// the cmd layer — nothing inside the simulation may read wall time.
	Clock func() int64
}

// withDefaults fills unset knobs.
func (c ShardConfig) withDefaults() ShardConfig {
	if c.StepEpochs <= 0 {
		c.StepEpochs = 25
	}
	if c.SettleEpochs <= 0 {
		c.SettleEpochs = int64(c.Scenario.MaxDepth) + 2
	}
	if c.Tick <= 0 {
		c.Tick = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 || c.MaxBatch > c.QueueDepth {
		c.MaxBatch = c.QueueDepth
	}
	return c
}

// outcome is a resolved pendingQuery.
type outcome struct {
	resp *Response
	err  error
}

// pendingQuery is one client query waiting for admission.
type pendingQuery struct {
	req Request
	out chan outcome // buffered(1); written exactly once
}

// inflight is an admitted query waiting out its settle window.
type inflight struct {
	pq       *pendingQuery // nil during Replay
	q        query.Query
	rec      *core.QueryRecord
	floodEq  int64
	admitted int64
	deadline int64
}

// Shard hosts one live simulated network and serves queries against it.
// All simulation state is guarded by mu; the loop goroutine holds it
// while stepping, Stats and Replay acquire it for reads and replays.
type Shard struct {
	cfg    ShardConfig
	admit  chan *pendingQuery
	done   chan struct{} // closed when the loop exits
	driven atomic.Bool   // loop started or Replay used
	shed   atomic.Int64  // queries refused with ErrOverloaded

	// mu guards everything below (the runner is not thread-safe).
	mu       sync.Mutex
	runner   *scenario.Runner
	nextID   int64
	served   int64
	admitted []AdmittedQuery
	// chaos is the expanded event timeline; nextChaos indexes the first
	// event not yet applied.
	chaos        []script.Event
	nextChaos    int
	chaosApplied int
	// Running accuracy aggregates over answered queries, accumulated at
	// answer time so Stats stays O(1) however long the shard lives.
	aggShouldPct    float64
	aggReceivedPct  float64
	aggOvershootPct float64

	tel shardTelemetry
}

// shardTelemetry holds the shard's serving instruments. The zero value
// disables them all (every instrument is nil-safe); none of them feeds
// back into admission, stepping or resolution, so an instrumented shard
// answers byte-identically to a bare one.
type shardTelemetry struct {
	admitted   *telemetry.Counter
	served     *telemetry.Counter
	failed     *telemetry.Counter
	shed       *telemetry.Counter
	chaos      *telemetry.Counter
	latency    *telemetry.Histogram
	queueDepth *telemetry.Gauge
	inflight   *telemetry.Gauge
}

// NewShard builds (but does not start) a shard. The scenario's workload
// is forcibly disabled; queries come only from clients.
func NewShard(cfg ShardConfig) (*Shard, error) {
	return NewShardWithEngine(cfg, nil)
}

// NewShardWithEngine is NewShard on a recycled event engine (nil means
// build a fresh one): a retired shard's engine — see Shard.Engine — can
// host a replacement shard without reallocating its queue storage. The
// donor shard must have stopped serving first.
func NewShardWithEngine(cfg ShardConfig, engine *sim.Engine) (*Shard, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, errors.New("serve: shard needs an ID")
	}
	cfg.Scenario.DisableWorkload = true
	chaos, err := expandChaos(cfg.Chaos)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %q: %w", cfg.ID, err)
	}
	runner, err := scenario.BuildWithEngine(cfg.Scenario, engine)
	if err != nil {
		return nil, fmt.Errorf("serve: shard %q: %w", cfg.ID, err)
	}
	runner.Start()
	sh := &Shard{
		cfg:    cfg,
		admit:  make(chan *pendingQuery, cfg.QueueDepth),
		done:   make(chan struct{}),
		runner: runner,
		chaos:  chaos,
	}
	if reg := cfg.Telemetry; reg != nil {
		sh.tel = shardTelemetry{
			admitted: reg.Counter("dirq_serve_queries_admitted_total", "Queries admitted into the simulation."),
			served:   reg.Counter("dirq_serve_queries_served_total", "Queries answered after their settle window."),
			failed:   reg.Counter("dirq_serve_query_failures_total", "Query submissions that returned an error."),
			shed:     reg.Counter("dirq_serve_queries_shed_total", "Queries shed with ErrOverloaded because the admission queue was full."),
			chaos:    reg.Counter("dirq_serve_chaos_events_total", "Chaos script events applied while serving."),
			latency: reg.Histogram("dirq_serve_query_latency_seconds",
				"Wall-clock submit-to-answer query latency in seconds.", telemetry.LatencyBuckets()),
			queueDepth: reg.Gauge("dirq_serve_admission_queue_depth", "Queries waiting in the bounded admission queue."),
			inflight:   reg.Gauge("dirq_serve_inflight_queries", "Admitted queries inside their settle window."),
		}
	}
	return sh, nil
}

// expandChaos validates and flattens a chaos timeline: runner ops only
// (the serving clients are the workload), ordered, cascades expanded.
func expandChaos(events []script.Event) ([]script.Event, error) {
	if len(events) == 0 {
		return nil, nil
	}
	for _, e := range events {
		if !e.RunnerOp() {
			return nil, fmt.Errorf("chaos op %q is a workload op; clients drive the workload of a serving shard", e.Op)
		}
	}
	s := &script.Script{Events: events}
	return s.Expand()
}

// claim marks the shard as driven, reporting whether the caller won it.
func (s *Shard) claim() bool { return s.driven.CompareAndSwap(false, true) }

// Serve claims the shard for live serving and runs its scheduler loop
// until ctx is canceled. It returns an error if the shard has already
// been driven (served or replayed).
func (s *Shard) Serve(ctx context.Context) error {
	if !s.claim() {
		return errors.New("serve: shard already driven")
	}
	s.run(ctx)
	return nil
}

// ID returns the shard's name.
func (s *Shard) ID() string { return s.cfg.ID }

// Engine exposes the shard's event engine so a finished shard can donate
// it to a successor via NewShardWithEngine. Only call once the shard has
// stopped serving (Running reports false).
func (s *Shard) Engine() *sim.Engine { return s.runner.Engine }

// Config returns the shard's effective (defaulted) configuration.
func (s *Shard) Config() ShardConfig { return s.cfg }

// ChaosEvents returns the length of the expanded chaos timeline (cascades
// flattened into individual kills) — the scheduled-event count that
// ChaosApplied/ChaosPending in Stats refer to.
func (s *Shard) ChaosEvents() int { return len(s.chaos) }

// Backlog reports the live admission-queue occupancy — the load signal
// least-loaded routing reads. It is an instantaneous channel length, so
// concurrent submitters may observe it stale by a few entries.
func (s *Shard) Backlog() int { return len(s.admit) }

// QueriesShed reports how many queries this shard refused with
// ErrOverloaded since it was built.
func (s *Shard) QueriesShed() int64 { return s.shed.Load() }

// Submit queues one query and blocks until it is answered, the context
// is canceled, or the shard shuts down. If the admission queue is full
// the query is shed immediately with ErrOverloaded instead of blocking.
func (s *Shard) Submit(ctx context.Context, req Request) (*Response, error) {
	var start int64
	if s.cfg.Clock != nil {
		start = s.cfg.Clock()
	}
	resp, err := s.submit(ctx, req)
	if s.cfg.Clock != nil {
		s.tel.latency.Observe(float64(s.cfg.Clock()-start) / 1e9)
	}
	if err != nil {
		s.tel.failed.Inc()
	}
	return resp, err
}

func (s *Shard) submit(ctx context.Context, req Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	pq := &pendingQuery{req: req, out: make(chan outcome, 1)}
	// Non-blocking admission: a full queue sheds the query right here.
	// Shutdown and cancellation are checked first so they win over both
	// admission and shedding when several are ready at once.
	select {
	case <-s.done:
		return nil, ErrShuttingDown
	case <-ctx.Done():
		return nil, ctx.Err()
	default:
	}
	select {
	case s.admit <- pq:
		s.tel.queueDepth.Set(int64(len(s.admit)))
	default:
		s.shed.Add(1)
		s.tel.shed.Inc()
		return nil, ErrOverloaded
	}
	select {
	case o := <-pq.out:
		return o.resp, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		// The loop resolves or fails every queued query before closing
		// done; prefer a delivered outcome over the shutdown error.
		select {
		case o := <-pq.out:
			return o.resp, o.err
		default:
			return nil, ErrShuttingDown
		}
	}
}

// run is the shard scheduler: drain admissions, inject at the current
// epoch, advance the simulation (stopping at answer deadlines), resolve
// due queries, idle briefly when nothing is pending. It exits when ctx
// is canceled, failing whatever is still queued or in flight.
func (s *Shard) run(ctx context.Context) {
	defer close(s.done)
	var pending []*inflight
	var carry []*pendingQuery
	for {
		// Shutdown check first so cancellation wins over new work.
		select {
		case <-ctx.Done():
			s.fail(pending, carry)
			return
		default:
		}

		// Drain queued queries in arrival order, at most MaxBatch per
		// pass: the remainder stays queued (visible in Backlog and the
		// queue-depth gauge) and is admitted on later passes, so a burst
		// spreads across epoch boundaries instead of landing on one.
		batch := carry
		carry = nil
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case pq := <-s.admit:
				batch = append(batch, pq)
			default:
				break drain
			}
		}

		s.tel.queueDepth.Set(int64(len(s.admit)))
		s.mu.Lock()
		// Admit the batch at the current epoch boundary.
		for _, pq := range batch {
			f, err := s.injectLocked(pq.req)
			if err != nil {
				pq.out <- outcome{err: err}
				continue
			}
			f.pq = pq
			pending = append(pending, f)
		}

		// Advance: at most StepEpochs, but never past the earliest
		// answer deadline (answers must be read at exactly that epoch) or
		// the next chaos event (which must fire at exactly its epoch).
		now := s.runner.Epoch()
		target := now + s.cfg.StepEpochs
		for _, f := range pending {
			if f.deadline < target {
				target = f.deadline
			}
		}
		if s.nextChaos < len(s.chaos) && s.chaos[s.nextChaos].At < target {
			target = s.chaos[s.nextChaos].At
		}
		if target > now {
			s.runner.Step(target - now)
		}
		now = s.runner.Epoch()

		// Resolve everything due. If the horizon stopped the clock short
		// of a deadline, answer with what has been delivered so far
		// rather than hanging forever.
		horizon := s.runner.Done()
		kept := pending[:0]
		for _, f := range pending {
			if f.deadline <= now || horizon {
				f.pq.out <- outcome{resp: s.resolveLocked(f)}
			} else {
				kept = append(kept, f)
			}
		}
		pending = kept
		s.tel.inflight.Set(int64(len(pending)))
		s.applyChaosLocked(now)
		s.mu.Unlock()

		// Idle pacing: with nothing in flight, wait for a query or one
		// tick; with work pending, loop immediately.
		if len(pending) == 0 {
			select {
			case <-ctx.Done():
				s.fail(pending, nil)
				return
			case pq := <-s.admit:
				carry = append(carry, pq)
			case <-time.After(s.cfg.Tick):
			}
		}
	}
}

// fail answers every outstanding and queued query with ErrShuttingDown.
func (s *Shard) fail(pending []*inflight, carry []*pendingQuery) {
	for _, f := range pending {
		f.pq.out <- outcome{err: ErrShuttingDown}
	}
	for _, pq := range carry {
		pq.out <- outcome{err: ErrShuttingDown}
	}
	for {
		select {
		case pq := <-s.admit:
			pq.out <- outcome{err: ErrShuttingDown}
		default:
			return
		}
	}
}

// injectLocked admits one request at the current epoch: ground truth is
// resolved against the live dataset, the query is disseminated, and the
// admission is logged. Callers hold mu.
func (s *Shard) injectLocked(req Request) (*inflight, error) {
	if s.runner.Done() {
		return nil, ErrHorizonReached
	}
	epoch := s.runner.Epoch()
	q := query.Query{ID: s.nextID, Type: req.Type, Lo: req.Lo, Hi: req.Hi}
	s.nextID++
	truth := s.runner.Resolve(q)
	rec, floodEq := s.runner.Inject(q, truth)
	s.admitted = append(s.admitted, AdmittedQuery{
		Epoch: epoch, Type: req.Type, Lo: req.Lo, Hi: req.Hi,
	})
	s.tel.admitted.Inc()
	deadline := epoch + s.cfg.SettleEpochs
	if deadline > s.cfg.Scenario.Epochs {
		deadline = s.cfg.Scenario.Epochs
	}
	return &inflight{
		q: q, rec: rec, floodEq: floodEq, admitted: epoch, deadline: deadline,
	}, nil
}

// applyChaosLocked fires every chaos event due at or before the current
// epoch (the scheduler clamps steps to event epochs, so in practice
// "exactly at"), resolving auto-picked parameters and recording applied
// events in the admission log so Replay reproduces them. Events that
// cannot apply (e.g. a kill with only the root left) are consumed
// silently — skipping changes no state, so replay stays exact without
// them. Callers hold mu.
func (s *Shard) applyChaosLocked(now int64) {
	for s.nextChaos < len(s.chaos) && s.chaos[s.nextChaos].At <= now {
		ev := s.chaos[s.nextChaos]
		s.nextChaos++
		resolved, ok, _ := script.Apply(s.runner, ev)
		if !ok {
			continue
		}
		e := resolved
		s.admitted = append(s.admitted, AdmittedQuery{Epoch: now, Event: &e})
		s.chaosApplied++
		s.tel.chaos.Inc()
	}
}

// costLocked reads the shard's cumulative cost counters. Callers hold mu.
func (s *Shard) costLocked() (queryTotal, updateTotal, floodBaseline int64, fraction float64) {
	queryTotal = s.runner.Meter.ByClass(radio.ClassQuery).Total()
	if s.cfg.Scenario.DisseminateByFlooding {
		queryTotal = s.runner.Meter.ByClass(radio.ClassFlood).Total()
	}
	updateTotal = s.runner.Meter.ByClass(radio.ClassUpdate).Total()
	floodBaseline = s.runner.FloodBaseline()
	if floodBaseline > 0 {
		fraction = float64(queryTotal+updateTotal) / float64(floodBaseline)
	}
	return queryTotal, updateTotal, floodBaseline, fraction
}

// resolveLocked builds the response for one settled query and folds it
// into the running accuracy aggregates. Callers hold mu; the simulation
// clock is at (or, at the horizon, before) the query's deadline.
func (s *Shard) resolveLocked(f *inflight) *Response {
	n := s.runner.Graph.Len()
	acc, matched, sources := evalRecord(f.rec, n)
	s.served++
	s.tel.served.Inc()
	s.aggShouldPct += metrics.Pct(acc.Should, n)
	s.aggReceivedPct += metrics.Pct(acc.Received, n)
	s.aggOvershootPct += acc.OvershootPct
	qc, uc, fb, frac := s.costLocked()
	cost := Cost{
		FloodEquivalent:    f.floodEq,
		QueryTotal:         qc,
		UpdateTotal:        uc,
		FloodBaseline:      fb,
		FractionOfFlooding: frac,
	}
	return &Response{
		Shard:         s.cfg.ID,
		QueryID:       f.q.ID,
		Type:          f.q.Type.String(),
		Lo:            f.q.Lo,
		Hi:            f.q.Hi,
		AdmittedEpoch: f.admitted,
		AnsweredEpoch: s.runner.Epoch(),
		Matched:       matched,
		Sources:       sources,
		Accuracy:      acc,
		Cost:          cost,
	}
}

// AdmittedLog returns a copy of the admission log: the complete client-
// side determinant of the shard's evolution, replayable with Replay.
func (s *Shard) AdmittedLog() []AdmittedQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AdmittedQuery(nil), s.admitted...)
}

// Stats snapshots the shard's live counters. O(1) — cumulative costs
// come from the radio meter and accuracy means from aggregates folded
// in at answer time, so a /stats scrape never stalls serving however
// many queries the shard has absorbed.
func (s *Shard) Stats() ShardStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	qc, uc, fb, frac := s.costLocked()
	st := ShardStats{
		ID:              s.cfg.ID,
		Epoch:           s.runner.Epoch(),
		Running:         s.Running(),
		Done:            s.runner.Done(),
		Nodes:           s.runner.Graph.Len(),
		TreeDepth:       s.runner.Tree.MaxDepth(),
		Seed:            s.cfg.Scenario.Seed,
		Mode:            s.cfg.Scenario.Mode.String(),
		QueriesServed:   s.served,
		QueriesInjected: s.runner.QueriesInjected(),
		QueriesShed:     s.shed.Load(),
		QueryCost:       qc,
		UpdateCost:      uc,
		EstimateCost:    s.runner.Meter.ByClass(radio.ClassEstimate).Total(),
		FloodBaseline:   fb,
		CostFraction:    frac,
	}
	if s.served > 0 {
		st.MeanOvershootPct = s.aggOvershootPct / float64(s.served)
		st.PctShould = s.aggShouldPct / float64(s.served)
		st.PctReceived = s.aggReceivedPct / float64(s.served)
	}
	if s.runner.Trace != nil {
		st.TraceEvents = s.runner.Trace.Total()
	}
	st.ChaosApplied = s.chaosApplied
	st.ChaosPending = len(s.chaos) - s.nextChaos
	return st
}

// Running reports whether the shard loop is serving.
func (s *Shard) Running() bool {
	select {
	case <-s.done:
		return false
	default:
		return s.driven.Load()
	}
}

// Replay re-drives a fresh (never-started) shard through a recorded
// admission log, single-threaded, and returns the responses to the log's
// query entries in admitted order (chaos-event entries are re-applied in
// place and produce no response). Determinism makes these identical to
// the responses the live shard produced for the same seed and log.
func (s *Shard) Replay(log []AdmittedQuery) ([]*Response, error) {
	if !s.claim() {
		return nil, errors.New("serve: Replay on a shard that already served")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The log supersedes the shard's own chaos timeline: events replay
	// from their recorded entries, so none of the configured ones are
	// pending (otherwise Stats would double-count the timeline).
	s.nextChaos = len(s.chaos)
	out := make([]*Response, 0, len(log))
	responseAt := make(map[*inflight]int)
	var pending []*inflight
	i := 0
	for i < len(log) || len(pending) > 0 {
		// Next event epoch: the earliest of the next admission and the
		// earliest outstanding deadline.
		next := int64(-1)
		if i < len(log) {
			next = log[i].Epoch
		}
		for _, f := range pending {
			if next < 0 || f.deadline < next {
				next = f.deadline
			}
		}
		if now := s.runner.Epoch(); next > now {
			if s.runner.Step(next-now) == 0 {
				// Horizon: resolve everything with what was delivered.
				next = s.runner.Epoch()
			}
		}
		now := s.runner.Epoch()
		horizon := s.runner.Done()

		// Resolve due queries BEFORE this epoch's admissions — the live
		// loop reads answers at a pass's end, ahead of the next pass's
		// injections at the same epoch.
		kept := pending[:0]
		for _, f := range pending {
			if f.deadline <= now || horizon {
				out[responseAt[f]] = s.resolveLocked(f)
			} else {
				kept = append(kept, f)
			}
		}
		pending = kept

		// Process every log entry at this epoch, in order: queries are
		// re-admitted, chaos events re-applied (their parameters were
		// resolved at recording time, so application is exact).
		for i < len(log) && log[i].Epoch == now {
			e := log[i]
			if e.Event != nil {
				if _, ok, note := script.Apply(s.runner, *e.Event); !ok {
					return nil, fmt.Errorf("serve: replay entry %d: chaos event %s not applicable: %s",
						i, e.Event, note)
				}
				s.admitted = append(s.admitted, AdmittedQuery{Epoch: now, Event: e.Event})
				s.chaosApplied++
				s.tel.chaos.Inc()
				i++
				continue
			}
			f, err := s.injectLocked(Request{Type: e.Type, Lo: e.Lo, Hi: e.Hi})
			if err != nil {
				return nil, fmt.Errorf("serve: replay entry %d: %w", i, err)
			}
			responseAt[f] = len(out)
			out = append(out, nil)
			pending = append(pending, f)
			i++
		}
		if i < len(log) && log[i].Epoch < now {
			return nil, fmt.Errorf("serve: replay log not epoch-ordered at entry %d", i)
		}
		if i < len(log) && horizon && log[i].Epoch > now {
			// The clock can no longer reach this entry's epoch; erroring
			// beats spinning (query entries would hit ErrHorizonReached,
			// but event entries have no admission path to catch this).
			return nil, fmt.Errorf("serve: replay entry %d at epoch %d is past the shard horizon %d",
				i, log[i].Epoch, now)
		}
	}
	return out, nil
}
