package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sensordata"
)

// testScenario is a small live network that still has real tree depth.
func testScenario(seed uint64) scenario.Config {
	cfg := scenario.Default()
	cfg.Seed = seed
	cfg.NumNodes = 30
	cfg.Epochs = 1 << 40 // effectively unbounded horizon
	cfg.EpochsPerHour = 100
	return cfg
}

func testShardConfig(id string, seed uint64) ShardConfig {
	return ShardConfig{
		ID:       id,
		Scenario: testScenario(seed),
		// Small step + tick so tests resolve quickly.
		StepEpochs: 20,
		Tick:       200 * time.Microsecond,
	}
}

func startManager(t *testing.T, cfgs ...ShardConfig) *Manager {
	t.Helper()
	m, err := NewManager(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	return m
}

// spread returns the i-th of a few representative query shapes.
func spread(i int) (typ sensordata.Type, lo, hi float64) {
	typ = sensordata.AllTypes()[i%int(sensordata.NumTypes)]
	min, max := typ.Span()
	w := max - min
	switch (i / 4) % 3 {
	case 0: // wide
		return typ, min, max
	case 1: // middle band
		return typ, min + 0.3*w, min + 0.7*w
	default: // narrow high band
		return typ, min + 0.8*w, min + 0.9*w
	}
}

// TestConcurrentQueriesAcrossShardsDeterministic is the acceptance
// criterion: >= 64 concurrent in-flight range queries across >= 2 shards
// (run under -race in CI), and per-shard determinism — replaying each
// shard's admitted sequence against a fresh shard with the same seed
// reproduces every response exactly.
func TestConcurrentQueriesAcrossShardsDeterministic(t *testing.T) {
	const clients = 64
	cfgA := testShardConfig("a", 11)
	cfgB := testShardConfig("b", 22)
	m := startManager(t, cfgA, cfgB)

	live := make([]*Response, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			typ, lo, hi := spread(i)
			shard := "" // half pinned, half round-robin
			if i%2 == 0 {
				shard = []string{"a", "b"}[(i/2)%2]
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			live[i], errs[i] = m.Query(ctx, Request{Shard: shard, Type: typ, Lo: lo, Hi: hi})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	// Index live responses by (shard, queryID); IDs are per-shard unique.
	byKey := map[string]*Response{}
	perShard := map[string]int{}
	for i, r := range live {
		key := fmt.Sprintf("%s/%d", r.Shard, r.QueryID)
		if byKey[key] != nil {
			t.Fatalf("duplicate response key %s", key)
		}
		byKey[key] = r
		perShard[r.Shard]++
		if r.AnsweredEpoch < r.AdmittedEpoch {
			t.Fatalf("query %d answered before admission: %+v", i, r)
		}
	}
	if perShard["a"] == 0 || perShard["b"] == 0 {
		t.Fatalf("queries not spread across shards: %v", perShard)
	}

	// Stop the manager so admission logs are final, then replay each
	// shard single-threaded from a fresh build.
	m.Stop()
	for _, id := range []string{"a", "b"} {
		sh, _ := m.Shard(id)
		log := sh.AdmittedLog()
		if len(log) != perShard[id] {
			t.Fatalf("shard %s: %d admitted, %d responses", id, len(log), perShard[id])
		}
		cfg := testShardConfig(id, map[string]uint64{"a": 11, "b": 22}[id])
		fresh, err := NewShard(cfg)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := fresh.Replay(log)
		if err != nil {
			t.Fatalf("shard %s replay: %v", id, err)
		}
		if len(replayed) != len(log) {
			t.Fatalf("shard %s replay returned %d responses for %d entries", id, len(replayed), len(log))
		}
		for _, rr := range replayed {
			key := fmt.Sprintf("%s/%d", rr.Shard, rr.QueryID)
			lr := byKey[key]
			if lr == nil {
				t.Fatalf("replayed %s has no live counterpart", key)
			}
			if !reflect.DeepEqual(lr, rr) {
				t.Fatalf("shard %s query %d: replay diverged\nlive:   %+v\nreplay: %+v",
					id, rr.QueryID, lr, rr)
			}
		}
	}
}

// TestResponseContents sanity-checks one response against a direct
// ground-truth resolution.
func TestResponseContents(t *testing.T) {
	m := startManager(t, testShardConfig("solo", 7))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Whole-span query: every temperature-mounted node is a source.
	lo, hi := sensordata.Temperature.Span()
	r, err := m.Query(ctx, Request{Type: sensordata.Temperature, Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	if r.Shard != "solo" {
		t.Fatalf("shard %q", r.Shard)
	}
	if r.Accuracy.Should == 0 {
		t.Fatal("whole-span query should involve nodes")
	}
	if len(r.Matched) != r.Accuracy.Received {
		t.Fatalf("matched %d != received %d", len(r.Matched), r.Accuracy.Received)
	}
	if r.Cost.FloodEquivalent <= 0 || r.Cost.FloodBaseline < r.Cost.FloodEquivalent {
		t.Fatalf("bad cost accounting: %+v", r.Cost)
	}
	if r.AnsweredEpoch-r.AdmittedEpoch != m.shards[0].Config().SettleEpochs {
		t.Fatalf("settle window %d, want %d",
			r.AnsweredEpoch-r.AdmittedEpoch, m.shards[0].Config().SettleEpochs)
	}
	for i := 1; i < len(r.Matched); i++ {
		if r.Matched[i-1] >= r.Matched[i] {
			t.Fatal("Matched not strictly ascending")
		}
	}

	// Stats reflect the served query.
	st := m.Stats()
	if len(st) != 1 || st[0].QueriesServed != 1 || st[0].QueriesInjected != 1 {
		t.Fatalf("stats after one query: %+v", st)
	}
	if !st[0].Running {
		t.Fatal("stats says shard not running")
	}
}

// TestRequestValidation covers the rejection paths.
func TestRequestValidation(t *testing.T) {
	m := startManager(t, testShardConfig("v", 3))
	ctx := context.Background()
	if _, err := m.Query(ctx, Request{Type: sensordata.Type(99), Lo: 0, Hi: 1}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := m.Query(ctx, Request{Type: sensordata.Temperature, Lo: 5, Hi: 1}); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := m.Query(ctx, Request{Shard: "nope", Type: sensordata.Temperature, Lo: 0, Hi: 1}); !errors.Is(err, ErrNoSuchShard) {
		t.Fatalf("unknown shard: %v", err)
	}
}

// TestGracefulShutdown checks that Stop fails outstanding queries with
// ErrShuttingDown instead of hanging, and that late submissions are
// refused.
func TestGracefulShutdown(t *testing.T) {
	cfg := testShardConfig("g", 5)
	cfg.Tick = 50 * time.Millisecond // slow loop so queries are in flight at Stop
	m, err := NewManager([]ShardConfig{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	const n = 8
	res := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			typ, lo, hi := spread(i)
			_, err := m.Query(context.Background(), Request{Type: typ, Lo: lo, Hi: hi})
			res <- err
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let some land in the queue
	m.Stop()
	for i := 0; i < n; i++ {
		if err := <-res; err != nil && !errors.Is(err, ErrShuttingDown) {
			t.Fatalf("query failed with %v, want nil or ErrShuttingDown", err)
		}
	}
	if m.Healthy() {
		t.Fatal("manager healthy after Stop")
	}
	if _, err := m.Query(context.Background(),
		Request{Type: sensordata.Temperature, Lo: 0, Hi: 1}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown query: %v, want ErrShuttingDown", err)
	}
}

// TestHorizonReached checks that a shard refuses queries once its
// simulation horizon is exhausted.
func TestHorizonReached(t *testing.T) {
	cfg := testShardConfig("h", 9)
	cfg.Scenario.Epochs = 60 // tiny horizon
	m := startManager(t, cfg)

	deadline := time.Now().Add(10 * time.Second)
	for {
		sh, _ := m.Shard("h")
		if sh.Stats().Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never reached its horizon")
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, err := m.Query(context.Background(), Request{Type: sensordata.Temperature, Lo: 0, Hi: 1})
	if !errors.Is(err, ErrHorizonReached) {
		t.Fatalf("got %v, want ErrHorizonReached", err)
	}
}

// TestParseSensorType round-trips all four names.
func TestParseSensorType(t *testing.T) {
	for _, typ := range sensordata.AllTypes() {
		got, err := ParseSensorType(typ.String())
		if err != nil || got != typ {
			t.Fatalf("ParseSensorType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseSensorType("pressure"); err == nil {
		t.Fatal("unknown name accepted")
	}
}
