package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// ErrNoSuchShard is returned for requests naming an unknown shard.
var ErrNoSuchShard = errors.New("serve: no such shard")

// Routing selects how the manager places queries that do not pin a
// shard by name.
type Routing int32

const (
	// RouteRoundRobin cycles through the shards in configuration order —
	// the default, and the right choice when shards are interchangeable
	// and evenly loaded.
	RouteRoundRobin Routing = iota
	// RouteLeastLoaded sends each query to the shard with the smallest
	// live admission backlog (ties break toward configuration order).
	// Under uneven load this sheds less: a clogged shard stops receiving
	// new queries while its siblings still have queue room.
	RouteLeastLoaded
)

// String names the policy the way ParseRouting accepts it.
func (r Routing) String() string {
	if r == RouteLeastLoaded {
		return "least-loaded"
	}
	return "round-robin"
}

// ParseRouting resolves a policy name ("round-robin", "least-loaded").
func ParseRouting(s string) (Routing, error) {
	switch s {
	case "round-robin":
		return RouteRoundRobin, nil
	case "least-loaded":
		return RouteLeastLoaded, nil
	}
	return 0, fmt.Errorf("serve: unknown routing policy %q (want round-robin or least-loaded)", s)
}

// Manager hosts a set of shards and routes queries to them: a named
// shard when the request pins one, by the configured Routing otherwise.
type Manager struct {
	shards []*Shard
	byID   map[string]*Shard
	reg    *telemetry.Registry

	rr      atomic.Uint64
	routing atomic.Int32
	started atomic.Bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// NewManager builds all shards. IDs must be unique. Every shard whose
// config carries no Telemetry of its own is instrumented on the manager's
// registry (exposed via Telemetry) with a {shard="<ID>"} label — both its
// serving instruments and, unless the scenario already has one, its
// hosted simulation.
func NewManager(cfgs []ShardConfig) (*Manager, error) {
	if len(cfgs) == 0 {
		return nil, errors.New("serve: manager needs at least one shard")
	}
	m := &Manager{byID: map[string]*Shard{}, reg: telemetry.NewRegistry()}
	for _, cfg := range cfgs {
		if _, dup := m.byID[cfg.ID]; dup {
			return nil, fmt.Errorf("serve: duplicate shard ID %q", cfg.ID)
		}
		if cfg.Telemetry == nil {
			scope := telemetry.Scoped(m.reg, telemetry.Label{Key: "shard", Value: cfg.ID})
			cfg.Telemetry = scope
			if cfg.Scenario.Telemetry == nil {
				cfg.Scenario.Telemetry = scope
			}
		}
		sh, err := NewShard(cfg)
		if err != nil {
			return nil, err
		}
		m.shards = append(m.shards, sh)
		m.byID[cfg.ID] = sh
	}
	return m, nil
}

// Telemetry exposes the manager's metrics registry (the backing store of
// /metrics and /metrics.json).
func (m *Manager) Telemetry() *telemetry.Registry { return m.reg }

// Start launches every shard's scheduler loop. The shards serve until
// ctx is canceled or Stop is called. Every shard is claimed before
// Start returns, so a successful Start means Healthy() immediately.
func (m *Manager) Start(ctx context.Context) error {
	if !m.started.CompareAndSwap(false, true) {
		return errors.New("serve: manager already started")
	}
	for _, sh := range m.shards {
		if !sh.claim() {
			return fmt.Errorf("serve: shard %q already driven", sh.ID())
		}
	}
	ctx, m.cancel = context.WithCancel(ctx)
	for _, sh := range m.shards {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			sh.run(ctx)
		}()
	}
	return nil
}

// Stop cancels every shard loop and waits for them to drain: in-flight
// and queued queries are answered with ErrShuttingDown first.
func (m *Manager) Stop() {
	if m.cancel != nil {
		m.cancel()
	}
	m.wg.Wait()
}

// Shard returns a hosted shard by ID.
func (m *Manager) Shard(id string) (*Shard, bool) {
	sh, ok := m.byID[id]
	return sh, ok
}

// Shards returns the hosted shards in configuration order.
func (m *Manager) Shards() []*Shard {
	return append([]*Shard(nil), m.shards...)
}

// SetRouting selects the placement policy for un-pinned queries. Safe
// to call at any time, including while serving.
func (m *Manager) SetRouting(r Routing) { m.routing.Store(int32(r)) }

// RoutingPolicy reports the current placement policy.
func (m *Manager) RoutingPolicy() Routing { return Routing(m.routing.Load()) }

// pick chooses the shard for an un-pinned query under the current
// routing policy.
func (m *Manager) pick() *Shard {
	if m.RoutingPolicy() == RouteLeastLoaded {
		best := m.shards[0]
		bestLoad := best.Backlog()
		for _, sh := range m.shards[1:] {
			if l := sh.Backlog(); l < bestLoad {
				best, bestLoad = sh, l
			}
		}
		return best
	}
	return m.shards[m.rr.Add(1)%uint64(len(m.shards))]
}

// Query routes one request: to the named shard if req.Shard is set, by
// the configured Routing otherwise. It blocks until the query is
// answered, ctx is canceled, or the target shard shuts down; if the
// target's admission queue is full it fails fast with ErrOverloaded.
func (m *Manager) Query(ctx context.Context, req Request) (*Response, error) {
	var sh *Shard
	if req.Shard != "" {
		var ok bool
		if sh, ok = m.byID[req.Shard]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchShard, req.Shard)
		}
	} else {
		sh = m.pick()
	}
	return sh.Submit(ctx, req)
}

// Stats snapshots every shard's counters, in configuration order.
func (m *Manager) Stats() []ShardStats {
	out := make([]ShardStats, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.Stats()
	}
	return out
}

// Healthy reports whether every shard loop is live (always false before
// Start, and false after Stop or a shard exit).
func (m *Manager) Healthy() bool {
	if !m.started.Load() {
		return false
	}
	for _, sh := range m.shards {
		if !sh.Running() {
			return false
		}
	}
	return true
}
