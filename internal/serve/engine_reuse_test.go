package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/sensordata"
)

// TestShardEngineDonation checks the serving-layer engine-reuse path: a
// replacement shard built on a retired shard's engine replays the
// retiree's admission log to identical responses.
func TestShardEngineDonation(t *testing.T) {
	cfg := ShardConfig{ID: "live", Scenario: testScenario(1)}
	live, err := NewShard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = live.Serve(ctx) }()

	var want []*Response
	for i := 0; i < 5; i++ {
		resp, err := live.Submit(context.Background(), Request{Type: sensordata.Temperature, Lo: 5, Hi: 30})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, resp)
	}
	log := live.AdmittedLog()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("live shard did not stop")
	}

	replCfg := cfg
	replCfg.ID = "live" // same identity, reproduced run
	repl, err := NewShardWithEngine(replCfg, live.Engine())
	if err != nil {
		t.Fatal(err)
	}
	got, err := repl.Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replay returned %d responses, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].QueryID != got[i].QueryID ||
			want[i].AdmittedEpoch != got[i].AdmittedEpoch ||
			want[i].AnsweredEpoch != got[i].AnsweredEpoch ||
			want[i].Accuracy != got[i].Accuracy ||
			want[i].Cost != got[i].Cost {
			t.Fatalf("response %d differs on donated engine:\nlive:   %+v\nreplay: %+v",
				i, want[i], got[i])
		}
	}
}
