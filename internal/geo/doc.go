// Package geo adds the paper's optional location attribute (§2: DirQ can
// route on "location (static) if it is available"). Because positions are
// static, no update traffic is needed: each node's subtree bounding box is
// computed once from the deployed tree and only changes on topology churn.
// A location-constrained query is then forwarded down a tree edge only if
// the child's subtree box intersects the query rectangle AND its value
// range matches — pruning whole regions that a value-only query would
// still have to visit.
//
// In the repo's layer map this is an extension over core and topology
// (examples/georange demonstrates it).
package geo
