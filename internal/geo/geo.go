package geo

import (
	"fmt"

	"repro/internal/topology"
)

// Index precomputes per-subtree bounding boxes over a communication tree.
// Rebuild must be called after topology churn (node death / join); between
// rebuilds stale boxes only ever shrink coverage for detached nodes, never
// route wrongly for attached ones whose position set is unchanged.
type Index struct {
	pos   func(topology.NodeID) topology.Position
	boxes map[topology.NodeID]topology.Rect
}

// NewIndex builds the index for the given tree; pos maps nodes to their
// static positions.
func NewIndex(tree *topology.Tree, pos func(topology.NodeID) topology.Position) (*Index, error) {
	if tree == nil || pos == nil {
		return nil, fmt.Errorf("geo: nil tree or position map")
	}
	idx := &Index{pos: pos}
	idx.Rebuild(tree)
	return idx, nil
}

// Rebuild recomputes every subtree box bottom-up.
func (ix *Index) Rebuild(tree *topology.Tree) {
	ix.boxes = make(map[topology.NodeID]topology.Rect, tree.Len())
	// Post-order accumulation: process nodes deepest-first.
	order := tree.Subtree(tree.Root())
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		box := topology.RectAround(ix.pos(id))
		for _, c := range tree.Children(id) {
			if cb, ok := ix.boxes[c]; ok {
				box = box.Union(cb)
			}
		}
		ix.boxes[id] = box
	}
}

// SubtreeBox returns the bounding box of id's subtree; ok is false for
// nodes absent at the last Rebuild.
func (ix *Index) SubtreeBox(id topology.NodeID) (topology.Rect, bool) {
	b, ok := ix.boxes[id]
	return b, ok
}

// Position returns a node's static position.
func (ix *Index) Position(id topology.NodeID) topology.Position {
	return ix.pos(id)
}
