package geo

import (
	"testing"

	"repro/internal/topology"
)

func posMap(positions map[topology.NodeID]topology.Position) func(topology.NodeID) topology.Position {
	return func(id topology.NodeID) topology.Position { return positions[id] }
}

func buildTree(t *testing.T) (*topology.Tree, map[topology.NodeID]topology.Position) {
	t.Helper()
	tr := topology.NewTree(0)
	for _, e := range [][2]topology.NodeID{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}} {
		if err := tr.Attach(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	pos := map[topology.NodeID]topology.Position{
		0: {X: 50, Y: 0},
		1: {X: 20, Y: 20}, 3: {X: 10, Y: 40}, 4: {X: 30, Y: 45},
		2: {X: 80, Y: 20}, 5: {X: 90, Y: 50},
	}
	return tr, pos
}

func TestNewIndexValidation(t *testing.T) {
	tr, pos := buildTree(t)
	if _, err := NewIndex(nil, posMap(pos)); err == nil {
		t.Fatal("nil tree accepted")
	}
	if _, err := NewIndex(tr, nil); err == nil {
		t.Fatal("nil pos accepted")
	}
}

func TestSubtreeBoxes(t *testing.T) {
	tr, pos := buildTree(t)
	ix, err := NewIndex(tr, posMap(pos))
	if err != nil {
		t.Fatal(err)
	}
	// Leaf box is its own point.
	b3, ok := ix.SubtreeBox(3)
	if !ok || b3 != topology.RectAround(pos[3]) {
		t.Fatalf("leaf box %+v", b3)
	}
	// Node 1's box covers 1, 3, 4.
	b1, _ := ix.SubtreeBox(1)
	for _, id := range []topology.NodeID{1, 3, 4} {
		if !b1.Contains(pos[id]) {
			t.Fatalf("box of 1 %v misses node %d at %v", b1, id, pos[id])
		}
	}
	if b1.Contains(pos[5]) {
		t.Fatalf("box of 1 %v wrongly covers node 5", b1)
	}
	// Root box covers everything.
	b0, _ := ix.SubtreeBox(0)
	for id, p := range pos {
		if !b0.Contains(p) {
			t.Fatalf("root box misses node %d", id)
		}
	}
}

func TestRebuildAfterDetach(t *testing.T) {
	tr, pos := buildTree(t)
	ix, err := NewIndex(tr, posMap(pos))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Detach(2); err != nil {
		t.Fatal(err)
	}
	ix.Rebuild(tr)
	if _, ok := ix.SubtreeBox(2); ok {
		t.Fatal("detached subtree still indexed")
	}
	b0, _ := ix.SubtreeBox(0)
	if b0.Contains(pos[5]) {
		t.Fatal("root box still covers detached node 5")
	}
}
