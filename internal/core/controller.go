package core

// Controller decides a node's threshold δ (as a percentage of the sensor
// type's physical span). §6's Adaptive Threshold Control is one
// implementation (package atc); FixedController reproduces the fixed-δ
// configurations of §7.1.
type Controller interface {
	// DeltaPct returns the node's current threshold in percent of span.
	DeltaPct() float64
	// OnEstimate is invoked when an hourly EHr estimate reaches the node.
	OnEstimate(e EstimateMsg)
	// OnEpoch is invoked once per epoch with the node's current data
	// volatility, normalized to the sensor span (mean absolute change per
	// epoch as a fraction of span, averaged over mounted sensor types).
	OnEpoch(normVolatility float64)
	// OnUpdateSent is invoked whenever the node transmits one Update
	// Message.
	OnUpdateSent()
}

// FixedController keeps δ constant — the paper's δ = 3 %, 5 %, 9 % runs.
type FixedController struct {
	Pct float64
}

// DeltaPct returns the fixed threshold.
func (f *FixedController) DeltaPct() float64 { return f.Pct }

// OnEstimate is a no-op for a fixed threshold.
func (f *FixedController) OnEstimate(EstimateMsg) {}

// OnEpoch is a no-op for a fixed threshold.
func (f *FixedController) OnEpoch(float64) {}

// OnUpdateSent is a no-op for a fixed threshold.
func (f *FixedController) OnUpdateSent() {}

// GatingProfile is an optional Controller capability describing which
// per-epoch inputs the controller actually consumes. The protocol uses it
// to gate the epoch hot loop: when a node's controller provably ignores
// data volatility, quiet (node, type) pairs can skip field evaluation and
// the hysteresis check entirely without changing a single observable
// output. Controllers that do not implement the interface are assumed to
// need everything (the ATC does: its feedforward reads the volatility
// EWMA, which only stays exact if every reading is observed).
type GatingProfile interface {
	// NeedsVolatility reports whether the argument to OnEpoch influences
	// the controller's outputs.
	NeedsVolatility() bool
	// NeedsEpochTick reports whether OnEpoch must still be invoked every
	// epoch — e.g. to advance an internal clock — even when its argument
	// is ignored.
	NeedsEpochTick() bool
}

var _ GatingProfile = (*FixedController)(nil)
var _ GatingProfile = (*FreezeController)(nil)

// NeedsVolatility implements GatingProfile: a fixed threshold ignores it.
func (f *FixedController) NeedsVolatility() bool { return false }

// NeedsEpochTick implements GatingProfile: OnEpoch is a pure no-op.
func (f *FixedController) NeedsEpochTick() bool { return false }

// NeedsVolatility implements GatingProfile: the freeze schedule ignores it.
func (f *FreezeController) NeedsVolatility() bool { return false }

// NeedsEpochTick implements GatingProfile: OnEpoch advances the freeze
// clock, so it must keep firing every epoch.
func (f *FreezeController) NeedsEpochTick() bool { return true }

// Retunable is an optional Controller capability: live retargeting of the
// threshold while a run is in progress (scripted scenario dynamics use it
// to model an operator retuning the deployment). Fixed controllers take
// the new percentage verbatim; the ATC reinterprets it as a new ceiling
// for its control band.
type Retunable interface {
	Retune(pct float64)
}

var _ Retunable = (*FixedController)(nil)
var _ Retunable = (*FreezeController)(nil)

// Retune sets the fixed threshold.
func (f *FixedController) Retune(pct float64) { f.Pct = pct }

// Retune sets the fixed threshold (the freeze schedule is unaffected).
func (f *FreezeController) Retune(pct float64) { f.Pct = pct }

// UpdateFreezer is an optional Controller capability: while UpdatesFrozen
// reports true the node suppresses all Update Messages, leaving ancestors
// with whatever range information they last received. This models the
// Semantic Routing Tree baseline of §2 — a distributed index built once
// and never refreshed, "more suited for constant attributes such as
// location", against which DirQ's update mechanism is the contribution.
type UpdateFreezer interface {
	UpdatesFrozen() bool
}

// FreezeController behaves like a FixedController for AfterEpochs epochs
// (letting the index build), then freezes all update traffic.
type FreezeController struct {
	Pct         float64
	AfterEpochs int
	epochs      int
}

var _ Controller = (*FreezeController)(nil)
var _ UpdateFreezer = (*FreezeController)(nil)

// DeltaPct returns the fixed threshold.
func (f *FreezeController) DeltaPct() float64 { return f.Pct }

// OnEstimate is a no-op.
func (f *FreezeController) OnEstimate(EstimateMsg) {}

// OnEpoch advances the freeze clock.
func (f *FreezeController) OnEpoch(float64) { f.epochs++ }

// OnUpdateSent is a no-op.
func (f *FreezeController) OnUpdateSent() {}

// UpdatesFrozen reports whether the index-build phase has ended.
func (f *FreezeController) UpdatesFrozen() bool { return f.epochs >= f.AfterEpochs }
