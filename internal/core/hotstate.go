package core

import (
	"math"

	"repro/internal/sensordata"
	"repro/internal/topology"
)

// hotState is the protocol-owned struct-of-arrays view of everything the
// per-epoch hot loop needs: per-node participation and gate-capability
// flags, the per-(type, node) own-tuple windows the quiescence sweep tests
// readings against, and the epoch-stamped active-node worklist that
// replaces the classic sweep over all N nodes.
//
// The windows double as the loop's control flow, via two sentinels:
//
//	(+Inf, -Inf)  always active  — evaluate every epoch (no own tuple yet,
//	                               or the node's controller needs exact
//	                               volatility so gating is off for it)
//	(-Inf, +Inf)  never active   — type unmounted, node dead or undeployed
//
// For a gated node with an established own tuple the window IS the tuple
// [THmin, THmax]: as long as the reading provably stays inside it, the
// hysteresis rule cannot fire, no Update Message can result, and — for a
// volatility-blind controller — no other state depends on the reading, so
// the whole (node, type) epoch step is skipped.
type hotState struct {
	// gate[i]: quiet types of this node may be skipped entirely (controller
	// ignores volatility, no sample gate installed, gating not disabled).
	gate []bool
	// deployed[i]: the node takes part in the epoch loop (in the tree or
	// orphaned-but-sampling). Liveness is checked separately — power flips
	// happen at the MAC layer and reach the protocol only via the
	// cross-layer death notification.
	deployed []bool

	// lo/hi[t][i] are the per-type windows fed to Generator.ActiveSweep.
	lo, hi [sensordata.NumTypes][]float64

	// tickList: gated nodes whose controller still needs OnEpoch every
	// epoch (e.g. the static-index freeze clock).
	tickList []int32

	// Worklist scratch: nodes active this epoch (ascending), the stamp that
	// dedups them across per-type sweeps, and the per-node mask of active
	// types.
	active   []int32
	stamp    []int64
	mask     []uint8
	scratch  []int32
	disabled bool // DisableGating: every mounted pair stays always-active
}

func (h *hotState) init(n int, disabled bool) {
	h.disabled = disabled
	h.gate = make([]bool, n)
	h.deployed = make([]bool, n)
	for t := range h.lo {
		h.lo[t] = make([]float64, n)
		h.hi[t] = make([]float64, n)
	}
	h.stamp = make([]int64, n)
	h.mask = make([]uint8, n)
	h.active = make([]int32, 0, n)
	h.scratch = make([]int32, 0, n)
}

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)

// setNeverActive parks one (node, type) pair: the sweep will never surface
// it.
func (h *hotState) setNeverActive(i int, t sensordata.Type) {
	h.lo[t][i], h.hi[t][i] = negInf, posInf
}

// setAlwaysActive forces one (node, type) pair into every epoch's worklist.
func (h *hotState) setAlwaysActive(i int, t sensordata.Type) {
	h.lo[t][i], h.hi[t][i] = posInf, negInf
}

// parkNode takes a node out of the epoch loop entirely (death detected,
// never deployed).
func (h *hotState) parkNode(i int) {
	for t := range h.lo {
		h.lo[t][i], h.hi[t][i] = negInf, posInf
	}
}

// profileOf reports the conservative gating capabilities of a controller.
func profileOf(c Controller) (needsVol, needsTick bool) {
	if gp, ok := c.(GatingProfile); ok {
		return gp.NeedsVolatility(), gp.NeedsEpochTick()
	}
	return true, true
}

// configureNode (re)derives a node's gate flag, windows and tick-list
// membership from its controller and sensor complement. Called at
// construction and whenever the node object is replaced (JoinNode).
func (p *Protocol) configureNode(i int) {
	h := &p.hot
	node := p.nodes[i]
	needsVol, needsTick := profileOf(node.Controller())
	h.gate[i] = !h.disabled && p.cfg.Sampler == nil && !needsVol
	for _, t := range sensordata.AllTypes() {
		switch {
		case !node.Mounted().Has(t):
			h.setNeverActive(i, t)
		case h.gate[i]:
			p.refreshWindow(i, t)
		default:
			h.setAlwaysActive(i, t)
		}
	}
	// The windows were rewritten outside the sweep→sample→refresh cycle,
	// so the generator's escape calendar must re-examine this node.
	p.gen.MarkWindowDirty(topology.NodeID(i))
	p.rebuildTickList(i, h.gate[i] && needsTick)
}

// rebuildTickList adds or removes one node from the tick list.
func (p *Protocol) rebuildTickList(i int, member bool) {
	h := &p.hot
	for k, id := range h.tickList {
		if int(id) == i {
			if !member {
				h.tickList = append(h.tickList[:k], h.tickList[k+1:]...)
			}
			return
		}
	}
	if member {
		h.tickList = append(h.tickList, int32(i))
		// Keep ascending order so per-epoch controller ticks visit nodes in
		// the same order the classic sweep did.
		for k := len(h.tickList) - 1; k > 0 && h.tickList[k-1] > h.tickList[k]; k-- {
			h.tickList[k-1], h.tickList[k] = h.tickList[k], h.tickList[k-1]
		}
	}
}

// refreshWindow re-arms one gated (node, type) pair's sweep window from
// the node's current own tuple.
func (p *Protocol) refreshWindow(i int, t sensordata.Type) {
	h := &p.hot
	if rt := p.nodes[i].tables[t]; rt != nil {
		if own, ok := rt.Own(); ok {
			h.lo[t][i], h.hi[t][i] = own.Min, own.Max
			return
		}
	}
	h.setAlwaysActive(i, t)
}
