package core

import (
	"strings"
	"testing"

	"repro/internal/sensordata"
	"repro/internal/topology"
)

func TestFixedControllerNoOps(t *testing.T) {
	c := &FixedController{Pct: 7}
	c.OnEstimate(EstimateMsg{Seq: 1})
	c.OnEpoch(0.5)
	c.OnUpdateSent()
	if c.DeltaPct() != 7 {
		t.Fatalf("DeltaPct = %v", c.DeltaPct())
	}
}

func TestFreezeController(t *testing.T) {
	c := &FreezeController{Pct: 3, AfterEpochs: 5}
	if c.DeltaPct() != 3 {
		t.Fatalf("DeltaPct = %v", c.DeltaPct())
	}
	c.OnEstimate(EstimateMsg{})
	c.OnUpdateSent()
	for i := 0; i < 4; i++ {
		c.OnEpoch(0)
		if c.UpdatesFrozen() {
			t.Fatalf("frozen too early at epoch %d", i)
		}
	}
	c.OnEpoch(0)
	if !c.UpdatesFrozen() {
		t.Fatal("not frozen after AfterEpochs")
	}
}

func TestFrozenNodeSuppressesUpdates(t *testing.T) {
	tr := &fakeTransport{}
	ctrl := &FreezeController{Pct: 3, AfterEpochs: 0} // frozen from the start
	n := NewNode(5, tempOnly(), ctrl, tr, &fakeObserver{})
	n.SetParent(2, true)
	n.OnReading(sensordata.Temperature, 20)
	n.OnReading(sensordata.Temperature, 35)
	if len(tr.unicasts) != 0 {
		t.Fatalf("frozen node transmitted %d updates", len(tr.unicasts))
	}
	// Local table still tracks readings (the node answers queries fresh).
	own, ok := n.Table(sensordata.Temperature).Own()
	if !ok || !own.Intersects(35, 35) {
		t.Fatalf("frozen node's own tuple %+v stale", own)
	}
}

func TestMessageStrings(t *testing.T) {
	u := UpdateMsg{Type: sensordata.Humidity, Min: 1, Max: 2, Present: true}
	if !strings.Contains(u.String(), "humidity") {
		t.Fatalf("UpdateMsg.String() = %q", u.String())
	}
	w := UpdateMsg{Type: sensordata.Light, Present: false}
	if !strings.Contains(w.String(), "withdrawn") {
		t.Fatalf("withdrawal String() = %q", w.String())
	}
}

func TestNodeAccessors(t *testing.T) {
	n := NewNode(9, tempOnly(), &FixedController{Pct: 4}, &fakeTransport{}, &fakeObserver{})
	if n.ID() != 9 {
		t.Fatalf("ID = %d", n.ID())
	}
	if n.DeltaPct() != 4 {
		t.Fatalf("DeltaPct = %v", n.DeltaPct())
	}
	if _, ok := n.Parent(); ok {
		t.Fatal("fresh node has a parent")
	}
	n.SetParent(3, true)
	if p, ok := n.Parent(); !ok || p != 3 {
		t.Fatalf("Parent = %d,%v", p, ok)
	}
}

func TestResetTreeLinks(t *testing.T) {
	tr := &fakeTransport{}
	n := NewNode(2, tempOnly(), &FixedController{Pct: 4}, tr, &fakeObserver{})
	n.SetParent(0, true)
	n.AddChild(5)
	n.OnReading(sensordata.Temperature, 20)
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 1, Max: 2, Present: true})
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Humidity, Min: 3, Max: 4, Present: true})

	n.ResetTreeLinks()
	if _, ok := n.Parent(); ok {
		t.Fatal("parent survived reset")
	}
	if len(n.Children()) != 0 {
		t.Fatal("children survived reset")
	}
	// Humidity table held only the child row: it must be gone entirely.
	if n.Table(sensordata.Humidity) != nil {
		t.Fatal("child-only table survived reset")
	}
	// Temperature table keeps the own tuple but no child rows.
	rt := n.Table(sensordata.Temperature)
	if rt == nil {
		t.Fatal("own-tuple table destroyed by reset")
	}
	if len(rt.Children()) != 0 {
		t.Fatal("child rows survived reset")
	}
	if _, ok := rt.Own(); !ok {
		t.Fatal("own tuple lost in reset")
	}
	// After re-attachment, ResendAll re-reports from scratch.
	n.SetParent(7, true)
	n.ResendAll()
	if len(tr.unicasts) == 0 {
		t.Fatal("no re-report after reset+reattach")
	}
	last := tr.unicasts[len(tr.unicasts)-1]
	if last.to != 7 {
		t.Fatalf("re-report addressed to %d", last.to)
	}
}

func TestProtocolAccessors(t *testing.T) {
	tn := buildNet(t, 10, 51, fixedCfg(5))
	if tn.proto.Tree() != tn.tree {
		t.Fatal("Tree accessor")
	}
	if tn.proto.Predictor() == nil {
		t.Fatal("Predictor accessor")
	}
	if tn.proto.EstimateSeq() != 0 {
		t.Fatal("estimates before start")
	}
	tn.run(250)
	if tn.proto.EstimateSeq() == 0 {
		t.Fatal("no estimates after 2+ hours")
	}
	if len(tn.proto.EstimatesEmitted()) != int(tn.proto.EstimateSeq()) {
		t.Fatal("EstimatesEmitted length mismatch")
	}
	_ = topology.Root
}
