package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/lmac"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// BudgetFunc computes the per-node hourly Update Message budget the root
// attaches to its EHr broadcast. The ATC package provides the real
// implementation; a nil func sends a zero budget (fixed-δ runs ignore it).
type BudgetFunc func(queriesPerHr int) float64

// ControllerFactory builds the threshold controller for one node.
type ControllerFactory func(id topology.NodeID) Controller

// SampleGate lets an energy-saving policy decide, per epoch, whether a
// node physically samples a sensor (the §8 extension: predictive sampling
// to cut acquisition cost). ShouldSample receives the node's current own
// tuple so the gate can tell whether a skipped reading could possibly have
// triggered a table change; OnSample feeds every real measurement back.
type SampleGate interface {
	ShouldSample(id topology.NodeID, t sensordata.Type, own Tuple, hasOwn bool) bool
	OnSample(id topology.NodeID, t sensordata.Type, v float64)
}

// Config parameterizes a Protocol instance.
type Config struct {
	// EpochsPerHour maps the paper's hourly estimate cycle onto epochs.
	EpochsPerHour int
	// MaxFanout and MaxDepth are the spanning-tree caps (the paper's k and
	// d), reused when re-attaching orphans after node deaths.
	MaxFanout int
	MaxDepth  int
	// Controllers builds each node's threshold controller.
	Controllers ControllerFactory
	// Budget computes the per-node update budget broadcast with EHr.
	Budget BudgetFunc
	// Sampler optionally gates physical sensor acquisitions (nil = sample
	// every epoch, the paper's §7 behaviour).
	Sampler SampleGate
	// Trace optionally receives protocol events (nil = no tracing).
	Trace func(TraceEvent)
	// PredictorAlpha smooths the root's hourly query-count forecast.
	PredictorAlpha float64
	// DisableGating forces the pre-gating epoch loop: every live node
	// evaluates every mounted sensor every epoch, regardless of controller
	// capabilities. The gated loop is proven equivalent, so this exists
	// only as the "naive" reference for tests and scale benchmarks.
	DisableGating bool
	// Workers and Shards enable the intra-epoch sharded engine: the tree
	// is partitioned into Shards subtree groups and each epoch's sweep and
	// apply phases fan out across Workers, merging deterministically at
	// the epoch boundary. Requires Workers non-nil and Shards > 1; modes
	// whose per-node work shares serial state (DisableGating, a Sampler,
	// a Trace sink) fall back to the serial loop, which is trivially
	// byte-identical.
	Workers *sim.Workers
	Shards  int
	// Telemetry optionally instruments the protocol. The zero value
	// disables all counters (every instrument is nil-safe); nothing here
	// reads back into protocol decisions.
	Telemetry Telemetry
}

// Telemetry is the protocol's instrument set. All fields may be nil.
type Telemetry struct {
	// Epochs counts RunEpoch invocations.
	Epochs *telemetry.Counter
	// ActiveNodes counts nodes processed across all epochs (the worklist
	// under gating; every live deployed node under the naive loop).
	ActiveNodes *telemetry.Counter
	// ActiveSetSize is the per-epoch distribution of worklist sizes.
	ActiveSetSize *telemetry.Histogram
	// TuplesSent counts Update Messages transmitted by all nodes.
	TuplesSent *telemetry.Counter
	// Retunes counts controllers that accepted a RetuneAll change.
	Retunes *telemetry.Counter
	// ShardActive counts worklist nodes applied per shard (index = shard).
	// Nil or shorter-than-Shards slices disable the per-shard counts.
	ShardActive []*telemetry.Counter
	// ShardImbalance observes, per sharded epoch, the spread (max − min)
	// of per-shard worklist sizes — the load-balance quality signal.
	ShardImbalance *telemetry.Histogram
}

// DefaultConfig returns the paper-default parameters: 100 epochs per hour,
// k=8, d=10, fixed δ=5 %.
func DefaultConfig() Config {
	return Config{
		EpochsPerHour:  100,
		MaxFanout:      8,
		MaxDepth:       10,
		Controllers:    func(topology.NodeID) Controller { return &FixedController{Pct: 5} },
		PredictorAlpha: 0.3,
	}
}

// QueryRecord tracks one query's dissemination outcome against its
// ground truth at injection time.
type QueryRecord struct {
	Query      query.Query
	Truth      query.GroundTruth
	InjectedAt sim.Time
	Received   map[topology.NodeID]bool
	Sources    map[topology.NodeID]bool
}

// Protocol runs DirQ over a network: it owns the per-node state machines,
// binds them to the MAC, drives sensor acquisition each epoch, distributes
// hourly estimates, injects queries at the root, and repairs the tree on
// cross-layer death/join notifications.
type Protocol struct {
	engine  *sim.Engine
	mac     *lmac.MAC
	channel *radio.Channel
	tree    *topology.Tree
	gen     *sensordata.Generator
	mounted []sensordata.TypeSet
	cfg     Config

	nodes     []*Node
	records   map[int64]*QueryRecord
	order     []int64 // record insertion order
	predictor *query.Predictor

	estimateSeq int64
	emitted     []EstimateMsg
	deadSeen    map[topology.NodeID]bool
	orphaned    map[topology.NodeID]bool
	started     bool

	// updPool recycles Update Message boxes across all nodes: sender takes,
	// single unicast receiver returns.
	updPool updateMsgPool

	// hot is the flat per-node state driving the activity-gated epoch loop.
	hot hotState

	// Sharded-engine state (see sharded.go). sharded is true when this
	// run's config both requests and supports the parallel epoch loop.
	sharded    bool
	shardOf    []int32         // node -> owning shard (subtree partition)
	shardPools []updateMsgPool // per-shard Update Message pools
	sweepFrom  []int           // per-range sweep bounds (contiguous IDs)
	sweepTo    []int
	sweepDst   [][]int32 // per-range worklist buffers
	shardLoad  []int64   // per-epoch per-shard active counts (scratch)
}

// New wires a Protocol over an existing engine, MAC, tree and dataset.
func New(engine *sim.Engine, mac *lmac.MAC, channel *radio.Channel,
	tree *topology.Tree, gen *sensordata.Generator,
	mounted []sensordata.TypeSet, cfg Config) (*Protocol, error) {

	if cfg.EpochsPerHour < 1 {
		return nil, fmt.Errorf("core: EpochsPerHour %d < 1", cfg.EpochsPerHour)
	}
	if cfg.MaxFanout < 1 || cfg.MaxDepth < 1 {
		return nil, fmt.Errorf("core: invalid tree caps fanout=%d depth=%d", cfg.MaxFanout, cfg.MaxDepth)
	}
	if cfg.Controllers == nil {
		return nil, fmt.Errorf("core: Controllers factory is required")
	}
	if len(mounted) != gen.NumNodes() {
		return nil, fmt.Errorf("core: %d type sets for %d nodes", len(mounted), gen.NumNodes())
	}
	alpha := cfg.PredictorAlpha
	if alpha == 0 {
		alpha = 0.3
	}
	pred, err := query.NewPredictor(alpha)
	if err != nil {
		return nil, err
	}
	p := &Protocol{
		engine: engine, mac: mac, channel: channel, tree: tree, gen: gen,
		mounted: mounted, cfg: cfg,
		records: map[int64]*QueryRecord{}, predictor: pred,
		deadSeen: map[topology.NodeID]bool{}, orphaned: map[topology.NodeID]bool{},
	}
	// Node state is built in one pass over two backing arrays (all Node
	// structs, then all mounted Volatility estimators) instead of per-node
	// heap objects — at 100k nodes this is the difference between a
	// handful of allocations and half a million.
	p.nodes = make([]*Node, gen.NumNodes())
	backing := make([]Node, gen.NumNodes())
	nvol := 0
	for i := range backing {
		nvol += mounted[i].Len()
	}
	vols := make([]sensordata.Volatility, nvol) // zero value = DefaultAlpha
	vc := 0
	for i := range p.nodes {
		id := topology.NodeID(i)
		nd := &backing[i]
		nd.id = id
		nd.mounted = mounted[i]
		nd.ctrl = cfg.Controllers(id)
		nd.transport = mac
		nd.observer = p
		nd.lastEstimateSeq = -1
		for _, t := range mounted[i].Types() {
			nd.vol[t] = &vols[vc]
			vc++
		}
		nd.SetTrace(cfg.Trace)
		nd.msgPool = &p.updPool
		nd.telUpdates = cfg.Telemetry.TuplesSent
		p.nodes[i] = nd
	}
	// Tree wiring: parents and child lists.
	for _, id := range tree.Nodes() {
		if par, ok := tree.Parent(id); ok {
			p.nodes[id].SetParent(par, true)
			p.nodes[par].AddChild(id)
		}
	}
	// Hot-state wiring: gate capabilities, sweep windows, participation.
	p.hot.init(len(p.nodes), cfg.DisableGating)
	for i := range p.nodes {
		p.configureNode(i)
		if tree.Contains(topology.NodeID(i)) {
			p.hot.deployed[i] = true
		} else {
			p.hot.parkNode(i)
			p.gen.MarkWindowDirty(topology.NodeID(i))
		}
	}
	// Sharded-engine wiring: subtree partition, per-shard message pools,
	// contiguous sweep ranges and the MAC's staged dirty-merge buffers.
	// Modes whose per-node work shares serial state keep the serial loop
	// (see Config.Workers); their outputs are the reference either way.
	p.sharded = cfg.Shards > 1 && cfg.Workers != nil &&
		!cfg.DisableGating && cfg.Sampler == nil && cfg.Trace == nil
	if p.sharded {
		k := cfg.Shards
		n := len(p.nodes)
		p.shardOf = topology.PartitionSubtrees(tree, n, k)
		p.shardPools = make([]updateMsgPool, k)
		for i := range p.nodes {
			p.nodes[i].msgPool = &p.shardPools[p.shardOf[i]]
		}
		p.sweepFrom = make([]int, k)
		p.sweepTo = make([]int, k)
		p.sweepDst = make([][]int32, k)
		for r := 0; r < k; r++ {
			p.sweepFrom[r] = r * n / k
			p.sweepTo[r] = (r + 1) * n / k
		}
		p.shardLoad = make([]int64, k)
		mac.ConfigureSharding(p.shardOf, k)
	}
	// MAC wiring: deliveries and cross-layer notifications.
	for i := range p.nodes {
		mac.Listen(topology.NodeID(i), p.nodes[i].HandleMessage)
	}
	mac.OnNeighborDead(p.onNeighborDead)
	mac.OnNeighborNew(func(at, fresh topology.NodeID) {})
	mac.Init()
	return p, nil
}

// Node returns the state machine of one node.
func (p *Protocol) Node(id topology.NodeID) *Node { return p.nodes[id] }

// Tree returns the current communication tree.
func (p *Protocol) Tree() *topology.Tree { return p.tree }

// OrphanCount returns the number of nodes currently orphaned — an O(1)
// alternative to len(Orphans()) for per-epoch health checks.
func (p *Protocol) OrphanCount() int { return len(p.orphaned) }

// Orphans returns nodes that lost their tree attachment and could not be
// re-attached, in ascending order.
func (p *Protocol) Orphans() []topology.NodeID {
	var out []topology.NodeID
	for id := range p.orphaned {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueryReceived implements QueryObserver.
func (p *Protocol) QueryReceived(id topology.NodeID, queryID int64) {
	if r, ok := p.records[queryID]; ok {
		r.Received[id] = true
	}
}

// QuerySource implements QueryObserver.
func (p *Protocol) QuerySource(id topology.NodeID, queryID int64) {
	if r, ok := p.records[queryID]; ok {
		r.Sources[id] = true
	}
}

// Start registers the per-epoch application loop (sensor acquisition and
// hourly estimates) as an engine ticker, so the epoch drive costs no event-
// queue traffic. Call once, before running the engine; the MAC must be
// started separately.
func (p *Protocol) Start() {
	if p.started {
		panic("core: Protocol.Start called twice")
	}
	p.started = true
	p.engine.AddTicker(lmac.PrioApp, p.RunEpoch)
}

// RunEpoch performs one epoch of application work: every live node samples
// each of its mounted sensor types ("Each sensor acquires a reading every
// time unit", §7) and, on hour boundaries, the root emits its estimate.
// The data generator must have been advanced (or be at) the current epoch.
//
// The loop is activity-gated: a conservative per-type sweep (see
// sensordata.ActiveSweep) builds the epoch's worklist of nodes whose
// readings could possibly escape their hysteresis window; everyone else is
// provably unobservable this epoch — no field evaluation, no hysteresis
// check, no update decision — so per-epoch cost tracks activity rather
// than network size. Nodes whose controller consumes real volatility (the
// ATC), runs under a sample gate, or has no own tuple yet ride permanent
// always-active windows and take the exact classic path, which keeps every
// mode's outputs byte-identical to the ungated loop.
func (p *Protocol) RunEpoch() {
	now := p.engine.Now()
	if now > 0 {
		p.gen.Step()
	}
	p.cfg.Telemetry.Epochs.Inc()
	h := &p.hot
	if h.disabled {
		// The honest naive reference: the classic full sweep, with no
		// worklist bookkeeping at all, so -naive timing comparisons measure
		// the true pre-gating loop.
		p.runEpochNaive()
		if p.cfg.EpochsPerHour > 0 && now%sim.Time(p.cfg.EpochsPerHour) == 0 && now > 0 {
			p.emitEstimate()
		}
		return
	}
	if p.sharded {
		p.runEpochSharded(now)
		return
	}

	// Build the worklist, node-major ascending so processing order — and
	// with it trace order and each node's MAC queue content — matches the
	// classic full sweep exactly.
	gen := int64(now) + 1
	active := h.active[:0]
	for _, t := range sensordata.AllTypes() {
		h.scratch = p.gen.ActiveSweep(t, h.lo[t], h.hi[t], h.scratch[:0])
		for _, i := range h.scratch {
			if h.stamp[i] != gen {
				h.stamp[i] = gen
				h.mask[i] = 0
				active = append(active, i)
			}
			h.mask[i] |= 1 << uint(t)
		}
	}
	h.active = active
	slices.Sort(active)
	p.cfg.Telemetry.ActiveSetSize.Observe(float64(len(active)))
	p.cfg.Telemetry.ActiveNodes.Add(int64(len(active)))

	for _, ai := range active {
		i := int(ai)
		id := topology.NodeID(i)
		if !p.channel.Alive(id) || !h.deployed[i] {
			continue
		}
		node := p.nodes[i]
		if h.gate[i] {
			mask := h.mask[i]
			for _, t := range node.Mounted().Types() {
				if mask&(1<<uint(t)) == 0 {
					continue
				}
				node.OnReading(t, p.gen.Value(id, t))
				p.refreshWindow(i, t)
			}
			continue // controller tick, if any, happens via tickList below
		}
		p.sampleNodeClassic(i) // ungated node: the classic per-node step
	}

	// Epoch clocks of gated controllers that still count epochs (the
	// static-index freeze schedule) keep ticking even on quiet epochs.
	for _, ti := range h.tickList {
		i := int(ti)
		id := topology.NodeID(i)
		if !p.channel.Alive(id) || !h.deployed[i] {
			continue
		}
		p.nodes[i].TickEpoch()
	}

	if p.cfg.EpochsPerHour > 0 && now%sim.Time(p.cfg.EpochsPerHour) == 0 && now > 0 {
		p.emitEstimate()
	}
}

// runEpochNaive is the pre-gating epoch body: every live deployed node
// samples every mounted type, every epoch, with no worklist bookkeeping.
func (p *Protocol) runEpochNaive() {
	processed := 0
	for i := range p.nodes {
		id := topology.NodeID(i)
		if !p.channel.Alive(id) {
			continue
		}
		if !p.tree.Contains(id) && !p.orphaned[id] {
			continue // not yet deployed
		}
		p.sampleNodeClassic(i)
		processed++
	}
	p.cfg.Telemetry.ActiveSetSize.Observe(float64(processed))
	p.cfg.Telemetry.ActiveNodes.Add(int64(processed))
}

// sampleNodeClassic is one node's classic epoch step — every mounted type
// read (through the optional sample gate), then the controller fed the
// node's volatility. Used for ungated nodes in the gated loop and for the
// whole network in the naive reference loop.
func (p *Protocol) sampleNodeClassic(i int) {
	id := topology.NodeID(i)
	node := p.nodes[i]
	for _, t := range node.Mounted().Types() {
		if p.cfg.Sampler != nil {
			var own Tuple
			hasOwn := false
			if rt := node.Table(t); rt != nil {
				own, hasOwn = rt.Own()
			}
			if !p.cfg.Sampler.ShouldSample(id, t, own, hasOwn) {
				continue
			}
			v := p.gen.Value(id, t)
			p.cfg.Sampler.OnSample(id, t, v)
			node.OnReading(t, v)
			continue
		}
		node.OnReading(t, p.gen.Value(id, t))
	}
	node.EndEpoch()
}

// emitEstimate closes the root's accounting hour and multicasts the next
// hour's forecast and budget down the tree.
func (p *Protocol) emitEstimate() {
	p.predictor.EndHour()
	eHr := p.predictor.PredictNextHour()
	budget := 0.0
	if p.cfg.Budget != nil {
		budget = p.cfg.Budget(eHr)
	}
	p.estimateSeq++
	msg := EstimateMsg{Seq: p.estimateSeq, QueriesPerHr: eHr, BudgetPerNode: budget}
	p.emitted = append(p.emitted, msg)
	if p.cfg.Trace != nil {
		p.cfg.Trace(TraceEvent{Kind: TraceEstimate, Node: p.tree.Root(), Peer: -1, QueryID: msg.Seq})
	}
	p.nodes[p.tree.Root()].ForwardEstimate(msg)
}

// EstimatesEmitted returns every hourly estimate the root has broadcast,
// in order — the EHr time series.
func (p *Protocol) EstimatesEmitted() []EstimateMsg {
	return append([]EstimateMsg(nil), p.emitted...)
}

// InjectQuery starts directed dissemination of q at the root and registers
// its ground truth for accuracy accounting. The returned record fills in as
// the query propagates (one tree level per TDMA opportunity).
func (p *Protocol) InjectQuery(q query.Query, truth query.GroundTruth) *QueryRecord {
	r := &QueryRecord{
		Query: q, Truth: truth, InjectedAt: p.engine.Now(),
		Received: map[topology.NodeID]bool{},
		Sources:  map[topology.NodeID]bool{},
	}
	p.records[q.ID] = r
	p.order = append(p.order, q.ID)
	p.predictor.Observe()
	p.nodes[p.tree.Root()].RouteQuery(QueryMsg{Q: q}, false)
	return r
}

// Records returns all query records in injection order.
func (p *Protocol) Records() []*QueryRecord {
	out := make([]*QueryRecord, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.records[id])
	}
	return out
}

// onNeighborDead is the §4.2 cross-layer entry point: the first
// notification about a dead node triggers tree surgery — the dead node's
// rows are purged from its parent's tables (propagating range shrinkage
// upward) and its subtree re-attaches to live neighbors where possible.
func (p *Protocol) onNeighborDead(at, dead topology.NodeID) {
	if p.deadSeen[dead] {
		return
	}
	if !p.tree.Contains(dead) {
		p.deadSeen[dead] = true
		p.hot.parkNode(int(dead)) // dead orphan: out of the epoch loop
		p.gen.MarkWindowDirty(dead)
		return
	}
	p.deadSeen[dead] = true
	p.hot.parkNode(int(dead))
	p.gen.MarkWindowDirty(dead)
	p.hot.deployed[dead] = false

	par2 := topology.NodeID(-1)
	if par, ok := p.tree.Parent(dead); ok {
		p.nodes[par].RemoveChild(dead)
		par2 = par
	}
	if p.cfg.Trace != nil {
		p.cfg.Trace(TraceEvent{Kind: TraceDeath, Node: dead, Peer: par2})
	}
	removed, err := p.tree.Detach(dead)
	if err != nil {
		return
	}
	p.nodes[dead].SetParent(0, false)
	p.nodes[dead].ResetTreeLinks()
	for _, o := range removed[1:] {
		p.nodes[o].SetParent(0, false)
		p.nodes[o].ResetTreeLinks()
		p.orphaned[o] = true
	}
	p.reattachOrphans()
}

// JoinNode powers up a node that was not yet part of the network (§4.2 node
// addition and §2's "addition of new sensor types after deployment"): it
// joins the MAC, attaches to the shallowest eligible live neighbor and
// reports its ranges to its new parent.
func (p *Protocol) JoinNode(id topology.NodeID, mounted sensordata.TypeSet) error {
	if p.tree.Contains(id) {
		return fmt.Errorf("core: node %d is already in the tree", id)
	}
	p.mounted[id] = mounted
	p.nodes[id] = NewNode(id, mounted, p.cfg.Controllers(id), p.mac, p)
	p.nodes[id].SetTrace(p.cfg.Trace)
	if p.sharded {
		p.nodes[id].msgPool = &p.shardPools[p.shardOf[id]]
	} else {
		p.nodes[id].msgPool = &p.updPool
	}
	p.mac.Listen(id, p.nodes[id].HandleMessage)
	p.mac.Join(id)
	delete(p.deadSeen, id)
	p.orphaned[id] = true
	p.configureNode(int(id))
	p.hot.deployed[id] = true
	p.reattachOrphans()
	if p.orphaned[id] {
		return fmt.Errorf("core: node %d has no eligible live neighbor to attach to", id)
	}
	if p.cfg.Trace != nil {
		if par, ok := p.tree.Parent(id); ok {
			p.cfg.Trace(TraceEvent{Kind: TraceJoin, Node: id, Peer: par})
		}
	}
	return nil
}

// reattachOrphans repeatedly attaches orphaned nodes to the shallowest
// eligible live tree neighbor (radio link, depth and fan-out caps), then
// has them re-report their range tables to their new parents. This models
// the distributed re-join each orphan performs using its MAC neighbor list.
func (p *Protocol) reattachOrphans() {
	for progress := true; progress; {
		progress = false
		ids := p.Orphans()
		for _, id := range ids {
			if !p.channel.Alive(id) {
				continue
			}
			best := topology.NodeID(-1)
			bestDepth := p.cfg.MaxDepth + 1
			for _, nb := range p.channel.Graph().Neighbors(id) {
				if !p.channel.Alive(nb) || !p.tree.Contains(nb) {
					continue
				}
				d := p.tree.Depth(nb)
				if d >= p.cfg.MaxDepth || len(p.tree.Children(nb)) >= p.cfg.MaxFanout {
					continue
				}
				if d < bestDepth || (d == bestDepth && nb < best) {
					best, bestDepth = nb, d
				}
			}
			if best < 0 {
				continue
			}
			if err := p.tree.Attach(best, id); err != nil {
				continue
			}
			delete(p.orphaned, id)
			p.nodes[id].SetParent(best, true)
			p.nodes[best].AddChild(id)
			p.nodes[id].ResendAll()
			if p.cfg.Trace != nil {
				p.cfg.Trace(TraceEvent{Kind: TraceReattach, Node: id, Peer: best})
			}
			progress = true
		}
	}
}

// KillNode powers a node off through the MAC. Neighbors detect the death
// after the MAC's dead threshold and the cross-layer path repairs the tree.
func (p *Protocol) KillNode(id topology.NodeID) {
	p.mac.Kill(id)
}

// RetuneAll retargets the threshold of every live non-root node whose
// controller is Retunable (fixed-δ controllers take pct verbatim, the ATC
// re-caps its band) and returns how many controllers accepted the change.
func (p *Protocol) RetuneAll(pct float64) int {
	n := 0
	for i := range p.nodes {
		id := topology.NodeID(i)
		if id == p.tree.Root() || !p.channel.Alive(id) {
			continue
		}
		if rt, ok := p.nodes[i].Controller().(Retunable); ok {
			rt.Retune(pct)
			n++
		}
	}
	if n > 0 {
		// A retune may rewrite tuples (and thus sweep windows) wholesale;
		// force the escape calendar to re-examine everything once.
		p.gen.InvalidateWindows()
	}
	p.cfg.Telemetry.Retunes.Add(int64(n))
	return n
}

// EstimateSeq returns the number of estimate broadcasts emitted so far.
func (p *Protocol) EstimateSeq() int64 { return p.estimateSeq }

// Predictor exposes the root's query-count predictor.
func (p *Protocol) Predictor() *query.Predictor { return p.predictor }
