package core

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

// UpdateMsg is the Update Message of §4.1: the new aggregate
// (min(THmin), max(THmax)) of the sender's Range Table for one sensor type,
// unicast to the sender's parent. Present=false withdraws the sensor type —
// sent when the last sensor of that type disappears from the sender's
// subtree (§4.2: "any changes in sensor types such as the addition or
// removal of sensors also propagates up the tree").
type UpdateMsg struct {
	Type    sensordata.Type
	Min     float64
	Max     float64
	Present bool
}

// String renders the update for traces.
func (u UpdateMsg) String() string {
	if !u.Present {
		return fmt.Sprintf("update{%s: withdrawn}", u.Type)
	}
	return fmt.Sprintf("update{%s: [%.2f, %.2f]}", u.Type, u.Min, u.Max)
}

// QueryMsg carries one range query down the tree.
type QueryMsg struct {
	Q query.Query
}

// EstimateMsg is the hourly broadcast from the root: the expected number of
// queries over the next hour (EHr) and the per-node update budget the ATC
// derives from it. Seq deduplicates the per-hop re-broadcasts.
type EstimateMsg struct {
	Seq           int64
	QueriesPerHr  int
	BudgetPerNode float64 // allowed Update Messages per node per hour
}

// TraceKind classifies protocol trace events.
type TraceKind int

// Trace event kinds.
const (
	// TraceUpdateSent: Node transmitted an Update Message for Type to Peer.
	TraceUpdateSent TraceKind = iota
	// TraceWithdraw: Node withdrew Type from Peer (subtree lost the sensor).
	TraceWithdraw
	// TraceQueryReceived: Node received query QueryID.
	TraceQueryReceived
	// TraceQuerySource: Node answered query QueryID.
	TraceQuerySource
	// TraceEstimate: the root emitted estimate wave QueryID (= Seq).
	TraceEstimate
	// TraceDeath: Node was declared dead (Peer = its former parent).
	TraceDeath
	// TraceReattach: Node re-attached under new parent Peer.
	TraceReattach
	// TraceJoin: Node joined the network under parent Peer.
	TraceJoin
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceUpdateSent:
		return "update-sent"
	case TraceWithdraw:
		return "withdraw"
	case TraceQueryReceived:
		return "query-received"
	case TraceQuerySource:
		return "query-source"
	case TraceEstimate:
		return "estimate"
	case TraceDeath:
		return "death"
	case TraceReattach:
		return "reattach"
	case TraceJoin:
		return "join"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// TraceEvent is one protocol-level occurrence, emitted through the optional
// Config.Trace hook. It is observability plumbing, not protocol state.
type TraceEvent struct {
	Kind    TraceKind
	Node    topology.NodeID
	Peer    topology.NodeID // parent/child/neighbor, kind-dependent; -1 if n/a
	Type    sensordata.Type // sensor type for update/withdraw events
	QueryID int64           // query id or estimate sequence number
}
