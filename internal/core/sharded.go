package core

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// runEpochSharded is the intra-epoch parallel form of the gated loop in
// RunEpoch. The epoch splits into two fan-out phases with serial merge
// points between them, chosen so every phase either runs the exact serial
// arithmetic on disjoint state or runs serially:
//
//  1. Sweep: contiguous ID ranges are swept node-major in parallel
//     (sensordata.ActiveSweepRange evaluates the identical per-(node,
//     type) proof), producing per-range ascending worklists whose
//     concatenation equals the serial sorted worklist bit-for-bit.
//  2. Apply: each shard walks the worklist and processes only its own
//     subtree-partitioned nodes. All writes are node-local (tables,
//     controllers, the node's MAC queue), shard-local (Update Message
//     pools, staged dirty lists) or atomic (telemetry); the radio channel
//     is frozen across the phase as an executable proof that nothing
//     transmits — queue CONTENT per node matches the serial run exactly,
//     and frame-time delivery (fully serial) consumes the shared loss RNG
//     in the identical order.
//
// Controller epoch ticks and the hourly estimate stay serial: they are
// cheap and order-sensitive. gen.Step ran (type-parallel) in RunEpoch
// before dispatch.
func (p *Protocol) runEpochSharded(now sim.Time) {
	h := &p.hot
	k := p.cfg.Shards
	w := p.cfg.Workers

	// Phase 1: parallel node-major sweep over contiguous ID ranges.
	p.gen.PrepareConcurrentReads()
	w.Run(k, func(r int) {
		p.sweepDst[r] = p.gen.ActiveSweepRange(
			&h.lo, &h.hi, h.mask, p.sweepFrom[r], p.sweepTo[r], p.sweepDst[r][:0])
	})

	// Merge: ranges are ascending and contiguous, so plain concatenation
	// reproduces the serial loop's sorted worklist without a sort.
	active := h.active[:0]
	for r := 0; r < k; r++ {
		active = append(active, p.sweepDst[r]...)
	}
	h.active = active
	p.cfg.Telemetry.ActiveSetSize.Observe(float64(len(active)))
	p.cfg.Telemetry.ActiveNodes.Add(int64(len(active)))
	p.observeShardBalance(active)

	// Phase 2: parallel apply, one task per shard over its own nodes.
	p.channel.Freeze()
	p.mac.BeginStaging()
	w.Run(k, func(s int) {
		shard := int32(s)
		for _, ai := range active {
			if p.shardOf[ai] != shard {
				continue
			}
			i := int(ai)
			id := topology.NodeID(i)
			if !p.channel.Alive(id) || !h.deployed[i] {
				continue
			}
			node := p.nodes[i]
			if h.gate[i] {
				mask := h.mask[i]
				for _, t := range node.Mounted().Types() {
					if mask&(1<<uint(t)) == 0 {
						continue
					}
					node.OnReading(t, p.gen.Value(id, t))
					p.refreshWindow(i, t)
				}
				continue
			}
			p.sampleNodeClassic(i)
		}
	})
	p.mac.EndStaging()
	p.channel.Unfreeze()

	// Serial tail: epoch clocks of counting controllers, hourly estimate.
	for _, ti := range h.tickList {
		i := int(ti)
		id := topology.NodeID(i)
		if !p.channel.Alive(id) || !h.deployed[i] {
			continue
		}
		p.nodes[i].TickEpoch()
	}
	if p.cfg.EpochsPerHour > 0 && now%sim.Time(p.cfg.EpochsPerHour) == 0 && now > 0 {
		p.emitEstimate()
	}
}

// observeShardBalance feeds the per-shard worklist sizes into the shard
// telemetry: one count per shard plus the epoch's max−min spread. All
// quantities derive from the deterministic worklist, never from timing,
// so instrumented traces stay byte-reproducible.
func (p *Protocol) observeShardBalance(active []int32) {
	tel := &p.cfg.Telemetry
	if len(tel.ShardActive) == 0 && tel.ShardImbalance == nil {
		return
	}
	for s := range p.shardLoad {
		p.shardLoad[s] = 0
	}
	for _, ai := range active {
		p.shardLoad[p.shardOf[ai]]++
	}
	lo, hi := int64(-1), int64(0)
	for s, c := range p.shardLoad {
		if s < len(tel.ShardActive) {
			tel.ShardActive[s].Add(c)
		}
		if lo < 0 || c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo < 0 {
		lo = 0
	}
	tel.ShardImbalance.Observe(float64(hi - lo))
}
