package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestTupleIntersects(t *testing.T) {
	tu := Tuple{Min: 10, Max: 20}
	cases := []struct {
		lo, hi float64
		want   bool
	}{
		{0, 5, false},
		{0, 10, true},  // touching at min
		{20, 30, true}, // touching at max
		{12, 15, true}, // contained
		{5, 25, true},  // containing
		{21, 30, false},
	}
	for _, c := range cases {
		if tu.Intersects(c.lo, c.hi) != c.want {
			t.Fatalf("[10,20] vs [%v,%v]: want %v", c.lo, c.hi, c.want)
		}
	}
}

func TestObserveReadingHysteresis(t *testing.T) {
	rt := NewRangeTable()
	// First reading always re-centres.
	if !rt.ObserveReading(25, 2) {
		t.Fatal("first reading did not modify the table")
	}
	own, ok := rt.Own()
	if !ok || own.Min != 23 || own.Max != 27 {
		t.Fatalf("own tuple %+v, want [23,27]", own)
	}
	// Readings inside [THmin, THmax] leave the table unchanged (§4.1).
	for _, v := range []float64{23, 24.5, 27} {
		if rt.ObserveReading(v, 2) {
			t.Fatalf("in-range reading %v modified the table", v)
		}
	}
	// A reading outside re-centres.
	if !rt.ObserveReading(27.5, 2) {
		t.Fatal("out-of-range reading did not re-centre")
	}
	own, _ = rt.Own()
	if own.Min != 25.5 || own.Max != 29.5 {
		t.Fatalf("re-centred tuple %+v, want [25.5,29.5]", own)
	}
}

func TestObserveReadingZeroDelta(t *testing.T) {
	rt := NewRangeTable()
	rt.ObserveReading(5, 0)
	if rt.ObserveReading(5, 0) {
		t.Fatal("identical reading with zero delta modified the table")
	}
	if !rt.ObserveReading(5.0001, 0) {
		t.Fatal("any change with zero delta must modify the table")
	}
}

func TestObserveReadingNegativeDeltaPanics(t *testing.T) {
	rt := NewRangeTable()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delta accepted")
		}
	}()
	rt.ObserveReading(1, -1)
}

func TestChildManagement(t *testing.T) {
	rt := NewRangeTable()
	if !rt.SetChild(3, Tuple{1, 2}) {
		t.Fatal("new child entry reported unchanged")
	}
	if rt.SetChild(3, Tuple{1, 2}) {
		t.Fatal("identical child entry reported changed")
	}
	if !rt.SetChild(3, Tuple{1, 3}) {
		t.Fatal("modified child entry reported unchanged")
	}
	if got, ok := rt.Child(3); !ok || got != (Tuple{1, 3}) {
		t.Fatalf("Child(3) = %+v,%v", got, ok)
	}
	if _, ok := rt.Child(9); ok {
		t.Fatal("phantom child")
	}
	if !rt.RemoveChild(3) || rt.RemoveChild(3) {
		t.Fatal("RemoveChild bookkeeping wrong")
	}
}

func TestLenAndEmpty(t *testing.T) {
	rt := NewRangeTable()
	if !rt.Empty() || rt.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	rt.SetChild(1, Tuple{0, 1})
	rt.SetChild(2, Tuple{0, 1})
	if rt.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rt.Len())
	}
	rt.ObserveReading(5, 1)
	if rt.Len() != 3 {
		t.Fatalf("Len with own = %d, want 3 (n+1 rows, §4.1)", rt.Len())
	}
	rt.ClearOwn()
	rt.RemoveChild(1)
	rt.RemoveChild(2)
	if !rt.Empty() {
		t.Fatal("cleared table not empty")
	}
}

func TestAggregate(t *testing.T) {
	rt := NewRangeTable()
	if _, ok := rt.Aggregate(); ok {
		t.Fatal("empty table produced an aggregate")
	}
	rt.ObserveReading(10, 1) // own [9, 11]
	agg, ok := rt.Aggregate()
	if !ok || agg != (Tuple{9, 11}) {
		t.Fatalf("aggregate %+v", agg)
	}
	rt.SetChild(1, Tuple{5, 8})
	rt.SetChild(2, Tuple{10, 20})
	agg, _ = rt.Aggregate()
	if agg != (Tuple{5, 20}) {
		t.Fatalf("aggregate %+v, want [5,20] (Fig. 2)", agg)
	}
	// Children-only table (forwarding node without the sensor, Fig. 4).
	rt2 := NewRangeTable()
	rt2.SetChild(7, Tuple{-3, 4})
	agg, ok = rt2.Aggregate()
	if !ok || agg != (Tuple{-3, 4}) {
		t.Fatalf("children-only aggregate %+v", agg)
	}
}

func TestDecideUpdateFirstSend(t *testing.T) {
	rt := NewRangeTable()
	if pu := rt.decideUpdate(1); pu.send {
		t.Fatal("empty never-sent table wants to send")
	}
	rt.ObserveReading(10, 1)
	pu := rt.decideUpdate(1)
	if !pu.send || pu.withdraw {
		t.Fatalf("first aggregate not sent: %+v", pu)
	}
	rt.markSent(pu.agg)
	if pu := rt.decideUpdate(1); pu.send {
		t.Fatal("unchanged table wants to resend")
	}
}

func TestDecideUpdateThreshold(t *testing.T) {
	rt := NewRangeTable()
	rt.ObserveReading(10, 1)
	pu := rt.decideUpdate(1)
	rt.markSent(pu.agg) // sent [9, 11]

	// Aggregate moves by <= delta: no update (Fig. 3).
	rt.SetChild(1, Tuple{8.5, 11})
	if pu := rt.decideUpdate(1); pu.send {
		t.Fatalf("min moved 0.5 <= δ=1 but update sent")
	}
	// Aggregate moves by > delta: update due.
	rt.SetChild(2, Tuple{7.5, 11})
	pu = rt.decideUpdate(1)
	if !pu.send {
		t.Fatal("min moved 1.5 > δ=1 but no update")
	}
	if pu.agg != (Tuple{7.5, 11}) {
		t.Fatalf("update payload %+v", pu.agg)
	}
}

func TestDecideUpdateMaxSide(t *testing.T) {
	rt := NewRangeTable()
	rt.ObserveReading(10, 1)
	rt.markSent(Tuple{9, 11})
	rt.SetChild(1, Tuple{9, 12.5})
	if pu := rt.decideUpdate(1); !pu.send {
		t.Fatal("max moved 1.5 > δ=1 but no update")
	}
}

func TestDecideUpdateWithdrawal(t *testing.T) {
	rt := NewRangeTable()
	rt.SetChild(1, Tuple{0, 5})
	pu := rt.decideUpdate(1)
	rt.markSent(pu.agg)
	rt.RemoveChild(1)
	pu = rt.decideUpdate(1)
	if !pu.send || !pu.withdraw {
		t.Fatalf("emptied table should withdraw, got %+v", pu)
	}
	rt.markWithdrawn()
	if pu := rt.decideUpdate(1); pu.send {
		t.Fatal("already-withdrawn table wants to send again")
	}
	if _, ok := rt.LastSent(); ok {
		t.Fatal("LastSent valid after withdrawal")
	}
}

// Property: the aggregate always bounds every row.
func TestPropertyAggregateBoundsRows(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		rng := sim.NewRNG(seed)
		rt := NewRangeTable()
		for _, op := range ops {
			switch op % 3 {
			case 0:
				rt.ObserveReading(rng.Range(-50, 50), rng.Range(0, 5))
			case 1:
				lo := rng.Range(-50, 50)
				rt.SetChild(topology.NodeID(int(op)%5), Tuple{lo, lo + rng.Range(0, 10)})
			case 2:
				rt.RemoveChild(topology.NodeID(int(op) % 5))
			}
		}
		agg, ok := rt.Aggregate()
		if !ok {
			return rt.Empty()
		}
		if own, has := rt.Own(); has {
			if own.Min < agg.Min || own.Max > agg.Max {
				return false
			}
		}
		for _, c := range rt.Children() {
			tu, _ := rt.Child(c)
			if tu.Min < agg.Min || tu.Max > agg.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with bounded signal excursions, hysteresis bounds the number of
// re-centres — a reading sequence confined to a window of width w can
// re-centre at most once per |w/δ| + 1 exits.
func TestPropertyHysteresisSuppressesStableSignal(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		rt := NewRangeTable()
		centre := rng.Range(-100, 100)
		const delta = 4.0
		changes := 0
		for i := 0; i < 1000; i++ {
			// Signal stays within ±1 of centre; δ=4 ⇒ after the first
			// observation the tuple [c-4, c+4] always contains the signal.
			v := centre + rng.Range(-1, 1)
			if rt.ObserveReading(v, delta) {
				changes++
			}
		}
		return changes == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAbs(t *testing.T) {
	if abs(-3) != 3 || abs(3) != 3 || abs(0) != 0 {
		t.Fatal("abs broken")
	}
	if !math.IsInf(abs(math.Inf(-1)), 1) {
		t.Fatal("abs(-inf)")
	}
}
