package core

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

// wireTransport delivers unicasts synchronously to a wired peer, like one
// MAC hop, and discards everything else.
type wireTransport struct {
	peers map[topology.NodeID]*Node
}

func (w *wireTransport) Unicast(from, to topology.NodeID, class radio.Class, msg any) {
	if n := w.peers[to]; n != nil {
		n.HandleMessage(from, msg)
	}
}

func (w *wireTransport) Multicast(from topology.NodeID, targets []topology.NodeID, class radio.Class, msg any) {
}

// TestRangeUpdateHopAllocFree pins the post-overhaul ceiling for one core
// range-update hop: child observes a reading that re-centres its tuple,
// unicasts the pooled Update Message to its parent, and the parent merges
// it and re-aggregates. Steady state must be allocation-free (the seed
// boxed a fresh UpdateMsg per hop).
func TestRangeUpdateHopAllocFree(t *testing.T) {
	tr := &wireTransport{peers: map[topology.NodeID]*Node{}}
	obs := &fakeObserver{}
	var pool updateMsgPool

	mounted := sensordata.TypeSet(0).With(sensordata.Temperature)
	parent := NewNode(1, mounted, &FixedController{Pct: 5}, tr, obs)
	child := NewNode(2, mounted, &FixedController{Pct: 0}, tr, obs)
	child.msgPool = &pool
	parent.msgPool = &pool
	child.SetParent(1, true)
	parent.AddChild(2)
	tr.peers[1] = parent

	// Warm up: first readings create tables, pool entries and map slots.
	child.OnReading(sensordata.Temperature, 10)
	child.OnReading(sensordata.Temperature, 30)

	v := 10.0
	allocs := testing.AllocsPerRun(1000, func() {
		// δ=0 at the child: every flip re-centres the tuple and forces an
		// Update Message up the hop.
		v = 40 - v
		child.OnReading(sensordata.Temperature, v)
	})
	if allocs != 0 {
		t.Fatalf("range-update hop allocates %.1f objects, want 0", allocs)
	}
	if child.UpdatesSent() < 1000 {
		t.Fatalf("updates did not flow: %d sent", child.UpdatesSent())
	}
	if got, ok := parent.Table(sensordata.Temperature).Child(2); !ok || got.Min != got.Max {
		t.Fatalf("parent table not tracking child: %v ok=%v", got, ok)
	}
}

// countTransport counts sends without retaining anything, so alloc tests
// measure only the node's own routing cost.
type countTransport struct {
	multicasts int
	addressed  int
}

func (c *countTransport) Unicast(from, to topology.NodeID, class radio.Class, msg any) {}

func (c *countTransport) Multicast(from topology.NodeID, targets []topology.NodeID, class radio.Class, msg any) {
	c.multicasts++
	c.addressed += len(targets)
}

// TestRouteQueryAllocFree pins the ceiling for directed query routing at
// an inner node: receiving and forwarding a query must not allocate once
// the target scratch is warm (the seed allocated the target list and a
// fresh interface box per hop).
func TestRouteQueryAllocFree(t *testing.T) {
	tr := &countTransport{}
	obs := &fakeObserver{}
	mounted := sensordata.TypeSet(0).With(sensordata.Temperature)
	n := NewNode(1, mounted, &FixedController{Pct: 5}, tr, obs)
	n.SetParent(0, true)
	for c := topology.NodeID(2); c < 6; c++ {
		n.AddChild(c)
		n.table(sensordata.Temperature).SetChild(c, Tuple{Min: 0, Max: 50})
	}
	n.OnReading(sensordata.Temperature, 20)

	boxed := any(QueryMsg{Q: mkQuery(1, sensordata.Temperature, 10, 25)})
	m := boxed.(QueryMsg)
	n.routeQuery(m, boxed, false) // warm the target scratch

	// The observer in this test logs receipts into slices, so route with
	// answer=false (the QuerySource path is covered by protocol tests).
	allocs := testing.AllocsPerRun(1000, func() {
		n.routeQuery(m, boxed, false)
	})
	if allocs != 0 {
		t.Fatalf("query routing hop allocates %.1f objects, want 0", allocs)
	}
	if tr.multicasts < 1000 || tr.addressed < 4000 {
		t.Fatalf("queries were not forwarded: %d multicasts, %d addressed",
			tr.multicasts, tr.addressed)
	}
}
