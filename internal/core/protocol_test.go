package core

import (
	"testing"

	"repro/internal/lmac"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

func mkQuery(id int64, t sensordata.Type, lo, hi float64) query.Query {
	return query.Query{ID: id, Type: t, Lo: lo, Hi: hi}
}

// testNet is a fully wired small network for integration tests.
type testNet struct {
	engine  *sim.Engine
	graph   *topology.Graph
	tree    *topology.Tree
	channel *radio.Channel
	mac     *lmac.MAC
	gen     *sensordata.Generator
	mounted []sensordata.TypeSet
	proto   *Protocol
}

// buildNet creates a deterministic random network of n nodes with every
// node mounting all sensor types.
func buildNet(t *testing.T, n int, seed uint64, cfg Config) *testNet {
	t.Helper()
	rng := sim.NewRNG(seed)
	g, err := topology.PlaceRandom(topology.PlacementConfig{
		N: n, Width: 100, Height: 100, RadioRange: 30,
	}, rng.Stream("place"))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := topology.BuildSpanningTree(g, topology.Root, cfg.MaxFanout, cfg.MaxDepth)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	mac, err := lmac.New(engine, ch)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]topology.Position, g.Len())
	for i := range pos {
		pos[i] = g.Pos(topology.NodeID(i))
	}
	gen := sensordata.NewGenerator(pos, rng.Stream("data"))
	mounted := sensordata.AssignAllTypes(g.Len())
	proto, err := New(engine, mac, ch, tree, gen, mounted, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testNet{
		engine: engine, graph: g, tree: tree, channel: ch, mac: mac,
		gen: gen, mounted: mounted, proto: proto,
	}
}

// run starts the MAC and application loops and runs until the given epoch.
func (tn *testNet) run(until sim.Time) {
	if !tn.proto.started {
		tn.proto.Start()
		tn.mac.Start()
	}
	tn.engine.RunUntil(until)
}

func fixedCfg(pct float64) Config {
	cfg := DefaultConfig()
	cfg.Controllers = func(topology.NodeID) Controller { return &FixedController{Pct: pct} }
	return cfg
}

func TestProtocolValidation(t *testing.T) {
	tn := buildNet(t, 10, 1, fixedCfg(5))
	bad := fixedCfg(5)
	bad.EpochsPerHour = 0
	if _, err := New(tn.engine, tn.mac, tn.channel, tn.tree, tn.gen, tn.mounted, bad); err == nil {
		t.Fatal("EpochsPerHour=0 accepted")
	}
	bad = fixedCfg(5)
	bad.Controllers = nil
	if _, err := New(tn.engine, tn.mac, tn.channel, tn.tree, tn.gen, tn.mounted, bad); err == nil {
		t.Fatal("nil Controllers accepted")
	}
	bad = fixedCfg(5)
	bad.MaxFanout = 0
	if _, err := New(tn.engine, tn.mac, tn.channel, tn.tree, tn.gen, tn.mounted, bad); err == nil {
		t.Fatal("MaxFanout=0 accepted")
	}
}

func TestInitialUpdatesReachRoot(t *testing.T) {
	tn := buildNet(t, 20, 2, fixedCfg(5))
	tn.run(40) // enough frames for initial reports to climb the tree
	root := tn.proto.Node(topology.Root)
	for _, ty := range sensordata.AllTypes() {
		rt := root.Table(ty)
		if rt == nil {
			t.Fatalf("root has no %v table after warm-up", ty)
		}
		// Every root child must have reported.
		for _, c := range tn.tree.Children(topology.Root) {
			if _, ok := rt.Child(c); !ok {
				t.Fatalf("root missing %v entry for child %d", ty, c)
			}
		}
	}
}

func TestRangeInvariantAfterWarmup(t *testing.T) {
	// Every node's stored child tuple must contain the child's reported
	// aggregate within δ slack — here we check the structural half: parent
	// entry exists for every child with data, and aggregate bounds rows.
	tn := buildNet(t, 25, 3, fixedCfg(5))
	tn.run(60)
	for _, id := range tn.tree.Nodes() {
		n := tn.proto.Node(id)
		for _, ty := range sensordata.AllTypes() {
			rt := n.Table(ty)
			if rt == nil {
				continue
			}
			agg, ok := rt.Aggregate()
			if !ok {
				continue
			}
			if own, has := rt.Own(); has && (own.Min < agg.Min || own.Max > agg.Max) {
				t.Fatalf("node %d %v: own %+v outside aggregate %+v", id, ty, own, agg)
			}
			for _, c := range rt.Children() {
				tu, _ := rt.Child(c)
				if tu.Min < agg.Min || tu.Max > agg.Max {
					t.Fatalf("node %d %v: child %d %+v outside aggregate %+v", id, ty, c, tu, agg)
				}
			}
		}
	}
}

func TestQueryReachesMatchingSources(t *testing.T) {
	tn := buildNet(t, 25, 4, fixedCfg(3))
	tn.run(60)

	ty := sensordata.Temperature
	val := func(id topology.NodeID) float64 { return tn.gen.Value(id, ty) }
	// Query centred on node 5's current value: node 5 must be a source.
	centre := val(5)
	q := mkQuery(100, ty, centre-1, centre+1)
	truth := query.Resolve(q, tn.tree, tn.mounted, val)
	rec := tn.proto.InjectQuery(q, truth)
	tn.run(80) // let it propagate

	if !rec.Sources[5] {
		t.Fatalf("node 5 (value %v in [%v,%v]) not a source; sources=%v",
			centre, q.Lo, q.Hi, rec.Sources)
	}
	// Every ground-truth source whose stored tuple is fresh enough should
	// have received the query; with δ=3% staleness is bounded, so at least
	// half the true sources must be reached.
	reached := 0
	for _, s := range truth.Sources {
		if rec.Received[s] {
			reached++
		}
	}
	if len(truth.Sources) > 0 && reached*2 < len(truth.Sources) {
		t.Fatalf("only %d of %d true sources reached", reached, len(truth.Sources))
	}
}

func TestQueryWithZeroDeltaPerfectlyAccurate(t *testing.T) {
	// With δ=0 every reading change propagates, so after quiescence the
	// stored ranges equal the true values and routing is exact.
	cfg := fixedCfg(0)
	tn := buildNet(t, 15, 5, cfg)
	// Freeze the data so the network quiesces: zero out noise and drift.
	for _, ty := range sensordata.AllTypes() {
		p := sensordata.DefaultParams(ty)
		p.NoiseSigma = 0
		p.DriftStep = 0
		p.DiurnalAmp = 0
		tn.gen.SetParams(ty, p)
	}
	tn.run(60)

	ty := sensordata.Humidity
	val := func(id topology.NodeID) float64 { return tn.gen.Value(id, ty) }
	lo, hi := ty.Span()
	mid := (lo + hi) / 2
	q := mkQuery(200, ty, lo, mid)
	truth := query.Resolve(q, tn.tree, tn.mounted, val)
	rec := tn.proto.InjectQuery(q, truth)
	tn.run(100)

	for id := range truth.Should {
		if !rec.Received[id] {
			t.Fatalf("δ=0 frozen data: node %d should receive but did not", id)
		}
	}
	for id := range rec.Received {
		if !truth.Should[id] {
			t.Fatalf("δ=0 frozen data: node %d received but should not", id)
		}
	}
	// Sources must match exactly.
	for _, s := range truth.Sources {
		if !rec.Sources[s] {
			t.Fatalf("true source %d did not answer", s)
		}
	}
}

func TestEstimateDistribution(t *testing.T) {
	cfg := fixedCfg(5)
	cfg.EpochsPerHour = 20
	cfg.Budget = func(eHr int) float64 { return float64(eHr) * 2 }
	tn := buildNet(t, 15, 6, cfg)

	got := map[topology.NodeID]EstimateMsg{}
	for i := 1; i < 15; i++ {
		id := topology.NodeID(i)
		ctrl := tn.proto.Node(id).Controller()
		_ = ctrl
	}
	// Track estimates via a recording controller instead.
	rec := map[topology.NodeID]*countingController{}
	cfg2 := cfg
	cfg2.Controllers = func(id topology.NodeID) Controller {
		c := &countingController{FixedController: FixedController{Pct: 5}}
		rec[id] = c
		return c
	}
	tn2 := buildNet(t, 15, 6, cfg2)
	// Inject some queries so the predictor forecasts non-zero.
	tn2.proto.Start()
	tn2.mac.Start()
	for e := sim.Time(0); e < 100; e += 10 {
		tn2.engine.RunUntil(e)
		ty := sensordata.Temperature
		val := func(id topology.NodeID) float64 { return tn2.gen.Value(id, ty) }
		q := mkQuery(int64(e), ty, 0, 50)
		tn2.proto.InjectQuery(q, query.Resolve(q, tn2.tree, tn2.mounted, val))
	}
	tn2.engine.RunUntil(130)

	for id, c := range rec {
		if id == topology.Root {
			continue
		}
		if c.estimates == 0 {
			t.Fatalf("node %d never received an estimate", id)
		}
	}
	if tn2.proto.EstimateSeq() < 4 {
		t.Fatalf("only %d estimate waves in 130 epochs with hour=20", tn2.proto.EstimateSeq())
	}
	_ = got
}

func TestNodeDeathRepairsTree(t *testing.T) {
	tn := buildNet(t, 30, 7, fixedCfg(5))
	tn.run(50)

	// Kill an internal node with children.
	var victim topology.NodeID = -1
	for _, id := range tn.tree.Nodes() {
		if id != topology.Root && len(tn.tree.Children(id)) > 0 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Skip("no internal node in this draw")
	}
	orphanedKids := append([]topology.NodeID(nil), tn.tree.Children(victim)...)
	tn.proto.KillNode(victim)
	tn.run(80) // death detection + reattachment + re-reports

	if tn.tree.Contains(victim) {
		t.Fatal("dead node still in the tree")
	}
	if err := tn.tree.Validate(); err != nil {
		t.Fatalf("tree invalid after repair: %v", err)
	}
	for _, kid := range orphanedKids {
		if !tn.tree.Contains(kid) && !contains(tn.proto.Orphans(), kid) {
			t.Fatalf("node %d neither re-attached nor tracked as orphan", kid)
		}
	}
	// The dead node's parent must have purged it.
	for _, id := range tn.tree.Nodes() {
		n := tn.proto.Node(id)
		for _, ty := range sensordata.AllTypes() {
			if rt := n.Table(ty); rt != nil {
				if _, ok := rt.Child(victim); ok {
					t.Fatalf("node %d still has a %v row for dead node %d", id, ty, victim)
				}
			}
		}
	}
}

func contains(s []topology.NodeID, v topology.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestQueriesStillAccurateAfterDeath(t *testing.T) {
	tn := buildNet(t, 30, 8, fixedCfg(3))
	tn.run(50)
	// Kill a leaf to keep every other node reachable.
	leaf := tn.tree.Leaves()[0]
	if leaf == topology.Root {
		t.Skip("degenerate tree")
	}
	tn.proto.KillNode(leaf)
	tn.run(100)

	ty := sensordata.Light
	val := func(id topology.NodeID) float64 { return tn.gen.Value(id, ty) }
	lo, hi := ty.Span()
	q := mkQuery(300, ty, lo, hi) // match-everything query
	truth := query.Resolve(q, tn.tree, tn.mounted, val)
	rec := tn.proto.InjectQuery(q, truth)
	tn.run(140)

	if rec.Received[leaf] {
		t.Fatal("dead node received a query")
	}
	missing := 0
	for id := range truth.Should {
		if !rec.Received[id] {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d live relevant nodes missed a match-all query after repair", missing)
	}
}

func TestJoinNodeIntegratesIntoTree(t *testing.T) {
	// Build a network where one node starts powered off, then joins.
	rng := sim.NewRNG(9)
	g, err := topology.PlaceRandom(topology.PlacementConfig{
		N: 20, Width: 100, Height: 100, RadioRange: 35,
	}, rng.Stream("place"))
	if err != nil {
		t.Fatal(err)
	}
	late := topology.NodeID(19)
	gNoLate := g.Clone()
	gNoLate.RemoveNodeEdges(late)
	// The tree is built without the late node.
	treeFull, err := topology.BuildSpanningTree(g, topology.Root, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	_ = treeFull
	tree := topology.NewTree(topology.Root)
	reach := gNoLate.ReachableFrom(topology.Root)
	if len(reach) != 19 {
		t.Skip("late node was an articulation point in this draw")
	}
	tree, err = topology.BuildSpanningTree(gNoLate, topology.Root, 8, 10)
	if err != nil {
		t.Skip("caps too tight for this draw")
	}

	engine := sim.NewEngine()
	ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
	ch.SetAlive(late, false)
	mac, err := lmac.New(engine, ch)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]topology.Position, g.Len())
	for i := range pos {
		pos[i] = g.Pos(topology.NodeID(i))
	}
	gen := sensordata.NewGenerator(pos, rng.Stream("data"))
	mounted := sensordata.AssignAllTypes(g.Len())
	mounted[late] = 0 // joins with sensors later
	proto, err := New(engine, mac, ch, tree, gen, mounted, fixedCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	proto.Start()
	mac.Start()
	engine.RunUntil(30)

	// Join with a soil-moisture sensor — a new type appearing post-deploy.
	soil := sensordata.TypeSet(0).With(sensordata.SoilMoisture)
	if err := proto.JoinNode(late, soil); err != nil {
		t.Fatalf("JoinNode: %v", err)
	}
	engine.RunUntil(80)

	if !tree.Contains(late) {
		t.Fatal("joined node not in tree")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("tree invalid after join: %v", err)
	}
	par, _ := tree.Parent(late)
	prt := proto.Node(par).Table(sensordata.SoilMoisture)
	if prt == nil {
		t.Fatalf("parent %d has no soil table after join", par)
	}
	if _, ok := prt.Child(late); !ok {
		t.Fatalf("parent %d missing soil row for joined node", par)
	}
}

func TestJoinExistingNodeRejected(t *testing.T) {
	tn := buildNet(t, 10, 11, fixedCfg(5))
	if err := tn.proto.JoinNode(3, sensordata.AllTypeSet()); err == nil {
		t.Fatal("joining an attached node accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, uint64) {
		tn := buildNet(t, 20, 99, fixedCfg(5))
		tn.run(200)
		m := tn.channel.Meter()
		// Steps included to compare full executions, not just costs.
		return m.ByClass(radio.ClassUpdate).Total(), tn.engine.Steps()
	}
	u1, s1 := run()
	u2, s2 := run()
	if u1 != u2 || s1 != s2 {
		t.Fatalf("identical seeds diverged: updates %d vs %d, steps %d vs %d", u1, u2, s1, s2)
	}
	if u1 == 0 {
		t.Fatal("no update traffic in 200 epochs")
	}
}

func TestStartTwicePanicsProtocol(t *testing.T) {
	tn := buildNet(t, 10, 12, fixedCfg(5))
	tn.proto.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	tn.proto.Start()
}

func TestRecordsInInjectionOrder(t *testing.T) {
	tn := buildNet(t, 10, 13, fixedCfg(5))
	tn.run(30)
	ty := sensordata.Temperature
	val := func(id topology.NodeID) float64 { return tn.gen.Value(id, ty) }
	for i := int64(0); i < 5; i++ {
		q := mkQuery(i*7, ty, 0, 50)
		tn.proto.InjectQuery(q, query.Resolve(q, tn.tree, tn.mounted, val))
	}
	recs := tn.proto.Records()
	if len(recs) != 5 {
		t.Fatalf("%d records", len(recs))
	}
	for i, r := range recs {
		if r.Query.ID != int64(i*7) {
			t.Fatalf("records out of order: %v at %d", r.Query.ID, i)
		}
	}
}

func TestOrphanSubtreeDissolvedNoStaleRows(t *testing.T) {
	// Regression: when an internal node dies, its orphaned descendants must
	// drop their old child rows — the children re-attach independently and
	// may land under different parents; keeping rows would leave stale
	// range data (and, if the child later dies while the ex-parent still
	// holds a row, a dead-node row at a live node).
	tn := buildNet(t, 30, 41, fixedCfg(3))
	tn.run(50)

	// Find a grandparent chain: g -> m -> c with m having children.
	var mid topology.NodeID = -1
	for _, id := range tn.tree.Nodes() {
		if id == topology.Root {
			continue
		}
		if par, ok := tn.tree.Parent(id); ok && par != topology.Root &&
			len(tn.tree.Children(id)) > 0 {
			mid = par // kill the middle node's parent to orphan a subtree
			_ = id
			break
		}
	}
	if mid < 0 || mid == topology.Root {
		t.Skip("no suitable chain in this draw")
	}
	subtree := tn.tree.Subtree(mid)
	tn.proto.KillNode(mid)
	tn.run(120) // detection + dissolution + reattachment + re-reports

	// Every live ex-subtree member's tables may only contain rows for its
	// *current* tree children.
	for _, id := range subtree[1:] {
		if !tn.channel.Alive(id) || !tn.tree.Contains(id) {
			continue
		}
		n := tn.proto.Node(id)
		current := map[topology.NodeID]bool{}
		for _, c := range tn.tree.Children(id) {
			current[c] = true
		}
		for _, ty := range sensordata.AllTypes() {
			rt := n.Table(ty)
			if rt == nil {
				continue
			}
			for _, c := range rt.Children() {
				if !current[c] {
					t.Fatalf("node %d holds a %v row for %d which is not its child anymore",
						id, ty, c)
				}
			}
		}
	}
}
