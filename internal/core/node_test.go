package core

import (
	"testing"

	"repro/internal/radio"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

// fakeTransport records transmissions instead of delivering them.
type fakeTransport struct {
	unicasts []struct {
		from, to topology.NodeID
		class    radio.Class
		msg      any
	}
	multicasts []struct {
		from    topology.NodeID
		targets []topology.NodeID
		class   radio.Class
		msg     any
	}
}

func (f *fakeTransport) Unicast(from, to topology.NodeID, class radio.Class, msg any) {
	f.unicasts = append(f.unicasts, struct {
		from, to topology.NodeID
		class    radio.Class
		msg      any
	}{from, to, class, msg})
}

func (f *fakeTransport) Multicast(from topology.NodeID, targets []topology.NodeID, class radio.Class, msg any) {
	f.multicasts = append(f.multicasts, struct {
		from    topology.NodeID
		targets []topology.NodeID
		class   radio.Class
		msg     any
	}{from, append([]topology.NodeID(nil), targets...), class, msg})
}

// fakeObserver records query events.
type fakeObserver struct {
	received []topology.NodeID
	sources  []topology.NodeID
}

func (f *fakeObserver) QueryReceived(id topology.NodeID, qid int64) {
	f.received = append(f.received, id)
}
func (f *fakeObserver) QuerySource(id topology.NodeID, qid int64) {
	f.sources = append(f.sources, id)
}

func tempOnly() sensordata.TypeSet {
	return sensordata.TypeSet(0).With(sensordata.Temperature)
}

func newLeaf(tr Transport, obs QueryObserver, pct float64) *Node {
	n := NewNode(5, tempOnly(), &FixedController{Pct: pct}, tr, obs)
	n.SetParent(2, true)
	return n
}

func TestFirstReadingSendsUpdate(t *testing.T) {
	tr := &fakeTransport{}
	n := newLeaf(tr, &fakeObserver{}, 4) // δ = 4% of 50°C span = 2°C
	n.OnReading(sensordata.Temperature, 20)
	if len(tr.unicasts) != 1 {
		t.Fatalf("%d updates sent, want 1", len(tr.unicasts))
	}
	u := tr.unicasts[0]
	if u.to != 2 || u.class != radio.ClassUpdate {
		t.Fatalf("update %+v misaddressed", u)
	}
	um := u.msg.(UpdateMsg)
	if um.Min != 18 || um.Max != 22 || !um.Present {
		t.Fatalf("update payload %+v, want [18,22]", um)
	}
	if n.UpdatesSent() != 1 {
		t.Fatalf("UpdatesSent = %d", n.UpdatesSent())
	}
}

func TestStableReadingsSuppressUpdates(t *testing.T) {
	tr := &fakeTransport{}
	n := newLeaf(tr, &fakeObserver{}, 4)
	n.OnReading(sensordata.Temperature, 20)
	for _, v := range []float64{20.5, 19.2, 21.9, 18.1} {
		n.OnReading(sensordata.Temperature, v)
	}
	if len(tr.unicasts) != 1 {
		t.Fatalf("stable readings triggered %d updates, want 1", len(tr.unicasts))
	}
	// Only a major change re-centres AND moves the aggregate enough.
	n.OnReading(sensordata.Temperature, 30)
	if len(tr.unicasts) != 2 {
		t.Fatalf("major change sent %d updates total, want 2", len(tr.unicasts))
	}
}

func TestUnmountedTypeIgnored(t *testing.T) {
	tr := &fakeTransport{}
	n := newLeaf(tr, &fakeObserver{}, 4)
	n.OnReading(sensordata.Humidity, 50)
	if len(tr.unicasts) != 0 {
		t.Fatal("reading for unmounted type produced traffic")
	}
	if n.Table(sensordata.Humidity) != nil {
		t.Fatal("table created for unmounted type")
	}
}

func TestSmallAggregateMovesSuppressed(t *testing.T) {
	// Child reports shift the aggregate by <= δ: no upward propagation.
	tr := &fakeTransport{}
	n := NewNode(2, 0, &FixedController{Pct: 4}, tr, &fakeObserver{}) // δ=2°C
	n.SetParent(0, true)
	n.AddChild(5)
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 18, Max: 22, Present: true})
	if len(tr.unicasts) != 1 {
		t.Fatalf("first child report forwarded %d times, want 1", len(tr.unicasts))
	}
	// Move the child range by 1.5 (< δ): suppressed.
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 16.5, Max: 22, Present: true})
	if len(tr.unicasts) != 1 {
		t.Fatal("sub-threshold aggregate move was forwarded")
	}
	// Move by > δ total from last sent: forwarded.
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 15.5, Max: 22, Present: true})
	if len(tr.unicasts) != 2 {
		t.Fatalf("%d updates after super-threshold move, want 2", len(tr.unicasts))
	}
}

func TestRootDoesNotTransmitUpdates(t *testing.T) {
	tr := &fakeTransport{}
	root := NewNode(0, 0, &FixedController{Pct: 4}, tr, &fakeObserver{})
	root.AddChild(1)
	root.HandleMessage(1, UpdateMsg{Type: sensordata.Temperature, Min: 1, Max: 2, Present: true})
	if len(tr.unicasts) != 0 {
		t.Fatal("root transmitted an update")
	}
	// But its table must be updated for routing.
	rt := root.Table(sensordata.Temperature)
	if rt == nil {
		t.Fatal("root has no table after child report")
	}
	if tu, ok := rt.Child(1); !ok || tu != (Tuple{1, 2}) {
		t.Fatalf("root child tuple %+v", tu)
	}
}

func TestQueryRoutingToMatchingChildrenOnly(t *testing.T) {
	tr := &fakeTransport{}
	obs := &fakeObserver{}
	n := NewNode(2, tempOnly(), &FixedController{Pct: 4}, tr, obs)
	n.SetParent(0, true)
	n.AddChild(5)
	n.AddChild(6)
	n.AddChild(7)
	n.OnReading(sensordata.Temperature, 30) // own [28, 32]
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 10, Max: 15, Present: true})
	n.HandleMessage(6, UpdateMsg{Type: sensordata.Temperature, Min: 20, Max: 25, Present: true})
	n.HandleMessage(7, UpdateMsg{Type: sensordata.Temperature, Min: 35, Max: 38, Present: true})
	tr.multicasts = nil
	obs.received, obs.sources = nil, nil

	q := QueryMsg{Q: mkQuery(1, sensordata.Temperature, 22, 31)}
	n.HandleMessage(0, q)

	if len(obs.received) != 1 || obs.received[0] != 2 {
		t.Fatalf("received = %v", obs.received)
	}
	// Own tuple [28,32] intersects [22,31]: node is a source.
	if len(obs.sources) != 1 || obs.sources[0] != 2 {
		t.Fatalf("sources = %v", obs.sources)
	}
	if len(tr.multicasts) != 1 {
		t.Fatalf("multicasts %d, want 1", len(tr.multicasts))
	}
	mc := tr.multicasts[0]
	if len(mc.targets) != 1 || mc.targets[0] != 6 {
		t.Fatalf("forwarded to %v, want only child 6 ([20,25] intersects)", mc.targets)
	}
	if mc.class != radio.ClassQuery {
		t.Fatalf("query forwarded under class %v", mc.class)
	}
}

func TestQueryNotForwardedWithoutTable(t *testing.T) {
	tr := &fakeTransport{}
	obs := &fakeObserver{}
	n := NewNode(2, 0, &FixedController{Pct: 4}, tr, obs)
	n.AddChild(5)
	n.HandleMessage(0, QueryMsg{Q: mkQuery(1, sensordata.Temperature, 0, 50)})
	if len(tr.multicasts) != 0 {
		t.Fatal("query forwarded despite absent range table (type not in subtree)")
	}
	if len(obs.received) != 1 {
		t.Fatal("receipt not recorded")
	}
}

func TestQuerySourceButNoOwnSensor(t *testing.T) {
	// A pure forwarding node (Fig. 4: N1 has only type C but keeps tables
	// for A and B) must never answer for types it does not mount.
	tr := &fakeTransport{}
	obs := &fakeObserver{}
	n := NewNode(2, 0, &FixedController{Pct: 4}, tr, obs)
	n.AddChild(5)
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 10, Max: 20, Present: true})
	n.HandleMessage(0, QueryMsg{Q: mkQuery(1, sensordata.Temperature, 0, 50)})
	if len(obs.sources) != 0 {
		t.Fatal("sensorless node answered a query")
	}
	if len(tr.multicasts) != 1 {
		t.Fatal("forwarding node did not forward")
	}
}

func TestChildWithdrawalPropagates(t *testing.T) {
	tr := &fakeTransport{}
	n := NewNode(2, 0, &FixedController{Pct: 4}, tr, &fakeObserver{})
	n.SetParent(0, true)
	n.AddChild(5)
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 1, Max: 2, Present: true})
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Present: false})
	if len(tr.unicasts) != 2 {
		t.Fatalf("%d updates, want 2 (report + withdrawal)", len(tr.unicasts))
	}
	um := tr.unicasts[1].msg.(UpdateMsg)
	if um.Present {
		t.Fatalf("second update %+v should be a withdrawal", um)
	}
}

func TestRemoveChildPropagatesShrink(t *testing.T) {
	tr := &fakeTransport{}
	n := NewNode(2, 0, &FixedController{Pct: 4}, tr, &fakeObserver{})
	n.SetParent(0, true)
	n.AddChild(5)
	n.AddChild(6)
	n.HandleMessage(5, UpdateMsg{Type: sensordata.Temperature, Min: 0, Max: 10, Present: true})
	n.HandleMessage(6, UpdateMsg{Type: sensordata.Temperature, Min: 20, Max: 45, Present: true})
	sent := len(tr.unicasts)
	n.RemoveChild(6) // aggregate shrinks from [0,45] to [0,10]
	if len(tr.unicasts) != sent+1 {
		t.Fatalf("dead child did not trigger an update (%d -> %d)", sent, len(tr.unicasts))
	}
	um := tr.unicasts[len(tr.unicasts)-1].msg.(UpdateMsg)
	if um.Min != 0 || um.Max != 10 || !um.Present {
		t.Fatalf("post-death update %+v, want [0,10]", um)
	}
	if got := n.Children(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("children after removal: %v", got)
	}
}

func TestResendAllAfterReattach(t *testing.T) {
	tr := &fakeTransport{}
	n := newLeaf(tr, &fakeObserver{}, 4)
	n.OnReading(sensordata.Temperature, 20)
	tr.unicasts = nil
	// Orphaned, then re-attached to node 9.
	n.SetParent(0, false)
	n.OnReading(sensordata.Temperature, 35) // table changes while orphaned: no tx
	if len(tr.unicasts) != 0 {
		t.Fatal("orphan transmitted an update")
	}
	n.SetParent(9, true)
	n.ResendAll()
	if len(tr.unicasts) != 1 {
		t.Fatalf("ResendAll sent %d updates, want 1", len(tr.unicasts))
	}
	if tr.unicasts[0].to != 9 {
		t.Fatalf("resend addressed to %d, want new parent 9", tr.unicasts[0].to)
	}
}

func TestEstimateDedupAndForwarding(t *testing.T) {
	tr := &fakeTransport{}
	ctrl := &countingController{FixedController: FixedController{Pct: 5}}
	n := NewNode(2, tempOnly(), ctrl, tr, &fakeObserver{})
	n.AddChild(5)
	e := EstimateMsg{Seq: 1, QueriesPerHr: 10, BudgetPerNode: 3}
	n.HandleMessage(0, e)
	n.HandleMessage(0, e) // duplicate
	if ctrl.estimates != 1 {
		t.Fatalf("controller saw %d estimates, want 1 (dedup)", ctrl.estimates)
	}
	if len(tr.multicasts) != 1 {
		t.Fatalf("estimate forwarded %d times, want 1", len(tr.multicasts))
	}
	// Newer sequence passes.
	n.HandleMessage(0, EstimateMsg{Seq: 2, QueriesPerHr: 12})
	if ctrl.estimates != 2 {
		t.Fatal("newer estimate dropped")
	}
}

func TestAddChildIdempotentSorted(t *testing.T) {
	n := NewNode(0, 0, &FixedController{}, &fakeTransport{}, &fakeObserver{})
	n.AddChild(5)
	n.AddChild(2)
	n.AddChild(5)
	n.AddChild(9)
	got := n.Children()
	want := []topology.NodeID{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("children %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("children %v, want %v", got, want)
		}
	}
}

func TestEndEpochFeedsController(t *testing.T) {
	ctrl := &countingController{FixedController: FixedController{Pct: 5}}
	n := NewNode(3, tempOnly(), ctrl, &fakeTransport{}, &fakeObserver{})
	n.SetParent(0, true)
	n.OnReading(sensordata.Temperature, 10)
	n.OnReading(sensordata.Temperature, 12)
	n.EndEpoch()
	if ctrl.epochs != 1 {
		t.Fatalf("OnEpoch calls = %d", ctrl.epochs)
	}
	if ctrl.lastVol <= 0 {
		t.Fatalf("normalized volatility %v, want > 0", ctrl.lastVol)
	}
	if ctrl.updates != 1 {
		t.Fatalf("OnUpdateSent calls = %d, want 1", ctrl.updates)
	}
}

// countingController wraps FixedController with call counters.
type countingController struct {
	FixedController
	estimates int
	epochs    int
	updates   int
	lastVol   float64
}

func (c *countingController) OnEstimate(e EstimateMsg) { c.estimates++ }
func (c *countingController) OnEpoch(v float64)        { c.epochs++; c.lastVol = v }
func (c *countingController) OnUpdateSent()            { c.updates++ }
