package core

import (
	"sort"

	"repro/internal/radio"
	"repro/internal/sensordata"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Transport is how a node hands messages to the link layer. Both functions
// queue for the node's next TDMA slot.
type Transport interface {
	// Unicast sends to one radio neighbor.
	Unicast(from, to topology.NodeID, class radio.Class, msg any)
	// Multicast sends once, addressed to the listed radio neighbors. The
	// targets slice is only valid for the duration of the call — nodes
	// reuse it — so implementations that queue must copy it.
	Multicast(from topology.NodeID, targets []topology.NodeID, class radio.Class, msg any)
}

// QueryObserver receives query-delivery events for accuracy accounting. It
// is measurement infrastructure, not protocol state.
type QueryObserver interface {
	// QueryReceived fires when a node receives a query.
	QueryReceived(id topology.NodeID, queryID int64)
	// QuerySource fires when a receiving node's own stored tuple matches,
	// i.e. the node answers the query.
	QuerySource(id topology.NodeID, queryID int64)
}

// Node is the per-node DirQ state machine. All decisions use strictly local
// information: the node's own readings, its children's last-reported
// aggregates, and the root's estimate broadcasts.
type Node struct {
	id      topology.NodeID
	mounted sensordata.TypeSet

	parent    topology.NodeID
	hasParent bool
	children  []topology.NodeID // sorted

	tables [sensordata.NumTypes]*RangeTable
	vol    [sensordata.NumTypes]*sensordata.Volatility

	ctrl      Controller
	transport Transport
	observer  QueryObserver

	lastEstimateSeq int64
	updatesSent     int64
	trace           func(TraceEvent)
	geo             GeoResolver
	// telUpdates mirrors updatesSent into the shared tuples-sent counter
	// (nil-safe; wired by Protocol when telemetry is attached).
	telUpdates *telemetry.Counter

	// msgPool, when set (by Protocol), recycles Update Message boxes so a
	// range-update hop does not heap-allocate. Nil falls back to plain
	// value boxing — standalone Nodes in tests need no pool.
	msgPool *updateMsgPool
	// targetScratch is reused across RouteQuery calls for the matched-
	// children list handed to Transport.Multicast. Transports must copy.
	targetScratch []topology.NodeID
}

// updateMsgPool is a free list of Update Message boxes, shared across all
// nodes of one Protocol: an update unicast has exactly one receiver, which
// returns the box after copying the payload out, so the pool stays at the
// size of the peak number of in-flight updates.
type updateMsgPool struct {
	free []*UpdateMsg
}

func (p *updateMsgPool) get() *UpdateMsg {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return new(UpdateMsg)
}

func (p *updateMsgPool) put(m *UpdateMsg) {
	p.free = append(p.free, m)
}

// NewNode builds a DirQ node. The controller, transport and observer must
// be non-nil; pass a FixedController and a no-op observer when not needed.
func NewNode(id topology.NodeID, mounted sensordata.TypeSet, ctrl Controller,
	tr Transport, obs QueryObserver) *Node {

	n := &Node{
		id: id, mounted: mounted, ctrl: ctrl, transport: tr, observer: obs,
		lastEstimateSeq: -1,
	}
	for _, t := range mounted.Types() {
		n.vol[t] = sensordata.NewVolatility(sensordata.DefaultAlpha)
	}
	return n
}

// SetTrace installs an optional trace hook (nil disables tracing).
func (n *Node) SetTrace(fn func(TraceEvent)) { n.trace = fn }

func (n *Node) emit(ev TraceEvent) {
	if n.trace != nil {
		n.trace(ev)
	}
}

// ID returns the node's identifier.
func (n *Node) ID() topology.NodeID { return n.id }

// Mounted returns the node's sensor complement.
func (n *Node) Mounted() sensordata.TypeSet { return n.mounted }

// UpdatesSent returns the number of Update Messages this node has
// transmitted.
func (n *Node) UpdatesSent() int64 { return n.updatesSent }

// DeltaPct returns the node's current threshold (percent of span).
func (n *Node) DeltaPct() float64 { return n.ctrl.DeltaPct() }

// Controller exposes the node's threshold controller.
func (n *Node) Controller() Controller { return n.ctrl }

// SetParent points the node at its (new) parent. Passing ok=false orphans
// the node (it stops sending updates until re-attached).
func (n *Node) SetParent(p topology.NodeID, ok bool) {
	n.parent = p
	n.hasParent = ok
}

// Parent returns the current parent.
func (n *Node) Parent() (topology.NodeID, bool) { return n.parent, n.hasParent }

// AddChild registers a tree child (used for estimate re-distribution; range
// information arrives separately through the child's Update Messages).
func (n *Node) AddChild(c topology.NodeID) {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i] >= c })
	if i < len(n.children) && n.children[i] == c {
		return
	}
	n.children = append(n.children, 0)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
}

// RemoveChild drops a tree child and purges its rows from every range
// table, transmitting any resulting aggregate changes upward — the §4.2
// reaction to a cross-layer dead-neighbor notification.
func (n *Node) RemoveChild(c topology.NodeID) {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i] >= c })
	if i < len(n.children) && n.children[i] == c {
		n.children = append(n.children[:i], n.children[i+1:]...)
	}
	for ti := range n.tables {
		rt := n.tables[ti]
		if rt == nil {
			continue
		}
		if rt.RemoveChild(c) {
			n.maybeSendUpdate(sensordata.Type(ti))
		}
	}
}

// Children returns the node's sorted child list.
func (n *Node) Children() []topology.NodeID { return n.children }

// Table returns the node's range table for a type, or nil if none exists —
// nil meaning the type is absent from the node's entire subtree (Fig. 4).
func (n *Node) Table(t sensordata.Type) *RangeTable { return n.tables[t] }

func (n *Node) table(t sensordata.Type) *RangeTable {
	if n.tables[t] == nil {
		n.tables[t] = NewRangeTable()
	}
	return n.tables[t]
}

// deltaUnits converts the controller's percentage threshold into sensor
// units for one type.
func (n *Node) deltaUnits(t sensordata.Type) float64 {
	return n.ctrl.DeltaPct() / 100 * t.SpanWidth()
}

// OnReading processes one sensor acquisition (one epoch, one type).
// Readings for unmounted types are ignored.
func (n *Node) OnReading(t sensordata.Type, v float64) {
	if !n.mounted.Has(t) {
		return
	}
	n.vol[t].Observe(v)
	rt := n.table(t)
	if rt.ObserveReading(v, n.deltaUnits(t)) {
		n.maybeSendUpdate(t)
	}
}

// TickEpoch advances the controller's epoch clock without computing the
// node's volatility. Valid only when the controller's GatingProfile says
// the volatility argument is ignored — the activity-gated epoch loop uses
// it for quiescent nodes whose controller still counts epochs.
func (n *Node) TickEpoch() { n.ctrl.OnEpoch(0) }

// EndEpoch performs per-epoch bookkeeping: it feeds the controller the
// node's normalized data volatility.
func (n *Node) EndEpoch() {
	var sum float64
	var cnt int
	for _, t := range n.mounted.Types() {
		sum += n.vol[t].MeanAbsDelta() / t.SpanWidth()
		cnt++
	}
	if cnt > 0 {
		n.ctrl.OnEpoch(sum / float64(cnt))
	} else {
		n.ctrl.OnEpoch(0)
	}
}

// maybeSendUpdate transmits an Update Message for type t to the parent if
// the aggregate has moved by more than δ since the last transmission
// (Fig. 3). Orphans and the root (no parent) do not transmit.
func (n *Node) maybeSendUpdate(t sensordata.Type) {
	rt := n.tables[t]
	if rt == nil {
		return
	}
	pu := rt.decideUpdate(n.deltaUnits(t))
	if !pu.send {
		return
	}
	if f, ok := n.ctrl.(UpdateFreezer); ok && f.UpdatesFrozen() {
		return // static-index baseline: never refresh ancestors
	}
	if !n.hasParent {
		// The root (or an orphan) records the aggregate as "seen" so its
		// own routing state stays coherent, but transmits nothing.
		if pu.withdraw {
			rt.markWithdrawn()
		} else {
			rt.markSent(pu.agg)
		}
		return
	}
	if pu.withdraw {
		n.sendUpdate(UpdateMsg{Type: t, Present: false})
		rt.markWithdrawn()
		n.emit(TraceEvent{Kind: TraceWithdraw, Node: n.id, Peer: n.parent, Type: t})
	} else {
		n.sendUpdate(UpdateMsg{Type: t, Min: pu.agg.Min, Max: pu.agg.Max, Present: true})
		rt.markSent(pu.agg)
		n.emit(TraceEvent{Kind: TraceUpdateSent, Node: n.id, Peer: n.parent, Type: t})
	}
	n.updatesSent++
	n.telUpdates.Inc()
	n.ctrl.OnUpdateSent()
}

// sendUpdate unicasts one Update Message to the parent, through the pool
// when one is installed so the interface box is recycled by the receiver.
func (n *Node) sendUpdate(m UpdateMsg) {
	if n.msgPool != nil {
		box := n.msgPool.get()
		*box = m
		n.transport.Unicast(n.id, n.parent, radio.ClassUpdate, box)
		return
	}
	n.transport.Unicast(n.id, n.parent, radio.ClassUpdate, m)
}

// ResetTreeLinks dissolves the node's tree wiring: parent, child list and
// every child row in every range table. It is called when the node's
// subtree is torn down after an upstream death — the former children
// re-attach independently (possibly elsewhere) and re-report their ranges,
// so keeping their rows would leave stale range information behind. The
// node's own tuples and volatility state survive.
func (n *Node) ResetTreeLinks() {
	n.hasParent = false
	n.children = nil
	for ti := range n.tables {
		rt := n.tables[ti]
		if rt == nil {
			continue
		}
		rt.ClearChildren()
		rt.markWithdrawn() // next attachment re-reports from scratch
		if rt.Empty() {
			n.tables[ti] = nil
		}
	}
}

// ResendAll force-transmits the current aggregate of every non-empty table
// to the (new) parent — used after re-attachment so the new parent learns
// the subtree's ranges (§4.2).
func (n *Node) ResendAll() {
	for ti := range n.tables {
		rt := n.tables[ti]
		if rt == nil {
			continue
		}
		rt.markWithdrawn() // forget previous parent's view
		n.maybeSendUpdate(sensordata.Type(ti))
	}
}

// HandleMessage dispatches a link-layer delivery. Query and estimate
// deliveries keep the incoming interface box and forward it unchanged, so
// a multi-hop wave boxes its message once at the origin; pooled update
// boxes are copied out and recycled here, at their single receiver.
func (n *Node) HandleMessage(from topology.NodeID, msg any) {
	switch m := msg.(type) {
	case *UpdateMsg:
		v := *m
		if n.msgPool != nil {
			n.msgPool.put(m)
		}
		n.onUpdate(from, v)
	case UpdateMsg:
		n.onUpdate(from, m)
	case QueryMsg:
		n.onQuery(m, msg)
	case GeoQueryMsg:
		n.onGeoQuery(m)
	case EstimateMsg:
		n.onEstimate(m, msg)
	}
}

// onUpdate merges a child's Update Message into the table and propagates
// any significant aggregate change upward.
func (n *Node) onUpdate(from topology.NodeID, m UpdateMsg) {
	rt := n.table(m.Type)
	changed := false
	if m.Present {
		changed = rt.SetChild(from, Tuple{Min: m.Min, Max: m.Max})
	} else {
		changed = rt.RemoveChild(from)
	}
	if changed {
		n.maybeSendUpdate(m.Type)
	}
}

// onQuery records receipt, answers if the node's own stored tuple matches,
// and forwards the query to exactly the children whose stored aggregates
// intersect the range — the directed dissemination of §4.1.
func (n *Node) onQuery(m QueryMsg, boxed any) {
	n.observer.QueryReceived(n.id, m.Q.ID)
	n.emit(TraceEvent{Kind: TraceQueryReceived, Node: n.id, Peer: -1, QueryID: m.Q.ID})
	n.routeQuery(m, boxed, true)
}

// RouteQuery forwards a query towards matching children; when answer is
// true the node also checks its own tuple and reports itself as a source.
// The root calls this with answer=false at injection time (the sink holds
// no sensors and does not count as a receiver).
func (n *Node) RouteQuery(m QueryMsg, answer bool) {
	n.routeQuery(m, m, answer)
}

// routeQuery is RouteQuery with the query's interface box supplied by the
// caller, so every hop of one dissemination wave shares a single box.
func (n *Node) routeQuery(m QueryMsg, boxed any, answer bool) {
	rt := n.tables[m.Q.Type]
	if rt == nil {
		return
	}
	if answer && n.mounted.Has(m.Q.Type) {
		if own, ok := rt.Own(); ok && own.Intersects(m.Q.Lo, m.Q.Hi) {
			n.observer.QuerySource(n.id, m.Q.ID)
			n.emit(TraceEvent{Kind: TraceQuerySource, Node: n.id, Peer: -1, QueryID: m.Q.ID})
		}
	}
	targets := n.targetScratch[:0]
	for _, c := range rt.Children() {
		if t, ok := rt.Child(c); ok && t.Intersects(m.Q.Lo, m.Q.Hi) {
			targets = append(targets, c)
		}
	}
	n.targetScratch = targets
	if len(targets) > 0 {
		n.transport.Multicast(n.id, targets, radio.ClassQuery, boxed)
	}
}

// onEstimate consumes an hourly estimate and passes it one level further
// down the tree (deduplicated by sequence number, since the multicast can
// reach a node through stale paths after re-attachment).
func (n *Node) onEstimate(m EstimateMsg, boxed any) {
	if m.Seq <= n.lastEstimateSeq {
		return
	}
	n.lastEstimateSeq = m.Seq
	n.ctrl.OnEstimate(m)
	n.forwardEstimate(boxed)
}

// ForwardEstimate multicasts an estimate to all current children.
func (n *Node) ForwardEstimate(m EstimateMsg) {
	n.forwardEstimate(m)
}

// forwardEstimate multicasts an already-boxed estimate to all children.
func (n *Node) forwardEstimate(boxed any) {
	if len(n.children) > 0 {
		n.transport.Multicast(n.id, n.children, radio.ClassEstimate, boxed)
	}
}
