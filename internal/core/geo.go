package core

import (
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/topology"
)

// GeoResolver supplies the static location knowledge that enables
// location-constrained routing (§2: DirQ routes on "location (static) if
// it is available"). The geo package provides the implementation.
type GeoResolver interface {
	// SubtreeBox returns the bounding box of a node's subtree.
	SubtreeBox(id topology.NodeID) (topology.Rect, bool)
	// Position returns a node's own static position.
	Position(id topology.NodeID) topology.Position
}

// GeoQueryMsg couples a range query with a location constraint: "acquire
// all temperature readings between 22 and 25 °C in the north-west plot".
type GeoQueryMsg struct {
	Q    query.Query
	Rect topology.Rect
}

// SetGeo installs the node's location resolver. Without one, geo queries
// degrade gracefully to value-only routing.
func (n *Node) SetGeo(g GeoResolver) { n.geo = g }

// onGeoQuery records receipt and routes with the additional spatial
// constraint.
func (n *Node) onGeoQuery(m GeoQueryMsg) {
	n.observer.QueryReceived(n.id, m.Q.ID)
	n.emit(TraceEvent{Kind: TraceQueryReceived, Node: n.id, Peer: -1, QueryID: m.Q.ID})
	n.RouteGeoQuery(m, true)
}

// RouteGeoQuery forwards a location-constrained query to exactly the
// children whose stored value ranges match AND whose subtree bounding
// boxes intersect the query rectangle. When answer is true the node also
// checks itself (value tuple match and own position inside the rectangle).
func (n *Node) RouteGeoQuery(m GeoQueryMsg, answer bool) {
	rt := n.tables[m.Q.Type]
	if rt == nil {
		return
	}
	if answer && n.mounted.Has(m.Q.Type) {
		if own, ok := rt.Own(); ok && own.Intersects(m.Q.Lo, m.Q.Hi) {
			if n.geo == nil || m.Rect.Contains(n.geo.Position(n.id)) {
				n.observer.QuerySource(n.id, m.Q.ID)
				n.emit(TraceEvent{Kind: TraceQuerySource, Node: n.id, Peer: -1, QueryID: m.Q.ID})
			}
		}
	}
	var targets []topology.NodeID
	for _, c := range rt.Children() {
		t, ok := rt.Child(c)
		if !ok || !t.Intersects(m.Q.Lo, m.Q.Hi) {
			continue
		}
		if n.geo != nil {
			if box, ok := n.geo.SubtreeBox(c); ok && !box.Intersects(m.Rect) {
				continue
			}
		}
		targets = append(targets, c)
	}
	if len(targets) > 0 {
		n.transport.Multicast(n.id, targets, radio.ClassQuery, m)
	}
}

// SetGeo installs a location resolver on every node.
func (p *Protocol) SetGeo(g GeoResolver) {
	for _, n := range p.nodes {
		n.SetGeo(g)
	}
}

// InjectGeoQuery starts directed dissemination of a location-constrained
// query at the root.
func (p *Protocol) InjectGeoQuery(q query.Query, rect topology.Rect,
	truth query.GroundTruth) *QueryRecord {

	r := &QueryRecord{
		Query: q, Truth: truth, InjectedAt: p.engine.Now(),
		Received: map[topology.NodeID]bool{},
		Sources:  map[topology.NodeID]bool{},
	}
	p.records[q.ID] = r
	p.order = append(p.order, q.ID)
	p.predictor.Observe()
	p.nodes[p.tree.Root()].RouteGeoQuery(GeoQueryMsg{Q: q, Rect: rect}, false)
	return r
}
