package core

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Tuple is a (THmin, THmax) pair — one Range Table row.
type Tuple struct {
	Min, Max float64
}

// Intersects reports whether the closed interval [Min, Max] overlaps
// [lo, hi].
func (t Tuple) Intersects(lo, hi float64) bool {
	return t.Max >= lo && t.Min <= hi
}

// RangeTable is the §4.1 data structure, one instance per sensor type per
// node: the node's own threshold tuple (maintained with hysteresis δ) plus
// one tuple per one-hop child, along with the aggregate last transmitted to
// the parent so the table can decide when a new Update Message is due.
type RangeTable struct {
	own    Tuple
	hasOwn bool

	children map[topology.NodeID]Tuple
	childIDs []topology.NodeID // keys of children, kept sorted

	lastSent Tuple
	hasSent  bool
}

// NewRangeTable returns an empty table.
func NewRangeTable() *RangeTable {
	return &RangeTable{children: map[topology.NodeID]Tuple{}}
}

// ObserveReading applies the hysteresis rule to a new sensor reading RAq
// with threshold delta (in sensor units): if the reading falls outside the
// current [THmin, THmax] the tuple is re-centred to [RAq-δ, RAq+δ] (eqs. (1)
// and (2)); otherwise the table is left unchanged. Reports whether the
// table was modified.
func (rt *RangeTable) ObserveReading(v, delta float64) bool {
	if delta < 0 {
		panic(fmt.Sprintf("core: negative delta %v", delta))
	}
	if rt.hasOwn && v >= rt.own.Min && v <= rt.own.Max {
		return false
	}
	rt.own = Tuple{Min: v - delta, Max: v + delta}
	rt.hasOwn = true
	return true
}

// Own returns the node's own tuple; ok is false if the node has never taken
// a reading for this type (or does not mount it).
func (rt *RangeTable) Own() (Tuple, bool) { return rt.own, rt.hasOwn }

// ClearOwn removes the node's own tuple (sensor removed from the node).
func (rt *RangeTable) ClearOwn() { rt.own = Tuple{}; rt.hasOwn = false }

// SetChild stores the aggregate tuple most recently reported by a child.
// Reports whether the stored value changed.
func (rt *RangeTable) SetChild(id topology.NodeID, t Tuple) bool {
	if old, ok := rt.children[id]; ok {
		if old == t {
			return false
		}
		rt.children[id] = t
		return true
	}
	rt.children[id] = t
	i := sort.Search(len(rt.childIDs), func(i int) bool { return rt.childIDs[i] >= id })
	rt.childIDs = append(rt.childIDs, 0)
	copy(rt.childIDs[i+1:], rt.childIDs[i:])
	rt.childIDs[i] = id
	return true
}

// Child returns the stored tuple for a child.
func (rt *RangeTable) Child(id topology.NodeID) (Tuple, bool) {
	t, ok := rt.children[id]
	return t, ok
}

// RemoveChild deletes a child's entry (dead node or withdrawn sensor type).
// Reports whether an entry existed.
func (rt *RangeTable) RemoveChild(id topology.NodeID) bool {
	if _, ok := rt.children[id]; !ok {
		return false
	}
	delete(rt.children, id)
	i := sort.Search(len(rt.childIDs), func(i int) bool { return rt.childIDs[i] >= id })
	rt.childIDs = append(rt.childIDs[:i], rt.childIDs[i+1:]...)
	return true
}

// ClearChildren drops every child entry at once.
func (rt *RangeTable) ClearChildren() {
	for id := range rt.children {
		delete(rt.children, id)
	}
	rt.childIDs = rt.childIDs[:0]
}

// Children returns the child IDs with entries, sorted. The returned slice
// is shared with the table and must not be modified or held across calls
// that change the child set.
func (rt *RangeTable) Children() []topology.NodeID {
	return rt.childIDs
}

// Len returns the number of rows (own entry plus child entries) — the n+1
// of §4.1.
func (rt *RangeTable) Len() int {
	n := len(rt.children)
	if rt.hasOwn {
		n++
	}
	return n
}

// Empty reports whether the table holds no information at all, meaning the
// sensor type no longer exists in this node's subtree.
func (rt *RangeTable) Empty() bool { return rt.Len() == 0 }

// Aggregate returns (min(THmin), max(THmax)) over all rows (Fig. 2); ok is
// false when the table is empty.
func (rt *RangeTable) Aggregate() (Tuple, bool) {
	if rt.Empty() {
		return Tuple{}, false
	}
	first := true
	var agg Tuple
	if rt.hasOwn {
		agg = rt.own
		first = false
	}
	for _, t := range rt.children {
		if first {
			agg = t
			first = false
			continue
		}
		if t.Min < agg.Min {
			agg.Min = t.Min
		}
		if t.Max > agg.Max {
			agg.Max = t.Max
		}
	}
	return agg, true
}

// pendingUpdate describes what, if anything, must be transmitted to the
// parent after a table modification.
type pendingUpdate struct {
	send     bool
	withdraw bool
	agg      Tuple
}

// decideUpdate implements Fig. 3: an Update Message is due when the new
// aggregate min or max differs from the previously transmitted aggregate by
// more than delta, when no aggregate was ever sent, or when the table just
// became empty (withdrawal).
func (rt *RangeTable) decideUpdate(delta float64) pendingUpdate {
	agg, ok := rt.Aggregate()
	if !ok {
		if rt.hasSent {
			return pendingUpdate{send: true, withdraw: true}
		}
		return pendingUpdate{}
	}
	if !rt.hasSent {
		return pendingUpdate{send: true, agg: agg}
	}
	if abs(agg.Min-rt.lastSent.Min) > delta || abs(agg.Max-rt.lastSent.Max) > delta {
		return pendingUpdate{send: true, agg: agg}
	}
	return pendingUpdate{}
}

// markSent records the transmitted aggregate.
func (rt *RangeTable) markSent(agg Tuple) {
	rt.lastSent = agg
	rt.hasSent = true
}

// markWithdrawn records that the parent was told the type is gone.
func (rt *RangeTable) markWithdrawn() {
	rt.lastSent = Tuple{}
	rt.hasSent = false
}

// LastSent returns the aggregate last transmitted; ok is false when nothing
// is outstanding at the parent.
func (rt *RangeTable) LastSent() (Tuple, bool) { return rt.lastSent, rt.hasSent }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
