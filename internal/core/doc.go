// Package core implements DirQ, the paper's adaptive directed query
// dissemination scheme: per-sensor-type range tables with hysteresis
// (§4.1), Update Messages that keep aggregate range information accurate
// towards the root, directed forwarding of range queries to exactly the
// children whose subtree ranges intersect, hourly EHr estimate distribution
// (§4/§6), and cross-layer adaptation to topology changes (§4.2).
//
// In the repo's layer map this is the protocol layer: it consumes sensor
// readings from sensordata, transmits through the lmac/radio substrate
// over the topology tree, and is driven per epoch by scenario. Messages on
// the hot path are pooled or share one interface box per dissemination
// wave, so a range-update hop and a query hop do not heap-allocate.
//
// The epoch loop is activity-gated (hotstate.go): a conservative per-type
// sweep over flat per-node state builds the epoch's worklist of nodes
// whose readings could escape their hysteresis window; everyone else
// provably produces no observable effect this epoch and is skipped, so
// per-epoch cost tracks activity, not network size. Controllers advertise
// via GatingProfile whether they consume volatility; those that do (the
// ATC) keep the exact ungated path, which is how gated runs stay
// byte-identical in every mode.
package core
