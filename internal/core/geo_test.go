package core

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/query"
	"repro/internal/radio"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

func TestGeoRoutingPrunesBySubtreeBox(t *testing.T) {
	tn := buildNet(t, 25, 31, fixedCfg(3))
	tn.run(60)

	pos := func(id topology.NodeID) topology.Position { return tn.graph.Pos(id) }
	ix, err := geo.NewIndex(tn.tree, pos)
	if err != nil {
		t.Fatal(err)
	}
	tn.proto.SetGeo(ix)

	ty := sensordata.Temperature
	lo, hi := ty.Span()
	val := func(id topology.NodeID) float64 { return tn.gen.Value(id, ty) }

	// A rectangle covering only the left half of the deployment.
	rect := topology.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 100}
	q := mkQuery(500, ty, lo, hi) // match-all on value: the rect does the pruning
	truth := query.ResolveGeo(q, rect, tn.tree, tn.mounted, val, pos)
	rec := tn.proto.InjectGeoQuery(q, rect, truth)
	tn.run(120)

	// Every in-rect node must answer; no node outside may answer.
	for _, src := range truth.Sources {
		if !rec.Sources[src] {
			t.Fatalf("in-rect node %d did not answer", src)
		}
	}
	for id := range rec.Sources {
		if !rect.Contains(pos(id)) {
			t.Fatalf("node %d outside the rectangle answered", id)
		}
	}
	// Pruning: some subtrees lie entirely outside the rect, so the geo
	// query must reach strictly fewer nodes than a match-all value query.
	q2 := mkQuery(501, ty, lo, hi)
	truth2 := query.Resolve(q2, tn.tree, tn.mounted, val)
	rec2 := tn.proto.InjectQuery(q2, truth2)
	tn.run(180)
	if len(rec.Received) >= len(rec2.Received) {
		t.Fatalf("geo query reached %d nodes, plain match-all reached %d: no spatial pruning",
			len(rec.Received), len(rec2.Received))
	}
}

func TestGeoRoutingCheaperThanValueOnly(t *testing.T) {
	tn := buildNet(t, 25, 32, fixedCfg(3))
	tn.run(60)
	pos := func(id topology.NodeID) topology.Position { return tn.graph.Pos(id) }
	ix, err := geo.NewIndex(tn.tree, pos)
	if err != nil {
		t.Fatal(err)
	}
	tn.proto.SetGeo(ix)

	ty := sensordata.Humidity
	lo, hi := ty.Span()
	val := func(id topology.NodeID) float64 { return tn.gen.Value(id, ty) }

	before := tn.channel.Meter().ByClass(radio.ClassQuery).Total()
	rect := topology.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30}
	q := mkQuery(600, ty, lo, hi)
	tn.proto.InjectGeoQuery(q, rect, query.ResolveGeo(q, rect, tn.tree, tn.mounted, val, pos))
	tn.run(120)
	geoCost := tn.channel.Meter().ByClass(radio.ClassQuery).Total() - before

	before = tn.channel.Meter().ByClass(radio.ClassQuery).Total()
	q2 := mkQuery(601, ty, lo, hi)
	tn.proto.InjectQuery(q2, query.Resolve(q2, tn.tree, tn.mounted, val))
	tn.run(180)
	plainCost := tn.channel.Meter().ByClass(radio.ClassQuery).Total() - before

	if geoCost >= plainCost {
		t.Fatalf("geo-constrained dissemination cost %d >= unconstrained %d", geoCost, plainCost)
	}
}

func TestGeoQueryWithoutResolverFallsBack(t *testing.T) {
	// Without SetGeo, a geo query routes like a value query (graceful
	// degradation when no localization is deployed).
	tn := buildNet(t, 15, 33, fixedCfg(3))
	tn.run(60)
	ty := sensordata.Light
	lo, hi := ty.Span()
	val := func(id topology.NodeID) float64 { return tn.gen.Value(id, ty) }
	pos := func(id topology.NodeID) topology.Position { return tn.graph.Pos(id) }

	rect := topology.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1} // covers nobody
	q := mkQuery(700, ty, lo, hi)
	rec := tn.proto.InjectGeoQuery(q, rect, query.ResolveGeo(q, rect, tn.tree, tn.mounted, val, pos))
	tn.run(120)
	// Fallback: everyone with a matching value still receives (no geo
	// knowledge, so no spatial pruning and no spatial source filter).
	if len(rec.Received) == 0 {
		t.Fatal("fallback routing delivered nothing")
	}
}

func TestGeoSourceFilterExcludesOutOfRect(t *testing.T) {
	tr := &fakeTransport{}
	obs := &fakeObserver{}
	n := NewNode(2, tempOnly(), &FixedController{Pct: 4}, tr, obs)
	n.SetParent(0, true)
	n.OnReading(sensordata.Temperature, 20)

	positions := map[topology.NodeID]topology.Position{2: {X: 5, Y: 5}}
	tree := topology.NewTree(0)
	if err := tree.Attach(0, 2); err != nil {
		t.Fatal(err)
	}
	ix, err := geo.NewIndex(tree, func(id topology.NodeID) topology.Position {
		return positions[id]
	})
	if err != nil {
		t.Fatal(err)
	}
	n.SetGeo(ix)

	inRect := topology.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	outRect := topology.Rect{MinX: 50, MinY: 50, MaxX: 60, MaxY: 60}

	n.HandleMessage(0, GeoQueryMsg{Q: mkQuery(1, sensordata.Temperature, 0, 50), Rect: inRect})
	if len(obs.sources) != 1 {
		t.Fatalf("in-rect source not recorded: %v", obs.sources)
	}
	obs.sources = nil
	n.HandleMessage(0, GeoQueryMsg{Q: mkQuery(2, sensordata.Temperature, 0, 50), Rect: outRect})
	if len(obs.sources) != 0 {
		t.Fatalf("out-of-rect node answered: %v", obs.sources)
	}
	if len(obs.received) != 2 {
		t.Fatalf("receipts %v, want both queries recorded", obs.received)
	}
}
