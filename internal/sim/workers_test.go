package sim

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersNilAndSerial(t *testing.T) {
	var nilW *Workers
	if got := nilW.Count(); got != 1 {
		t.Fatalf("nil Workers Count = %d, want 1", got)
	}
	ran := make([]bool, 5)
	nilW.Run(len(ran), func(task int) { ran[task] = true })
	for i, ok := range ran {
		if !ok {
			t.Fatalf("nil Workers skipped task %d", i)
		}
	}

	for _, n := range []int{-3, 0, 1} {
		w := NewWorkers(n)
		if got := w.Count(); got != 1 {
			t.Fatalf("NewWorkers(%d).Count() = %d, want 1", n, got)
		}
	}
}

func TestWorkersRunsEveryTaskExactlyOnce(t *testing.T) {
	w := NewWorkers(4)
	if got := w.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	const tasks = 37
	var counts [tasks]int32
	w.Run(tasks, func(task int) { atomic.AddInt32(&counts[task], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, c)
		}
	}
}

func TestWorkersZeroTasks(t *testing.T) {
	w := NewWorkers(4)
	called := false
	w.Run(0, func(int) { called = true })
	if called {
		t.Fatal("fn called with zero tasks")
	}
}

func TestWorkersLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	w := NewWorkers(8)
	for i := 0; i < 50; i++ {
		w.Run(8, func(int) {})
	}
	// Give any stragglers a moment to show up before asserting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
