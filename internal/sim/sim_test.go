package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunInOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("insertion order not preserved at ties: %v", got)
		}
	}
}

func TestTieBreakByPriority(t *testing.T) {
	e := NewEngine()
	var got []int
	e.SchedulePrio(3, 2, func() { got = append(got, 2) })
	e.SchedulePrio(3, 0, func() { got = append(got, 0) })
	e.SchedulePrio(3, 1, func() { got = append(got, 1) })
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("priority order violated: %v", got)
		}
	}
}

func TestScheduleInRelative(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(10, func() {
		e.ScheduleIn(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("relative event ran at %d, want 15", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil handler did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.Schedule(4, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for a live event")
	}
	if e.Cancel(id) {
		t.Fatal("Cancel returned true for an already-canceled event")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event still ran")
	}
}

func TestCancelAfterRunIsNoop(t *testing.T) {
	e := NewEngine()
	id := e.Schedule(1, func() {})
	e.Run()
	if e.Cancel(id) {
		t.Fatal("Cancel returned true for a finished event")
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{1, 2, 3, 10, 20} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.RunUntil(5)
	if len(got) != 3 {
		t.Fatalf("ran %d events, want 3 (%v)", len(got), got)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %d, want clock advanced to 5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(20)
	if len(got) != 5 {
		t.Fatalf("ran %d events after second RunUntil, want 5", len(got))
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() { ran = true })
	e.RunUntil(5)
	if !ran {
		t.Fatal("event exactly at the boundary did not run")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 100; i++ {
		e.Schedule(i, func() {
			count++
			if count == 10 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 10 {
		t.Fatalf("ran %d events after Stop, want 10", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestStepsCounter(t *testing.T) {
	e := NewEngine()
	for i := Time(1); i <= 7; i++ {
		e.Schedule(i, func() {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Fatalf("Steps() = %d, want 7", e.Steps())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse Handler
	recurse = func() {
		depth++
		if depth < 50 {
			e.ScheduleIn(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 50 {
		t.Fatalf("chained scheduling depth = %d, want 50", depth)
	}
	if e.Now() != 49 {
		t.Fatalf("Now() = %d, want 49", e.Now())
	}
}

// Property: any multiset of timestamps is executed in sorted order.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		var got []Time
		for _, s := range stamps {
			at := Time(s)
			e.Schedule(at, func() { got = append(got, at) })
		}
		e.Run()
		if len(got) != len(stamps) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never moves backwards across an arbitrary schedule.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(stamps []uint8) bool {
		e := NewEngine()
		prev := Time(-1)
		ok := true
		for _, s := range stamps {
			e.Schedule(Time(s), func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
