// Package sim provides the deterministic discrete-event simulation engine
// underneath every DirQ run — the OMNeT++ substitute of the paper's §7
// evaluation setup.
//
// In the repo's layer map this is the bottom of the substrate: every other
// layer (topology, radio, lmac, core, scenario, serve) schedules its work
// here. The engine keys events by (time, priority, sequence) and pairs with
// a seeded, splittable random number generator (rng.go), so every
// simulation run is exactly reproducible from its seed, for any worker
// count and on any platform.
//
// The event queue is allocation-free in steady state: events live by value
// in a flat arena addressed by a 4-ary index min-heap, and executed or
// canceled events return their arena slot to a free list. Engine.Reset
// rewinds a finished engine for reuse, which lets experiment sweeps and
// serving shards run many simulations without rebuilding queue storage.
//
// Work that is due at every tick (the protocol's epoch sweep, the MAC
// frame) registers as a ticker (Engine.AddTicker) instead of re-scheduling
// itself each epoch: Run/RunUntil batch-advance the clock and call tickers
// directly, so the per-epoch drive costs no event-queue traffic at all.
// Ordering stays strict — at a shared timestamp a ticker runs before heap
// events of the same priority, exactly where its self-scheduled
// predecessor sat.
package sim
