package sim

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic random number generator
// (xoshiro256** seeded through SplitMix64). It is NOT safe for concurrent
// use; derive independent substreams with Stream instead of sharing.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used both to seed xoshiro and to derive substream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Stream derives an independent substream identified by name. Identical
// (seed, name) pairs always produce identical streams, so simulations remain
// reproducible however many components draw randomness.
func (r *RNG) Stream(name string) *RNG {
	// FNV-1a over the name, mixed with the parent's seed material.
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	mix := r.s[0] ^ r.s[2]
	return NewRNG(h ^ (mix * 0x9e3779b97f4a7c15))
}

// StreamN derives an independent substream identified by name and an index,
// e.g. one stream per node.
func (r *RNG) StreamN(name string, n int) *RNG {
	sub := r.Stream(name)
	sm := sub.s[1] ^ (uint64(n+1) * 0xd6e8feb86659fd93)
	return NewRNG(splitmix64(&sm))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard-normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes a slice of ints in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
