package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed generated only %d distinct values in 100 draws", len(seen))
	}
}

func TestStreamDeterministicAndIndependent(t *testing.T) {
	r1 := NewRNG(7).Stream("alpha")
	r2 := NewRNG(7).Stream("alpha")
	r3 := NewRNG(7).Stream("beta")
	diverged := false
	for i := 0; i < 200; i++ {
		v1, v2, v3 := r1.Uint64(), r2.Uint64(), r3.Uint64()
		if v1 != v2 {
			t.Fatalf("same-name streams diverged at draw %d", i)
		}
		if v1 != v3 {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("differently named streams are identical")
	}
}

func TestStreamNIndependentPerIndex(t *testing.T) {
	root := NewRNG(99)
	a := root.StreamN("node", 0)
	b := root.StreamN("node", 1)
	c := NewRNG(99).StreamN("node", 0)
	diverged := false
	for i := 0; i < 200; i++ {
		va, vb, vc := a.Uint64(), b.Uint64(), c.Uint64()
		if va != vc {
			t.Fatalf("StreamN not reproducible at draw %d", i)
		}
		if va != vb {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("StreamN index 0 and 1 are identical streams")
	}
}

func TestStreamDoesNotPerturbParent(t *testing.T) {
	a := NewRNG(5)
	b := NewRNG(5)
	_ = a.Stream("x") // deriving a stream must not consume parent state
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Stream derivation perturbed the parent at draw %d", i)
		}
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(12)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := NewRNG(13)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(10) digit %d occurred %d/100000 times, want ~10000", d, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnOne(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		if v := r.Intn(1); v != 0 {
			t.Fatalf("Intn(1) = %d, want 0", v)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(21)
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Range(-3,7) = %v out of bounds", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(41)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v negative", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(51)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(61)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: %v", s)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(71)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v, want ~0.3", frac)
	}
	for i := 0; i < 1000; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
	}
}

// Property: Intn output is always within bounds for any positive n.
func TestPropertyIntnInBounds(t *testing.T) {
	r := NewRNG(81)
	f := func(n uint16) bool {
		m := int(n)%1000 + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: streams derived with distinct indices are pairwise reproducible.
func TestPropertyStreamNReproducible(t *testing.T) {
	f := func(seed uint64, idx uint8) bool {
		a := NewRNG(seed).StreamN("s", int(idx))
		b := NewRNG(seed).StreamN("s", int(idx))
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
