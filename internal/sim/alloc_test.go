package sim

import "testing"

// TestScheduleDispatchAllocFree pins the post-overhaul allocation ceiling
// of the engine hot path: once the arena is warm, a Schedule + Step cycle
// must not allocate at all (the seed engine allocated one event per
// Schedule call).
func TestScheduleDispatchAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the arena past the working set used below.
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now()+1, fn)
	}
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, fn)
		e.Schedule(e.Now()+2, fn)
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule/dispatch cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestCancelAllocFree verifies canceling is allocation-free too.
func TestCancelAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Schedule(e.Now()+1, fn)
	}
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		id := e.Schedule(e.Now()+1, fn)
		if !e.Cancel(id) {
			t.Fatal("cancel failed")
		}
		e.RunUntil(e.Now() + 1)
	})
	if allocs != 0 {
		t.Fatalf("schedule/cancel cycle allocates %.1f objects, want 0", allocs)
	}
}

// TestResetKeepsCapacity checks Reset rewinds state but keeps the arena,
// so the next run's scheduling starts allocation-free.
func TestResetKeepsCapacity(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 128; i++ {
		e.Schedule(Time(i), fn)
	}
	e.Run()
	e.Reset()

	if e.Now() != 0 || e.Steps() != 0 || e.Pending() != 0 || e.Stopped() {
		t.Fatalf("Reset left state: now=%d steps=%d pending=%d stopped=%v",
			e.Now(), e.Steps(), e.Pending(), e.Stopped())
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		for i := 0; i < 64; i++ {
			e.Schedule(Time(i), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("reset/reuse cycle allocates %.1f objects, want 0", allocs)
	}
}
