package sim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoAmbientRandomness audits the whole module for ambient entropy:
// every simulation draw must come from sim.RNG with an explicit seed, or
// results stop being reproducible and the diffuzz oracles stop meaning
// anything. Two invariants:
//
//   - no file imports math/rand or math/rand/v2, anywhere — sim.RNG is
//     the only generator;
//   - no non-test library file calls time.Now; wall-clock reads are
//     confined to package main under cmd/ and examples/ (timestamps and
//     latency clocks in CLI output) and to tests. Library code that
//     needs a deadline takes a context; code that needs a latency clock
//     takes an injected func (serve.ShardConfig.Clock).
func TestNoAmbientRandomness(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}

		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				t.Errorf("%s imports %s; use repro/internal/sim.RNG with an explicit seed", rel, imp.Path.Value)
			}
		}

		if strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if sep := string(filepath.Separator); f.Name.Name == "main" &&
			(strings.HasPrefix(rel, "cmd"+sep) || strings.HasPrefix(rel, "examples"+sep)) {
			return nil
		}
		timeName := importName(f, "time")
		if timeName == "" {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == timeName && id.Obj == nil {
				t.Errorf("%s:%d calls time.Now; library code must stay clock-free (take a context or a timestamp)",
					rel, fset.Position(sel.Pos()).Line)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks upward from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// importName returns the identifier a file uses for an import path, or ""
// when the path is not imported. A dot import returns "." (which the
// selector check then can't match — acceptable: the repo bans dot imports
// by convention and gofmt keeps them out).
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return path
	}
	return ""
}
