package sim

import "sync"

// Workers is a fork-join helper for intra-run parallelism: Run fans a
// fixed number of tasks out across goroutines and blocks until every
// task returns. Goroutines are spawned per call and joined before Run
// returns, so a Runner holding a Workers owns no background goroutines
// between epochs — teardown is trivially leak-free.
//
// A nil *Workers (or one built with n <= 1) degrades to a plain serial
// loop, so callers can thread one pointer through unconditionally.
type Workers struct {
	n int
}

// NewWorkers returns a Workers that fans out across up to n goroutines.
// n <= 1 yields a serial Workers.
func NewWorkers(n int) *Workers {
	if n < 1 {
		n = 1
	}
	return &Workers{n: n}
}

// Count reports the fan-out width. A nil Workers counts as 1 (serial).
func (w *Workers) Count() int {
	if w == nil || w.n < 1 {
		return 1
	}
	return w.n
}

// Run invokes fn(task) for every task in [0, tasks), concurrently when
// the Workers is parallel, and returns once all invocations finish.
// Task 0 always runs on the calling goroutine. fn must not assume any
// ordering between tasks.
func (w *Workers) Run(tasks int, fn func(task int)) {
	if w == nil || w.n <= 1 || tasks <= 1 {
		for t := 0; t < tasks; t++ {
			fn(t)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(tasks - 1)
	for t := 1; t < tasks; t++ {
		go func(t int) {
			defer wg.Done()
			fn(t)
		}(t)
	}
	fn(0)
	wg.Wait()
}
