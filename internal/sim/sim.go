// Package sim provides a deterministic discrete-event simulation engine.
//
// It is the OMNeT++ substitute used by the DirQ reproduction: a binary-heap
// event queue keyed by (time, priority, sequence) and a seeded, splittable
// random number generator so every simulation run is exactly reproducible
// from its seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is the simulation clock in discrete ticks. One tick corresponds to
// one epoch in the paper's terminology (one sensor acquisition interval).
type Time int64

// Handler is a scheduled simulation action.
type Handler func()

// event is a single queue entry. Events with equal time run in ascending
// priority order; ties break on insertion sequence so execution order is
// fully deterministic.
type event struct {
	at       Time
	priority int
	seq      uint64
	fn       Handler
	index    int // heap index, maintained by eventQueue
	canceled bool
}

// eventQueue is a binary min-heap of events ordered by (at, priority, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct {
	ev *event
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	steps   uint64
}

// NewEngine returns an engine with the clock at 0 and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events currently queued (including
// canceled-but-unpopped events).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at absolute time at with priority 0.
// Scheduling in the past (before Now) panics: it indicates a protocol bug.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	return e.SchedulePrio(at, 0, fn)
}

// ScheduleIn enqueues fn to run delay ticks from now.
func (e *Engine) ScheduleIn(delay Time, fn Handler) EventID {
	return e.SchedulePrio(e.now+delay, 0, fn)
}

// SchedulePrio enqueues fn at absolute time at with an explicit priority.
// Lower priorities run first among events that share a timestamp.
func (e *Engine) SchedulePrio(at Time, priority int, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil handler")
	}
	ev := &event{at: at, priority: priority, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventID{ev: ev}
}

// Cancel removes a scheduled event. Canceling an already-run or
// already-canceled event is a no-op. Reports whether the event was live.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	return true
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	for {
		if e.stopped || len(e.queue) == 0 {
			return false
		}
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		e.steps++
		ev.fn()
		return true
	}
}

// Run executes events until the queue drains or the engine is stopped.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= until (inclusive), leaving
// later events queued, and advances the clock to until.
func (e *Engine) RunUntil(until Time) {
	for {
		if e.stopped {
			return
		}
		// Peek.
		var next *event
		for len(e.queue) > 0 && e.queue[0].canceled {
			heap.Pop(&e.queue)
		}
		if len(e.queue) > 0 {
			next = e.queue[0]
		}
		if next == nil || next.at > until {
			if e.now < until {
				e.now = until
			}
			return
		}
		e.Step()
	}
}

// Stop halts Run / RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
