package sim

import (
	"fmt"

	"repro/internal/telemetry"
)

// Time is the simulation clock in discrete ticks. One tick corresponds to
// one epoch in the paper's terminology (one sensor acquisition interval).
type Time int64

// Handler is a scheduled simulation action.
type Handler func()

// event is a single queue entry, stored by value in the engine's arena so
// scheduling does not allocate once the arena has warmed up. Events with
// equal time run in ascending priority order; ties break on insertion
// sequence so execution order is fully deterministic.
type event struct {
	at       Time
	priority int
	seq      uint64
	fn       Handler
	gen      uint32 // bumped every time the arena slot is recycled
	canceled bool
}

// EventID identifies a scheduled event so it can be canceled. The zero
// value is invalid (Cancel on it is a no-op). An EventID becomes stale —
// and Cancel on it a no-op — once the event has run, been canceled, or the
// engine has been Reset.
type EventID struct {
	idx int32 // arena index + 1; 0 means "no event"
	gen uint32
}

// ticker is a handler that runs at every clock tick. Tickers exist so
// per-epoch loops (the protocol's sensor sweep, the MAC frame) do not pay a
// heap push + pop per epoch: the engine batch-advances the clock tick by
// tick and calls each due ticker directly. At a given time, work is ordered
// by priority, with a ticker running before heap events of the same
// priority — exactly the order a self-rescheduling event chain had, since
// such a chain's event always carried a lower sequence number than anything
// scheduled during the current tick.
type ticker struct {
	prio int
	next Time // next tick this ticker is due at
	fn   Handler
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct with NewEngine.
//
// Internally the queue is a 4-ary min-heap of indices into a flat event
// arena with a free list, so steady-state Schedule/Step cycles perform no
// heap allocations: one simulation epoch reuses the slots freed by the
// previous one.
type Engine struct {
	now     Time
	events  []event // arena; slots are recycled through free
	free    []int32 // arena slots available for reuse
	heap    []int32 // 4-ary min-heap of arena indices, keyed (at, priority, seq)
	tickers []ticker
	seq     uint64
	stopped bool
	steps   uint64
	running bool // inside runAt (AddTicker must not reshuffle mid-tick)
	tel     Telemetry
}

// Telemetry is the engine's instrument set. Every field may be nil
// (instrument methods are nil-safe no-ops), so the zero value disables
// instrumentation entirely. Counters are write-only from the engine:
// nothing in scheduling or dispatch reads them back, so an instrumented
// run executes the identical event sequence.
type Telemetry struct {
	// Scheduled counts events enqueued via Schedule/SchedulePrio.
	Scheduled *telemetry.Counter
	// Dispatched counts heap events actually executed (canceled events
	// are not dispatched).
	Dispatched *telemetry.Counter
	// TickerRuns counts ticker firings (the per-epoch protocol and MAC
	// loops, which bypass the heap).
	TickerRuns *telemetry.Counter
	// HeapPeak tracks the high watermark of the event heap depth.
	HeapPeak *telemetry.Gauge
}

// SetTelemetry binds (or, with the zero value, unbinds) the engine's
// instruments. Reset clears the binding, so a recycled engine must be
// re-bound by its next owner.
func (e *Engine) SetTelemetry(t Telemetry) { e.tel = t }

// NewEngine returns an engine with the clock at 0 and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events currently queued (including
// canceled-but-unpopped events).
func (e *Engine) Pending() int { return len(e.heap) }

// Reset returns the engine to its initial state — clock at 0, empty queue,
// zero step count, not stopped — while keeping the arena, free list and
// heap capacity, so a pooled engine can host a new simulation run without
// reallocating its queue. EventIDs issued before the Reset must be
// discarded; canceling them afterwards has unspecified (but memory-safe)
// effects on the new run.
func (e *Engine) Reset() {
	for i := range e.events {
		e.events[i].fn = nil // release closure references to the old run
	}
	e.events = e.events[:0]
	e.free = e.free[:0]
	e.heap = e.heap[:0]
	e.tickers = e.tickers[:0]
	e.now = 0
	e.seq = 0
	e.steps = 0
	e.stopped = false
	e.running = false
	e.tel = Telemetry{}
}

// AddTicker registers fn to run at every clock tick from the current time
// on, at the given priority relative to heap events sharing the tick (a
// ticker runs before heap events of equal priority; among tickers,
// registration order breaks priority ties). Tickers are honored by Run and
// RunUntil — they replace the schedule-next-tick pattern for work that is
// due every single epoch, eliminating the per-epoch heap traffic. They
// cannot be canceled; register them once per run (Reset removes all).
// AddTicker must not be called from inside a running handler.
func (e *Engine) AddTicker(prio int, fn Handler) {
	if fn == nil {
		panic("sim: AddTicker with nil handler")
	}
	if e.running {
		panic("sim: AddTicker from inside a handler")
	}
	i := len(e.tickers)
	for i > 0 && e.tickers[i-1].prio > prio {
		i--
	}
	e.tickers = append(e.tickers, ticker{})
	copy(e.tickers[i+1:], e.tickers[i:])
	e.tickers[i] = ticker{prio: prio, next: e.now, fn: fn}
}

// less orders two arena slots by (at, priority, seq).
func (e *Engine) less(a, b int32) bool {
	x, y := &e.events[a], &e.events[b]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.priority != y.priority {
		return x.priority < y.priority
	}
	return x.seq < y.seq
}

// siftUp restores the heap property from leaf position i upward.
func (e *Engine) siftUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(idx, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = idx
}

// siftDown restores the heap property from the root downward.
func (e *Engine) siftDown() {
	h := e.heap
	n := len(h)
	i := 0
	idx := h[0]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], idx) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = idx
}

// alloc returns a free arena slot, growing the arena only when the free
// list is empty.
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

// release recycles an arena slot: the closure reference is dropped and the
// generation bumped so stale EventIDs can no longer address it.
func (e *Engine) release(idx int32) {
	ev := &e.events[idx]
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, idx)
}

// Schedule enqueues fn to run at absolute time at with priority 0.
// Scheduling in the past (before Now) panics: it indicates a protocol bug.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	return e.SchedulePrio(at, 0, fn)
}

// ScheduleIn enqueues fn to run delay ticks from now.
func (e *Engine) ScheduleIn(delay Time, fn Handler) EventID {
	return e.SchedulePrio(e.now+delay, 0, fn)
}

// SchedulePrio enqueues fn at absolute time at with an explicit priority.
// Lower priorities run first among events that share a timestamp.
func (e *Engine) SchedulePrio(at Time, priority int, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil handler")
	}
	idx := e.alloc()
	ev := &e.events[idx]
	ev.at = at
	ev.priority = priority
	ev.seq = e.seq
	ev.fn = fn
	ev.canceled = false
	e.seq++
	e.heap = append(e.heap, idx)
	e.siftUp(len(e.heap) - 1)
	e.tel.Scheduled.Inc()
	e.tel.HeapPeak.SetMax(int64(len(e.heap)))
	return EventID{idx: idx + 1, gen: ev.gen}
}

// Cancel removes a scheduled event. Canceling an already-run or
// already-canceled event is a no-op. Reports whether the event was live.
func (e *Engine) Cancel(id EventID) bool {
	if id.idx == 0 || int(id.idx) > len(e.events) {
		return false
	}
	ev := &e.events[id.idx-1]
	if ev.gen != id.gen || ev.canceled || ev.fn == nil {
		return false
	}
	ev.canceled = true
	return true
}

// pop removes and returns the earliest heap entry. The caller must ensure
// the heap is non-empty.
func (e *Engine) pop() int32 {
	idx := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown()
	}
	return idx
}

// Step executes the single earliest pending event. It reports false when the
// queue is empty or the engine has been stopped.
func (e *Engine) Step() bool {
	for {
		if e.stopped || len(e.heap) == 0 {
			return false
		}
		idx := e.pop()
		ev := &e.events[idx]
		if ev.canceled {
			e.release(idx)
			continue
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		at, fn := ev.at, ev.fn
		// Recycle the slot before running the handler: handlers routinely
		// schedule follow-up events, and reusing the just-freed slot keeps
		// the arena at the size of the peak concurrent event count.
		e.release(idx)
		e.now = at
		e.steps++
		e.tel.Dispatched.Inc()
		fn()
		return true
	}
}

// peel discards canceled events at the heap head.
func (e *Engine) peel() {
	for len(e.heap) > 0 && e.events[e.heap[0]].canceled {
		e.release(e.pop())
	}
}

// runAt executes, in priority order, every ticker due at time t and every
// heap event scheduled at t, including events scheduled at t by the
// handlers themselves. The clock must already be at t.
func (e *Engine) runAt(t Time) {
	e.running = true
	ti := 0
	for !e.stopped {
		e.peel()
		// Skip tickers not yet due (registered mid-run for a later tick).
		for ti < len(e.tickers) && e.tickers[ti].next > t {
			ti++
		}
		headReady := len(e.heap) > 0 && e.events[e.heap[0]].at == t
		switch {
		case ti < len(e.tickers) &&
			(!headReady || e.tickers[ti].prio <= e.events[e.heap[0]].priority):
			tk := &e.tickers[ti]
			tk.next = t + 1
			ti++
			e.steps++
			e.tel.TickerRuns.Inc()
			tk.fn()
		case headReady:
			e.Step()
		default:
			e.running = false
			return
		}
	}
	e.running = false
}

// nextWork returns the earliest time at which a ticker or a queued event is
// due; ok is false when nothing is pending at all.
func (e *Engine) nextWork() (Time, bool) {
	e.peel()
	ok := false
	var next Time
	if len(e.heap) > 0 {
		next, ok = e.events[e.heap[0]].at, true
	}
	for i := range e.tickers {
		if !ok || e.tickers[i].next < next {
			next, ok = e.tickers[i].next, true
		}
	}
	return next, ok
}

// Run executes events until the queue drains or the engine is stopped.
// Registered tickers fire at every tick the clock passes through on the
// way, but do not by themselves keep Run alive: once the heap is empty,
// Run returns.
func (e *Engine) Run() {
	for !e.stopped {
		e.peel()
		if len(e.heap) == 0 {
			return
		}
		next, _ := e.nextWork()
		if next > e.now {
			e.now = next
		}
		e.runAt(e.now)
	}
}

// RunUntil executes events with timestamps <= until (inclusive) and every
// ticker due on the way, leaving later events queued, and advances the
// clock to until.
func (e *Engine) RunUntil(until Time) {
	for !e.stopped {
		next, ok := e.nextWork()
		if !ok || next > until {
			if e.now < until {
				e.now = until
			}
			return
		}
		if next > e.now {
			e.now = next
		}
		e.runAt(e.now)
	}
}

// Stop halts Run / RunUntil after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
