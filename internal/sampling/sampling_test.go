package sampling

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sensordata"
	"repro/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.LevelAlpha = 0 },
		func(c *Config) { c.TrendAlpha = 1.5 },
		func(c *Config) { c.ResidAlpha = -1 },
		func(c *Config) { c.Margin = -1 },
		func(c *Config) { c.MaxSkip = 0 },
		func(c *Config) { c.Warmup = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewGate(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestPredictorTracksConstantSignal(t *testing.T) {
	p := &Predictor{cfg: DefaultConfig()}
	for i := 0; i < 50; i++ {
		p.Observe(20)
	}
	v, unc := p.Predict()
	if math.Abs(v-20) > 1e-9 {
		t.Fatalf("prediction %v, want 20", v)
	}
	if unc > 1e-9 {
		t.Fatalf("uncertainty %v for constant signal, want ~0", unc)
	}
}

func TestPredictorTracksLinearTrend(t *testing.T) {
	p := &Predictor{cfg: DefaultConfig()}
	for i := 0; i < 200; i++ {
		p.Observe(float64(i) * 0.1)
	}
	v, _ := p.Predict()
	want := 200 * 0.1
	if math.Abs(v-want) > 0.5 {
		t.Fatalf("trend prediction %v, want ≈ %v", v, want)
	}
}

func TestPredictorUncertaintyGrowsWithSkips(t *testing.T) {
	p := &Predictor{cfg: DefaultConfig()}
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		p.Observe(10 + rng.NormFloat64())
	}
	_, u1 := p.Predict()
	p.skipped = 5
	_, u6 := p.Predict()
	if u6 <= u1 {
		t.Fatalf("uncertainty did not grow with skips: %v -> %v", u1, u6)
	}
}

func TestGateSkipsCalmSignalInsideTuple(t *testing.T) {
	g, err := NewGate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	own := core.Tuple{Min: 15, Max: 25}
	ty := sensordata.Temperature
	for epoch := 0; epoch < 200; epoch++ {
		if g.ShouldSample(3, ty, own, true) {
			g.OnSample(3, ty, 20)
		}
	}
	st := g.Stats()
	if st.Skipped == 0 {
		t.Fatal("calm in-tuple signal never skipped")
	}
	if st.SkipFraction() < 0.5 {
		t.Fatalf("skip fraction %v, want > 0.5 for a constant signal", st.SkipFraction())
	}
	// MaxSkip must force periodic resampling.
	if st.Taken < 200/int64(DefaultConfig().MaxSkip) {
		t.Fatalf("only %d samples taken; MaxSkip cap not enforced", st.Taken)
	}
}

func TestGateSamplesNearTupleEdge(t *testing.T) {
	g, err := NewGate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ty := sensordata.Humidity
	rng := sim.NewRNG(2)
	// Noisy signal centred ON the tuple edge: margin*resid straddles it,
	// so the gate must keep sampling.
	own := core.Tuple{Min: 48, Max: 52}
	taken := 0
	for epoch := 0; epoch < 200; epoch++ {
		if g.ShouldSample(4, ty, own, true) {
			g.OnSample(4, ty, 52+rng.NormFloat64())
			taken++
		}
	}
	if frac := float64(taken) / 200; frac < 0.9 {
		t.Fatalf("sampled only %v of epochs at the tuple edge, want ~1", frac)
	}
}

func TestGateAlwaysSamplesWithoutTuple(t *testing.T) {
	g, err := NewGate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 50; epoch++ {
		if !g.ShouldSample(1, sensordata.Light, core.Tuple{}, false) {
			t.Fatal("skipped an acquisition before any tuple exists")
		}
		g.OnSample(1, sensordata.Light, 100)
	}
}

func TestGateWarmup(t *testing.T) {
	cfg := DefaultConfig()
	g, err := NewGate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	own := core.Tuple{Min: 0, Max: 100}
	for epoch := 0; epoch < cfg.Warmup; epoch++ {
		if !g.ShouldSample(1, sensordata.Temperature, own, true) {
			t.Fatalf("skipped during warmup at epoch %d", epoch)
		}
		g.OnSample(1, sensordata.Temperature, 50)
	}
}

func TestGatePerNodePredictorsIndependent(t *testing.T) {
	g, err := NewGate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.OnSample(1, sensordata.Temperature, 10)
	g.OnSample(2, sensordata.Temperature, 90)
	p1 := g.Predictor(1, sensordata.Temperature)
	p2 := g.Predictor(2, sensordata.Temperature)
	v1, _ := p1.Predict()
	v2, _ := p2.Predict()
	if v1 == v2 {
		t.Fatal("predictors shared across nodes")
	}
	if g.Predictor(9, sensordata.Temperature) != nil {
		t.Fatal("phantom predictor")
	}
}

func TestStatsSkipFraction(t *testing.T) {
	if (Stats{}).SkipFraction() != 0 {
		t.Fatal("empty stats")
	}
	s := Stats{Taken: 25, Skipped: 75}
	if s.SkipFraction() != 0.75 {
		t.Fatalf("SkipFraction = %v", s.SkipFraction())
	}
}

// TestSkippedReadingsCannotTriggerUpdates verifies the gate's core safety
// property on synthetic AR(1) data: whenever the gate skips, the true
// value at that epoch is still inside the tuple (so no update was missed),
// except with at most a small failure rate attributable to model error.
func TestSkippedReadingsCannotTriggerUpdates(t *testing.T) {
	g, err := NewGate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	rt := core.NewRangeTable()
	const delta = 2.0
	v := 20.0
	var skips, violations int
	for epoch := 0; epoch < 5000; epoch++ {
		v = 0.98*v + 0.02*20 + rng.NormFloat64()*0.05 // slow AR(1) around 20
		own, hasOwn := rt.Own()
		if g.ShouldSample(1, sensordata.Temperature, own, hasOwn) {
			g.OnSample(1, sensordata.Temperature, v)
			rt.ObserveReading(v, delta)
			continue
		}
		skips++
		if hasOwn && (v < own.Min || v > own.Max) {
			violations++
		}
	}
	if skips == 0 {
		t.Fatal("gate never skipped on a calm AR(1) signal")
	}
	if frac := float64(violations) / float64(skips); frac > 0.01 {
		t.Fatalf("%.2f%% of skips hid a threshold crossing, want < 1%%", frac*100)
	}
}
