// Package sampling implements the paper's §8 future-work extension: "a
// statistical prediction technique that can be used by DirQ to ensure that
// sensor sampling costs are minimized".
//
// The paper's stated drawback is that DirQ "assume[s] that nodes are able
// to sample sensors continuously to check if the thresholds have been
// exceeded", which "consumes a lot of energy". This package removes that
// assumption: each node keeps a per-sensor double-EWMA predictor (level +
// trend) plus an EWMA of the absolute prediction residual. Before an
// acquisition, the node asks whether the prediction — widened by a safety
// margin proportional to the residual — still lies inside its current
// hysteresis window [THmin, THmax]. If it does, the physical sample is
// skipped: even a worst-case-in-distribution reading would not have
// re-centred the tuple or triggered an Update Message. A hard cap forces a
// real sample every MaxSkip epochs so the model cannot drift unchecked.
//
// In the repo's layer map this is an extension hooked into core's epoch
// loop through core.Config.Sampler (§8).
package sampling
