package sampling

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sensordata"
	"repro/internal/topology"
)

// Config tunes the predictive sampler.
type Config struct {
	// LevelAlpha smooths the predicted level (0 < α ≤ 1).
	LevelAlpha float64
	// TrendAlpha smooths the predicted per-epoch trend.
	TrendAlpha float64
	// ResidAlpha smooths the absolute residual estimate.
	ResidAlpha float64
	// Margin is the safety multiplier on the residual: the node samples
	// unless prediction ± Margin·residual stays inside the tuple.
	Margin float64
	// MaxSkip forces a physical sample at least every MaxSkip epochs.
	MaxSkip int
	// Warmup is the number of initial samples taken unconditionally.
	Warmup int
}

// DefaultConfig returns conservative settings: skip only with a 4-sigma
// style margin and resample at least every 10 epochs.
func DefaultConfig() Config {
	return Config{
		LevelAlpha: 0.4,
		TrendAlpha: 0.2,
		ResidAlpha: 0.1,
		Margin:     4,
		MaxSkip:    10,
		Warmup:     8,
	}
}

// Validate rejects out-of-range settings.
func (c Config) Validate() error {
	for _, a := range []float64{c.LevelAlpha, c.TrendAlpha, c.ResidAlpha} {
		if a <= 0 || a > 1 {
			return fmt.Errorf("sampling: smoothing factor %v outside (0,1]", a)
		}
	}
	if c.Margin < 0 {
		return fmt.Errorf("sampling: negative margin %v", c.Margin)
	}
	if c.MaxSkip < 1 {
		return fmt.Errorf("sampling: MaxSkip %d < 1", c.MaxSkip)
	}
	if c.Warmup < 1 {
		return fmt.Errorf("sampling: Warmup %d < 1", c.Warmup)
	}
	return nil
}

// Predictor is a double-EWMA (level + trend) one-step forecaster with a
// residual-scale estimate. The zero value is not usable; it is managed by
// Gate.
type Predictor struct {
	cfg     Config
	level   float64
	trend   float64
	resid   float64
	samples int
	skipped int
}

// Observe feeds a real measurement.
func (p *Predictor) Observe(v float64) {
	if p.samples == 0 {
		p.level = v
		p.samples = 1
		p.skipped = 0
		return
	}
	pred, _ := p.Predict()
	r := math.Abs(v - pred)
	p.resid = (1-p.cfg.ResidAlpha)*p.resid + p.cfg.ResidAlpha*r
	prevLevel := p.level
	p.level = (1-p.cfg.LevelAlpha)*pred + p.cfg.LevelAlpha*v
	p.trend = (1-p.cfg.TrendAlpha)*p.trend + p.cfg.TrendAlpha*(p.level-prevLevel)
	p.samples++
	p.skipped = 0
}

// Predict returns the one-step forecast and the smoothed absolute
// residual. When skips have accumulated, the forecast extrapolates the
// trend and the uncertainty grows linearly with the number of skipped
// epochs — a conservative random-walk widening.
func (p *Predictor) Predict() (v, uncertainty float64) {
	steps := float64(p.skipped + 1)
	return p.level + p.trend*steps, p.resid * steps
}

// Samples returns how many real measurements the predictor has absorbed.
func (p *Predictor) Samples() int { return p.samples }

// Stats aggregates sampling behaviour.
type Stats struct {
	Taken   int64 // physical acquisitions performed
	Skipped int64 // acquisitions avoided by prediction
}

// SkipFraction returns Skipped / (Taken + Skipped).
func (s Stats) SkipFraction() float64 {
	total := s.Taken + s.Skipped
	if total == 0 {
		return 0
	}
	return float64(s.Skipped) / float64(total)
}

// Gate implements core.SampleGate: one predictor per (node, sensor type).
type Gate struct {
	cfg   Config
	preds map[gateKey]*Predictor
	stats Stats
}

type gateKey struct {
	id topology.NodeID
	t  sensordata.Type
}

var _ core.SampleGate = (*Gate)(nil)

// NewGate builds a predictive-sampling gate.
func NewGate(cfg Config) (*Gate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Gate{cfg: cfg, preds: map[gateKey]*Predictor{}}, nil
}

// Stats returns the cumulative sampling counters.
func (g *Gate) Stats() Stats { return g.stats }

// Predictor exposes one node's predictor (nil if it never sampled).
func (g *Gate) Predictor(id topology.NodeID, t sensordata.Type) *Predictor {
	return g.preds[gateKey{id, t}]
}

// ShouldSample implements core.SampleGate. It returns false — skip the
// physical acquisition — only when the forecast, widened by the safety
// margin, cannot escape the node's current hysteresis tuple.
func (g *Gate) ShouldSample(id topology.NodeID, t sensordata.Type, own core.Tuple, hasOwn bool) bool {
	k := gateKey{id, t}
	p := g.preds[k]
	if p == nil {
		p = &Predictor{cfg: g.cfg}
		g.preds[k] = p
	}
	if !hasOwn || p.samples < g.cfg.Warmup || p.skipped >= g.cfg.MaxSkip {
		g.stats.Taken++
		return true
	}
	pred, unc := p.Predict()
	lo := pred - g.cfg.Margin*unc
	hi := pred + g.cfg.Margin*unc
	if lo > own.Min && hi < own.Max {
		p.skipped++
		g.stats.Skipped++
		return false
	}
	g.stats.Taken++
	return true
}

// OnSample implements core.SampleGate: it feeds the measurement into the
// node's predictor.
func (g *Gate) OnSample(id topology.NodeID, t sensordata.Type, v float64) {
	k := gateKey{id, t}
	p := g.preds[k]
	if p == nil {
		p = &Predictor{cfg: g.cfg}
		g.preds[k] = p
	}
	p.Observe(v)
}
