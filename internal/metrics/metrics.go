package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Accuracy is the per-query accuracy accounting of §7.1.
type Accuracy struct {
	QueryID int64
	// NumShould counts nodes that should receive the query: ground-truth
	// sources plus intermediate forwarding nodes.
	NumShould int
	// NumReceived counts nodes that actually received the query.
	NumReceived int
	// NumSources counts ground-truth source nodes.
	NumSources int
	// NumWrong counts nodes that received the query but should not have
	// (Fig. 5's "Nodes that SHOULD NOT receive a query").
	NumWrong int
	// NumMissed counts nodes that should have received the query but did
	// not (stale ranges can under-approximate as well as over-approximate).
	NumMissed int
	// OvershootPct is NumWrong as a percentage of the non-root population —
	// the vertical gap between Fig. 5's "nodes that RECEIVE" and "nodes
	// that SHOULD receive" curves, and the y-axis of Fig. 7.
	OvershootPct float64
	// RelOvershootPct is 100 * NumWrong / NumShould — the overshoot
	// relative to the relevant-node set (+Inf when NumShould is 0 but nodes
	// were reached anyway; 0 when both are 0).
	RelOvershootPct float64
}

// Eval computes the accuracy of one completed query record against its
// ground truth captured at injection time, for a network of n nodes.
func Eval(rec *core.QueryRecord, n int) Accuracy {
	a := Accuracy{
		QueryID:     rec.Query.ID,
		NumShould:   len(rec.Truth.Should),
		NumReceived: len(rec.Received),
		NumSources:  len(rec.Truth.Sources),
	}
	for id := range rec.Received {
		if !rec.Truth.Should[id] {
			a.NumWrong++
		}
	}
	for id := range rec.Truth.Should {
		if !rec.Received[id] {
			a.NumMissed++
		}
	}
	a.OvershootPct = Pct(a.NumWrong, n)
	switch {
	case a.NumShould > 0:
		a.RelOvershootPct = 100 * float64(a.NumWrong) / float64(a.NumShould)
	case a.NumWrong > 0:
		a.RelOvershootPct = math.Inf(1)
	}
	return a
}

// Pct expresses a count as a percentage of the non-root population.
func Pct(count, n int) float64 {
	if n <= 1 {
		return 0
	}
	return 100 * float64(count) / float64(n-1)
}

// AccuracySummary aggregates per-query accuracies into the Fig. 5 row
// quantities, as percentages of the non-root node population.
type AccuracySummary struct {
	Queries       int
	PctShould     float64 // mean % of nodes that should receive
	PctReceived   float64 // mean % of nodes that do receive
	PctSources    float64 // mean % source nodes
	PctShouldNot  float64 // mean % wrongly reached nodes
	MeanOvershoot float64 // mean overshoot % (finite queries only)
}

// Summarize averages accuracies over queries for a network of n nodes.
func Summarize(accs []Accuracy, n int) AccuracySummary {
	var s AccuracySummary
	if len(accs) == 0 {
		return s
	}
	for _, a := range accs {
		s.PctShould += Pct(a.NumShould, n)
		s.PctReceived += Pct(a.NumReceived, n)
		s.PctSources += Pct(a.NumSources, n)
		s.PctShouldNot += Pct(a.NumWrong, n)
		s.MeanOvershoot += a.OvershootPct
	}
	q := float64(len(accs))
	s.Queries = len(accs)
	s.PctShould /= q
	s.PctReceived /= q
	s.PctSources /= q
	s.PctShouldNot /= q
	s.MeanOvershoot /= q
	return s
}

// Series accumulates a value per fixed-width epoch bucket — the Fig. 6 / 7
// "every 100 epochs" plots.
type Series struct {
	width int64
	sums  []float64
	cnts  []int64
}

// NewSeries creates a series with the given bucket width in epochs.
func NewSeries(width int64) *Series {
	if width < 1 {
		panic(fmt.Sprintf("metrics: bucket width %d < 1", width))
	}
	return &Series{width: width}
}

// Width returns the bucket width.
func (s *Series) Width() int64 { return s.width }

func (s *Series) grow(b int) {
	for len(s.sums) <= b {
		s.sums = append(s.sums, 0)
		s.cnts = append(s.cnts, 0)
	}
}

// Add accumulates v into the bucket containing epoch.
func (s *Series) Add(epoch int64, v float64) {
	if epoch < 0 {
		panic("metrics: negative epoch")
	}
	b := int(epoch / s.width)
	s.grow(b)
	s.sums[b] += v
	s.cnts[b]++
}

// Bucket is one aggregated interval.
type Bucket struct {
	Start int64 // first epoch of the bucket
	Sum   float64
	Count int64
}

// Mean returns Sum/Count, or 0 for an empty bucket.
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// Buckets returns all buckets in order.
func (s *Series) Buckets() []Bucket {
	out := make([]Bucket, len(s.sums))
	for i := range s.sums {
		out[i] = Bucket{Start: int64(i) * s.width, Sum: s.sums[i], Count: s.cnts[i]}
	}
	return out
}

// Sums returns the per-bucket sums.
func (s *Series) Sums() []float64 { return append([]float64(nil), s.sums...) }

// Summary describes a sample distribution.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P25, Median, P75 float64
}

// Describe computes a Summary of the given samples.
func Describe(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	for _, v := range sorted {
		s.Mean += v
	}
	s.Mean /= float64(s.N)
	for _, v := range sorted {
		d := v - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(s.N))
	s.P25 = quantile(sorted, 0.25)
	s.Median = quantile(sorted, 0.5)
	s.P75 = quantile(sorted, 0.75)
	return s
}

// quantile interpolates linearly on a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
