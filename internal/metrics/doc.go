// Package metrics computes the paper's evaluation quantities: per-query
// dissemination accuracy (§7.1's "proportion of nodes that are being
// reached in response to a query to nodes that should be reached"),
// overshoot (Fig. 7), bucketed time series (Fig. 6 plots per-100-epoch
// counts), and distribution summaries.
//
// In the repo's layer map this is evaluation: scenario folds every
// QueryRecord through Eval/Summarize, and serve reuses the same accuracy
// arithmetic for live responses.
package metrics
