package metrics

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/topology"
)

func record(should, received, sources []topology.NodeID) *core.QueryRecord {
	r := &core.QueryRecord{
		Truth:    query.GroundTruth{Should: map[topology.NodeID]bool{}},
		Received: map[topology.NodeID]bool{},
		Sources:  map[topology.NodeID]bool{},
	}
	for _, id := range should {
		r.Truth.Should[id] = true
	}
	for _, id := range sources {
		r.Truth.Sources = append(r.Truth.Sources, id)
	}
	for _, id := range received {
		r.Received[id] = true
	}
	return r
}

func TestEvalExactMatch(t *testing.T) {
	r := record([]topology.NodeID{1, 2, 3}, []topology.NodeID{1, 2, 3}, []topology.NodeID{3})
	a := Eval(r, 51)
	if a.NumShould != 3 || a.NumReceived != 3 || a.NumSources != 1 {
		t.Fatalf("counts %+v", a)
	}
	if a.NumWrong != 0 || a.NumMissed != 0 || a.OvershootPct != 0 {
		t.Fatalf("perfect delivery scored %+v", a)
	}
}

func TestEvalOvershoot(t *testing.T) {
	r := record([]topology.NodeID{1, 2}, []topology.NodeID{1, 2, 3, 4}, nil)
	a := Eval(r, 51)
	if a.NumWrong != 2 {
		t.Fatalf("NumWrong = %d, want 2", a.NumWrong)
	}
	if a.OvershootPct != 4 { // 2 of 50 non-root nodes
		t.Fatalf("overshoot %v, want 4", a.OvershootPct)
	}
	if a.RelOvershootPct != 100 {
		t.Fatalf("relative overshoot %v, want 100", a.RelOvershootPct)
	}
}

func TestEvalUndershoot(t *testing.T) {
	r := record([]topology.NodeID{1, 2, 3, 4}, []topology.NodeID{1}, nil)
	a := Eval(r, 51)
	if a.NumMissed != 3 {
		t.Fatalf("NumMissed = %d, want 3", a.NumMissed)
	}
	if a.OvershootPct != 0 {
		t.Fatalf("overshoot %v, want 0", a.OvershootPct)
	}
}

func TestEvalEmptyTruth(t *testing.T) {
	r := record(nil, nil, nil)
	if a := Eval(r, 51); a.OvershootPct != 0 || a.RelOvershootPct != 0 {
		t.Fatalf("empty query overshoot %+v", a)
	}
	r = record(nil, []topology.NodeID{5}, nil)
	a := Eval(r, 51)
	if !math.IsInf(a.RelOvershootPct, 1) {
		t.Fatalf("wrong delivery on empty truth: relative overshoot %v, want +Inf", a.RelOvershootPct)
	}
	if a.OvershootPct != 2 {
		t.Fatalf("wrong delivery on empty truth: overshoot %v, want 2", a.OvershootPct)
	}
}

func TestPct(t *testing.T) {
	if p := Pct(10, 51); math.Abs(p-20) > 1e-12 {
		t.Fatalf("Pct(10, 51) = %v, want 20 (of 50 non-root)", p)
	}
	if Pct(5, 1) != 0 || Pct(5, 0) != 0 {
		t.Fatal("degenerate populations should give 0")
	}
}

func TestSummarize(t *testing.T) {
	accs := []Accuracy{
		{NumShould: 10, NumReceived: 12, NumSources: 5, NumWrong: 2, OvershootPct: 4},
		{NumShould: 20, NumReceived: 20, NumSources: 10, NumWrong: 0, OvershootPct: 0},
	}
	s := Summarize(accs, 51)
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
	if math.Abs(s.PctShould-30) > 1e-9 { // (20% + 40%) / 2
		t.Fatalf("PctShould = %v, want 30", s.PctShould)
	}
	if math.Abs(s.MeanOvershoot-2) > 1e-9 {
		t.Fatalf("MeanOvershoot = %v, want 2", s.MeanOvershoot)
	}
	if math.Abs(s.PctShouldNot-2) > 1e-9 { // (4% + 0%) / 2
		t.Fatalf("PctShouldNot = %v, want 2", s.PctShouldNot)
	}
}

func TestSummarizeAveragesOvershoot(t *testing.T) {
	accs := []Accuracy{
		{NumShould: 0, NumWrong: 3, OvershootPct: 6, RelOvershootPct: math.Inf(1)},
		{NumShould: 10, NumWrong: 1, OvershootPct: 2, RelOvershootPct: 10},
	}
	s := Summarize(accs, 51)
	if s.MeanOvershoot != 4 {
		t.Fatalf("MeanOvershoot = %v, want 4 (population-relative, always finite)", s.MeanOvershoot)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 51)
	if s.Queries != 0 || s.MeanOvershoot != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries(100)
	s.Add(0, 1)
	s.Add(99, 2)
	s.Add(100, 5)
	s.Add(250, 7)
	bs := s.Buckets()
	if len(bs) != 3 {
		t.Fatalf("%d buckets, want 3", len(bs))
	}
	if bs[0].Sum != 3 || bs[0].Count != 2 || bs[0].Start != 0 {
		t.Fatalf("bucket 0 %+v", bs[0])
	}
	if bs[1].Sum != 5 || bs[1].Start != 100 {
		t.Fatalf("bucket 1 %+v", bs[1])
	}
	if bs[2].Sum != 7 || bs[2].Start != 200 {
		t.Fatalf("bucket 2 %+v", bs[2])
	}
	if bs[0].Mean() != 1.5 {
		t.Fatalf("bucket 0 mean %v", bs[0].Mean())
	}
	if (Bucket{}).Mean() != 0 {
		t.Fatal("empty bucket mean not 0")
	}
}

func TestSeriesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 accepted")
		}
	}()
	NewSeries(0)
}

func TestSeriesNegativeEpochPanics(t *testing.T) {
	s := NewSeries(10)
	defer func() {
		if recover() == nil {
			t.Fatal("negative epoch accepted")
		}
	}()
	s.Add(-1, 1)
}

func TestSeriesSums(t *testing.T) {
	s := NewSeries(10)
	s.Add(5, 2)
	s.Add(15, 3)
	sums := s.Sums()
	if len(sums) != 2 || sums[0] != 2 || sums[1] != 3 {
		t.Fatalf("Sums = %v", sums)
	}
	sums[0] = 99 // must be a copy
	if s.Sums()[0] != 2 {
		t.Fatal("Sums aliases internal state")
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.Mean != 2.5 {
		t.Fatalf("mean %v", s.Mean)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("median %v", s.Median)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std %v", s.Std)
	}
}

func TestDescribeEdgeCases(t *testing.T) {
	if s := Describe(nil); s.N != 0 {
		t.Fatal("empty describe")
	}
	s := Describe([]float64{7})
	if s.Mean != 7 || s.Median != 7 || s.Std != 0 || s.P25 != 7 || s.P75 != 7 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Describe([]float64{0, 10})
	if s.P25 != 2.5 || s.Median != 5 || s.P75 != 7.5 {
		t.Fatalf("quantiles %+v", s)
	}
}
