package experiments

import (
	"bytes"
	"testing"
)

func TestLifetimeInProcessDeterminism(t *testing.T) {
	render := func() []byte {
		o := tiny()
		o.Workers = 3
		tb, err := Run(IDLifetime, o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); !bytes.Equal(first, got) {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i+2, first, got)
		}
	}
}
