package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers resolves the Options.Workers knob: 0 or negative means one
// worker per available CPU (runtime.GOMAXPROCS(0)).
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runSims fans the n simulation runs of one sweep out on the worker pool.
// Each job is a leaf: it executes exactly one simulation. When the sweep
// is nested inside RunAll, the jobs additionally acquire a slot on the
// shared Options.sem limiter — so Workers caps the number of *simulations*
// in flight across the whole process rather than per pool level — and
// inherit the batch's Options.ctx, so aborting the batch skips the
// sweep's still-queued runs.
func runSims[T any](o Options, n int, job func(i int) (T, error)) ([]T, error) {
	parent := o.ctx
	if parent == nil {
		parent = context.Background()
	}
	return runJobs(parent, o.workers(), n,
		func(ctx context.Context, i int) (T, error) {
			if o.sem != nil {
				select {
				case o.sem <- struct{}{}:
					defer func() { <-o.sem }()
				case <-ctx.Done():
					var zero T
					return zero, ctx.Err()
				}
			}
			return job(i)
		})
}

// runJobs fans n independent jobs out across at most `workers` goroutines
// and collects their results order-preservingly: result i always lands in
// slot i of the returned slice, regardless of which worker computed it or
// when it finished, so parallel execution is observationally identical to
// a sequential loop.
//
// Jobs are claimed in index order from a shared counter. When a job fails,
// the pool cancels ctx so running jobs can bail early and unclaimed jobs
// are never started; after all workers drain, the lowest-index job error
// is returned (deterministic even when several jobs fail concurrently).
// When the parent ctx is cancelled first, remaining jobs are skipped and
// ctx.Err() is returned. A nil error means every slot of the result slice
// is filled.
func runJobs[T any](ctx context.Context, workers, n int, job func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || ctx.Err() != nil {
					return
				}
				r, err := job(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	// Prefer the lowest-index real failure: a job cancelled while waiting
	// out another job's error reports context.Canceled, which must not
	// mask the error that triggered the cancellation.
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return results, err
		}
		if cancelled == nil {
			cancelled = err
		}
	}
	if cancelled != nil {
		return results, cancelled
	}
	return results, ctx.Err()
}
