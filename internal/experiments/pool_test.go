package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// renderByID runs one experiment with the given worker count and returns
// its rendered table bytes.
func renderByID(t *testing.T, id string, workers int) []byte {
	t.Helper()
	o := tiny()
	o.Workers = workers
	tb, err := Run(id, o)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", id, workers, err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelDeterminism is the engine's core guarantee: every run owns
// its seed-derived RNG, so fanning runs out across workers must leave the
// rendered tables byte-identical to sequential execution.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{IDSeeds, IDFig5a, IDSelect} {
		t.Run(id, func(t *testing.T) {
			seq := renderByID(t, id, 1)
			par := renderByID(t, id, 8)
			if !bytes.Equal(seq, par) {
				t.Fatalf("workers=8 output differs from workers=1:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
			}
		})
	}
}

func TestRunAllParallelDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		o := tiny()
		o.Workers = workers
		var buf bytes.Buffer
		if err := RunAll(o, &buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.Bytes()
	}
	if seq, par := render(1), render(4); !bytes.Equal(seq, par) {
		t.Fatal("RunAll output depends on worker count")
	}
}

func TestPoolOrderPreserving(t *testing.T) {
	results, err := runJobs(context.Background(), 4, 32,
		func(_ context.Context, i int) (int, error) {
			// Finish in roughly reverse claim order to stress collection.
			time.Sleep(time.Duration(32-i) * 100 * time.Microsecond)
			return i * i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("slot %d = %d, want %d", i, r, i*i)
		}
	}
}

func TestPoolFirstErrorPropagation(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("job %d failed", i) }
	var started int32
	_, err := runJobs(context.Background(), 2, 100,
		func(_ context.Context, i int) (struct{}, error) {
			atomic.AddInt32(&started, 1)
			if i == 3 || i == 5 {
				return struct{}{}, boom(i)
			}
			return struct{}{}, nil
		})
	if err == nil {
		t.Fatal("no error propagated")
	}
	if got, lo, hi := err.Error(), boom(3).Error(), boom(5).Error(); got != lo && got != hi {
		t.Fatalf("unexpected error %q", got)
	}
	// The failure must cancel the sweep long before all 100 jobs start.
	if n := atomic.LoadInt32(&started); n == 100 {
		t.Fatal("error did not stop the pool")
	}
}

func TestPoolLowestIndexErrorWins(t *testing.T) {
	// Both failing jobs run concurrently; the reported error must
	// deterministically be the lowest-index one.
	var gate = make(chan struct{})
	_, err := runJobs(context.Background(), 2, 2,
		func(_ context.Context, i int) (struct{}, error) {
			if i == 0 {
				<-gate // fail strictly after job 1
				return struct{}{}, errors.New("low")
			}
			defer close(gate)
			return struct{}{}, errors.New("high")
		})
	if err == nil || err.Error() != "low" {
		t.Fatalf("got %v, want the lowest-index error", err)
	}
}

func TestPoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started int32
	done := make(chan error, 1)
	go func() {
		_, err := runJobs(ctx, 2, 64,
			func(ctx context.Context, i int) (struct{}, error) {
				atomic.AddInt32(&started, 1)
				select {
				case <-release:
				case <-ctx.Done():
				}
				return struct{}{}, nil
			})
		done <- err
	}()
	// Let both workers claim a job, then cancel.
	for atomic.LoadInt32(&started) < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not return after cancellation")
	}
	if n := atomic.LoadInt32(&started); n > 4 {
		t.Fatalf("%d jobs started after cancellation, want the claimed few", n)
	}
	close(release)
}

func TestPoolEmptyAndWorkerClamp(t *testing.T) {
	res, err := runJobs(context.Background(), 8, 0,
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(res) != 0 {
		t.Fatalf("empty pool: %v %v", res, err)
	}
	// More workers than jobs, and the GOMAXPROCS default path.
	for _, w := range []int{99, 0, -1} {
		res, err := runJobs(context.Background(), w, 3,
			func(_ context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 3 || res[0] != 0 || res[2] != 2 {
			t.Fatalf("workers=%d: %v", w, res)
		}
	}
}

func TestRunSimsSharedLimiter(t *testing.T) {
	// With a shared semaphore of 2, no more than 2 leaf jobs may run at
	// once even though the pool itself opens 8 workers — the RunAll
	// nesting guarantee.
	o := Options{Workers: 8, sem: make(chan struct{}, 2)}
	var cur, peak int32
	_, err := runSims(o, 24, func(i int) (struct{}, error) {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt32(&peak); p > 2 {
		t.Fatalf("%d leaf jobs in flight, limiter allows 2", p)
	}
}

func TestPoolCancelledJobDoesNotMaskRealError(t *testing.T) {
	// Job 1 parks (as a limiter wait would) and wakes up cancelled when
	// job 2 fails. Its context.Canceled sits at a lower index than the
	// real failure, which must still be the reported error.
	parked := make(chan struct{})
	_, err := runJobs(context.Background(), 2, 3,
		func(ctx context.Context, i int) (struct{}, error) {
			switch i {
			case 1:
				close(parked)
				<-ctx.Done()
				return struct{}{}, ctx.Err()
			case 2:
				<-parked
				return struct{}{}, errors.New("real failure")
			}
			return struct{}{}, nil
		})
	if err == nil || err.Error() != "real failure" {
		t.Fatalf("got %v, want the real failure", err)
	}
}

func TestOptionsWorkersResolution(t *testing.T) {
	if (Options{Workers: 7}).workers() != 7 {
		t.Fatal("explicit worker count not honoured")
	}
	if (Options{}).workers() < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}
