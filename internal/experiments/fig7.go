package experiments

import (
	"fmt"
)

// Fig7Series is one overshoot-over-time curve.
type Fig7Series struct {
	Label string
	// Buckets holds the mean per-query overshoot (% of nodes wrongly
	// reached) per 100-epoch bucket.
	Buckets []float64
	// Mean is the run-wide average overshoot — the paper quotes ≈3.6 % for
	// the ATC at 20 % relevant nodes.
	Mean float64
}

// Fig7Result reproduces Fig. 7: overshoot under fixed δ = 3/5/9 % and ATC.
type Fig7Result struct {
	Coverage float64
	Series   []Fig7Series
}

// Fig7 runs the four configurations at the given coverage (the paper's
// panel uses 20 %), in parallel on the Options.Workers pool.
func Fig7(o Options, coverage float64) (*Fig7Result, error) {
	configs := thresholdSweep()
	series, err := runSims(o, len(configs),
		func(i int) (Fig7Series, error) {
			c := configs[i]
			cfg := o.base()
			cfg.Coverage = coverage
			cfg.Mode = c.mode
			cfg.FixedPct = c.pct
			r, err := runScenario(cfg)
			if err != nil {
				return Fig7Series{}, err
			}
			s := Fig7Series{Label: c.label, Mean: r.Summary.MeanOvershoot}
			for _, b := range r.OvershootPerBucket {
				s.Buckets = append(s.Buckets, b.Mean())
			}
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Coverage: coverage, Series: series}, nil
}

// Table renders the overshoot series plus the per-series means.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig. 7: overshoot using different delta and the ATC (percentage of relevant nodes = %.0f%%)", r.Coverage*100),
		Comment: "Overshoot = nodes wrongly reached as % of the non-root population,\n" +
			"averaged over the queries in each 100-epoch bucket. Final row: run-wide mean.",
		Header: []string{"epoch"},
	}
	maxLen := 0
	for _, s := range r.Series {
		t.Header = append(t.Header, s.Label)
		if len(s.Buckets) > maxLen {
			maxLen = len(s.Buckets)
		}
	}
	for b := 0; b < maxLen; b++ {
		row := []string{fmt.Sprintf("%d", (b+1)*100)}
		for _, s := range r.Series {
			if b < len(s.Buckets) {
				row = append(row, f2(s.Buckets[b]))
			} else {
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"mean"}
	for _, s := range r.Series {
		mean = append(mean, f2(s.Mean))
	}
	t.Rows = append(t.Rows, mean)
	return t
}
