package experiments

import (
	"fmt"

	"repro/internal/scenario"
)

// Fig7Series is one overshoot-over-time curve.
type Fig7Series struct {
	Label string
	// Buckets holds the mean per-query overshoot (% of nodes wrongly
	// reached) per 100-epoch bucket.
	Buckets []float64
	// Mean is the run-wide average overshoot — the paper quotes ≈3.6 % for
	// the ATC at 20 % relevant nodes.
	Mean float64
}

// Fig7Result reproduces Fig. 7: overshoot under fixed δ = 3/5/9 % and ATC.
type Fig7Result struct {
	Coverage float64
	Series   []Fig7Series
}

// Fig7 runs the four configurations at the given coverage (the paper's
// panel uses 20 %).
func Fig7(o Options, coverage float64) (*Fig7Result, error) {
	res := &Fig7Result{Coverage: coverage}
	run := func(label string, mode scenario.ThresholdMode, pct float64) error {
		cfg := o.base()
		cfg.Coverage = coverage
		cfg.Mode = mode
		cfg.FixedPct = pct
		r, err := scenario.Run(cfg)
		if err != nil {
			return err
		}
		s := Fig7Series{Label: label, Mean: r.Summary.MeanOvershoot}
		for _, b := range r.OvershootPerBucket {
			s.Buckets = append(s.Buckets, b.Mean())
		}
		res.Series = append(res.Series, s)
		return nil
	}
	for _, pct := range []float64{3, 5, 9} {
		if err := run(fmt.Sprintf("delta=%.0f%%", pct), scenario.FixedDelta, pct); err != nil {
			return nil, err
		}
	}
	if err := run("delta=ATC", scenario.ATC, 0); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the overshoot series plus the per-series means.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig. 7: overshoot using different delta and the ATC (percentage of relevant nodes = %.0f%%)", r.Coverage*100),
		Comment: "Overshoot = nodes wrongly reached as % of the non-root population,\n" +
			"averaged over the queries in each 100-epoch bucket. Final row: run-wide mean.",
		Header: []string{"epoch"},
	}
	maxLen := 0
	for _, s := range r.Series {
		t.Header = append(t.Header, s.Label)
		if len(s.Buckets) > maxLen {
			maxLen = len(s.Buckets)
		}
	}
	for b := 0; b < maxLen; b++ {
		row := []string{fmt.Sprintf("%d", (b+1)*100)}
		for _, s := range r.Series {
			if b < len(s.Buckets) {
				row = append(row, f2(s.Buckets[b]))
			} else {
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"mean"}
	for _, s := range r.Series {
		mean = append(mean, f2(s.Mean))
	}
	t.Rows = append(t.Rows, mean)
	return t
}
