// Package experiments regenerates every table and figure in the paper's
// evaluation (§5 and §7): the analytical cost table with the k=2, d=4
// worked example, Fig. 5(a)/(b) (effect of δ on accuracy at 40 %/60 %
// relevant nodes), Fig. 6 (update messages over time, fixed δ vs ATC, with
// the Umax/Hr band), Fig. 7 (overshoot over time at 20 % relevant nodes),
// the §1/§7 headline numbers (DirQ cost at 45–55 % of flooding, small ATC
// overshoot), and the extension experiments (multi-seed robustness,
// network lifetime, §7.1 selectivity-vs-involvement).
//
// # Concurrent experiment engine
//
// Every sweep-style experiment is a set of independent simulation runs —
// nine δ settings for Fig. 5, four threshold configurations for Fig. 6/7,
// one run per seed for the robustness table, one per strategy for the
// lifetime comparison. Those runs execute on a worker pool (see pool.go):
// Options.Workers goroutines (one per CPU by default) claim runs in index
// order and deposit results order-preservingly, so a parallel sweep is
// observationally identical to a sequential loop. RunAll additionally runs
// whole experiments concurrently and renders the tables in canonical IDs()
// order; a limiter shared across the nested pools keeps the total number
// of simulations in flight at Options.Workers.
//
// Determinism is unconditional: each scenario run seeds its own splittable
// RNG from cfg.Seed and shares no mutable state with its siblings, so the
// rendered tables are byte-identical for any worker count (asserted by
// TestParallelDeterminism). Errors cancel the remaining runs of a sweep
// via context, and the lowest-index error is reported.
package experiments
