package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

// SeedStats aggregates one metric across seeds.
type SeedStats struct {
	Metric  string
	Summary metrics.Summary
}

// MultiSeedResult reports the headline quantities across independent
// topology/data/workload draws, quantifying how robust the single-seed
// figures are.
type MultiSeedResult struct {
	Seeds        int
	Mode         scenario.ThresholdMode
	Coverage     float64
	CostFraction metrics.Summary
	Overshoot    metrics.Summary
	UpdateTx     metrics.Summary
}

// MultiSeed runs the given configuration across `seeds` consecutive seeds
// and summarizes the distributions of the headline metrics. The per-seed
// runs are independent and execute on the Options.Workers pool.
func MultiSeed(o Options, mode scenario.ThresholdMode, coverage float64, seeds int) (*MultiSeedResult, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 seeds, got %d", seeds)
	}
	type sample struct{ cost, shoot, update float64 }
	samples, err := runSims(o, seeds,
		func(s int) (sample, error) {
			cfg := o.base()
			cfg.Seed = o.Seed + uint64(s)
			cfg.Mode = mode
			cfg.Coverage = coverage
			r, err := runScenario(cfg)
			if err != nil {
				return sample{}, err
			}
			return sample{r.CostFraction, r.Summary.MeanOvershoot, float64(r.UpdateCost.Tx)}, nil
		})
	if err != nil {
		return nil, err
	}
	var costs, shoots, updates []float64
	for _, s := range samples {
		costs = append(costs, s.cost)
		shoots = append(shoots, s.shoot)
		updates = append(updates, s.update)
	}
	return &MultiSeedResult{
		Seeds:        seeds,
		Mode:         mode,
		Coverage:     coverage,
		CostFraction: metrics.Describe(costs),
		Overshoot:    metrics.Describe(shoots),
		UpdateTx:     metrics.Describe(updates),
	}, nil
}

// Table renders the cross-seed distributions.
func (r *MultiSeedResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Robustness: %d seeds, mode=%s, coverage=%.0f%%",
			r.Seeds, r.Mode, r.Coverage*100),
		Comment: "Distribution of headline metrics across independent topology/data/workload draws.",
		Header:  []string{"metric", "mean", "std", "min", "median", "max"},
	}
	row := func(name string, s metrics.Summary) {
		t.Rows = append(t.Rows, []string{
			name, f3(s.Mean), f3(s.Std), f3(s.Min), f3(s.Median), f3(s.Max),
		})
	}
	row("cost/flooding", r.CostFraction)
	row("overshoot(%)", r.Overshoot)
	row("update_msgs", r.UpdateTx)
	return t
}
