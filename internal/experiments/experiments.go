package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

// Options scale the experiments. Full() reproduces the paper's setup;
// Quick() shrinks epochs for CI and benchmarks.
type Options struct {
	Seed     uint64
	NumNodes int
	Epochs   int64

	// Workers bounds how many simulation runs execute concurrently inside
	// each sweep-style experiment (and how many whole experiments RunAll
	// executes concurrently). 0 or negative means one worker per available
	// CPU (runtime.GOMAXPROCS(0)); 1 forces sequential execution. Every
	// run derives all randomness from its own cfg.Seed, so results are
	// bit-identical whatever the worker count.
	Workers int

	// Telemetry, when non-nil, instruments every simulation the
	// experiments build (see scenario.Config.Telemetry). Concurrent runs
	// share the registry safely — instrument writes are atomic — and
	// results stay byte-identical with or without it.
	Telemetry telemetry.Instrumenter

	// sem, when non-nil, is a shared limiter on simulations in flight.
	// RunAll installs it so that nesting (experiments in parallel, each
	// sweeping in parallel) still respects the Workers cap globally.
	sem chan struct{}

	// ctx, when non-nil, cancels the leaf pools of nested sweeps. RunAll
	// installs it so that aborting the batch also skips the simulations
	// still queued inside in-flight experiments.
	ctx context.Context
}

// Full returns the paper-scale options: 50 nodes, 20 000 epochs.
func Full() Options { return Options{Seed: 1, NumNodes: 50, Epochs: 20000} }

// Quick returns CI-scale options (same topology, 1/10 the epochs).
func Quick() Options { return Options{Seed: 1, NumNodes: 50, Epochs: 2000} }

// base builds the shared scenario configuration.
func (o Options) base() scenario.Config {
	cfg := scenario.Default()
	cfg.Seed = o.Seed
	cfg.NumNodes = o.NumNodes
	cfg.Epochs = o.Epochs
	cfg.Telemetry = o.Telemetry
	return cfg
}

// Table is a generic labelled grid used by all experiment outputs.
type Table struct {
	Title   string
	Comment string
	Header  []string
	Rows    [][]string
}

// Render writes the table as aligned ASCII text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
		return err
	}
	if t.Comment != "" {
		for _, line := range strings.Split(t.Comment, "\n") {
			if _, err := fmt.Fprintf(w, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d0(v int64) string   { return fmt.Sprintf("%d", v) }
