package experiments

import (
	"fmt"

	"repro/internal/scenario"
)

// Fig6Series is one curve of Fig. 6: update messages transmitted per
// 100-epoch bucket for one threshold configuration.
type Fig6Series struct {
	Label   string
	Buckets []float64
}

// Fig6Result reproduces Fig. 6: the update traffic of fixed δ = 3/5/9 %
// and of the ATC, against the Umax/Hr reference band.
type Fig6Result struct {
	Coverage    float64
	Series      []Fig6Series
	UmaxPerHour float64 // reference line
	Band45      float64 // 0.45 * Umax
	Band55      float64 // 0.55 * Umax
}

// Fig6 runs the four configurations at the given coverage (the paper's
// panel uses 40 %).
func Fig6(o Options, coverage float64) (*Fig6Result, error) {
	res := &Fig6Result{Coverage: coverage}
	run := func(label string, mode scenario.ThresholdMode, pct float64) error {
		cfg := o.base()
		cfg.Coverage = coverage
		cfg.Mode = mode
		cfg.FixedPct = pct
		r, err := scenario.Run(cfg)
		if err != nil {
			return err
		}
		res.Series = append(res.Series, Fig6Series{Label: label, Buckets: r.UpdateTxPerBucket})
		if mode == scenario.ATC {
			res.UmaxPerHour = r.UmaxPerHour
			res.Band45 = 0.45 * r.UmaxPerHour
			res.Band55 = 0.55 * r.UmaxPerHour
		}
		return nil
	}
	for _, pct := range []float64{3, 5, 9} {
		if err := run(fmt.Sprintf("delta=%.0f%%", pct), scenario.FixedDelta, pct); err != nil {
			return nil, err
		}
	}
	if err := run("delta=ATC", scenario.ATC, 0); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the series as one row per bucket.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig. 6: update messages per 100 epochs (percentage of relevant nodes = %.0f%%)", r.Coverage*100),
		Comment: fmt.Sprintf("Reference lines: Umax/Hr = %.0f, 0.55*Umax = %.0f, 0.45*Umax = %.0f.\n"+
			"The ATC column should settle inside the band.", r.UmaxPerHour, r.Band55, r.Band45),
		Header: []string{"epoch"},
	}
	maxLen := 0
	for _, s := range r.Series {
		t.Header = append(t.Header, s.Label)
		if len(s.Buckets) > maxLen {
			maxLen = len(s.Buckets)
		}
	}
	for b := 0; b < maxLen; b++ {
		row := []string{fmt.Sprintf("%d", (b+1)*100)}
		for _, s := range r.Series {
			if b < len(s.Buckets) {
				row = append(row, fmt.Sprintf("%.0f", s.Buckets[b]))
			} else {
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SteadyStateMeans returns each series' mean bucket value over the second
// half of the run (after ATC convergence).
func (r *Fig6Result) SteadyStateMeans() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Series {
		if len(s.Buckets) == 0 {
			continue
		}
		half := s.Buckets[len(s.Buckets)/2:]
		sum := 0.0
		for _, v := range half {
			sum += v
		}
		out[s.Label] = sum / float64(len(half))
	}
	return out
}
