package experiments

import (
	"fmt"

	"repro/internal/scenario"
)

// Fig6Series is one curve of Fig. 6: update messages transmitted per
// 100-epoch bucket for one threshold configuration.
type Fig6Series struct {
	Label   string
	Buckets []float64
}

// Fig6Result reproduces Fig. 6: the update traffic of fixed δ = 3/5/9 %
// and of the ATC, against the Umax/Hr reference band.
type Fig6Result struct {
	Coverage    float64
	Series      []Fig6Series
	UmaxPerHour float64 // reference line
	Band45      float64 // 0.45 * Umax
	Band55      float64 // 0.55 * Umax
}

// Fig6 runs the four configurations at the given coverage (the paper's
// panel uses 40 %), in parallel on the Options.Workers pool.
func Fig6(o Options, coverage float64) (*Fig6Result, error) {
	configs := thresholdSweep()
	type out struct {
		series Fig6Series
		umax   float64
	}
	outs, err := runSims(o, len(configs),
		func(i int) (out, error) {
			c := configs[i]
			cfg := o.base()
			cfg.Coverage = coverage
			cfg.Mode = c.mode
			cfg.FixedPct = c.pct
			r, err := runScenario(cfg)
			if err != nil {
				return out{}, err
			}
			v := out{series: Fig6Series{Label: c.label, Buckets: r.UpdateTxPerBucket}}
			if c.mode == scenario.ATC {
				v.umax = r.UmaxPerHour
			}
			return v, nil
		})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Coverage: coverage}
	for i, v := range outs {
		res.Series = append(res.Series, v.series)
		if configs[i].mode == scenario.ATC {
			res.UmaxPerHour = v.umax
			res.Band45 = 0.45 * v.umax
			res.Band55 = 0.55 * v.umax
		}
	}
	return res, nil
}

// thresholdConfig is one curve of the Fig. 6/7 sweeps.
type thresholdConfig struct {
	label string
	mode  scenario.ThresholdMode
	pct   float64
}

// thresholdSweep returns the paper's four threshold configurations in
// curve order: fixed δ = 3/5/9 % then the ATC.
func thresholdSweep() []thresholdConfig {
	var cs []thresholdConfig
	for _, pct := range []float64{3, 5, 9} {
		cs = append(cs, thresholdConfig{fmt.Sprintf("delta=%.0f%%", pct), scenario.FixedDelta, pct})
	}
	return append(cs, thresholdConfig{"delta=ATC", scenario.ATC, 0})
}

// Table renders the series as one row per bucket.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig. 6: update messages per 100 epochs (percentage of relevant nodes = %.0f%%)", r.Coverage*100),
		Comment: fmt.Sprintf("Reference lines: Umax/Hr = %.0f, 0.55*Umax = %.0f, 0.45*Umax = %.0f.\n"+
			"The ATC column should settle inside the band.", r.UmaxPerHour, r.Band55, r.Band45),
		Header: []string{"epoch"},
	}
	maxLen := 0
	for _, s := range r.Series {
		t.Header = append(t.Header, s.Label)
		if len(s.Buckets) > maxLen {
			maxLen = len(s.Buckets)
		}
	}
	for b := 0; b < maxLen; b++ {
		row := []string{fmt.Sprintf("%d", (b+1)*100)}
		for _, s := range r.Series {
			if b < len(s.Buckets) {
				row = append(row, fmt.Sprintf("%.0f", s.Buckets[b]))
			} else {
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SteadyStateMeans returns each series' mean bucket value over the second
// half of the run (after ATC convergence).
func (r *Fig6Result) SteadyStateMeans() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Series {
		if len(s.Buckets) == 0 {
			continue
		}
		half := s.Buckets[len(s.Buckets)/2:]
		sum := 0.0
		for _, v := range half {
			sum += v
		}
		out[s.Label] = sum / float64(len(half))
	}
	return out
}
