package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/script"
	"repro/internal/sim"
)

// ChurnPoint is the outcome of one failure rate: a scripted cascade of
// auto-picked node kills spread over the middle half of the run, under
// the otherwise-default workload.
type ChurnPoint struct {
	// Kills is the number of scripted node deaths.
	Kills int
	// PctShould / PctReceived / MeanOvershoot are the run's accuracy
	// means (§7.1 quantities) across all injected queries.
	PctShould     float64
	PctReceived   float64
	MeanOvershoot float64
	// CostFraction is (query+update)/flooding for the whole run.
	CostFraction float64
	// Repaired counts kills absorbed before the horizon;
	// MeanRepairEpochs averages their repair latency (0 when none).
	Repaired         int
	MeanRepairEpochs float64
	// Stranded counts nodes left orphaned at the horizon — kills the
	// tree could not absorb because no eligible live neighbor remained.
	Stranded int
}

// ChurnResult sweeps node-failure rates through the scripted dynamics
// engine: how gracefully does DirQ degrade as the topology churns?
type ChurnResult struct {
	Mode   scenario.ThresholdMode
	Points []ChurnPoint
}

// churnKills is the swept failure ladder.
var churnKills = []int{0, 1, 2, 4, 8}

// churnScript builds the failure timeline for one rate: a cascade
// starting after warm-up (a quarter into the run) with the kills spread
// evenly across the middle half, leaving the last quarter to observe the
// repaired steady state.
func churnScript(horizon int64, kills int) *script.Script {
	s := &script.Script{Name: fmt.Sprintf("churn-%d", kills)}
	if kills > 0 {
		spacing := horizon / 2 / int64(kills)
		if spacing < 1 {
			spacing = 1
		}
		s.Events = []script.Event{
			{At: horizon / 4, Op: script.OpCascade, Count: kills, Spacing: spacing},
		}
	}
	return s
}

// runScripted executes one scripted run on a pooled engine.
func runScripted(cfg scenario.Config, s *script.Script) (*script.Result, error) {
	eng := enginePool.Get().(*sim.Engine)
	res, err := script.RunWithEngine(cfg, s, eng)
	enginePool.Put(eng)
	return res, err
}

// Churn runs the failure-rate sweep with ATC thresholds, in parallel on
// the Options.Workers pool.
func Churn(o Options) (*ChurnResult, error) {
	return churn(o, scenario.ATC)
}

func churn(o Options, mode scenario.ThresholdMode) (*ChurnResult, error) {
	points, err := runSims(o, len(churnKills),
		func(i int) (ChurnPoint, error) {
			kills := churnKills[i]
			cfg := o.base()
			cfg.Mode = mode
			res, err := runScripted(cfg, churnScript(cfg.Epochs, kills))
			if err != nil {
				return ChurnPoint{}, err
			}
			p := ChurnPoint{
				Kills:         kills,
				PctShould:     res.Summary.PctShould,
				PctReceived:   res.Summary.PctReceived,
				MeanOvershoot: res.Summary.MeanOvershoot,
				CostFraction:  res.CostFraction,
			}
			for _, f := range res.Report.Faults {
				if f.RepairedAt >= 0 {
					p.Repaired++
					p.MeanRepairEpochs += float64(f.RepairEpochs)
				} else if f.OrphansLeft > p.Stranded {
					p.Stranded = f.OrphansLeft
				}
			}
			if p.Repaired > 0 {
				p.MeanRepairEpochs /= float64(p.Repaired)
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	return &ChurnResult{Mode: mode, Points: points}, nil
}

// Table renders the sweep, one row per failure rate.
func (r *ChurnResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Churn: scripted node-failure sweep (%s thresholds)", r.Mode),
		Comment: "Each row kills N nodes (auto-picked internal nodes) in a scripted cascade\n" +
			"across the middle half of the run (internal/script). Repair latency is the\n" +
			"epochs from a kill to the tree fully re-absorbing the orphaned subtree\n" +
			"(§4.2's cross-layer repair); stranded nodes had no eligible neighbor left.",
		Header: []string{"kills", "%should", "%received", "overshoot%", "cost/flood", "repaired", "repair epochs", "stranded"},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			d0(int64(p.Kills)), f1(p.PctShould), f1(p.PctReceived), f2(p.MeanOvershoot),
			f3(p.CostFraction), d0(int64(p.Repaired)), f1(p.MeanRepairEpochs), d0(int64(p.Stranded)),
		})
	}
	return t
}
