package experiments

import (
	"sync"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// enginePool recycles event engines across the thousands of simulation
// runs one experiment batch performs. An engine's queue storage (event
// arena, free list, heap) is the run's hottest allocation site; reusing a
// Reset engine lets each worker's next run start with a warmed arena.
// Engine state is fully rebuilt by scenario.BuildWithEngine, so pooling
// cannot leak state between runs and results stay byte-identical.
var enginePool = sync.Pool{New: func() any { return sim.NewEngine() }}

// runScenario executes one simulation run on a pooled engine.
func runScenario(cfg scenario.Config) (*scenario.Result, error) {
	eng := enginePool.Get().(*sim.Engine)
	r, err := scenario.BuildWithEngine(cfg, eng)
	if err != nil {
		enginePool.Put(eng)
		return nil, err
	}
	res := r.Run()
	// The run is complete and the Result holds no engine references, so
	// the engine can serve the next run.
	enginePool.Put(eng)
	return res, nil
}
