package experiments

import (
	"fmt"

	"repro/internal/scenario"
)

// LifetimeRow compares network lifetime under one dissemination strategy.
type LifetimeRow struct {
	Strategy        string
	FirstDeathEpoch int64 // -1 if nobody died
	DeadAtEnd       int
	CostFraction    float64
}

// LifetimeResult is the extension experiment turning the paper's headline
// cost ratio into node lifetime: equal batteries, same query workload,
// DirQ vs flooding every query.
type LifetimeResult struct {
	Capacity float64
	Epochs   int64
	Rows     []LifetimeRow
}

// Lifetime runs the comparison, one strategy per pool worker. Battery
// capacity is sized so the flooding network starts dying within the run.
func Lifetime(o Options) (*LifetimeResult, error) {
	res := &LifetimeResult{Epochs: o.Epochs}
	// Flooding drains roughly (1 + mean degree) units per node per query;
	// size capacity to ~40 % of the flooding total so deaths happen mid-run.
	res.Capacity = float64(o.Epochs) / 20 * 9 * 0.4

	strategies := []struct {
		label     string
		floodMode bool
		mode      scenario.ThresholdMode
	}{
		{"flooding", true, scenario.FixedDelta},
		{"dirq-fixed-5%", false, scenario.FixedDelta},
		{"dirq-atc", false, scenario.ATC},
	}
	rows, err := runSims(o, len(strategies),
		func(i int) (LifetimeRow, error) {
			s := strategies[i]
			cfg := o.base()
			cfg.EnergyCapacity = res.Capacity
			cfg.DisseminateByFlooding = s.floodMode
			cfg.Mode = s.mode
			r, err := runScenario(cfg)
			if err != nil {
				return LifetimeRow{}, err
			}
			return LifetimeRow{
				Strategy:        s.label,
				FirstDeathEpoch: r.FirstDeathEpoch,
				DeadAtEnd:       r.DeadAtEnd,
				CostFraction:    r.CostFraction,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// Table renders the lifetime comparison.
func (r *LifetimeResult) Table() *Table {
	t := &Table{
		Title: "Extension: network lifetime under equal batteries (DirQ vs flooding)",
		Comment: fmt.Sprintf("capacity %.0f units/node, %d epochs, identical query workload.\n"+
			"first_death = -1 means no node depleted within the run.", r.Capacity, r.Epochs),
		Header: []string{"strategy", "first_death_epoch", "dead_at_end", "cost/flooding"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Strategy,
			fmt.Sprintf("%d", row.FirstDeathEpoch),
			fmt.Sprintf("%d", row.DeadAtEnd),
			f3(row.CostFraction),
		})
	}
	return t
}
