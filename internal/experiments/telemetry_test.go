package experiments

import (
	"bytes"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryInertAcrossExperiments: the zero-drift proof at the
// experiment layer — a sweep with a shared registry attached (concurrent
// workers all writing to it) renders the same tables as one without.
func TestTelemetryInertAcrossExperiments(t *testing.T) {
	run := func(reg telemetry.Instrumenter) string {
		opts := tiny()
		opts.Workers = 4 // exercise concurrent registry sharing
		opts.Telemetry = reg
		var buf bytes.Buffer
		for _, f := range []func() (*Table, error){
			func() (*Table, error) {
				r, err := Fig6(opts, 0.4)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			},
			func() (*Table, error) {
				r, err := Headline(opts)
				if err != nil {
					return nil, err
				}
				return r.Table(), nil
			},
		} {
			tab, err := f()
			if err != nil {
				t.Fatal(err)
			}
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}

	off := run(nil)
	reg := telemetry.NewRegistry()
	on := run(reg)
	if off != on {
		t.Errorf("experiment tables differ with telemetry attached:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
	// The shared registry saw every run the sweeps dispatched.
	var epochs float64
	for _, s := range reg.Snapshot() {
		if s.Name == "dirq_epochs_total" {
			epochs = s.Value
		}
	}
	if epochs <= 0 {
		t.Errorf("dirq_epochs_total = %v after two experiments, want > 0", epochs)
	}
}
