package experiments

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/scenario"
	"repro/internal/sensordata"
	"repro/internal/sim"
	"repro/internal/topology"
)

// SelectivityBin groups queries by selectivity (source fraction) and
// reports the distribution of involvement (should-receive fraction) inside
// the bin — quantifying §7.1's observation that "the percentage of nodes
// involved in a query is not directly dependent on the selectivity of the
// query itself".
type SelectivityBin struct {
	// SelLo/SelHi bound the bin's source fraction.
	SelLo, SelHi float64
	// N is the number of queries in the bin.
	N int
	// InvMean / InvMin / InvMax describe the involvement fraction.
	InvMean, InvMin, InvMax float64
	// Amplification is mean(involvement / selectivity) in the bin: how many
	// forwarding nodes each source drags in on average.
	Amplification float64
}

// SelectivityResult reproduces the §7.1 claim.
type SelectivityResult struct {
	Queries int
	Bins    []SelectivityBin
}

// Selectivity builds a fresh network, then evaluates many random value
// windows of varying width against ground truth (no dissemination needed:
// the claim is about workload structure, not protocol behaviour).
//
// Query generation is inherently sequential — each draw advances the
// shared data generator and RNG — so it runs first, snapshotting the
// sensor field each query sees. The expensive ground-truth resolutions
// are then fanned out across the Options.Workers pool.
func Selectivity(o Options, queries int) (*SelectivityResult, error) {
	if queries < 10 {
		return nil, fmt.Errorf("experiments: need >= 10 queries, got %d", queries)
	}
	cfg := scenario.Default()
	cfg.Seed = o.Seed
	cfg.NumNodes = o.NumNodes
	r, err := scenario.Build(cfg)
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(o.Seed).Stream("selectivity")
	n := r.Graph.Len()

	type spec struct {
		q    query.Query
		vals []float64 // per-node readings of q.Type at draw time
	}
	specs := make([]spec, queries)
	for i := 0; i < queries; i++ {
		// Advance the data a little between draws.
		for s := 0; s < 5; s++ {
			r.Gen.Step()
		}
		ty := sensordata.AllTypes()[i%int(sensordata.NumTypes)]
		lo, hi := ty.Span()
		centre := rng.Range(lo, hi)
		width := rng.Range(0, (hi-lo)/2)
		specs[i] = spec{
			q:    query.Query{ID: int64(i), Type: ty, Lo: centre - width, Hi: centre + width},
			vals: r.Gen.Values(ty),
		}
	}

	type sample struct {
		sel, inv float64
		ok       bool // false when the query matched no sources
	}
	resolved, err := runSims(o, queries,
		func(i int) (sample, error) {
			sp := specs[i]
			gt := query.Resolve(sp.q, r.Tree, r.Mounted,
				func(id topology.NodeID) float64 { return sp.vals[id] })
			if len(gt.Sources) == 0 {
				return sample{}, nil
			}
			return sample{
				sel: float64(len(gt.Sources)) / float64(n-1),
				inv: gt.InvolvedFraction(n),
				ok:  true,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	var samples []sample
	for _, s := range resolved {
		if s.ok {
			samples = append(samples, s)
		}
	}

	res := &SelectivityResult{Queries: len(samples)}
	edges := []float64{0, 0.1, 0.2, 0.4, 0.6, 1.0000001}
	for b := 0; b+1 < len(edges); b++ {
		bin := SelectivityBin{SelLo: edges[b], SelHi: edges[b+1], InvMin: 2}
		var ampSum float64
		for _, s := range samples {
			if s.sel < bin.SelLo || s.sel >= bin.SelHi {
				continue
			}
			bin.N++
			bin.InvMean += s.inv
			ampSum += s.inv / s.sel
			if s.inv < bin.InvMin {
				bin.InvMin = s.inv
			}
			if s.inv > bin.InvMax {
				bin.InvMax = s.inv
			}
		}
		if bin.N > 0 {
			bin.InvMean /= float64(bin.N)
			bin.Amplification = ampSum / float64(bin.N)
			res.Bins = append(res.Bins, bin)
		}
	}
	sort.Slice(res.Bins, func(i, j int) bool { return res.Bins[i].SelLo < res.Bins[j].SelLo })
	return res, nil
}

// Table renders the bins.
func (r *SelectivityResult) Table() *Table {
	t := &Table{
		Title: "Section 7.1: involvement vs selectivity",
		Comment: "\"The percentage of nodes involved in a query is not directly dependent on\n" +
			"the selectivity of the query itself\": involvement includes forwarding nodes,\n" +
			"so low-selectivity queries still involve many nodes (high amplification) and\n" +
			"involvement spreads widely within each selectivity bin.",
		Header: []string{"selectivity", "queries", "involve_mean", "involve_min", "involve_max", "amplification"},
	}
	for _, b := range r.Bins {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f-%.0f%%", b.SelLo*100, b.SelHi*100),
			fmt.Sprintf("%d", b.N),
			f1(b.InvMean * 100), f1(b.InvMin * 100), f1(b.InvMax * 100),
			f2(b.Amplification),
		})
	}
	return t
}
