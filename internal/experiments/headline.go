package experiments

import (
	"fmt"

	"repro/internal/scenario"
)

// HeadlineRow is one coverage level of the headline experiment.
type HeadlineRow struct {
	Coverage      float64
	CostFraction  float64 // (queries + updates) / flooding — paper: 0.45-0.55
	MeanOvershoot float64 // paper: ≈3.6 % (ATC, 20 % relevant nodes)
	PctShould     float64
	PctReceived   float64
	UpdateTx      int64
	Queries       int
}

// HeadlineResult reproduces the paper's §1/§7 headline numbers with the
// ATC enabled across the three workload coverages.
type HeadlineResult struct {
	Rows []HeadlineRow
}

// Headline runs ATC at 20/40/60 % relevant nodes, one coverage level per
// pool worker.
func Headline(o Options) (*HeadlineResult, error) {
	coverages := []float64{0.2, 0.4, 0.6}
	rows, err := runSims(o, len(coverages),
		func(i int) (HeadlineRow, error) {
			cov := coverages[i]
			cfg := o.base()
			cfg.Coverage = cov
			cfg.Mode = scenario.ATC
			r, err := runScenario(cfg)
			if err != nil {
				return HeadlineRow{}, err
			}
			return HeadlineRow{
				Coverage:      cov,
				CostFraction:  r.CostFraction,
				MeanOvershoot: r.Summary.MeanOvershoot,
				PctShould:     r.Summary.PctShould,
				PctReceived:   r.Summary.PctReceived,
				UpdateTx:      r.UpdateCost.Tx,
				Queries:       r.QueriesInjected,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &HeadlineResult{Rows: rows}, nil
}

// Table renders the headline summary.
func (r *HeadlineResult) Table() *Table {
	t := &Table{
		Title: "Headline: DirQ with ATC vs flooding",
		Comment: "Paper: \"DirQ spends between 45% and 55% the cost of flooding\" and\n" +
			"\"suffers from an average overshoot of only 3.6%\" (ATC, 20% relevant nodes).",
		Header: []string{"relevant_nodes(%)", "cost/flooding", "mean_overshoot(%)",
			"should(%)", "received(%)", "updates_tx", "queries"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f1(row.Coverage * 100), f3(row.CostFraction), f2(row.MeanOvershoot),
			f1(row.PctShould), f1(row.PctReceived),
			fmt.Sprintf("%d", row.UpdateTx), fmt.Sprintf("%d", row.Queries),
		})
	}
	return t
}
