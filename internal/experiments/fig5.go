package experiments

import (
	"fmt"

	"repro/internal/scenario"
)

// Fig5Row is one δ setting of Fig. 5: the four curves at that x position.
type Fig5Row struct {
	DeltaPct     float64
	PctShould    float64 // "Nodes that SHOULD receive a query"
	PctReceive   float64 // "Nodes that RECEIVE a query"
	PctSources   float64 // "Source nodes"
	PctShouldNot float64 // "Nodes that SHOULD NOT receive a query"
}

// Fig5Result reproduces one Fig. 5 panel.
type Fig5Result struct {
	Coverage float64
	Rows     []Fig5Row
}

// Fig5 sweeps fixed thresholds δ = 1..9 % at the given relevant-node
// percentage (0.4 for Fig. 5(a), 0.6 for Fig. 5(b)). The nine runs are
// independent and execute on the Options.Workers pool.
func Fig5(o Options, coverage float64) (*Fig5Result, error) {
	rows, err := runSims(o, 9,
		func(i int) (Fig5Row, error) {
			delta := i + 1
			cfg := o.base()
			cfg.Coverage = coverage
			cfg.Mode = scenario.FixedDelta
			cfg.FixedPct = float64(delta)
			r, err := runScenario(cfg)
			if err != nil {
				return Fig5Row{}, err
			}
			return Fig5Row{
				DeltaPct:     float64(delta),
				PctShould:    r.Summary.PctShould,
				PctReceive:   r.Summary.PctReceived,
				PctSources:   r.Summary.PctSources,
				PctShouldNot: r.Summary.PctShouldNot,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Coverage: coverage, Rows: rows}, nil
}

// Table renders the panel in the paper's curve order.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fig. 5: effect of delta on accuracy (percentage of relevant nodes = %.0f%%)", r.Coverage*100),
		Comment: "Each row is one fixed threshold; columns are the four curves of the figure\n" +
			"(percentages of the non-root node population, averaged over all queries).",
		Header: []string{"delta(%)", "should_receive(%)", "receive(%)", "sources(%)", "should_not_receive(%)"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			f1(row.DeltaPct), f1(row.PctShould), f1(row.PctReceive),
			f1(row.PctSources), f1(row.PctShouldNot),
		})
	}
	return t
}
