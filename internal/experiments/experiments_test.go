package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// tiny returns very small options so experiment tests stay fast.
func tiny() Options { return Options{Seed: 3, NumNodes: 25, Epochs: 600} }

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Comment: "a\nb",
		Header:  []string{"x", "y"},
		Rows:    [][]string{{"1", "hello"}, {"2", "wo,rld"}},
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## demo", "# a", "# b", "x", "hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, "x,y") {
		t.Fatalf("CSV missing header: %s", csv)
	}
	if !strings.Contains(csv, `"wo,rld"`) {
		t.Fatalf("CSV comma not escaped: %s", csv)
	}
}

func TestAnalyticExperimentCrossCheck(t *testing.T) {
	r, err := Analytic([]int{2, 3}, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.SimFlood != row.CF {
			t.Fatalf("k=%d d=%d: simulated flood %d != CF %d", row.K, row.D, row.SimFlood, row.CF)
		}
		if row.SimCQDMax != row.CQD {
			t.Fatalf("k=%d d=%d: simulated CQD %d != CQDmax %d", row.K, row.D, row.SimCQDMax, row.CQD)
		}
	}
	// Worked example present.
	found := false
	for _, row := range r.Rows {
		if row.K == 2 && row.D == 4 {
			found = true
			if math.Abs(row.FMax-46.0/60.0) > 1e-12 {
				t.Fatalf("fMax(2,4) = %v", row.FMax)
			}
		}
	}
	if !found {
		t.Fatal("worked example (2,4) missing")
	}
	tb := r.Table()
	if len(tb.Rows) != 4 {
		t.Fatal("table row count")
	}
}

func TestFig5TrendReceiveGrowsWithDelta(t *testing.T) {
	r, err := Fig5(tiny(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("%d delta settings, want 9", len(r.Rows))
	}
	// The paper's trend: receive% at δ=9 > receive% at δ=1, should%
	// roughly constant.
	first, last := r.Rows[0], r.Rows[8]
	if last.PctReceive <= first.PctReceive {
		t.Fatalf("receive%% did not grow with delta: %v -> %v", first.PctReceive, last.PctReceive)
	}
	if math.Abs(first.PctShould-last.PctShould) > 12 {
		t.Fatalf("should%% should be ~flat: %v vs %v", first.PctShould, last.PctShould)
	}
	if last.PctShouldNot <= first.PctShouldNot {
		t.Fatalf("should-not%% did not grow with delta")
	}
	tb := r.Table()
	if len(tb.Rows) != 9 || len(tb.Header) != 5 {
		t.Fatal("fig5 table shape")
	}
}

func TestFig6ATCBelowFixedSmallDelta(t *testing.T) {
	r, err := Fig6(tiny(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("%d series", len(r.Series))
	}
	if r.UmaxPerHour <= 0 || r.Band45 >= r.Band55 {
		t.Fatalf("reference lines: %v %v %v", r.UmaxPerHour, r.Band45, r.Band55)
	}
	means := r.SteadyStateMeans()
	if means["delta=3%"] <= means["delta=9%"] {
		t.Fatalf("update ordering wrong: %v", means)
	}
	if means["delta=ATC"] <= 0 {
		t.Fatal("ATC sent no updates")
	}
	tb := r.Table()
	if len(tb.Header) != 5 {
		t.Fatalf("fig6 header %v", tb.Header)
	}
}

func TestFig7ATCLowestOvershoot(t *testing.T) {
	r, err := Fig7(tiny(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	for _, s := range r.Series {
		means[s.Label] = s.Mean
	}
	// Paper ordering: overshoot grows with δ; ATC at or below δ=3%'s level.
	if means["delta=9%"] <= means["delta=3%"] {
		t.Fatalf("overshoot ordering wrong: %v", means)
	}
	if means["delta=ATC"] > means["delta=5%"] {
		t.Fatalf("ATC overshoot %v not better than fixed 5%%: %v", means["delta=ATC"], means)
	}
	tb := r.Table()
	if tb.Rows[len(tb.Rows)-1][0] != "mean" {
		t.Fatal("fig7 table missing mean row")
	}
}

func TestHeadline(t *testing.T) {
	r, err := Headline(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.CostFraction <= 0 || row.CostFraction >= 1 {
			t.Fatalf("coverage %v: cost fraction %v not in (0,1)", row.Coverage, row.CostFraction)
		}
		if row.Queries == 0 {
			t.Fatal("no queries")
		}
	}
	if len(r.Table().Rows) != 3 {
		t.Fatal("headline table rows")
	}
}

func TestRunByID(t *testing.T) {
	// Every registered experiment must run end-to-end at tiny scale and
	// produce a non-empty table.
	for _, id := range IDs() {
		tb, err := Run(id, tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		if tb.Title == "" {
			t.Fatalf("%s: untitled table", id)
		}
	}
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Fig. 5", "Fig. 6", "Fig. 7", "Headline", "lifetime", "selectivity"} {
		if !strings.Contains(buf.String(), id) {
			t.Fatalf("RunAll output missing %q", id)
		}
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 10 {
		t.Fatalf("IDs = %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestLifetimeExperiment(t *testing.T) {
	r, err := Lifetime(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	var fld, atc LifetimeRow
	for _, row := range r.Rows {
		switch row.Strategy {
		case "flooding":
			fld = row
		case "dirq-atc":
			atc = row
		}
	}
	if fld.CostFraction < 0.9 {
		t.Fatalf("flooding cost fraction %v, want ~1", fld.CostFraction)
	}
	// DirQ must not lose more nodes than flooding on the same batteries.
	if fld.FirstDeathEpoch >= 0 && atc.DeadAtEnd > fld.DeadAtEnd {
		t.Fatalf("ATC lost %d nodes vs flooding's %d", atc.DeadAtEnd, fld.DeadAtEnd)
	}
	if len(r.Table().Rows) != 3 {
		t.Fatal("lifetime table rows")
	}
}

func TestMultiSeed(t *testing.T) {
	r, err := MultiSeed(tiny(), scenarioATC(), 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.CostFraction.N != 3 {
		t.Fatalf("samples %d", r.CostFraction.N)
	}
	if r.CostFraction.Std < 0 || r.CostFraction.Mean <= 0 {
		t.Fatalf("cost summary %+v", r.CostFraction)
	}
	// Different seeds should not all produce identical costs.
	if r.UpdateTx.Min == r.UpdateTx.Max {
		t.Fatal("no cross-seed variation in update traffic")
	}
	if len(r.Table().Rows) != 3 {
		t.Fatal("multiseed table rows")
	}
	if _, err := MultiSeed(tiny(), scenarioATC(), 0.4, 1); err == nil {
		t.Fatal("1 seed accepted")
	}
}

func TestOptionsPresets(t *testing.T) {
	if Full().Epochs != 20000 || Full().NumNodes != 50 {
		t.Fatalf("Full = %+v", Full())
	}
	if Quick().Epochs >= Full().Epochs {
		t.Fatal("Quick not quicker than Full")
	}
}

// scenarioATC avoids importing scenario in every test line.
func scenarioATC() scenario.ThresholdMode { return scenario.ATC }

func TestSelectivityExperiment(t *testing.T) {
	r, err := Selectivity(tiny(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries < 50 {
		t.Fatalf("only %d usable queries", r.Queries)
	}
	if len(r.Bins) == 0 {
		t.Fatal("no bins")
	}
	for _, b := range r.Bins {
		// Involvement always >= selectivity (forwarders included).
		if b.Amplification < 1 {
			t.Fatalf("bin %+v: involvement below selectivity", b)
		}
		if b.InvMax < b.InvMin {
			t.Fatalf("bin %+v inverted", b)
		}
	}
	// The paper's claim: low-selectivity queries have the largest
	// amplification (deep forwarding paths dominate).
	if len(r.Bins) >= 2 && r.Bins[0].Amplification <= r.Bins[len(r.Bins)-1].Amplification {
		t.Fatalf("amplification should fall with selectivity: %+v", r.Bins)
	}
	if _, err := Selectivity(tiny(), 5); err == nil {
		t.Fatal("too-few queries accepted")
	}
	if len(r.Table().Rows) != len(r.Bins) {
		t.Fatal("table shape")
	}
}

func TestChurnExperiment(t *testing.T) {
	// Sequential vs parallel sweeps must agree point for point (the churn
	// runs are scripted, so the determinism guarantee extends to them).
	// Paper-scale density: tiny()'s 25-node draws are sparse enough that
	// hub kills legitimately strand their whole subtree, which is exactly
	// what the experiment measures but not what this test asserts on.
	o := tiny()
	o.NumNodes = 50
	o.Workers = 1
	seq, err := Churn(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	par, err := Churn(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != len(churnKills) {
		t.Fatalf("%d points, want %d", len(seq.Points), len(churnKills))
	}
	for i := range seq.Points {
		if seq.Points[i] != par.Points[i] {
			t.Fatalf("point %d differs across worker counts:\nseq: %+v\npar: %+v",
				i, seq.Points[i], par.Points[i])
		}
	}
	if seq.Points[0].Kills != 0 || seq.Points[0].Repaired != 0 {
		t.Fatalf("baseline point has faults: %+v", seq.Points[0])
	}
	repaired := 0
	for _, p := range seq.Points[1:] {
		repaired += p.Repaired
	}
	if repaired == 0 {
		t.Fatal("no kill in the sweep was ever repaired")
	}
	if got := len(seq.Table().Rows); got != len(churnKills) {
		t.Fatalf("churn table has %d rows", got)
	}
}
