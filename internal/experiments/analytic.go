package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/flood"
	"repro/internal/radio"
	"repro/internal/topology"
)

// AnalyticRow extends the closed-form §5 cost row with a simulated
// flooding cross-check on an actual perfect k-ary tree.
type AnalyticRow struct {
	analytic.Row
	// SimFlood is the measured cost of flooding one query on the built
	// tree; it must equal CF exactly.
	SimFlood int64
	// SimCQDMax is the measured cost of directing one match-everything
	// query down the built tree with fresh range tables; it must equal
	// CQDmax exactly.
	SimCQDMax int64
}

// AnalyticResult reproduces §5: equations (3)-(8) over a (k, d) grid,
// including the worked example k=2, d=4 with fMax ≈ 0.76.
type AnalyticResult struct {
	Rows []AnalyticRow
}

// Analytic computes and cross-checks the cost model.
func Analytic(ks, ds []int) (*AnalyticResult, error) {
	rows, err := analytic.Table(ks, ds)
	if err != nil {
		return nil, err
	}
	res := &AnalyticResult{}
	for _, row := range rows {
		ar := AnalyticRow{Row: row}
		// Cross-check by simulation on trees small enough to build.
		if row.N <= 100000 {
			g, tree, err := topology.BuildKaryTree(row.K, row.D)
			if err != nil {
				return nil, err
			}
			ch := radio.NewChannel(g, radio.NewMeter(g.Len()))
			ar.SimFlood = flood.Disseminate(ch, topology.Root, nil).Cost.Total()
			ar.SimCQDMax = simulateWorstCaseDissemination(tree)
		}
		res.Rows = append(res.Rows, ar)
	}
	return res, nil
}

// simulateWorstCaseDissemination counts the §5.2 worst case directly on the
// tree: every internal node transmits once (one multicast covering all its
// children) and every non-root node receives once.
func simulateWorstCaseDissemination(tree *topology.Tree) int64 {
	var tx, rx int64
	for _, id := range tree.Nodes() {
		kids := tree.Children(id)
		if len(kids) > 0 {
			tx++
			rx += int64(len(kids))
		}
	}
	return tx + rx
}

// Table renders the §5 model with the simulation cross-check columns.
func (r *AnalyticResult) Table() *Table {
	t := &Table{
		Title: "Section 5: analytical cost model, equations (3)-(8), with simulation cross-check",
		Comment: "CF = flooding cost (eq. 4), CQDmax = worst-case directed dissemination (eq. 5),\n" +
			"CUDmax = worst-case update wave (eq. 6), fMax = max updates/query for DirQ < flooding (eq. 8).\n" +
			"sim_* columns are measured on an actually-built k-ary tree and must match exactly.\n" +
			"Paper's worked example: k=2, d=4 gives fMax = 0.767 (\"fMax < 0.76\" in the text's rounding).",
		Header: []string{"k", "d", "N", "CF", "sim_CF", "CQDmax", "sim_CQDmax", "CUDmax", "fMax", "CQD/CF"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.K), fmt.Sprintf("%d", row.D), d0(row.N),
			d0(row.CF), d0(row.SimFlood),
			d0(row.CQD), d0(row.SimCQDMax),
			d0(row.CUD), f3(row.FMax), f3(row.Ratio),
		})
	}
	return t
}
