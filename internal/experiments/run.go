package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/scenario"
)

// Known experiment identifiers.
const (
	IDFig5a    = "fig5a"
	IDFig5b    = "fig5b"
	IDFig6     = "fig6"
	IDFig7     = "fig7"
	IDAnalytic = "analytic"
	IDHeadline = "headline"
	IDLifetime = "lifetime"
	IDSeeds    = "seeds"
	IDSelect   = "selectivity"
)

// IDs returns the known experiment identifiers in canonical order.
func IDs() []string {
	return []string{IDFig5a, IDFig5b, IDFig6, IDFig7, IDAnalytic, IDHeadline, IDLifetime, IDSeeds, IDSelect}
}

// Run executes one experiment by id and returns its rendered table.
func Run(id string, o Options) (*Table, error) {
	switch id {
	case IDFig5a:
		r, err := Fig5(o, 0.4)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDFig5b:
		r, err := Fig5(o, 0.6)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDFig6:
		r, err := Fig6(o, 0.4)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDFig7:
		r, err := Fig7(o, 0.2)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDAnalytic:
		r, err := Analytic([]int{2, 3, 4, 8}, []int{1, 2, 3, 4})
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDHeadline:
		r, err := Headline(o)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDLifetime:
		r, err := Lifetime(o)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDSeeds:
		r, err := MultiSeed(o, scenario.ATC, 0.4, 5)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDSelect:
		r, err := Selectivity(o, 400)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	default:
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
}

// RunAll executes every experiment and renders each table to w.
func RunAll(o Options, w io.Writer) error {
	for _, id := range IDs() {
		t, err := Run(id, o)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
