package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/scenario"
)

// Known experiment identifiers.
const (
	IDFig5a    = "fig5a"
	IDFig5b    = "fig5b"
	IDFig6     = "fig6"
	IDFig7     = "fig7"
	IDAnalytic = "analytic"
	IDHeadline = "headline"
	IDLifetime = "lifetime"
	IDSeeds    = "seeds"
	IDSelect   = "selectivity"
	IDChurn    = "churn"
)

// IDs returns the known experiment identifiers in canonical order.
func IDs() []string {
	return []string{IDFig5a, IDFig5b, IDFig6, IDFig7, IDAnalytic, IDHeadline, IDLifetime, IDSeeds, IDSelect, IDChurn}
}

// Run executes one experiment by id and returns its rendered table.
func Run(id string, o Options) (*Table, error) {
	switch id {
	case IDFig5a:
		r, err := Fig5(o, 0.4)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDFig5b:
		r, err := Fig5(o, 0.6)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDFig6:
		r, err := Fig6(o, 0.4)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDFig7:
		r, err := Fig7(o, 0.2)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDAnalytic:
		r, err := Analytic([]int{2, 3, 4, 8}, []int{1, 2, 3, 4})
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDHeadline:
		r, err := Headline(o)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDLifetime:
		r, err := Lifetime(o)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDSeeds:
		r, err := MultiSeed(o, scenario.ATC, 0.4, 5)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDSelect:
		r, err := Selectivity(o, 400)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	case IDChurn:
		r, err := Churn(o)
		if err != nil {
			return nil, err
		}
		return r.Table(), nil
	default:
		known := IDs()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
}

// RunAll executes every experiment — whole experiments in parallel, each
// internally fanning its own runs out — and renders the tables to w in
// canonical IDs() order. A limiter shared across both pool levels keeps
// the number of simulations in flight at Options.Workers despite the
// nesting. Rendering streams: each table is written as soon as it and
// every table before it are done, and on failure the completed prefix has
// already reached w.
func RunAll(o Options, w io.Writer) error {
	o.sem = make(chan struct{}, o.workers())
	ids := IDs()
	tables := make([]*Table, len(ids))
	ready := make([]chan struct{}, len(ids))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	poolDone := make(chan error, 1)
	go func() {
		_, err := runJobs(ctx, o.workers(), len(ids),
			func(jobCtx context.Context, i int) (struct{}, error) {
				// Hand each experiment the pool's own cancellable context:
				// a sibling's failure then aborts this experiment's queued
				// leaf simulations too, not just unclaimed experiments.
				oi := o
				oi.ctx = jobCtx
				t, err := Run(ids[i], oi)
				if err != nil {
					return struct{}{}, fmt.Errorf("%s: %w", ids[i], err)
				}
				tables[i] = t
				close(ready[i])
				return struct{}{}, nil
			})
		poolDone <- err
	}()

	var poolErr error
	poolRunning := true
render:
	for i := range ids {
		if poolRunning {
			select {
			case <-ready[i]:
			case poolErr = <-poolDone:
				poolRunning = false
			}
		}
		if !poolRunning {
			// Pool already drained (possibly with an error): render the
			// contiguous completed prefix and stop at the first gap, so a
			// failure never yields out-of-sequence tables.
			select {
			case <-ready[i]:
			default:
				break render
			}
		}
		if err := tables[i].Render(w); err != nil {
			cancel()
			if poolRunning {
				<-poolDone
			}
			return err
		}
	}
	if poolRunning {
		poolErr = <-poolDone
	}
	return poolErr
}
