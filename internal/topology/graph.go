package topology

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// NodeID identifies a node. The root of the network is always node 0.
type NodeID int

// Root is the NodeID of the sink / root node.
const Root NodeID = 0

// Position is a 2-D coordinate in the deployment area (arbitrary units,
// typically metres).
type Position struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two positions.
func (p Position) Dist(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Graph is an undirected radio-connectivity graph over a fixed node set.
// Nodes are dense IDs 0..N-1. Edges are stored as sorted adjacency lists so
// iteration order (and thus every simulation) is deterministic.
type Graph struct {
	pos []Position
	adj [][]NodeID
}

// NewGraph creates a graph with the given node positions and no edges.
func NewGraph(pos []Position) *Graph {
	g := &Graph{
		pos: append([]Position(nil), pos...),
		adj: make([][]NodeID, len(pos)),
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.pos) }

// Pos returns the position of node id.
func (g *Graph) Pos(id NodeID) Position { return g.pos[id] }

// AddEdge inserts the undirected edge (a, b). Self-loops and duplicates are
// rejected with an error.
func (g *Graph) AddEdge(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on node %d", a)
	}
	if int(a) < 0 || int(a) >= len(g.pos) || int(b) < 0 || int(b) >= len(g.pos) {
		return fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", a, b, len(g.pos))
	}
	if g.HasEdge(a, b) {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
	}
	g.adj[a] = insertSorted(g.adj[a], b)
	g.adj[b] = insertSorted(g.adj[b], a)
	return nil
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b NodeID) bool {
	s := g.adj[a]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= b })
	return i < len(s) && s[i] == b
}

// Neighbors returns the sorted neighbor list of id. The returned slice must
// not be modified.
func (g *Graph) Neighbors(id NodeID) []NodeID { return g.adj[id] }

// Degree returns the number of neighbors of id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Connected reports whether every node is reachable from the root.
func (g *Graph) Connected() bool {
	if len(g.pos) == 0 {
		return true
	}
	return len(g.ReachableFrom(Root)) == len(g.pos)
}

// ReachableFrom returns the set of nodes reachable from start (inclusive)
// via BFS, in visit order.
func (g *Graph) ReachableFrom(start NodeID) []NodeID {
	seen := make([]bool, len(g.pos))
	seen[start] = true
	order := []NodeID{start}
	for i := 0; i < len(order); i++ {
		for _, nb := range g.adj[order[i]] {
			if !seen[nb] {
				seen[nb] = true
				order = append(order, nb)
			}
		}
	}
	return order
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.pos)
	for i, a := range g.adj {
		c.adj[i] = append([]NodeID(nil), a...)
	}
	return c
}

// RemoveNodeEdges detaches a node from the graph by deleting all its edges
// (the node itself stays, as dead sensors physically remain in place).
func (g *Graph) RemoveNodeEdges(id NodeID) {
	for _, nb := range g.adj[id] {
		g.adj[nb] = removeSorted(g.adj[nb], id)
	}
	g.adj[id] = nil
}

func removeSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// ConnectUnitDisk adds an edge between every pair of nodes within radio
// range r of each other. Nodes are counting-sorted into grid cells of
// side ≥ r so each node only examines its 3×3 cell neighborhood —
// O(N + edges) for bounded densities instead of the all-pairs O(N²),
// which is what makes 100k-node placement tractable. The adjacency is
// built CSR-style in two passes (count degrees, then fill one shared
// edge arena) so the whole build costs a handful of allocations rather
// than per-row sorted inserts; every row is sliced out of the arena with
// its own capacity, so later AddEdge/RemoveNodeEdges calls behave like
// independent slices. The edge set is exactly the all-pairs one and rows
// are sorted, so the graph is independent of discovery order.
//
// Must be called on an edge-free graph (as the placement helpers do).
func (g *Graph) ConnectUnitDisk(r float64) {
	n := len(g.pos)
	if n < 2 || r <= 0 {
		return
	}
	var w, h float64
	for _, p := range g.pos {
		if p.X > w {
			w = p.X
		}
		if p.Y > h {
			h = p.Y
		}
	}
	// Cell side ≥ r keeps the 3×3 neighborhood sufficient; the floor keeps
	// the cell count O(N) even when r is tiny relative to the area.
	cs := r
	if cells := (w/cs + 1) * (h/cs + 1); cells > float64(4*n+64) {
		cs = math.Sqrt((w + 1) * (h + 1) / float64(4*n+64))
		if cs < r {
			cs = r
		}
	}
	cols := int(w/cs) + 1
	rows := int(h/cs) + 1
	cellOf := make([]int32, n)
	cellStart := make([]int32, cols*rows+1)
	for i := 0; i < n; i++ {
		c := int32(int(g.pos[i].Y/cs)*cols + int(g.pos[i].X/cs))
		cellOf[i] = c
		cellStart[c+1]++
	}
	for c := 1; c <= cols*rows; c++ {
		cellStart[c] += cellStart[c-1]
	}
	cellNodes := make([]int32, n)
	cursor := make([]int32, cols*rows)
	for i := 0; i < n; i++ { // ascending i keeps each cell's list sorted
		c := cellOf[i]
		cellNodes[cellStart[c]+cursor[c]] = int32(i)
		cursor[c]++
	}
	// forEachPair visits every in-range pair (a, b) with a < b once.
	forEachPair := func(visit func(a, b int32)) {
		for a := 0; a < n; a++ {
			pa := g.pos[a]
			cx, cy := int(pa.X/cs), int(pa.Y/cs)
			for dy := -1; dy <= 1; dy++ {
				y := cy + dy
				if y < 0 || y >= rows {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					x := cx + dx
					if x < 0 || x >= cols {
						continue
					}
					c := y*cols + x
					for _, b := range cellNodes[cellStart[c]:cellStart[c+1]] {
						if int(b) > a && pa.Dist(g.pos[b]) <= r {
							visit(int32(a), b)
						}
					}
				}
			}
		}
	}
	deg := cursor // same length ≥ n is not guaranteed; reuse only if big enough
	if len(deg) < n {
		deg = make([]int32, n)
	} else {
		deg = deg[:n]
		for i := range deg {
			deg[i] = 0
		}
	}
	forEachPair(func(a, b int32) {
		deg[a]++
		deg[b]++
	})
	off := make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i+1] = off[i] + deg[i]
		deg[i] = 0 // becomes the fill cursor
	}
	arena := make([]NodeID, off[n])
	forEachPair(func(a, b int32) {
		arena[off[a]+deg[a]] = NodeID(b)
		deg[a]++
		arena[off[b]+deg[b]] = NodeID(a)
		deg[b]++
	})
	for i := 0; i < n; i++ {
		if off[i] == off[i+1] {
			continue // isolated node: keep the nil row
		}
		row := arena[off[i]:off[i+1]:off[i+1]]
		slices.Sort(row)
		g.adj[i] = row
	}
}
