package topology

import "fmt"

// KaryTreeSize returns the node count of a perfect k-ary tree of depth d
// (root at depth 0): (k^(d+1) - 1) / (k - 1), or d+1 when k == 1.
func KaryTreeSize(k, d int) (int, error) {
	if k < 1 || d < 0 {
		return 0, fmt.Errorf("topology: invalid k-ary parameters k=%d d=%d", k, d)
	}
	if k == 1 {
		return d + 1, nil
	}
	n := 1
	level := 1
	for i := 0; i < d; i++ {
		level *= k
		n += level
		if n < 0 {
			return 0, fmt.Errorf("topology: k=%d d=%d overflows int", k, d)
		}
	}
	return n, nil
}

// BuildKaryTree constructs a perfect k-ary tree of depth d together with a
// matching graph (edges exactly the tree edges). Node 0 is the root and IDs
// are assigned level by level, so node i's parent is (i-1)/k. Positions are
// laid out for display only. This is the topology used by the paper's §5
// analytical model, and the simulation cross-check of equations (3)-(8).
func BuildKaryTree(k, d int) (*Graph, *Tree, error) {
	n, err := KaryTreeSize(k, d)
	if err != nil {
		return nil, nil, err
	}
	pos := make([]Position, n)
	g := NewGraph(pos)
	t := NewTree(Root)
	for i := 1; i < n; i++ {
		parent := NodeID((i - 1) / k)
		if err := g.AddEdge(parent, NodeID(i)); err != nil {
			return nil, nil, err
		}
		if err := t.Attach(parent, NodeID(i)); err != nil {
			return nil, nil, err
		}
	}
	// Lay positions out by level for visualization and distance-based
	// data generation: depth -> Y, sibling index -> X.
	counts := map[int]int{}
	for _, id := range t.Nodes() {
		dep := t.Depth(id)
		g.pos[id] = Position{X: float64(counts[dep]) * 10, Y: float64(dep) * 10}
		counts[dep]++
	}
	return g, t, nil
}
