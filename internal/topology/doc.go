// Package topology models the physical layout and connectivity of a wireless
// sensor network: node placement, the unit-disk radio graph, and the
// spanning communication tree DirQ runs over.
//
// In the repo's layer map this is substrate, directly above sim: scenario
// deploys a placement and spanning tree here once per run, and radio, lmac
// and core all route over the graph and tree it produces (the paper's k-
// fan-out, d-depth tree of §5/§7).
package topology
