package topology

import (
	"fmt"
)

// Tree is a rooted spanning tree over (a subset of) a Graph's nodes. It is
// the communication structure DirQ maintains range tables over.
//
// All per-node state lives in flat slices indexed by NodeID: Contains,
// Parent and Depth sit on per-query hot paths (ground-truth resolution
// walks parent chains for every probe of the workload's width search),
// where a slice load beats a map lookup severalfold at large N — and a
// 100k-node build pays a handful of slice allocations instead of three
// maps' worth of per-entry churn.
type Tree struct {
	root  NodeID
	count int // nodes currently attached (root included)

	inTree    []bool     // membership, grown on demand
	parentArr []NodeID   // parent; -1 = root or detached
	depthArr  []int      // hop distance from root; -1 = detached
	childArr  [][]NodeID // sorted child lists
}

// NewTree returns a tree containing only the root.
func NewTree(root NodeID) *Tree {
	t := &Tree{root: root, count: 1}
	t.ensure(root)
	t.inTree[root] = true
	t.depthArr[root] = 0
	return t
}

// ensure grows the flat mirrors to cover id.
func (t *Tree) ensure(id NodeID) {
	for int(id) >= len(t.inTree) {
		t.inTree = append(t.inTree, false)
		t.parentArr = append(t.parentArr, -1)
		t.depthArr = append(t.depthArr, -1)
		t.childArr = append(t.childArr, nil)
	}
}

// Root returns the root node.
func (t *Tree) Root() NodeID { return t.root }

// Len returns the number of nodes currently in the tree (root included).
func (t *Tree) Len() int { return t.count }

// Contains reports whether id is attached to the tree.
func (t *Tree) Contains(id NodeID) bool {
	return id >= 0 && int(id) < len(t.inTree) && t.inTree[id]
}

// Parent returns the parent of id; ok is false for the root or a node not in
// the tree.
func (t *Tree) Parent(id NodeID) (NodeID, bool) {
	if id < 0 || int(id) >= len(t.parentArr) || t.parentArr[id] < 0 {
		return 0, false
	}
	return t.parentArr[id], true
}

// Children returns the sorted child list of id. The slice must not be
// modified by callers.
func (t *Tree) Children(id NodeID) []NodeID {
	if id < 0 || int(id) >= len(t.childArr) {
		return nil
	}
	return t.childArr[id]
}

// Depth returns the hop distance of id from the root; -1 if not in the tree.
func (t *Tree) Depth(id NodeID) int {
	if id < 0 || int(id) >= len(t.depthArr) {
		return -1
	}
	return t.depthArr[id]
}

// MaxDepth returns the deepest level in the tree (root = 0).
func (t *Tree) MaxDepth() int {
	max := 0
	for id, in := range t.inTree {
		if in && t.depthArr[id] > max {
			max = t.depthArr[id]
		}
	}
	return max
}

// Attach links child under parent. The parent must already be in the tree
// and the child must not be.
func (t *Tree) Attach(parent, child NodeID) error {
	if !t.Contains(parent) {
		return fmt.Errorf("topology: attach under %d which is not in the tree", parent)
	}
	if t.Contains(child) {
		return fmt.Errorf("topology: node %d is already in the tree", child)
	}
	t.ensure(child)
	t.childArr[parent] = insertSorted(t.childArr[parent], child)
	t.inTree[child] = true
	t.parentArr[child] = parent
	t.depthArr[child] = t.depthArr[parent] + 1
	t.count++
	return nil
}

// Detach removes a leaf or an entire subtree rooted at id from the tree and
// returns the removed node set (in BFS order, id first). Detaching the root
// is an error.
func (t *Tree) Detach(id NodeID) ([]NodeID, error) {
	if id == t.root {
		return nil, fmt.Errorf("topology: cannot detach the root")
	}
	if !t.Contains(id) {
		return nil, fmt.Errorf("topology: node %d is not in the tree", id)
	}
	removed := t.Subtree(id)
	p := t.parentArr[id]
	t.childArr[p] = removeSorted(t.childArr[p], id)
	for _, n := range removed {
		t.inTree[n] = false
		t.parentArr[n] = -1
		t.depthArr[n] = -1
		t.childArr[n] = t.childArr[n][:0]
	}
	t.count -= len(removed)
	return removed, nil
}

// Subtree returns id and all its descendants in BFS order.
func (t *Tree) Subtree(id NodeID) []NodeID {
	order := []NodeID{id}
	for i := 0; i < len(order); i++ {
		order = append(order, t.Children(order[i])...)
	}
	return order
}

// PathToRoot returns the node sequence from id up to and including the root.
func (t *Tree) PathToRoot(id NodeID) []NodeID {
	if !t.Contains(id) {
		return nil
	}
	path := []NodeID{id}
	for {
		p := t.parentArr[path[len(path)-1]]
		if p < 0 {
			return path
		}
		path = append(path, p)
	}
}

// Nodes returns all tree nodes in ascending ID order.
func (t *Tree) Nodes() []NodeID {
	out := make([]NodeID, 0, t.count)
	for id, in := range t.inTree {
		if in {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Leaves returns all leaf nodes in ascending ID order.
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	for id, in := range t.inTree {
		if in && len(t.childArr[id]) == 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// Validate checks the structural invariants: every non-root node has a
// parent in the tree, depths are parent+1, child lists match parent
// pointers, and there are no cycles.
func (t *Tree) Validate() error {
	for i, in := range t.inTree {
		if !in {
			continue
		}
		id := NodeID(i)
		d := t.depthArr[id]
		if id == t.root {
			if d != 0 {
				return fmt.Errorf("topology: root depth %d != 0", d)
			}
			if t.parentArr[id] >= 0 {
				return fmt.Errorf("topology: root has a parent")
			}
			continue
		}
		p := t.parentArr[id]
		if p < 0 {
			return fmt.Errorf("topology: node %d has no parent", id)
		}
		if !t.Contains(p) {
			return fmt.Errorf("topology: node %d's parent %d is not in the tree", id, p)
		}
		if d != t.depthArr[p]+1 {
			return fmt.Errorf("topology: node %d depth %d != parent depth %d + 1", id, d, t.depthArr[p])
		}
		found := false
		for _, c := range t.childArr[p] {
			if c == id {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("topology: node %d missing from parent %d's child list", id, p)
		}
	}
	// Cycle / reachability: BFS from root must reach exactly count nodes.
	if got := len(t.Subtree(t.root)); got != t.count {
		return fmt.Errorf("topology: %d nodes reachable from root, %d registered", got, t.count)
	}
	return nil
}

// BuildSpanningTree constructs a BFS spanning tree of g rooted at root with
// a fan-out cap (maximum children per node) and a depth cap. A node is
// attached to the shallowest already-attached radio neighbor that still has
// child capacity; ties break on smallest parent ID for determinism. Returns
// an error if the caps make full coverage impossible on this graph.
func BuildSpanningTree(g *Graph, root NodeID, maxFanout, maxDepth int) (*Tree, error) {
	if maxFanout < 1 {
		return nil, fmt.Errorf("topology: fan-out cap %d < 1", maxFanout)
	}
	if maxDepth < 1 {
		return nil, fmt.Errorf("topology: depth cap %d < 1", maxDepth)
	}
	t := NewTree(root)
	t.ensure(NodeID(g.Len() - 1))
	frontier := []NodeID{root}
	for len(frontier) > 0 {
		var next []NodeID
		for _, p := range frontier {
			if t.Depth(p) >= maxDepth {
				continue
			}
			for _, nb := range g.Neighbors(p) {
				if t.Contains(nb) || len(t.childArr[p]) >= maxFanout {
					continue
				}
				if err := t.Attach(p, nb); err != nil {
					return nil, err
				}
				next = append(next, nb)
			}
		}
		frontier = next
	}
	if t.Len() != g.Len() {
		return nil, fmt.Errorf("topology: spanning tree covers %d of %d nodes (fanout=%d depth=%d too tight)",
			t.Len(), g.Len(), maxFanout, maxDepth)
	}
	return t, nil
}

// ReattachOrphans reattaches the given detached nodes (e.g. the subtree of a
// dead node) to the tree using their radio neighbors, shallowest-parent
// first, respecting the fan-out and depth caps. Nodes whose radio neighbors
// are all detached or at capacity stay orphaned and are returned.
func ReattachOrphans(t *Tree, g *Graph, orphans []NodeID, maxFanout, maxDepth int) (attached, failed []NodeID) {
	pending := append([]NodeID(nil), orphans...)
	for progress := true; progress; {
		progress = false
		var still []NodeID
		for _, id := range pending {
			best := NodeID(-1)
			bestDepth := maxDepth + 1
			for _, nb := range g.Neighbors(id) {
				if !t.Contains(nb) {
					continue
				}
				d := t.Depth(nb)
				if d >= maxDepth || len(t.Children(nb)) >= maxFanout {
					continue
				}
				if d < bestDepth || (d == bestDepth && nb < best) {
					best, bestDepth = nb, d
				}
			}
			if best >= 0 {
				if err := t.Attach(best, id); err == nil {
					attached = append(attached, id)
					progress = true
					continue
				}
			}
			still = append(still, id)
		}
		pending = still
	}
	return attached, pending
}
