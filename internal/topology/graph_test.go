package topology

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPositionDist(t *testing.T) {
	a := Position{0, 0}
	b := Position{3, 4}
	if d := a.Dist(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("Dist to self = %v, want 0", d)
	}
}

func TestAddEdgeAndQueries(t *testing.T) {
	g := NewGraph(make([]Position, 4))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge (0,2)")
	}
	if g.EdgeCount() != 3 {
		t.Fatalf("EdgeCount = %d, want 3", g.EdgeCount())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func mustEdge(t *testing.T, g *Graph, a, b NodeID) {
	t.Helper()
	if err := g.AddEdge(a, b); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", a, b, err)
	}
}

func TestAddEdgeRejectsSelfLoop(t *testing.T) {
	g := NewGraph(make([]Position, 2))
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddEdgeRejectsDuplicate(t *testing.T) {
	g := NewGraph(make([]Position, 2))
	mustEdge(t, g, 0, 1)
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("reversed duplicate edge accepted")
	}
}

func TestAddEdgeRejectsOutOfRange(t *testing.T) {
	g := NewGraph(make([]Position, 2))
	if err := g.AddEdge(0, 5); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative node edge accepted")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph(make([]Position, 5))
	mustEdge(t, g, 2, 4)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 2, 1)
	nb := g.Neighbors(2)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph(make([]Position, 4))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	if g.Connected() {
		t.Fatal("graph with isolated node 3 reported connected")
	}
	mustEdge(t, g, 2, 3)
	if !g.Connected() {
		t.Fatal("connected path graph reported disconnected")
	}
}

func TestConnectedEmptyAndSingle(t *testing.T) {
	if !NewGraph(nil).Connected() {
		t.Fatal("empty graph should be trivially connected")
	}
	if !NewGraph(make([]Position, 1)).Connected() {
		t.Fatal("single-node graph should be connected")
	}
}

func TestReachableFrom(t *testing.T) {
	g := NewGraph(make([]Position, 5))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	r := g.ReachableFrom(0)
	if len(r) != 3 {
		t.Fatalf("ReachableFrom(0) = %v, want 3 nodes", r)
	}
	if r[0] != 0 {
		t.Fatalf("BFS order should start at the start node, got %v", r)
	}
}

func TestRemoveNodeEdges(t *testing.T) {
	g := NewGraph(make([]Position, 4))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 3)
	g.RemoveNodeEdges(1)
	if g.Degree(1) != 0 {
		t.Fatalf("dead node still has %d edges", g.Degree(1))
	}
	if g.HasEdge(0, 1) || g.HasEdge(2, 1) || g.HasEdge(3, 1) {
		t.Fatal("neighbors still see edges to the removed node")
	}
	if g.EdgeCount() != 0 {
		t.Fatalf("EdgeCount = %d, want 0", g.EdgeCount())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewGraph(make([]Position, 3))
	mustEdge(t, g, 0, 1)
	c := g.Clone()
	mustEdge(t, c, 1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating the clone changed the original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatal("clone lost an edge")
	}
}

func TestConnectUnitDisk(t *testing.T) {
	pos := []Position{{0, 0}, {1, 0}, {2.5, 0}, {10, 10}}
	g := NewGraph(pos)
	g.ConnectUnitDisk(1.6)
	if !g.HasEdge(0, 1) {
		t.Fatal("nodes 1 apart not connected with range 1.6")
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("nodes 1.5 apart not connected with range 1.6")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("nodes 2.5 apart connected with range 1.6")
	}
	if g.Degree(3) != 0 {
		t.Fatal("far node gained edges")
	}
}

func TestPlaceRandomConnected(t *testing.T) {
	rng := sim.NewRNG(1)
	for seed := 0; seed < 5; seed++ {
		g, err := PlaceRandom(DefaultPlacement(), rng.StreamN("place", seed))
		if err != nil {
			t.Fatalf("PlaceRandom: %v", err)
		}
		if g.Len() != 50 {
			t.Fatalf("node count %d, want 50", g.Len())
		}
		if !g.Connected() {
			t.Fatal("PlaceRandom returned a disconnected graph")
		}
	}
}

func TestPlaceRandomDeterministic(t *testing.T) {
	a, err := PlaceRandom(DefaultPlacement(), sim.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceRandom(DefaultPlacement(), sim.NewRNG(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.Pos(NodeID(i)) != b.Pos(NodeID(i)) {
			t.Fatalf("node %d placed differently for identical seeds", i)
		}
	}
	if a.EdgeCount() != b.EdgeCount() {
		t.Fatal("edge sets differ for identical seeds")
	}
}

func TestPlaceRandomValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := PlaceRandom(PlacementConfig{N: 0, Width: 10, Height: 10, RadioRange: 5}, rng); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := PlaceRandom(PlacementConfig{N: 5, Width: -1, Height: 10, RadioRange: 5}, rng); err == nil {
		t.Fatal("negative width accepted")
	}
	if _, err := PlaceRandom(PlacementConfig{N: 5, Width: 10, Height: 10, RadioRange: 0}, rng); err == nil {
		t.Fatal("zero radio range accepted")
	}
}

func TestPlaceRandomSparseRangeStillTerminates(t *testing.T) {
	// Tiny radio range forces the range-growing fallback.
	cfg := PlacementConfig{N: 20, Width: 100, Height: 100, RadioRange: 1, MaxAttempts: 2}
	g, err := PlaceRandom(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("fallback still produced a disconnected graph")
	}
}

func TestPlaceGrid(t *testing.T) {
	g, err := PlaceGrid(4, 10, 10.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 16 {
		t.Fatalf("grid node count %d, want 16", g.Len())
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
	// Interior node has 4 neighbors with range just over spacing.
	if d := g.Degree(5); d != 4 {
		t.Fatalf("interior grid degree %d, want 4", d)
	}
}

func TestPlaceGridErrors(t *testing.T) {
	if _, err := PlaceGrid(0, 1, 1); err == nil {
		t.Fatal("grid n=0 accepted")
	}
	if _, err := PlaceGrid(3, 10, 5); err == nil {
		t.Fatal("disconnected grid (range < spacing) accepted")
	}
}

func TestPlaceLine(t *testing.T) {
	g, err := PlaceLine(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 9 {
		t.Fatalf("line edges %d, want 9", g.EdgeCount())
	}
	if g.Degree(0) != 1 || g.Degree(5) != 2 {
		t.Fatal("line degrees wrong")
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if !r.Valid() {
		t.Fatal("valid rect rejected")
	}
	if (Rect{MinX: 5, MaxX: 1}).Valid() {
		t.Fatal("inverted rect accepted")
	}
	if !r.Contains(Position{5, 5}) || !r.Contains(Position{0, 10}) {
		t.Fatal("Contains broken on interior/boundary")
	}
	if r.Contains(Position{11, 5}) || r.Contains(Position{5, -1}) {
		t.Fatal("Contains accepts exterior")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{5, 5, 15, 15}, true},
		{Rect{10, 10, 20, 20}, true}, // touching corner
		{Rect{11, 0, 20, 10}, false},
		{Rect{0, 11, 10, 20}, false},
		{Rect{2, 2, 3, 3}, true}, // contained
	}
	for _, c := range cases {
		if a.Intersects(c.b) != c.want || c.b.Intersects(a) != c.want {
			t.Fatalf("Intersects(%v, %v) != %v", a, c.b, c.want)
		}
	}
}

func TestRectUnionAndAround(t *testing.T) {
	a := RectAround(Position{3, 4})
	if a.MinX != 3 || a.MaxY != 4 {
		t.Fatalf("RectAround %+v", a)
	}
	u := a.Union(RectAround(Position{-1, 10}))
	want := Rect{MinX: -1, MinY: 4, MaxX: 3, MaxY: 10}
	if u != want {
		t.Fatalf("Union = %+v, want %+v", u, want)
	}
	if u.String() == "" {
		t.Fatal("empty String")
	}
}
