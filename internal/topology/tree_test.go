package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func buildSimpleTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree(0)
	attach := func(p, c NodeID) {
		t.Helper()
		if err := tr.Attach(p, c); err != nil {
			t.Fatalf("Attach(%d,%d): %v", p, c, err)
		}
	}
	//        0
	//      / | \
	//     1  2  3
	//    / \     \
	//   4   5     6
	attach(0, 1)
	attach(0, 2)
	attach(0, 3)
	attach(1, 4)
	attach(1, 5)
	attach(3, 6)
	return tr
}

func TestTreeBasics(t *testing.T) {
	tr := buildSimpleTree(t)
	if tr.Root() != 0 {
		t.Fatalf("Root = %d", tr.Root())
	}
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	if d := tr.Depth(4); d != 2 {
		t.Fatalf("Depth(4) = %d, want 2", d)
	}
	if d := tr.Depth(99); d != -1 {
		t.Fatalf("Depth of absent node = %d, want -1", d)
	}
	if tr.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d, want 2", tr.MaxDepth())
	}
	if p, ok := tr.Parent(6); !ok || p != 3 {
		t.Fatalf("Parent(6) = %d,%v want 3,true", p, ok)
	}
	if _, ok := tr.Parent(0); ok {
		t.Fatal("root has a parent")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestTreeChildrenSorted(t *testing.T) {
	tr := NewTree(0)
	for _, c := range []NodeID{5, 2, 9, 1} {
		if err := tr.Attach(0, c); err != nil {
			t.Fatal(err)
		}
	}
	ch := tr.Children(0)
	for i := 1; i < len(ch); i++ {
		if ch[i-1] >= ch[i] {
			t.Fatalf("children not sorted: %v", ch)
		}
	}
}

func TestAttachErrors(t *testing.T) {
	tr := buildSimpleTree(t)
	if err := tr.Attach(42, 7); err == nil {
		t.Fatal("attach under absent parent accepted")
	}
	if err := tr.Attach(0, 4); err == nil {
		t.Fatal("re-attaching an existing node accepted")
	}
}

func TestDetachLeaf(t *testing.T) {
	tr := buildSimpleTree(t)
	removed, err := tr.Detach(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != 6 {
		t.Fatalf("removed %v, want [6]", removed)
	}
	if tr.Contains(6) {
		t.Fatal("detached node still present")
	}
	if len(tr.Children(3)) != 0 {
		t.Fatal("parent still lists detached child")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after detach: %v", err)
	}
}

func TestDetachSubtree(t *testing.T) {
	tr := buildSimpleTree(t)
	removed, err := tr.Detach(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %v, want nodes 1,4,5", removed)
	}
	if removed[0] != 1 {
		t.Fatalf("subtree root should be first in removal order, got %v", removed)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len after subtree detach = %d, want 4", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDetachErrors(t *testing.T) {
	tr := buildSimpleTree(t)
	if _, err := tr.Detach(0); err == nil {
		t.Fatal("detaching root accepted")
	}
	if _, err := tr.Detach(42); err == nil {
		t.Fatal("detaching absent node accepted")
	}
}

func TestPathToRoot(t *testing.T) {
	tr := buildSimpleTree(t)
	p := tr.PathToRoot(4)
	want := []NodeID{4, 1, 0}
	if len(p) != len(want) {
		t.Fatalf("PathToRoot(4) = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("PathToRoot(4) = %v, want %v", p, want)
		}
	}
	if got := tr.PathToRoot(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("PathToRoot(root) = %v", got)
	}
	if got := tr.PathToRoot(99); got != nil {
		t.Fatalf("PathToRoot(absent) = %v, want nil", got)
	}
}

func TestLeaves(t *testing.T) {
	tr := buildSimpleTree(t)
	leaves := tr.Leaves()
	want := map[NodeID]bool{2: true, 4: true, 5: true, 6: true}
	if len(leaves) != len(want) {
		t.Fatalf("Leaves = %v", leaves)
	}
	for _, l := range leaves {
		if !want[l] {
			t.Fatalf("unexpected leaf %d", l)
		}
	}
}

func TestBuildSpanningTreeOnGrid(t *testing.T) {
	g, err := PlaceGrid(5, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BuildSpanningTree(g, Root, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != g.Len() {
		t.Fatalf("tree covers %d of %d nodes", tr.Len(), g.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every tree edge must be a radio edge.
	for _, id := range tr.Nodes() {
		if p, ok := tr.Parent(id); ok && !g.HasEdge(id, p) {
			t.Fatalf("tree edge (%d,%d) is not a radio link", id, p)
		}
	}
}

func TestBuildSpanningTreeRespectsFanout(t *testing.T) {
	// Star graph: root connected to 9 others; fanout 3 and depth 1 cannot
	// cover it, fanout 9 can.
	g := NewGraph(make([]Position, 10))
	for i := 1; i < 10; i++ {
		mustEdge(t, g, 0, NodeID(i))
	}
	if _, err := BuildSpanningTree(g, Root, 3, 1); err == nil {
		t.Fatal("impossible caps accepted")
	}
	tr, err := BuildSpanningTree(g, Root, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Children(0)) != 9 {
		t.Fatalf("root children %d, want 9", len(tr.Children(0)))
	}
}

func TestBuildSpanningTreeRespectsDepth(t *testing.T) {
	g, err := PlaceLine(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSpanningTree(g, Root, 8, 3); err == nil {
		t.Fatal("line of depth 5 covered with depth cap 3")
	}
	tr, err := BuildSpanningTree(g, Root, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDepth() != 5 {
		t.Fatalf("MaxDepth = %d, want 5", tr.MaxDepth())
	}
}

func TestBuildSpanningTreeBadParams(t *testing.T) {
	g, _ := PlaceLine(3, 1)
	if _, err := BuildSpanningTree(g, Root, 0, 5); err == nil {
		t.Fatal("fanout 0 accepted")
	}
	if _, err := BuildSpanningTree(g, Root, 5, 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
}

func TestReattachOrphans(t *testing.T) {
	// Grid where we detach a subtree then reattach via other radio links.
	g, err := PlaceGrid(4, 10, 15)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := BuildSpanningTree(g, Root, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Kill node 1's subtree association by detaching it.
	victim := tr.Children(Root)[0]
	removed, err := tr.Detach(victim)
	if err != nil {
		t.Fatal(err)
	}
	// The victim node itself died: its edges go away, others reattach.
	g.RemoveNodeEdges(victim)
	orphans := removed[1:]
	attached, failed := ReattachOrphans(tr, g, orphans, 4, 8)
	if len(failed) != 0 {
		t.Fatalf("orphans failed to reattach on a dense grid: %v", failed)
	}
	if len(attached) != len(orphans) {
		t.Fatalf("attached %d of %d orphans", len(attached), len(orphans))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after reattach: %v", err)
	}
}

func TestReattachOrphansImpossible(t *testing.T) {
	g, _ := PlaceLine(3, 1) // 0-1-2
	tr, err := BuildSpanningTree(g, Root, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := tr.Detach(1)
	if err != nil {
		t.Fatal(err)
	}
	g.RemoveNodeEdges(1)
	// Node 2's only path was through node 1; it cannot reattach.
	_, failed := ReattachOrphans(tr, g, removed[1:], 2, 4)
	if len(failed) != 1 || failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", failed)
	}
}

// Property: spanning trees over random connected graphs always satisfy the
// structural invariants and honor the caps.
func TestPropertySpanningTreeInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := PlacementConfig{N: 30, Width: 80, Height: 80, RadioRange: 30}
		g, err := PlaceRandom(cfg, rng)
		if err != nil {
			return false
		}
		tr, err := BuildSpanningTree(g, Root, 8, 10)
		if err != nil {
			// Caps can be too tight for some draws; that is a clean error,
			// not an invariant violation.
			return true
		}
		if tr.Validate() != nil || tr.Len() != g.Len() {
			return false
		}
		for _, id := range tr.Nodes() {
			if len(tr.Children(id)) > 8 || tr.Depth(id) > 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
