package topology

import (
	"testing"

	"repro/internal/sim"
)

// TestConnectUnitDiskAllocBound pins the CSR adjacency build to a handful
// of allocations regardless of node count: grid buckets, the offset
// table, and one shared edge arena. Measured 9 allocations at 5000 nodes
// when the two-pass builder landed (PR 10); the per-row sorted-insert
// construction it replaced allocated per edge, so any slide back toward
// per-row growth blows this ceiling immediately.
func TestConnectUnitDiskAllocBound(t *testing.T) {
	const n = 5000
	rng := sim.NewRNG(7).Stream("place")
	g, err := PlaceRandom(PlacementConfig{
		N: n, Width: 1000, Height: 1000, RadioRange: 25,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]Position, g.Len())
	for i := range pos {
		pos[i] = g.Pos(NodeID(i))
	}
	allocs := testing.AllocsPerRun(3, func() {
		fresh := NewGraph(pos)
		fresh.ConnectUnitDisk(25)
	})
	const ceiling = 64
	if allocs > ceiling {
		t.Fatalf("NewGraph+ConnectUnitDisk at %d nodes: %.0f allocs, ceiling %d", n, allocs, ceiling)
	}
	t.Logf("NewGraph+ConnectUnitDisk at %d nodes: %.0f allocs (ceiling %d)", n, allocs, ceiling)
}
