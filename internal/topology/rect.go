package topology

import "fmt"

// Rect is an axis-aligned rectangle in deployment coordinates, used for
// location-constrained queries (the paper notes DirQ can route on location
// "if it is available" — a static attribute).
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Valid reports whether the rectangle is non-degenerate.
func (r Rect) Valid() bool { return r.MaxX >= r.MinX && r.MaxY >= r.MinY }

// Contains reports whether p lies inside the rectangle (closed bounds).
func (r Rect) Contains(p Position) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersects reports whether two rectangles overlap (closed bounds).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle covering both.
func (r Rect) Union(o Rect) Rect {
	out := r
	if o.MinX < out.MinX {
		out.MinX = o.MinX
	}
	if o.MinY < out.MinY {
		out.MinY = o.MinY
	}
	if o.MaxX > out.MaxX {
		out.MaxX = o.MaxX
	}
	if o.MaxY > out.MaxY {
		out.MaxY = o.MaxY
	}
	return out
}

// RectAround returns the degenerate rectangle covering one point.
func RectAround(p Position) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// String renders the rectangle.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f]x[%.1f,%.1f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
