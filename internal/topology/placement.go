package topology

import (
	"fmt"

	"repro/internal/sim"
)

// PlacementConfig controls random node placement.
type PlacementConfig struct {
	// N is the total node count including the root.
	N int
	// Width and Height are the deployment-area dimensions.
	Width, Height float64
	// RadioRange is the unit-disk communication radius.
	RadioRange float64
	// MaxAttempts bounds connectivity-repair retries before increasing the
	// radio range. Zero means a sensible default.
	MaxAttempts int
}

// DefaultPlacement mirrors the paper's 50-node scenario: 50 nodes in a
// 100x100 area with a radio range that yields a multihop topology.
func DefaultPlacement() PlacementConfig {
	return PlacementConfig{N: 50, Width: 100, Height: 100, RadioRange: 25}
}

// PlaceRandom scatters cfg.N nodes uniformly in the deployment area (the
// root in the centre of the top edge, as a sink typically sits at the field
// boundary) and connects nodes within radio range. If the resulting graph is
// disconnected it re-draws positions; after MaxAttempts it grows the radio
// range by 10% and keeps trying, so it always terminates with a connected
// multihop graph.
func PlaceRandom(cfg PlacementConfig, rng *sim.RNG) (*Graph, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", cfg.N)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.RadioRange <= 0 {
		return nil, fmt.Errorf("topology: non-positive area or range (%v x %v, r=%v)",
			cfg.Width, cfg.Height, cfg.RadioRange)
	}
	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 50
	}
	r := cfg.RadioRange
	for {
		for try := 0; try < attempts; try++ {
			pos := make([]Position, cfg.N)
			pos[Root] = Position{X: cfg.Width / 2, Y: 0} // sink at the field edge
			for i := 1; i < cfg.N; i++ {
				pos[i] = Position{X: rng.Range(0, cfg.Width), Y: rng.Range(0, cfg.Height)}
			}
			g := NewGraph(pos)
			g.ConnectUnitDisk(r)
			if g.Connected() {
				return g, nil
			}
		}
		r *= 1.1
	}
}

// PlaceGrid lays out n*n nodes on a regular grid with the given spacing and
// connects nodes within radio range. The root is the corner node. Useful for
// reproducible structured topologies in tests.
func PlaceGrid(n int, spacing, radioRange float64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: grid dimension %d < 1", n)
	}
	if spacing <= 0 || radioRange <= 0 {
		return nil, fmt.Errorf("topology: non-positive spacing %v or range %v", spacing, radioRange)
	}
	pos := make([]Position, n*n)
	for row := 0; row < n; row++ {
		for col := 0; col < n; col++ {
			pos[row*n+col] = Position{X: float64(col) * spacing, Y: float64(row) * spacing}
		}
	}
	g := NewGraph(pos)
	g.ConnectUnitDisk(radioRange)
	if !g.Connected() {
		return nil, fmt.Errorf("topology: grid with spacing %v and range %v is disconnected", spacing, radioRange)
	}
	return g, nil
}

// PlaceLine lays out n nodes on a line with the given spacing, each
// connected to its immediate neighbors. Produces a maximally deep topology.
func PlaceLine(n int, spacing float64) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: line length %d < 1", n)
	}
	pos := make([]Position, n)
	for i := range pos {
		pos[i] = Position{X: float64(i) * spacing}
	}
	g := NewGraph(pos)
	g.ConnectUnitDisk(spacing * 1.01)
	return g, nil
}
