package topology

import "testing"

func TestKaryTreeSize(t *testing.T) {
	cases := []struct {
		k, d, want int
	}{
		{2, 0, 1},
		{2, 1, 3},
		{2, 4, 31},
		{3, 2, 13},
		{8, 2, 73},
		{1, 5, 6},
	}
	for _, c := range cases {
		got, err := KaryTreeSize(c.k, c.d)
		if err != nil {
			t.Fatalf("KaryTreeSize(%d,%d): %v", c.k, c.d, err)
		}
		if got != c.want {
			t.Fatalf("KaryTreeSize(%d,%d) = %d, want %d", c.k, c.d, got, c.want)
		}
	}
}

func TestKaryTreeSizeErrors(t *testing.T) {
	if _, err := KaryTreeSize(0, 3); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KaryTreeSize(2, -1); err == nil {
		t.Fatal("d=-1 accepted")
	}
}

func TestBuildKaryTreeStructure(t *testing.T) {
	g, tr, err := BuildKaryTree(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 31 || tr.Len() != 31 {
		t.Fatalf("sizes g=%d tr=%d, want 31", g.Len(), tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.MaxDepth() != 4 {
		t.Fatalf("MaxDepth = %d, want 4", tr.MaxDepth())
	}
	// Every internal node has exactly k children.
	for _, id := range tr.Nodes() {
		ch := len(tr.Children(id))
		if tr.Depth(id) < 4 && ch != 2 {
			t.Fatalf("internal node %d has %d children, want 2", id, ch)
		}
		if tr.Depth(id) == 4 && ch != 0 {
			t.Fatalf("leaf %d has children", id)
		}
	}
	// Graph edges exactly match tree edges.
	if g.EdgeCount() != 30 {
		t.Fatalf("EdgeCount = %d, want 30", g.EdgeCount())
	}
	// Leaf count is k^d.
	if leaves := tr.Leaves(); len(leaves) != 16 {
		t.Fatalf("leaf count %d, want 16", len(leaves))
	}
}

func TestBuildKaryTreeDegenerate(t *testing.T) {
	g, tr, err := BuildKaryTree(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 || tr.MaxDepth() != 4 {
		t.Fatalf("1-ary: len=%d depth=%d", g.Len(), tr.MaxDepth())
	}
	_, tr0, err := BuildKaryTree(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr0.Len() != 1 {
		t.Fatalf("depth-0 tree has %d nodes", tr0.Len())
	}
}
