package topology

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func buildTestTree(t *testing.T, seed uint64, n int) (*Graph, *Tree) {
	t.Helper()
	rng := sim.NewRNG(seed)
	g, err := PlaceRandom(PlacementConfig{N: n, Width: 120, Height: 120, RadioRange: 25}, rng)
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	tree, err := BuildSpanningTree(g, Root, 6, 40)
	if err != nil {
		t.Fatalf("spanning tree: %v", err)
	}
	return g, tree
}

// TestPartitionSubtreesPure pins the partition as a pure function of
// (topology, K): repeated calls agree, and an independently rebuilt
// identical tree partitions identically.
func TestPartitionSubtreesPure(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		_, tree := buildTestTree(t, seed, 80)
		for _, k := range []int{1, 2, 4, 7} {
			a := PartitionSubtrees(tree, 80, k)
			b := PartitionSubtrees(tree, 80, k)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d k=%d: repeated partition differs", seed, k)
			}
			_, tree2 := buildTestTree(t, seed, 80)
			c := PartitionSubtrees(tree2, 80, k)
			if !reflect.DeepEqual(a, c) {
				t.Fatalf("seed %d k=%d: rebuilt-tree partition differs", seed, k)
			}
		}
	}
}

// TestPartitionSubtreesInvariants checks the structural contract: the
// root on shard 0, every index in range, non-tree nodes at id %% k, and
// no shard left empty on a tree big enough to feed all of them.
func TestPartitionSubtreesInvariants(t *testing.T) {
	const n = 120
	_, tree := buildTestTree(t, 42, n)
	for _, k := range []int{2, 3, 4, 7} {
		assign := PartitionSubtrees(tree, n+10, k) // 10 ids beyond the tree
		if len(assign) != n+10 {
			t.Fatalf("k=%d: len %d, want %d", k, len(assign), n+10)
		}
		if assign[Root] != 0 {
			t.Fatalf("k=%d: root on shard %d, want 0", k, assign[Root])
		}
		seen := make([]int, k)
		for id, s := range assign {
			if s < 0 || int(s) >= k {
				t.Fatalf("k=%d: node %d on out-of-range shard %d", k, id, s)
			}
			if id >= n {
				if int(s) != id%k {
					t.Fatalf("k=%d: non-tree node %d on shard %d, want %d", k, id, s, id%k)
				}
				continue
			}
			seen[s]++
		}
		for s, c := range seen {
			if c == 0 {
				t.Fatalf("k=%d: shard %d empty (loads %v)", k, s, seen)
			}
		}
	}
}

// TestPartitionSubtreesKeepsParentsClose checks the subtree property:
// any node whose parent is not the root shares its parent's shard,
// unless the node roots its own unit — in which case its whole unit
// moved together, which we approximate by checking each child of a
// differently-sharded node heads a subtree (has its own descendants
// entirely in its shard).
func TestPartitionSubtreesKeepsParentsClose(t *testing.T) {
	const n = 150
	_, tree := buildTestTree(t, 11, n)
	for _, k := range []int{2, 4} {
		assign := PartitionSubtrees(tree, n, k)
		for id := 0; id < n; id++ {
			nid := NodeID(id)
			if !tree.Contains(nid) || nid == Root {
				continue
			}
			p, _ := tree.Parent(nid)
			if assign[id] == assign[p] {
				continue
			}
			// A shard boundary: id must be a unit root, so every
			// descendant of id either shares id's shard or heads its own
			// deeper boundary. At minimum, leaves under id that hit no
			// further boundary must match some shard consistently — check
			// the weaker invariant that id's unit is non-empty and
			// self-consistent via its first child chain.
			for _, c := range tree.Children(nid) {
				sub := tree.Subtree(c)
				first := assign[sub[0]]
				consistent := true
				for _, d := range sub {
					if assign[d] != first {
						consistent = false
						break
					}
				}
				if !consistent {
					// c's subtree itself is split further; that is legal
					// only when c's own children were re-queued, i.e. c
					// has children.
					if len(tree.Children(c)) == 0 {
						t.Fatalf("k=%d: leaf %d split from its subtree", k, c)
					}
				}
			}
		}
	}
}

// TestPartitionSubtreesBalance sanity-checks the LPT packing: no shard
// should hold more than ~2x its fair share on a well-branched tree.
func TestPartitionSubtreesBalance(t *testing.T) {
	const n = 400
	_, tree := buildTestTree(t, 5, n)
	for _, k := range []int{2, 4} {
		assign := PartitionSubtrees(tree, n, k)
		load := make([]int, k)
		for id := 0; id < n; id++ {
			if tree.Contains(NodeID(id)) {
				load[assign[id]]++
			}
		}
		fair := float64(tree.Len()) / float64(k)
		for s, c := range load {
			if float64(c) > math.Ceil(fair*2)+1 {
				t.Fatalf("k=%d: shard %d holds %d nodes, fair share %.1f (loads %v)",
					k, s, c, fair, load)
			}
		}
	}
}

// TestConnectUnitDiskMatchesBruteForce pins the grid-bucket
// implementation to the all-pairs definition across random layouts.
func TestConnectUnitDiskMatchesBruteForce(t *testing.T) {
	for _, seed := range []uint64{3, 17, 2026} {
		rng := sim.NewRNG(seed)
		const n = 300
		pos := make([]Position, n)
		for i := range pos {
			pos[i] = Position{X: rng.Range(0, 150), Y: rng.Range(0, 150)}
		}
		for _, r := range []float64{5, 22, 80} {
			fast := NewGraph(pos)
			fast.ConnectUnitDisk(r)
			slow := NewGraph(pos)
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if slow.pos[a].Dist(slow.pos[b]) <= r {
						if err := slow.AddEdge(NodeID(a), NodeID(b)); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if !reflect.DeepEqual(fast.adj, slow.adj) {
				t.Fatalf("seed %d r=%v: grid-bucket adjacency differs from brute force", seed, r)
			}
		}
	}
}
