package topology

import "sort"

// PartitionSubtrees carves the tree into k shards of near-equal node
// count, keeping each shard a union of whole subtrees. It returns a
// per-node shard index for every id in [0, n): the root always lands on
// shard 0, every other tree node inherits its subtree unit's shard, and
// nodes outside the tree get id % k (so late joiners have a stable home).
//
// The assignment is a pure function of (tree structure, n, k): unit
// discovery walks sorted child lists, oversized units split
// deterministically, and the greedy bin-pack breaks every tie toward the
// lower unit root / lower shard index. Calling it twice on equal trees
// yields equal slices.
func PartitionSubtrees(t *Tree, n, k int) []int32 {
	assign := make([]int32, n)
	if k <= 1 {
		return assign
	}
	for id := range assign {
		assign[id] = int32(id % k)
	}

	// Target unit size: no unit may exceed ceil(len/k), or one shard
	// would dominate no matter how the rest are packed.
	maxUnit := (t.Len() + k - 1) / k

	type unit struct {
		root NodeID
		size int
	}
	var units []unit
	singleton := make(map[NodeID]bool)

	// Candidate units start as the root's child subtrees. An oversized
	// candidate is split: its root becomes a singleton unit and each of
	// its (sorted) children becomes a new candidate.
	queue := append([]NodeID(nil), t.Children(t.root)...)
	for i := 0; i < len(queue); i++ {
		c := queue[i]
		size := len(t.Subtree(c))
		if size > maxUnit && len(t.Children(c)) > 0 {
			singleton[c] = true
			units = append(units, unit{root: c, size: 1})
			queue = append(queue, t.Children(c)...)
			continue
		}
		units = append(units, unit{root: c, size: size})
	}

	// Longest-processing-time bin-pack: biggest unit first onto the
	// least-loaded shard. The root is pinned to shard 0 and counts
	// toward its load.
	sort.Slice(units, func(i, j int) bool {
		if units[i].size != units[j].size {
			return units[i].size > units[j].size
		}
		return units[i].root < units[j].root
	})
	load := make([]int, k)
	load[0] = 1 // the root
	assign[t.root] = 0
	for _, u := range units {
		best := 0
		for s := 1; s < k; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		load[best] += u.size
		if singleton[u.root] {
			assign[u.root] = int32(best)
			continue
		}
		for _, id := range t.Subtree(u.root) {
			assign[id] = int32(best)
		}
	}
	return assign
}
