package dirq

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFacadeQuickRun(t *testing.T) {
	cfg := DefaultScenario()
	cfg.NumNodes = 20
	cfg.Epochs = 600
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesInjected == 0 {
		t.Fatal("no queries")
	}
	if res.CostFraction <= 0 || res.CostFraction >= 1 {
		t.Fatalf("cost fraction %v", res.CostFraction)
	}
}

func TestFacadeATCMode(t *testing.T) {
	cfg := DefaultScenario()
	cfg.NumNodes = 20
	cfg.Epochs = 800
	cfg.Mode = ATC
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateCost.Tx == 0 {
		t.Fatal("ATC run produced no updates")
	}
}

func TestFacadeBuild(t *testing.T) {
	cfg := DefaultScenario()
	cfg.NumNodes = 15
	cfg.Epochs = 300
	r, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tree.Len() != 15 {
		t.Fatalf("tree size %d", r.Tree.Len())
	}
	res := r.Run()
	if res.QueriesInjected == 0 {
		t.Fatal("built runner produced nothing")
	}
}

func TestFacadeAnalytic(t *testing.T) {
	cf, err := CFTotal(2, 4)
	if err != nil || cf != 91 {
		t.Fatalf("CFTotal(2,4) = %d, %v", cf, err)
	}
	cqd, err := CQDMax(2, 4)
	if err != nil || cqd != 45 {
		t.Fatalf("CQDMax(2,4) = %d, %v", cqd, err)
	}
	cud, err := CUDMax(2, 4)
	if err != nil || cud != 60 {
		t.Fatalf("CUDMax(2,4) = %d, %v", cud, err)
	}
	fmax, err := FMax(2, 4)
	if err != nil || math.Abs(fmax-46.0/60.0) > 1e-12 {
		t.Fatalf("FMax(2,4) = %v, %v", fmax, err)
	}
}

func TestFacadeExperiment(t *testing.T) {
	tb, err := Experiment("analytic", QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fMax") {
		t.Fatalf("rendered table missing fMax: %s", buf.String())
	}
	if len(ExperimentIDs()) != 10 {
		t.Fatalf("ExperimentIDs = %v", ExperimentIDs())
	}
}

func TestFacadeScript(t *testing.T) {
	s, err := ParseScript([]byte(`{
		"workload": {"interval": 20, "coverage": 0.4},
		"events": [
			{"at": 200, "op": "kill"},
			{"at": 400, "op": "burst", "interval": 10}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultScenario()
	cfg.NumNodes = 40
	cfg.Epochs = 800
	res, err := RunScript(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesInjected == 0 {
		t.Fatal("scripted run injected no queries")
	}
	if len(res.Report.Windows) < 2 || len(res.Report.Faults) != 1 {
		t.Fatalf("report shape: %d windows, %d faults", len(res.Report.Windows), len(res.Report.Faults))
	}
	if _, err := ParseScript([]byte(`{"events":[{"at":1,"op":"nope"}]}`)); err == nil {
		t.Fatal("bad op accepted")
	}
}
