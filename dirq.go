// Package dirq is a Go reproduction of "An Adaptive Directed Query
// Dissemination Scheme for Wireless Sensor Networks" (Chatterjea, De Luigi,
// Havinga — ICPP Workshops 2006).
//
// DirQ routes one-shot range queries over a spanning tree of a wireless
// sensor network, delivering each query only to the nodes whose (locally
// maintained, hysteresis-filtered) sensor ranges can satisfy it, instead of
// flooding. An Adaptive Threshold Control keeps the combined cost of query
// dissemination and range-update traffic at 45–55 % of the cost of
// flooding while retaining high delivery accuracy.
//
// The package is a facade over the full simulation stack:
//
//   - Scenario / Run: build and execute a complete simulation — topology
//     placement, TDMA MAC (an LMAC reproduction), synthetic
//     spatio-temporally correlated sensor data, the DirQ protocol with
//     fixed or adaptive thresholds, a coverage-targeted query workload, and
//     flooding-baseline accounting.
//   - Experiment / AllExperiments: regenerate the paper's figures and the
//     §5 analytical table.
//   - The analytic cost-model functions CFTotal, CQDMax, CUDMax, FMax.
//
// Beyond batch runs, cmd/dirqd (over internal/serve) hosts live networks
// and answers ad-hoc range queries from external clients over HTTP, and
// the scripted scenario-dynamics engine (internal/script, exposed here as
// Script / RunScript) drives timelines of node kills, sensor regime
// shifts, workload bursts and threshold retuning through a run while
// capturing per-window metrics and fault-repair latencies.
//
// Quickstart:
//
//	cfg := dirq.DefaultScenario()
//	cfg.Mode = dirq.ATC
//	res, err := dirq.Run(cfg)
//	// res.CostFraction ≈ 0.45–0.55, res.Summary.MeanOvershoot small.
package dirq

import (
	"io"

	"repro/internal/analytic"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/script"
)

// Scenario fully parameterizes one simulation run. See the field docs on
// the underlying type for every knob.
type Scenario = scenario.Config

// Result carries the measurements of one run: per-query accuracy, update
// traffic per 100-epoch bucket, costs, and the cost fraction vs flooding.
type Result = scenario.Result

// Runner is a built-but-not-yet-run simulation, exposing the internal
// components (tree, MAC, data generator, protocol) for advanced use.
type Runner = scenario.Runner

// ThresholdMode selects fixed-δ or adaptive threshold control.
type ThresholdMode = scenario.ThresholdMode

// Threshold modes.
const (
	// FixedDelta uses Scenario.FixedPct on every node.
	FixedDelta = scenario.FixedDelta
	// ATC enables the paper's §6 Adaptive Threshold Control.
	ATC = scenario.ATC
)

// ScaleScenario returns the §7 setup stretched to larger deployments at
// constant node density (area side ∝ √nodes, depth cap grown with the
// diagonal). For nodes <= 50 it matches DefaultScenario with the node
// count applied.
func ScaleScenario(nodes int) Scenario { return scenario.ScaleDefault(nodes) }

// DefaultScenario returns the paper's §7 setup: 50 nodes, fan-out cap 8,
// depth cap 10, 20 000 epochs, one query every 20 epochs, fixed δ = 5 %.
func DefaultScenario() Scenario { return scenario.Default() }

// Run builds and executes a scenario.
func Run(cfg Scenario) (*Result, error) { return scenario.Run(cfg) }

// Build constructs a simulation without running it, for callers that want
// to inspect or perturb the network mid-run (see examples/topologychange).
func Build(cfg Scenario) (*Runner, error) { return scenario.Build(cfg) }

// ExperimentOptions scales experiment runs. Its Workers field bounds how
// many simulation runs execute concurrently inside each sweep (0 = one
// worker per CPU, 1 = sequential); every run derives its randomness from
// its own seed, so results are bit-identical whatever the worker count.
type ExperimentOptions = experiments.Options

// FullScale returns the paper-scale experiment options (20 000 epochs).
func FullScale() ExperimentOptions { return experiments.Full() }

// QuickScale returns reduced-scale options for smoke runs.
func QuickScale() ExperimentOptions { return experiments.Quick() }

// ExperimentIDs lists the reproducible artefacts: fig5a, fig5b, fig6,
// fig7, analytic, headline, lifetime, seeds, selectivity, churn.
func ExperimentIDs() []string { return experiments.IDs() }

// Script is a declarative scenario-dynamics timeline: scheduled node
// kills and cascades, sensor regime shifts and drift, query-workload
// bursts and selectivity changes, threshold retuning. Build one as a Go
// value or load it from JSON with ParseScript/LoadScript.
type Script = script.Script

// ScriptEvent is one scheduled entry of a Script.
type ScriptEvent = script.Event

// ScriptResult bundles the run's Result with the script Report: the
// resolved timeline, per-window metrics between events, and the repair
// latency of every scripted fault.
type ScriptResult = script.Result

// Script event ops.
const (
	OpKill     = script.OpKill
	OpCascade  = script.OpCascade
	OpShift    = script.OpShift
	OpDrift    = script.OpDrift
	OpBurst    = script.OpBurst
	OpCoverage = script.OpCoverage
	OpRetune   = script.OpRetune
)

// ParseScript decodes and validates a JSON script document.
func ParseScript(data []byte) (*Script, error) { return script.Parse(data) }

// LoadScript reads and parses a JSON script file.
func LoadScript(path string) (*Script, error) { return script.Load(path) }

// RunScript executes cfg with the script driving the run: the script owns
// the query workload and fires its timeline at exact epochs. Same cfg +
// same script ⇒ byte-identical results.
func RunScript(cfg Scenario, s *Script) (*ScriptResult, error) { return script.Run(cfg, s) }

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// Experiment regenerates one paper artefact by id.
func Experiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	return experiments.Run(id, o)
}

// AllExperiments regenerates every artefact, rendering each to w.
func AllExperiments(o ExperimentOptions, w io.Writer) error {
	return experiments.RunAll(o, w)
}

// CFTotal returns the §5.1 flooding cost of one query on a perfect k-ary
// tree of depth d (equation (4)).
func CFTotal(k, d int) (int64, error) { return analytic.CFTotal(k, d) }

// CQDMax returns the §5.2 worst-case directed dissemination cost
// (equation (5)).
func CQDMax(k, d int) (int64, error) { return analytic.CQDMax(k, d) }

// CUDMax returns the §5.2 worst-case update-wave cost (equation (6)).
func CUDMax(k, d int) (int64, error) { return analytic.CUDMax(k, d) }

// FMax returns the §5.3 maximum updates-per-query frequency at which DirQ
// still beats flooding (equation (8)); k=2, d=4 gives the paper's 0.76.
func FMax(k, d int) (float64, error) { return analytic.FMax(k, d) }
